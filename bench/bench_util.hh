/**
 * @file
 * Shared helpers for the reproduction harnesses: environment-variable
 * scaling knobs and common formatting.
 *
 * Every bench accepts:
 *   XED_MC_SYSTEMS  -- Monte-Carlo systems per scheme (reliability)
 *   XED_MC_THREADS  -- Monte-Carlo worker threads (default: hardware
 *                      concurrency; results are thread-count invariant)
 *   XED_PERF_OPS    -- memory ops per core (performance)
 * so the full-fidelity (paper-scale) runs are one env var away.
 *
 * XED_MC_THREADS needs no per-bench plumbing: McConfig::threads
 * defaults to 0 ("auto"), which the engine resolves to XED_MC_THREADS
 * and then to std::thread::hardware_concurrency(). mcThreads() is for
 * harnesses that want to surface the resolved value.
 */

#ifndef XED_BENCH_BENCH_UTIL_HH
#define XED_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "faultsim/engine.hh"

namespace xed::bench
{

inline std::uint64_t
envScale(const char *name, std::uint64_t fallback)
{
    if (const char *value = std::getenv(name)) {
        const auto parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

inline std::uint64_t
mcSystems(std::uint64_t fallback = 1000000)
{
    return envScale("XED_MC_SYSTEMS", fallback);
}

inline std::uint64_t
perfOps(std::uint64_t fallback = 8000)
{
    return envScale("XED_PERF_OPS", fallback);
}

/** Monte-Carlo worker threads: XED_MC_THREADS, else the hardware. */
inline unsigned
mcThreads()
{
    const auto hw = std::thread::hardware_concurrency();
    return static_cast<unsigned>(
        envScale("XED_MC_THREADS", hw ? hw : 1));
}

/** Monte-Carlo seed: XED_MC_SEED, else the bench's pinned seed. */
inline std::uint64_t
mcSeed(std::uint64_t fallback)
{
    return envScale("XED_MC_SEED", fallback);
}

/**
 * The standard reliability-bench configuration: systems and seed
 * resolved from the environment with the bench's defaults. Threads
 * stay 0 ("auto"), which the engine resolves to XED_MC_THREADS and
 * then the hardware.
 */
inline faultsim::McConfig
mcConfig(std::uint64_t defaultSeed, std::uint64_t systemsFallback = 1000000)
{
    faultsim::McConfig cfg;
    cfg.systems = mcSystems(systemsFallback);
    cfg.seed = mcSeed(defaultSeed);
    return cfg;
}

} // namespace xed::bench

#endif // XED_BENCH_BENCH_UTIL_HH
