/**
 * @file
 * Shared helpers for the reproduction harnesses: environment-variable
 * scaling knobs and common formatting.
 *
 * Every bench accepts:
 *   XED_MC_SYSTEMS  -- Monte-Carlo systems per scheme (reliability)
 *   XED_PERF_OPS    -- memory ops per core (performance)
 * so the full-fidelity (paper-scale) runs are one env var away.
 */

#ifndef XED_BENCH_BENCH_UTIL_HH
#define XED_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace xed::bench
{

inline std::uint64_t
envScale(const char *name, std::uint64_t fallback)
{
    if (const char *value = std::getenv(name)) {
        const auto parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

inline std::uint64_t
mcSystems(std::uint64_t fallback = 1000000)
{
    return envScale("XED_MC_SYSTEMS", fallback);
}

inline std::uint64_t
perfOps(std::uint64_t fallback = 8000)
{
    return envScale("XED_PERF_OPS", fallback);
}

} // namespace xed::bench

#endif // XED_BENCH_BENCH_UTIL_HH
