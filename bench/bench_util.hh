/**
 * @file
 * Shared helpers for the reproduction harnesses: environment-variable
 * scaling knobs and common formatting.
 *
 * Every bench accepts:
 *   XED_MC_SYSTEMS  -- Monte-Carlo systems per scheme (reliability)
 *   XED_MC_THREADS  -- Monte-Carlo worker threads (default: hardware
 *                      concurrency; results are thread-count invariant)
 *   XED_MC_SAMPLER  -- Poisson count sampler: knuth (default) or invcdf
 *   XED_PERF_OPS    -- memory ops per core (performance)
 * so the full-fidelity (paper-scale) runs are one env var away.
 *
 * XED_MC_THREADS needs no per-bench plumbing: McConfig::threads
 * defaults to 0 ("auto"), which the engine resolves to XED_MC_THREADS
 * and then to std::thread::hardware_concurrency(). mcThreads() is for
 * harnesses that want to surface the resolved value.
 */

#ifndef XED_BENCH_BENCH_UTIL_HH
#define XED_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/env.hh"
#include "faultsim/engine.hh"

namespace xed::bench
{

inline std::uint64_t
envScale(const char *name, std::uint64_t fallback)
{
    // Strict parse: a malformed value (garbage, sign, overflow) throws
    // instead of silently running the bench at the fallback scale. An
    // explicit 0 keeps the historical "use the default" meaning.
    if (const auto parsed = envU64(name); parsed && *parsed > 0)
        return *parsed;
    return fallback;
}

inline std::uint64_t
mcSystems(std::uint64_t fallback = 1000000)
{
    return envScale("XED_MC_SYSTEMS", fallback);
}

inline std::uint64_t
perfOps(std::uint64_t fallback = 8000)
{
    return envScale("XED_PERF_OPS", fallback);
}

/** Monte-Carlo worker threads: XED_MC_THREADS, else the hardware. */
inline unsigned
mcThreads()
{
    const auto hw = std::thread::hardware_concurrency();
    return static_cast<unsigned>(
        envScale("XED_MC_THREADS", hw ? hw : 1));
}

/** Monte-Carlo seed: XED_MC_SEED, else the bench's pinned seed. */
inline std::uint64_t
mcSeed(std::uint64_t fallback)
{
    return envScale("XED_MC_SEED", fallback);
}

/**
 * Poisson count sampler: XED_MC_SAMPLER ("knuth" or "invcdf"), else
 * the fallback (Knuth, the bit-identical golden path). Anything else
 * throws -- a typo'd sampler must not silently run the golden path.
 */
inline faultsim::PoissonSampler
mcSampler(faultsim::PoissonSampler fallback =
              faultsim::PoissonSampler::Knuth)
{
    if (const char *value = std::getenv("XED_MC_SAMPLER")) {
        const auto parsed = faultsim::parsePoissonSampler(value);
        if (!parsed)
            throw std::runtime_error(
                std::string("XED_MC_SAMPLER: expected \"knuth\" or "
                            "\"invcdf\", got \"") +
                value + "\"");
        return *parsed;
    }
    return fallback;
}

/**
 * The standard reliability-bench configuration: systems, seed and
 * sampler resolved from the environment with the bench's defaults.
 * Threads stay 0 ("auto"), which the engine resolves to
 * XED_MC_THREADS and then the hardware.
 */
inline faultsim::McConfig
mcConfig(std::uint64_t defaultSeed, std::uint64_t systemsFallback = 1000000)
{
    faultsim::McConfig cfg;
    cfg.systems = mcSystems(systemsFallback);
    cfg.seed = mcSeed(defaultSeed);
    cfg.sampler = mcSampler();
    return cfg;
}

} // namespace xed::bench

#endif // XED_BENCH_BENCH_UTIL_HH
