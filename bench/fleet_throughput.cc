/**
 * @file
 * Fleet-lifetime engine throughput: DIMM-lifetimes simulated per
 * second on a fleet_1m-shaped workload (SECDED / XED / chipkill
 * cohorts, Table I rates, 7-year horizon, monthly epochs), serial and
 * sharded across threads, written as BENCH_fleet.json.
 *
 * Knobs (see bench_util.hh): XED_MC_SYSTEMS scales the fleet size
 * (default 200k DIMMs, split 2:1:1 over the cohorts), XED_MC_SEED /
 * XED_MC_SAMPLER / XED_MC_THREADS select the workload variant,
 * XED_BENCH_REPEATS (default 3) controls the best-of repetition
 * count, and XED_BENCH_OUT overrides the JSON output path (empty
 * string suppresses the file, e.g. for the perf-smoke ctest label).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/build_info.hh"
#include "common/json.hh"
#include "fleet/fleet.hh"

using namespace xed;
using namespace xed::fleet;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &t0,
        const std::chrono::steady_clock::time_point &t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The fleet_1m workload shape at an arbitrary scale. */
FleetConfig
workload(std::uint64_t dimms, std::uint64_t seed,
         faultsim::PoissonSampler sampler)
{
    FleetConfig config;
    config.seed = seed;
    config.sampler = sampler;
    const struct
    {
        const char *name;
        faultsim::SchemeKind scheme;
        std::uint64_t share; ///< quarters of the fleet
    } cohorts[] = {
        {"secded", faultsim::SchemeKind::Secded, 2},
        {"xed", faultsim::SchemeKind::Xed, 1},
        {"chipkill", faultsim::SchemeKind::Chipkill, 1},
    };
    for (const auto &c : cohorts) {
        FleetCohort cohort;
        cohort.name = c.name;
        cohort.scheme = c.scheme;
        cohort.dimms = dimms * c.share / 4;
        config.setup.cohorts.push_back(cohort);
    }
    return config;
}

/** One full fleet pass over [0, total), split over @p threads shards
 *  and merged -- the same partition the campaign runner uses. */
FleetResult
runOnce(const FleetConfig &config, unsigned threads)
{
    const std::uint64_t total = config.setup.totalDimms();
    if (threads <= 1)
        return runFleetShard(config, 0, total);
    std::vector<FleetResult> shards(threads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            const std::uint64_t lo = total * t / threads;
            const std::uint64_t hi = total * (t + 1) / threads;
            shards[t] = runFleetShard(config, lo, hi);
        });
    for (auto &worker : pool)
        worker.join();
    FleetResult merged;
    for (const auto &shard : shards)
        merged.merge(shard);
    return merged;
}

double
bestSeconds(const FleetConfig &config, unsigned threads,
            unsigned repeats)
{
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        runOnce(config, threads);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, seconds(t0, t1));
    }
    return best;
}

} // namespace

int
main()
try {
    const std::uint64_t dimms = bench::mcSystems(200000);
    const FleetConfig config = workload(
        dimms, bench::mcSeed(160301), bench::mcSampler());
    const std::uint64_t total = config.setup.totalDimms();

    unsigned repeats = static_cast<unsigned>(
        bench::envScale("XED_BENCH_REPEATS", 3));

    std::string outPath = "BENCH_fleet.json";
    if (const char *env = std::getenv("XED_BENCH_OUT"))
        outPath = env;

    std::printf("Fleet-lifetime engine throughput "
                "(fleet_1m workload, %llu DIMMs, %u epochs, "
                "seed %llu, %s)\n",
                static_cast<unsigned long long>(total),
                config.epochs(),
                static_cast<unsigned long long>(config.seed),
                faultsim::poissonSamplerName(config.sampler));

    // Warm up allocators, page in the binary, settle the clock.
    {
        FleetConfig warm = config;
        runFleetShard(warm, 0, std::min<std::uint64_t>(total, 20000));
    }

    const double serialSec = bestSeconds(config, 1, repeats);
    const unsigned threads = bench::mcThreads();
    const double threadedSec =
        threads == 1 ? serialSec
                     : bestSeconds(config, threads, repeats);

    const double serialRate = total / serialSec;
    const double threadedRate = total / threadedSec;
    std::printf("%-12s %14s %14s %12s\n", "", "serial DIMM/s",
                "threaded DIMM/s", "threads");
    std::printf("%-12s %14.4g %14.4g %12u\n", "fleet", serialRate,
                threadedRate, threads);

    if (!outPath.empty()) {
        auto doc = json::Value::object();
        doc.set("bench", "fleet_throughput");
        doc.set("workload", "fleet_1m");
        doc.set("dimms", total);
        doc.set("epochs", config.epochs());
        doc.set("seed", config.seed);
        doc.set("sampler",
                faultsim::poissonSamplerName(config.sampler));
        doc.set("repeats", repeats);
        doc.set("build", buildInfoJson());
        auto entry = json::Value::object();
        entry.set("serial_dimms_per_sec", serialRate);
        entry.set("threaded_dimms_per_sec", threadedRate);
        entry.set("threads", threads);
        auto results = json::Value::array();
        results.push(std::move(entry));
        doc.set("results", std::move(results));
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "fleet_throughput: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        out << json::dump(doc) << "\n";
    }
    return 0;
} catch (const std::exception &error) {
    std::fprintf(stderr, "fleet_throughput: %s\n", error.what());
    return 1;
}
