/**
 * Ablation: strength of the on-die detection code (ties Table II to
 * the reliability results). XED's DUE rate scales with the probability
 * that a multi-bit error aliases to a valid on-die codeword -- ~0.78%
 * for random even-weight patterns with either code, but ~25% for a
 * burst-biased error mix under naturally-ordered Hamming (which misses
 * half of all 4/8-bursts), versus still ~0.78% under CRC8-ATM. This is
 * the quantitative version of the paper's Section V-E recommendation.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg = bench::mcConfig(0xAB1C);

    struct Row
    {
        const char *label;
        double escapeProb;
    };
    const Row rows[] = {
        {"CRC8-ATM (paper choice, 0.8% escape)", 0.008},
        {"Hamming, random-error mix (1.0%)", 0.010},
        {"Hamming, burst-heavy mix (10%)", 0.10},
        {"Hamming, pure 4/8-burst mix (25%)", 0.25},
        {"parity-only detection (50%)", 0.50},
    };

    Table table({"On-die code / escape probability", "XED P(fail,7y)",
                 "due-word-fault share"});
    for (const auto &row : rows) {
        OnDieOptions onDie;
        onDie.detectionEscapeProb = row.escapeProb;
        const auto result =
            runMonteCarlo(*makeScheme(SchemeKind::Xed, onDie), cfg);
        const auto due = result.failureTypes.get("due-word-fault");
        const auto total = result.failureTypes.get("due-word-fault") +
                           result.failureTypes.get(
                               "multi-chip-data-loss");
        table.addRow({row.label, Table::sci(result.probFailure(), 2),
                      total ? Table::pct(static_cast<double>(due) /
                                             static_cast<double>(total),
                                         1)
                            : std::string("n/a")});
    }
    table.print(std::cout,
                "Ablation: on-die detection strength vs XED "
                "reliability (" + std::to_string(cfg.systems) +
                " systems/row)");
    std::cout
        << "\nWith the paper's CRC8-ATM, word-fault DUEs stay an order "
           "of magnitude below multi-chip data loss (two orders per "
           "rank, Table IV); with a weak (burst-blind) code they "
           "become the dominant failure source -- the reliability "
           "argument behind recommending CRC8-ATM for on-die ECC.\n";
    return 0;
}
