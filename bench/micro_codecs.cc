/**
 * google-benchmark microbenchmarks for the data-path primitives: the
 * (72,64) on-die codecs (the paper budgets 1-2 DRAM-internal cycles for
 * them, Section V-E), the Reed-Solomon symbol codes, RAID-3 parity
 * reconstruction, and the full XED controller read path.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "ecc/crc8atm.hh"
#include "ecc/hamming7264.hh"
#include "ecc/parity_raid3.hh"
#include "ecc/reed_solomon.hh"
#include "xed/controller.hh"

using namespace xed;
using namespace xed::ecc;

namespace
{

void
BM_HammingEncode(benchmark::State &state)
{
    Hamming7264 code;
    Rng rng(1);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.encode(data));
        data += 0x9E3779B97F4A7C15ull;
    }
}
BENCHMARK(BM_HammingEncode);

void
BM_HammingDecodeClean(benchmark::State &state)
{
    Hamming7264 code;
    const Word72 word = code.encode(0xDEADBEEF12345678ull);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(word));
}
BENCHMARK(BM_HammingDecodeClean);

void
BM_Crc8AtmEncode(benchmark::State &state)
{
    Crc8Atm code;
    Rng rng(2);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.encode(data));
        data += 0x9E3779B97F4A7C15ull;
    }
}
BENCHMARK(BM_Crc8AtmEncode);

void
BM_Crc8AtmDecodeCorrecting(benchmark::State &state)
{
    Crc8Atm code;
    Word72 word = code.encode(0xDEADBEEF12345678ull);
    word.flip(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(word));
}
BENCHMARK(BM_Crc8AtmDecodeCorrecting);

void
BM_Raid3Reconstruct(benchmark::State &state)
{
    Rng rng(3);
    std::array<std::uint64_t, 8> words{};
    for (auto &w : words)
        w = rng.next();
    const auto parity = computeParity(words);
    for (auto _ : state)
        benchmark::DoNotOptimize(reconstructErased(words, parity, 3));
}
BENCHMARK(BM_Raid3Reconstruct);

void
BM_Rs1816EncodeBeat(benchmark::State &state)
{
    ReedSolomon rs(18, 16);
    Rng rng(4);
    std::vector<std::uint8_t> data(16);
    for (auto &d : data)
        d = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(rs.encode(data));
}
BENCHMARK(BM_Rs1816EncodeBeat);

void
BM_Rs1816ErasureDecodeBeat(benchmark::State &state)
{
    ReedSolomon rs(18, 16);
    Rng rng(5);
    std::vector<std::uint8_t> data(16);
    for (auto &d : data)
        d = static_cast<std::uint8_t>(rng.below(256));
    const auto clean = rs.encode(data);
    for (auto _ : state) {
        auto word = clean;
        word[3] ^= 0x5A;
        word[9] ^= 0xC3;
        benchmark::DoNotOptimize(rs.decode(word, {3u, 9u}));
    }
}
BENCHMARK(BM_Rs1816ErasureDecodeBeat);

void
BM_Rs1816ScratchErasureDecodeBeat(benchmark::State &state)
{
    // The allocation-free beat decode the controllers actually run:
    // stack buffers + reusable RsScratch, no vector in sight.
    ReedSolomon rs(18, 16);
    Rng rng(5);
    std::array<std::uint8_t, 16> data;
    for (auto &d : data)
        d = static_cast<std::uint8_t>(rng.below(256));
    std::array<std::uint8_t, 18> clean;
    rs.encode(std::span<const std::uint8_t>(data),
              std::span<std::uint8_t>(clean));
    const std::array<unsigned, 2> erasures = {3u, 9u};
    RsScratch scratch;
    std::array<std::uint8_t, 18> word;
    for (auto _ : state) {
        word = clean;
        word[3] ^= 0x5A;
        word[9] ^= 0xC3;
        benchmark::DoNotOptimize(
            rs.decode(std::span<std::uint8_t>(word),
                      std::span<const unsigned>(erasures), scratch));
    }
}
BENCHMARK(BM_Rs1816ScratchErasureDecodeBeat);

void
BM_Rs1816IsValidCodeword(benchmark::State &state)
{
    // Syndrome-only fast path: the common clean-beat check.
    ReedSolomon rs(18, 16);
    Rng rng(8);
    std::vector<std::uint8_t> data(16);
    for (auto &d : data)
        d = static_cast<std::uint8_t>(rng.below(256));
    const auto clean = rs.encode(data);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            rs.isValidCodeword(std::span<const std::uint8_t>(clean)));
}
BENCHMARK(BM_Rs1816IsValidCodeword);

void
BM_Crc8AtmSyndrome(benchmark::State &state)
{
    Crc8Atm code;
    const Word72 word = code.encode(0xDEADBEEF12345678ull);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.syndrome(word));
}
BENCHMARK(BM_Crc8AtmSyndrome);

template <typename Code>
void
BM_DetectManyBatch(benchmark::State &state)
{
    // Batched detection over a campaign-sized span (512 words/batch).
    const Code code;
    Rng rng(9);
    std::array<Word72, 512> batch;
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    for (Word72 &word : batch) {
        word = clean;
        if (rng.bernoulli(0.7))
            word.flip(static_cast<unsigned>(rng.below(72)));
    }
    const std::span<const Word72> span(batch);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.detectMany(span));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_DetectManyBatch<Hamming7264>);
BENCHMARK(BM_DetectManyBatch<Crc8Atm>);

void
BM_XedControllerCleanRead(benchmark::State &state)
{
    XedController ctrl;
    Rng rng(6);
    std::array<std::uint64_t, 8> line{};
    for (auto &w : line)
        w = rng.next();
    const dram::WordAddr addr{0, 1, 2};
    ctrl.writeLine(addr, line);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctrl.readLine(addr));
}
BENCHMARK(BM_XedControllerCleanRead);

void
BM_XedControllerErasureRead(benchmark::State &state)
{
    XedController ctrl;
    Rng rng(7);
    std::array<std::uint64_t, 8> line{};
    for (auto &w : line)
        w = rng.next();
    const dram::WordAddr addr{0, 1, 3};
    ctrl.writeLine(addr, line);
    dram::Fault f;
    f.granularity = dram::FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr;
    f.bitPos = 9;
    ctrl.chip(4).faults().add(f);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctrl.readLine(addr));
}
BENCHMARK(BM_XedControllerErasureRead);

} // namespace

/**
 * BENCHMARK_MAIN() plus one extra flag: --simd=LEVEL forces the
 * dispatch level (strict parse, fails loudly on garbage or a level
 * this host cannot execute) before any benchmark runs, so per-level
 * numbers can be collected from one binary. All other arguments pass
 * through to google-benchmark untouched.
 */
int
main(int argc, char **argv)
try {
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    const std::string prefix = "--simd=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) != 0) {
            passthrough.push_back(argv[i]);
            continue;
        }
        const auto level =
            xed::parseSimdLevel(arg.substr(prefix.size()));
        if (!level) {
            std::fprintf(stderr,
                         "micro_codecs: %s: expected --simd=scalar, "
                         "neon, avx2 or avx512\n",
                         arg.c_str());
            return 2;
        }
        xed::simdForceLevel(*level, arg); // throws if not executable
    }
    int benchArgc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&benchArgc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(benchArgc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "micro_codecs: %s\n", e.what());
    return 1;
}
