/**
 * Figure 8: reliability of ECC-DIMM, XED and Chipkill when runtime
 * faults occur in the presence of scaling faults (rate 1e-4). XED
 * corrects scaling faults via serial-mode on-die correction, so its
 * advantage is preserved.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg;
    cfg.systems = bench::mcSystems();
    cfg.seed = 0xF168;

    OnDieOptions scaling;
    scaling.scalingRate = 1e-4;

    const SchemeKind kinds[] = {SchemeKind::Secded, SchemeKind::Xed,
                                SchemeKind::Chipkill};
    Table table({"Scheme (scaling 1e-4)", "Y1", "Y3", "Y5",
                 "Y7 P(fail)"});
    double secded = 0, xed = 0, chipkill = 0;
    for (const auto kind : kinds) {
        const auto scheme = makeScheme(kind, scaling);
        const auto result = runMonteCarlo(*scheme, cfg);
        table.addRow({scheme->name(),
                      Table::sci(result.failByYear[1].value(), 2),
                      Table::sci(result.failByYear[3].value(), 2),
                      Table::sci(result.failByYear[5].value(), 2),
                      Table::sci(result.failByYear[7].value(), 2)});
        switch (kind) {
          case SchemeKind::Secded: secded = result.probFailure(); break;
          case SchemeKind::Xed: xed = result.probFailure(); break;
          default: chipkill = result.probFailure(); break;
        }
    }
    table.print(std::cout,
                "Figure 8: P(system failure), runtime faults + scaling "
                "faults at 1e-4 (" + std::to_string(cfg.systems) +
                " systems/scheme)");
    std::cout << "\nXED vs ECC-DIMM:      "
              << Table::fmt(secded / xed, 0) << "x   (paper: 172x)\n"
              << "Chipkill vs ECC-DIMM: "
              << Table::fmt(secded / chipkill, 0) << "x   (paper: 43x)\n";
    return 0;
}
