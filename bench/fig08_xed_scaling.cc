/**
 * Figure 8: reliability of ECC-DIMM, XED and Chipkill when runtime
 * faults occur in the presence of scaling faults (rate 1e-4). XED
 * corrects scaling faults via serial-mode on-die correction, so its
 * advantage is preserved.
 *
 * Thin wrapper over the campaign runner: specs/fig08.json declares a
 * one-point scalingRate sweep, and the runner reproduces the original
 * hand-coded loop's numbers exactly.
 */

#include <iostream>

#include "campaign/runner.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::campaign;

int
main()
{
    std::string error;
    auto spec = loadSpecFile(XED_SPEC_DIR "/fig08.json", &error);
    if (!spec) {
        std::cerr << "fig08: " << error << "\n";
        return 1;
    }
    applyEnvOverrides(*spec);

    const auto outcome = runCampaign(*spec, RunOptions{});
    if (!outcome.ok) {
        std::cerr << "fig08: " << outcome.error << "\n";
        return 1;
    }

    Table table({"Scheme (scaling 1e-4)", "Y1", "Y3", "Y5",
                 "Y7 P(fail)"});
    double secded = 0, xed = 0, chipkill = 0;
    for (unsigned i = 0; i < outcome.cells.size(); ++i) {
        const auto &cell = outcome.cells[i];
        const auto &result = cell.result.mc;
        const auto scheme =
            faultsim::makeScheme(spec->schemes[i], onDieFor(*spec, 0));
        table.addRow({scheme->name(),
                      Table::sci(result.failByYear[1].value(), 2),
                      Table::sci(result.failByYear[3].value(), 2),
                      Table::sci(result.failByYear[5].value(), 2),
                      Table::sci(result.failByYear[7].value(), 2)});
        if (cell.label == "secded")
            secded = result.probFailure();
        else if (cell.label == "xed")
            xed = result.probFailure();
        else
            chipkill = result.probFailure();
    }
    table.print(std::cout,
                "Figure 8: P(system failure), runtime faults + scaling "
                "faults at 1e-4 (" + std::to_string(spec->systems) +
                " systems/scheme)");
    std::cout << "\nXED vs ECC-DIMM:      "
              << Table::fmt(secded / xed, 0) << "x   (paper: 172x)\n"
              << "Chipkill vs ECC-DIMM: "
              << Table::fmt(secded / chipkill, 0) << "x   (paper: 43x)\n";
    return 0;
}
