/**
 * Figure 13: the cost of exposing On-Die ECC with an extra burst or an
 * additional transaction instead of catch-words, for Chipkill and
 * Double-Chipkill classes. Values are normalized to the corresponding
 * XED implementation (XED+Chipkill / plain Double-Chipkill hardware).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "perfsim/system.hh"

using namespace xed;
using namespace xed::perfsim;

namespace
{

struct Alternative
{
    const char *label;
    ProtectionMode mode;
    ProtectionMode reference;
};

} // namespace

int
main()
{
    PerfConfig cfg;
    cfg.memOpsPerCore = bench::perfOps();

    const Alternative alts[] = {
        {"Chipkill + extra burst", ProtectionMode::ChipkillExtraBurst,
         ProtectionMode::XedChipkill},
        {"Chipkill + extra transaction",
         ProtectionMode::ChipkillExtraTransaction,
         ProtectionMode::XedChipkill},
        {"Double-CK + extra burst",
         ProtectionMode::DoubleChipkillExtraBurst,
         ProtectionMode::DoubleChipkill},
        {"Double-CK + extra transaction",
         ProtectionMode::DoubleChipkillExtraTransaction,
         ProtectionMode::DoubleChipkill},
    };

    Table table({"Alternative (vs XED implementation)",
                 "Execution time", "Memory power"});
    for (const auto &alt : alts) {
        double execLog = 0, powerLog = 0;
        int count = 0;
        for (const auto &w : paperWorkloads()) {
            const auto ref = simulate(w, alt.reference, cfg);
            const auto run = simulate(w, alt.mode, cfg);
            execLog += std::log(static_cast<double>(run.cycles) /
                                static_cast<double>(ref.cycles));
            powerLog += std::log(run.memoryPowerWatts() /
                                 ref.memoryPowerWatts());
            ++count;
        }
        table.addRow({alt.label,
                      Table::fmt(std::exp(execLog / count), 3),
                      Table::fmt(std::exp(powerLog / count), 3)});
    }
    table.print(std::cout,
                "Figure 13: performance and power overheads of "
                "exposing On-Die ECC with extra bursts/transactions "
                "(gmean over all workloads)");
    std::cout << "\nPaper: both alternatives cost up to ~1.25x in "
                 "execution time and power relative to the XED "
                 "implementations; the extra transaction is the most "
                 "expensive.\n";
    return 0;
}
