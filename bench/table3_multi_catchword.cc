/**
 * Table III: likelihood of receiving multiple catch-words in a single
 * access under scaling faults. Prints the paper's closed form
 * ((64r)^2/2), the exact 9-chip binomial, and a Monte-Carlo check on
 * the functional XED controller model.
 */

#include <iostream>

#include "analysis/multi_catchword.hh"
#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::analysis;

int
main()
{
    Table table({"Scaling-Fault Rate", "Paper formula",
                 "Exact binomial (9 chips)", "Monte-Carlo",
                 "Accesses between episodes"});

    Rng rng(0x7AB3);
    const std::uint64_t accesses = bench::envScale("XED_TRIALS", 2000000);
    for (const double rate : {1e-4, 1e-5, 1e-6}) {
        const double p = probWordHasScalingFault(rate);
        std::uint64_t multi = 0;
        for (std::uint64_t a = 0; a < accesses; ++a) {
            unsigned catchWords = 0;
            for (unsigned chip = 0; chip < 9 && catchWords < 2; ++chip)
                catchWords += rng.bernoulli(p) ? 1 : 0;
            multi += (catchWords >= 2) ? 1 : 0;
        }
        const double mc = static_cast<double>(multi) /
                          static_cast<double>(accesses);
        table.addRow({Table::sci(rate, 0),
                      Table::sci(paperTable3Value(rate), 1),
                      Table::sci(probMultipleCatchWords(rate), 2),
                      multi ? Table::sci(mc, 2) : std::string("<1/trials"),
                      Table::sci(accessesBetweenMultiCatchWords(rate), 1)});
    }
    table.print(std::cout,
                "Table III: likelihood of multiple catch-words per "
                "access (" + std::to_string(accesses) + " MC accesses)");
    std::cout << "\nPaper values: 2e-5 / 2e-7 / 2e-9 -- the paper's "
                 "closed form is the per-pair probability (64r)^2/2;\n"
                 "the exact 9-chip binomial is C(9,2) = 36x/2 larger. "
                 "Both are shown (see EXPERIMENTS.md).\n";
    return 0;
}
