/**
 * Figure 10: Single-Chipkill, Double-Chipkill and XED-on-Chipkill in
 * the presence of scaling faults (1e-4).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg = bench::mcConfig(0xF170, 4000000);

    OnDieOptions scaling;
    scaling.scalingRate = 1e-4;

    // The commodity-x8 lockstep family (see scheme.hh): groups are
    // built from lockstepped 9-chip ranks, so multi-rank faults land
    // inside the codeword -- the configuration that reproduces the
    // paper's DCK-vs-SCK and XED+CK-vs-DCK ratios.
    const SchemeKind kinds[] = {SchemeKind::ChipkillX8Lockstep,
                                SchemeKind::DoubleChipkillLockstep,
                                SchemeKind::XedChipkillLockstep};
    Table table({"Scheme (scaling 1e-4)", "Y3", "Y5", "Y7 P(fail)",
                 "failures"});
    double single = 0, dbl = 0, xedCk = 0;
    for (const auto kind : kinds) {
        const auto scheme = makeScheme(kind, scaling);
        const auto result = runMonteCarlo(*scheme, cfg);
        table.addRow({scheme->name(),
                      Table::sci(result.failByYear[3].value(), 2),
                      Table::sci(result.failByYear[5].value(), 2),
                      Table::sci(result.failByYear[7].value(), 2),
                      std::to_string(result.failByYear[7].successes())});
        switch (kind) {
          case SchemeKind::ChipkillX8Lockstep:
              single = result.probFailure();
              break;
          case SchemeKind::DoubleChipkillLockstep:
              dbl = result.probFailure();
              break;
          default: xedCk = result.probFailure(); break;
        }
    }
    table.print(std::cout,
                "Figure 10: Chipkill-class schemes with scaling faults "
                "at 1e-4 (" + std::to_string(cfg.systems) +
                " systems/scheme)");
    std::cout << "\nDouble-Chipkill vs Single-Chipkill: "
              << Table::fmt(dbl > 0 ? single / dbl : 0, 1)
              << "x   (paper: 5.5x)\n"
              << "XED+Chipkill vs Double-Chipkill:    "
              << Table::fmt(xedCk > 0 ? dbl / xedCk : 0, 1)
              << "x   (paper: 8.5x)\n";
    return 0;
}
