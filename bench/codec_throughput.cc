/**
 * @file
 * Before/after throughput for the codec kernel rewrite: the frozen
 * pre-optimization implementations (tests/support/codec_reference.*)
 * against the table-driven, allocation-free kernels in src/ecc/, on
 * the exact shapes the hot loops use -- GF(2^8) multiply, RS(18,16)
 * and RS(36,32) decode with errors and erasures, CRC-8 ATM encode and
 * syndrome, and batched (72,64) detection. Results are written as
 * BENCH_codecs.json with per-kernel ops/sec and the geomean speedups
 * for the RS-decode and CRC-8 groups.
 *
 * Batched detection is pinned to the campaign shard geometry (512
 * words per detectMany call, the batchSize in campaign/runner.cc) so
 * the reported rate is the rate the shards actually see, and the
 * detect kernels are additionally swept across every SIMD dispatch
 * level the host can execute (simd_levels in the JSON).
 *
 * Knobs: XED_CODEC_OPS scales the per-kernel operation count (default
 * 150000 RS decodes; the cheaper kernels run multiples of it),
 * XED_BENCH_REPEATS (default 3) controls the best-of repetition
 * count, and XED_BENCH_OUT overrides the JSON output path (empty
 * string suppresses the file, e.g. for the perf-smoke ctest label).
 * --simd=scalar|neon|avx2|avx512 forces the dispatch level for the
 * whole run (strict parse; a level the host cannot execute fails).
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/build_info.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/gf256.hh"
#include "ecc/hamming7264.hh"
#include "ecc/reed_solomon.hh"
#include "tests/support/codec_reference.hh"

using namespace xed;
using namespace xed::ecc;

namespace
{

/** Defeats dead-code elimination across all timed loops. */
volatile std::uint64_t sink;

/** Best-of-@p repeats wall time of one full pass of @p fn. */
template <typename F>
double
bestSeconds(unsigned repeats, F &&fn)
{
    fn(); // warm up: tables, caches, branch predictors
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct KernelResult
{
    std::string kernel;
    std::string group;
    double beforeRate;
    double afterRate;

    double speedup() const { return afterRate / beforeRate; }
};

/** One pre-damaged received word for the RS decode kernels. */
struct RsCase
{
    std::array<std::uint8_t, RsScratch::maxN> received;
    std::array<unsigned, RsScratch::maxR> erasures;
    unsigned numErasures;
};

constexpr std::size_t poolSize = 256;

/** Words per detectMany call: the campaign shard batch geometry
 *  (campaign/runner.cc batchSize), pinned so BENCH_codecs.json rates
 *  are comparable run to run and match what the shards execute. */
constexpr std::size_t detectBatchWords = 512;

/** Pool of codewords with @p errors random errors + @p erased
 *  erasures at distinct positions (all within capacity). */
std::vector<RsCase>
makeRsPool(const ReedSolomon &rs, unsigned errors, unsigned erased,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<RsCase> pool(poolSize);
    std::vector<std::uint8_t> data(rs.k());
    for (RsCase &c : pool) {
        for (auto &symbol : data)
            symbol = static_cast<std::uint8_t>(rng.below(256));
        const auto codeword = rs.encode(data);
        std::copy(codeword.begin(), codeword.end(), c.received.begin());
        bool used[RsScratch::maxN] = {};
        c.numErasures = 0;
        for (unsigned i = 0; i < errors + erased; ++i) {
            unsigned pos;
            do
                pos = static_cast<unsigned>(rng.below(rs.n()));
            while (used[pos]);
            used[pos] = true;
            c.received[pos] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
            if (i >= errors)
                c.erasures[c.numErasures++] = pos;
        }
    }
    return pool;
}

/** RS decode, legacy heap decoder vs. scratch kernel. */
KernelResult
benchRsDecode(const std::string &kernel, unsigned n, unsigned k,
              unsigned errors, unsigned erased, std::uint64_t ops,
              unsigned repeats)
{
    const ReedSolomon rs(n, k);
    const legacy::ReedSolomon ref(n, k);
    const auto pool =
        makeRsPool(rs, errors, erased, 0xBE9C4 + n + errors * 8 + erased);

    const double beforeSec = bestSeconds(repeats, [&] {
        std::vector<std::uint8_t> word(n);
        std::vector<unsigned> erasures;
        std::uint64_t corrected = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const RsCase &c = pool[i % poolSize];
            word.assign(c.received.begin(), c.received.begin() + n);
            erasures.assign(c.erasures.begin(),
                            c.erasures.begin() + c.numErasures);
            corrected += static_cast<unsigned>(
                ref.decode(word, erasures).status);
        }
        sink = sink + corrected;
    });

    const double afterSec = bestSeconds(repeats, [&] {
        RsScratch scratch;
        std::array<std::uint8_t, RsScratch::maxN> word;
        std::uint64_t corrected = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const RsCase &c = pool[i % poolSize];
            std::copy(c.received.begin(), c.received.begin() + n,
                      word.begin());
            corrected += static_cast<unsigned>(
                rs.decode(std::span<std::uint8_t>(word.data(), n),
                          std::span<const unsigned>(c.erasures.data(),
                                                    c.numErasures),
                          scratch)
                    .status);
        }
        sink = sink + corrected;
    });

    return {kernel, "rs_decode", ops / beforeSec, ops / afterSec};
}

/** Pool of (72,64) words: mostly corrupted, some clean. */
std::vector<Word72>
makeWordPool(const Secded7264 &code, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Word72> pool(4096);
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    for (Word72 &word : pool) {
        word = clean;
        if (rng.bernoulli(0.7))
            word ^= randomPattern(rng, 1 + rng.below(8));
    }
    return pool;
}

/** Every SIMD level this host can execute, Scalar first. */
std::vector<SimdLevel>
executableLevels()
{
    std::vector<SimdLevel> levels;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Neon, SimdLevel::Avx2,
          SimdLevel::Avx512})
        if (simdLevelSupported(level))
            levels.push_back(level);
    return levels;
}

} // namespace

int
main(int argc, char **argv)
try {
    // Strict flag parsing: --simd=LEVEL is the only flag, anything
    // else (including a malformed level) is a usage error.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--simd=";
        if (arg.rfind(prefix, 0) != 0) {
            std::fprintf(stderr,
                         "codec_throughput: unknown argument \"%s\" "
                         "(usage: codec_throughput "
                         "[--simd=scalar|neon|avx2|avx512])\n",
                         arg.c_str());
            return 2;
        }
        const auto level = parseSimdLevel(arg.substr(prefix.size()));
        if (!level) {
            std::fprintf(stderr,
                         "codec_throughput: %s: expected "
                         "--simd=scalar, neon, avx2 or avx512\n",
                         arg.c_str());
            return 2;
        }
        simdForceLevel(*level, arg); // throws if not executable here
    }
    // Captured before the per-level sweep forces other levels, so the
    // provenance block reflects the level the main table ran at.
    const json::Value buildJson = buildInfoJson();

    const std::uint64_t baseOps =
        bench::envScale("XED_CODEC_OPS", 150000);
    const unsigned repeats = static_cast<unsigned>(
        bench::envScale("XED_BENCH_REPEATS", 3));

    std::string outPath = "BENCH_codecs.json";
    if (const char *env = std::getenv("XED_BENCH_OUT"))
        outPath = env;

    std::vector<KernelResult> results;

    // --- GF(2^8) multiply: log/exp with zero branch and % 255 vs. the
    // full 64 KB product table.
    {
        const GF256 &gf = GF256::instance();
        const std::uint64_t ops = baseOps * 200;
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t x = 0x9E3779B97F4A7C15ull, acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                x = x * 6364136223846793005ull + 1442695040888963407ull;
                acc ^= legacy::gfMul(static_cast<std::uint8_t>(x >> 16),
                                     static_cast<std::uint8_t>(x >> 40));
            }
            sink = sink + acc;
        });
        const double afterSec = bestSeconds(repeats, [&] {
            std::uint64_t x = 0x9E3779B97F4A7C15ull, acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                x = x * 6364136223846793005ull + 1442695040888963407ull;
                acc ^= gf.mul(static_cast<std::uint8_t>(x >> 16),
                              static_cast<std::uint8_t>(x >> 40));
            }
            sink = sink + acc;
        });
        results.push_back(
            {"gf256_mul", "gf", ops / beforeSec, ops / afterSec});
    }

    // --- RS decode on the controller shapes: XED-on-Chipkill decodes
    // RS(18,16) per beat (errors or catch-word erasures); the sweep
    // and DDR3-style configs use RS(36,32).
    results.push_back(benchRsDecode("rs1816_decode_1err", 18, 16, 1, 0,
                                    baseOps, repeats));
    results.push_back(benchRsDecode("rs1816_decode_2era", 18, 16, 0, 2,
                                    baseOps, repeats));
    results.push_back(benchRsDecode("rs3632_decode_2err", 36, 32, 2, 0,
                                    baseOps, repeats));

    // --- CRC-8 ATM: byte-at-a-time dependent chain vs. slice-by-8.
    const Crc8Atm crc;
    {
        const std::uint64_t ops = baseOps * 50;
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t x = 0xC4C4C4C4C4C4C4C4ull, acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                x = x * 6364136223846793005ull + 1442695040888963407ull;
                acc ^= legacy::crc8(x);
            }
            sink = sink + acc;
        });
        const double afterSec = bestSeconds(repeats, [&] {
            std::uint64_t x = 0xC4C4C4C4C4C4C4C4ull, acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                x = x * 6364136223846793005ull + 1442695040888963407ull;
                acc ^= crc.crc(x);
            }
            sink = sink + acc;
        });
        results.push_back(
            {"crc8_crc", "crc8", ops / beforeSec, ops / afterSec});
    }
    {
        const auto pool = makeWordPool(crc, 0xC8C8);
        const std::uint64_t ops = baseOps * 50;
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i)
                acc += legacy::crcSyndrome(pool[i & 4095]);
            sink = sink + acc;
        });
        const double afterSec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t i = 0; i < ops; ++i)
                acc += crc.syndrome(pool[i & 4095]);
            sink = sink + acc;
        });
        results.push_back(
            {"crc8_syndrome", "crc8", ops / beforeSec, ops / afterSec});
    }

    // --- Batched detection: the pre-PR shard loop (one virtual
    // isValidCodeword per word) vs. detectMany in the pinned shard
    // geometry (detectBatchWords per call).
    const auto detectManyRate = [&](const Secded7264 &code,
                                    std::span<const Word72> span,
                                    std::uint64_t rounds) {
        const double sec = bestSeconds(repeats, [&] {
            std::uint64_t detected = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (std::size_t at = 0; at < span.size();
                     at += detectBatchWords)
                    detected += code.detectMany(
                        span.subspan(at, detectBatchWords));
            sink = sink + detected;
        });
        return static_cast<double>(rounds * span.size()) / sec;
    };
    const auto benchDetect = [&](const std::string &kernel,
                                 const Secded7264 &code,
                                 const std::vector<Word72> &pool) {
        const std::uint64_t rounds = (baseOps * 50) / pool.size();
        const std::uint64_t ops = rounds * pool.size();
        const std::span<const Word72> span(pool);
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t detected = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (const Word72 &word : span)
                    detected += !code.isValidCodeword(word);
            sink = sink + detected;
        });
        results.push_back({kernel, "detect", ops / beforeSec,
                           detectManyRate(code, span, rounds)});
    };
    const Hamming7264 hamming;
    const auto hammingPool = makeWordPool(hamming, 0x4A11);
    const auto crcPool = makeWordPool(crc, 0xC4C4);
    static_assert(4096 % detectBatchWords == 0,
                  "word pool must hold whole detect batches");
    benchDetect("hamming_detect_batch", hamming, hammingPool);
    benchDetect("crc8_detect_batch", crc, crcPool);

    // --- Transposed RS syndrome / validity (DESIGN.md section 4j):
    // the faulty-path batch kernels at the campaign geometry (512
    // words per call, = ChipkillController::readMany's 64 lines x 8
    // beats). "Before" for the validity kernel is the pre-PR read
    // path, one virtual isValidCodeword per beat; "before" for the
    // syndrome kernel is the same SoA Horner run one word at a time,
    // so the delta is purely what batching the lane buys.
    const auto makeRsBlock = [](const ReedSolomon &rs,
                                std::uint64_t seed, RsWordBlock &block,
                                std::vector<std::uint8_t> &aos) {
        Rng rng(seed);
        block.reset(rs.n(), detectBatchWords);
        aos.assign(rs.n() * detectBatchWords, 0);
        std::vector<std::uint8_t> data(rs.k());
        std::vector<std::uint8_t> word(rs.n());
        for (std::size_t c = 0; c < detectBatchWords; ++c) {
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(data, word);
            // Faulty-path mix: most beats of a flagged block are still
            // clean; roughly 1 in 8 carries an error.
            if (rng.bernoulli(0.125))
                word[rng.below(rs.n())] ^=
                    static_cast<std::uint8_t>(1 + rng.below(255));
            block.push(word);
            for (unsigned i = 0; i < rs.n(); ++i)
                aos[c * rs.n() + i] = word[i];
        }
    };
    const auto rsSoaValidRate = [&](const ReedSolomon &rs,
                                    const RsWordBlock &block,
                                    std::uint64_t rounds) {
        std::vector<std::uint8_t> valid(detectBatchWords);
        const double sec = bestSeconds(repeats, [&] {
            std::uint64_t invalid = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                invalid += rs.isValidCodewordMany(block, valid);
            sink = sink + invalid;
        });
        return static_cast<double>(rounds * detectBatchWords) / sec;
    };
    const auto rsSoaSyndromeRate = [&](const ReedSolomon &rs,
                                       const RsWordBlock &block,
                                       std::uint64_t rounds) {
        std::vector<std::uint8_t> syn(rs.numCheck() * detectBatchWords);
        const double sec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t r = 0; r < rounds; ++r) {
                rs.syndromesManySoa(block, syn);
                acc ^= syn[0];
            }
            sink = sink + acc;
        });
        return static_cast<double>(rounds * detectBatchWords) / sec;
    };
    const auto benchRsBatch = [&](const std::string &shape,
                                  const ReedSolomon &rs,
                                  const RsWordBlock &block,
                                  const std::vector<std::uint8_t> &aos) {
        const std::uint64_t rounds =
            std::max<std::uint64_t>(1, (baseOps * 8) / detectBatchWords);
        const std::uint64_t ops = rounds * detectBatchWords;
        const double validBeforeSec = bestSeconds(repeats, [&] {
            std::uint64_t invalid = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (std::size_t c = 0; c < detectBatchWords; ++c)
                    invalid += !rs.isValidCodeword(
                        std::span<const std::uint8_t>(
                            aos.data() + c * rs.n(), rs.n()));
            sink = sink + invalid;
        });
        results.push_back({shape + "_valid_batch", "rs_syndrome",
                           ops / validBeforeSec,
                           rsSoaValidRate(rs, block, rounds)});
        // One-word SoA columns for the per-word syndrome baseline.
        std::vector<std::uint8_t> one(rs.n());
        std::vector<std::uint8_t> oneSyn(rs.numCheck());
        const double synBeforeSec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (std::size_t c = 0; c < detectBatchWords; ++c) {
                    for (unsigned i = 0; i < rs.n(); ++i)
                        one[i] = aos[c * rs.n() + i];
                    rs.syndromesManySoa(one, 1, oneSyn);
                    acc ^= oneSyn[0];
                }
            sink = sink + acc;
        });
        results.push_back({shape + "_syndrome_batch", "rs_syndrome",
                           ops / synBeforeSec,
                           rsSoaSyndromeRate(rs, block, rounds)});
    };
    const ReedSolomon rs1816(18, 16);
    const ReedSolomon rs3632(36, 32);
    RsWordBlock rsBlock1816, rsBlock3632;
    std::vector<std::uint8_t> rsAos1816, rsAos3632;
    makeRsBlock(rs1816, 0x5A1816, rsBlock1816, rsAos1816);
    makeRsBlock(rs3632, 0x5A3632, rsBlock3632, rsAos3632);
    benchRsBatch("rs1816", rs1816, rsBlock1816, rsAos1816);
    benchRsBatch("rs3632", rs3632, rsBlock3632, rsAos3632);

    // --- Batched catch-word screening: the XED controllers' on-die
    // syndrome pass over transposed (72,64) byte planes vs. the
    // per-word scalar syndrome the readLine() loop pays. Planes are
    // staged once (the controllers gather while reading the chips), so
    // the timed region is exactly the screening kernel.
    const auto makePlanes = [](const std::vector<Word72> &pool) {
        std::vector<std::uint8_t> planes(9 * pool.size());
        for (std::size_t c = 0; c < pool.size(); ++c) {
            std::uint64_t lo = pool[c].lo;
            for (unsigned b = 0; b < 8; ++b) {
                planes[b * pool.size() + c] =
                    static_cast<std::uint8_t>(lo & 0xFF);
                lo >>= 8;
            }
            planes[8 * pool.size() + c] = pool[c].hi;
        }
        return planes;
    };
    const auto catchWordSoaRate = [&](const Secded7264 &code,
                                      const std::vector<std::uint8_t>
                                          &planes,
                                      std::size_t stride,
                                      std::uint64_t rounds) {
        std::vector<std::uint8_t> out(detectBatchWords);
        const double sec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (std::size_t at = 0; at < stride;
                     at += detectBatchWords) {
                    code.syndromeManySoa(planes.data() + at, stride,
                                         detectBatchWords, out.data());
                    acc ^= out[0];
                }
            sink = sink + acc;
        });
        return static_cast<double>(rounds * stride) / sec;
    };
    const auto crcPlanes = makePlanes(crcPool);
    {
        const std::uint64_t rounds = (baseOps * 50) / crcPool.size();
        const std::uint64_t ops = rounds * crcPool.size();
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (const Word72 &word : crcPool)
                    acc += crc.syndrome(word);
            sink = sink + acc;
        });
        results.push_back({"crc8_catchword_batch", "catch_word",
                           ops / beforeSec,
                           catchWordSoaRate(crc, crcPlanes,
                                            crcPool.size(), rounds)});
    }
    const auto hammingPlanes = makePlanes(hammingPool);
    {
        const std::uint64_t rounds = (baseOps * 50) / hammingPool.size();
        const std::uint64_t ops = rounds * hammingPool.size();
        const double beforeSec = bestSeconds(repeats, [&] {
            std::uint64_t acc = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (const Word72 &word : hammingPool)
                    acc += !hamming.isValidCodeword(word);
            sink = sink + acc;
        });
        results.push_back({"hamming_catchword_batch", "catch_word",
                           ops / beforeSec,
                           catchWordSoaRate(hamming, hammingPlanes,
                                            hammingPool.size(),
                                            rounds)});
    }

    // --- Per-dispatch-level detect rates: the same pinned-geometry
    // loop forced to every level this host can execute, so one report
    // shows what each kernel generation is worth on this machine.
    struct LevelRate
    {
        SimdLevel level;
        double hammingRate;
        double crcRate;
        double rsSynRate;
        double catchWordRate;
    };
    std::vector<LevelRate> levelRates;
    {
        const SimdLevel resolved = simdLevel();
        const std::uint64_t rounds = (baseOps * 50) / 4096;
        const std::uint64_t rsRounds =
            std::max<std::uint64_t>(1, (baseOps * 8) / detectBatchWords);
        for (const SimdLevel level : executableLevels()) {
            simdForceLevel(level, "--simd sweep");
            levelRates.push_back(
                {level,
                 detectManyRate(hamming, hammingPool, rounds),
                 detectManyRate(crc, crcPool, rounds),
                 rsSoaSyndromeRate(rs1816, rsBlock1816, rsRounds),
                 catchWordSoaRate(crc, crcPlanes, crcPool.size(),
                                  rounds)});
        }
        simdForceLevel(resolved, "--simd sweep");
    }

    // --- Report.
    std::printf("Codec kernel throughput (base %llu ops, best of %u)\n",
                static_cast<unsigned long long>(baseOps), repeats);
    std::printf("%-22s %14s %14s %9s\n", "kernel", "before ops/s",
                "after ops/s", "speedup");
    auto jsonResults = json::Value::array();
    for (const KernelResult &r : results) {
        std::printf("%-22s %14.4g %14.4g %8.2fx\n", r.kernel.c_str(),
                    r.beforeRate, r.afterRate, r.speedup());
        auto entry = json::Value::object();
        entry.set("kernel", r.kernel);
        entry.set("group", r.group);
        entry.set("before_ops_per_sec", r.beforeRate);
        entry.set("after_ops_per_sec", r.afterRate);
        entry.set("speedup", r.speedup());
        jsonResults.push(std::move(entry));
    }

    const auto geomean = [&](const std::string &group) {
        double logSum = 0;
        unsigned count = 0;
        for (const KernelResult &r : results) {
            if (group.empty() || r.group == group) {
                logSum += std::log(r.speedup());
                ++count;
            }
        }
        return std::exp(logSum / count);
    };
    const double rsGeomean = geomean("rs_decode");
    const double crcGeomean = geomean("crc8");
    const double rsSynGeomean = geomean("rs_syndrome");
    const double catchWordGeomean = geomean("catch_word");
    const double overallGeomean = geomean("");
    std::printf("geomean speedup: rs_decode %.2fx, crc8 %.2fx, "
                "rs_syndrome %.2fx, catch_word %.2fx, overall %.2fx\n",
                rsGeomean, crcGeomean, rsSynGeomean, catchWordGeomean,
                overallGeomean);

    std::printf("batch words/s by SIMD level (%zu-word batches):\n",
                detectBatchWords);
    auto jsonLevels = json::Value::array();
    for (const LevelRate &lr : levelRates) {
        std::printf("  %-8s hamming %12.4g  crc8 %12.4g  rs_syn %12.4g"
                    "  catchword %12.4g\n",
                    simdLevelName(lr.level), lr.hammingRate, lr.crcRate,
                    lr.rsSynRate, lr.catchWordRate);
        auto entry = json::Value::object();
        entry.set("level", simdLevelName(lr.level));
        entry.set("hamming_detect_batch_ops_per_sec", lr.hammingRate);
        entry.set("crc8_detect_batch_ops_per_sec", lr.crcRate);
        entry.set("rs1816_syndrome_soa_ops_per_sec", lr.rsSynRate);
        entry.set("crc8_catchword_soa_ops_per_sec", lr.catchWordRate);
        jsonLevels.push(std::move(entry));
    }

    if (!outPath.empty()) {
        auto doc = json::Value::object();
        doc.set("bench", "codec_throughput");
        doc.set("base_ops", baseOps);
        doc.set("repeats", repeats);
        doc.set("detect_batch_words", detectBatchWords);
        doc.set("build", buildJson);
        doc.set("results", std::move(jsonResults));
        doc.set("simd_levels", std::move(jsonLevels));
        auto geo = json::Value::object();
        geo.set("rs_decode", rsGeomean);
        geo.set("crc8", crcGeomean);
        geo.set("rs_syndrome", rsSynGeomean);
        geo.set("catch_word", catchWordGeomean);
        geo.set("overall", overallGeomean);
        doc.set("geomean_speedup", std::move(geo));
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "codec_throughput: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        out << json::dump(doc) << "\n";
        std::printf("-> %s\n", outPath.c_str());
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "codec_throughput: %s\n", e.what());
    return 1;
}
