/**
 * Figure 14: execution time of LOT-ECC (with write coalescing) relative
 * to XED, per suite. LOT-ECC's second-tier ECC updates add write
 * traffic; the paper reports a 6.6% average slowdown.
 */

#include <cmath>
#include <iostream>
#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "perfsim/system.hh"

using namespace xed;
using namespace xed::perfsim;

int
main()
{
    PerfConfig cfg;
    cfg.memOpsPerCore = bench::perfOps();

    std::map<Suite, std::pair<double, int>> bySuite;
    double totalLog = 0;
    int total = 0;
    for (const auto &w : paperWorkloads()) {
        const auto xed = simulate(w, ProtectionMode::Xed, cfg);
        const auto lot = simulate(w, ProtectionMode::LotEcc, cfg);
        const double norm = static_cast<double>(lot.cycles) /
                            static_cast<double>(xed.cycles);
        bySuite[w.suite].first += std::log(norm);
        bySuite[w.suite].second += 1;
        totalLog += std::log(norm);
        ++total;
    }

    Table table({"Suite", "LOT-ECC / XED execution time"});
    for (const auto &[suite, acc] : bySuite)
        table.addRow({suiteName(suite),
                      Table::fmt(std::exp(acc.first / acc.second), 3)});
    table.addRow({"GMEAN", Table::fmt(std::exp(totalLog / total), 3)});
    table.print(std::cout,
                "Figure 14: LOT-ECC (write-coalescing) vs XED "
                "(normalized execution time)");
    std::cout << "\nPaper: LOT-ECC is 6.6% slower than XED on average "
                 "due to the extra ECC-update writes.\n";
    return 0;
}
