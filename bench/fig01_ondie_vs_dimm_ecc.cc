/**
 * Figure 1: effectiveness of reliability solutions in the presence of
 * On-Die ECC. Shows that the 9-chip SECDED ECC-DIMM provides almost no
 * benefit over an 8-chip non-ECC DIMM once chips carry on-die ECC,
 * while Chipkill is ~43x more reliable than the ECC-DIMM.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg = bench::mcConfig(0xF161);

    const OnDieOptions onDie;          // on-die ECC present
    OnDieOptions noOnDie;
    noOnDie.present = false;

    struct Line
    {
        const char *label;
        SchemeKind kind;
        OnDieOptions options;
    };
    const Line lines[] = {
        {"Non-ECC DIMM (8 chips) + On-Die ECC", SchemeKind::NonEcc,
         onDie},
        {"ECC-DIMM SECDED (9 chips) + On-Die ECC", SchemeKind::Secded,
         onDie},
        {"ECC-DIMM SECDED (9 chips), no On-Die ECC", SchemeKind::Secded,
         noOnDie},
        {"Chipkill (18 chips) + On-Die ECC", SchemeKind::Chipkill,
         onDie},
    };

    Table table({"Scheme", "Y1", "Y2", "Y3", "Y4", "Y5", "Y6",
                 "Y7 P(fail)"});
    double secdedOnDie = 0, nonEcc = 0, chipkill = 0;
    for (const auto &line : lines) {
        const auto scheme = makeScheme(line.kind, line.options);
        const auto result = runMonteCarlo(*scheme, cfg);
        std::vector<std::string> row{line.label};
        for (unsigned y = 1; y <= 7; ++y)
            row.push_back(Table::sci(result.failByYear[y].value(), 2));
        table.addRow(row);
        if (line.kind == SchemeKind::NonEcc)
            nonEcc = result.probFailure();
        else if (line.kind == SchemeKind::Secded && line.options.present)
            secdedOnDie = result.probFailure();
        else if (line.kind == SchemeKind::Chipkill)
            chipkill = result.probFailure();
    }

    table.print(std::cout,
                "Figure 1: probability of system failure over 7 years "
                "(" + std::to_string(cfg.systems) + " systems/scheme)");
    std::cout << "\nECC-DIMM / Non-ECC (both with On-Die ECC): "
              << Table::fmt(secdedOnDie / nonEcc, 2)
              << "x  (paper: ~1x -- the 9th chip adds nothing)\n";
    std::cout << "ECC-DIMM / Chipkill: "
              << Table::fmt(secdedOnDie / chipkill, 1)
              << "x  (paper: 43x)\n";
    return 0;
}
