/**
 * Figure 6: probability of a catch-word/data collision over time.
 *
 * Prints three models: the paper's effective parameterization (mean
 * 3.2M years for x8), the x4 variant (mean 6.6 hours, Section IX-A),
 * and the literal write-every-4ns reading (mean ~2,339 years) -- the
 * deviation documented in EXPERIMENTS.md. A scaled-down Monte-Carlo
 * (16-bit catch-word) validates the exponential model.
 */

#include <iostream>

#include "analysis/collision.hh"
#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::analysis;

int
main()
{
    const auto paperX8 = paperX8Model();
    const auto raw = raw4nsX8Model();

    Table table({"Years", "P(collision) paper-x8", "P(collision) raw-4ns"});
    for (const double years :
         {1e3, 1e4, 1e5, 1e6, 3.2e6, 1e7, 1e8}) {
        table.addRow({Table::sci(years, 1),
                      Table::sci(paperX8.probCollisionWithinYears(years), 3),
                      Table::sci(raw.probCollisionWithinYears(years), 3)});
    }
    table.print(std::cout, "Figure 6: catch-word collision probability "
                           "over time (x8 devices, 64-bit catch-word)");

    std::cout << "\nMean time to collision:\n"
              << "  paper-effective x8 (5.48us/write): "
              << Table::sci(paperX8.meanYearsToCollision(), 3)
              << " years (paper: 3.2e6 years)\n"
              << "  x4 devices, 32-bit catch-word:     "
              << Table::fmt(paperX4Model().meanSecondsToCollision() /
                                3600.0,
                            2)
              << " hours (paper: 6.6 hours)\n"
              << "  literal 4ns writes:                "
              << Table::fmt(raw.meanYearsToCollision(), 0)
              << " years (see EXPERIMENTS.md)\n";

    // Monte-Carlo validation with a 16-bit catch-word so collisions are
    // observable: the empirical mean writes-to-collision must be 2^16.
    Rng rng(0xC0117);
    const std::uint64_t trials = bench::envScale("XED_TRIALS", 4000);
    const std::uint64_t catchWord = rng.next() & 0xFFFF;
    double sum = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
        std::uint64_t writes = 1;
        while ((rng.next() & 0xFFFF) != catchWord)
            ++writes;
        sum += static_cast<double>(writes);
    }
    std::cout << "\nScaled-down Monte-Carlo (16-bit catch-word, "
              << trials << " trials): mean writes to collision = "
              << Table::fmt(sum / static_cast<double>(trials), 0)
              << " (model: 65536)\n";
    return 0;
}
