/**
 * Figure 9: reliability of Single-Chipkill, Double-Chipkill and
 * XED-on-Single-Chipkill (x4 devices, no scaling faults). XED on
 * Chipkill hardware reaches beyond Double-Chipkill reliability because
 * its codeword group spans 18 chips instead of 36 (the paper reports
 * 8.5x).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    // The strong schemes fail at the 1e-5..1e-6 scale; default to more
    // systems than the other reliability benches.
    McConfig cfg = bench::mcConfig(0xF169, 4000000);

    const OnDieOptions onDie;
    // The commodity-x8 lockstep family (see scheme.hh): groups are
    // built from lockstepped 9-chip ranks, so multi-rank faults land
    // inside the codeword -- the configuration that reproduces the
    // paper's DCK-vs-SCK and XED+CK-vs-DCK ratios.
    const SchemeKind kinds[] = {SchemeKind::ChipkillX8Lockstep,
                                SchemeKind::DoubleChipkillLockstep,
                                SchemeKind::XedChipkillLockstep};
    Table table({"Scheme", "Y3", "Y5", "Y7 P(fail)", "failures"});
    double single = 0, dbl = 0, xedCk = 0;
    for (const auto kind : kinds) {
        const auto scheme = makeScheme(kind, onDie);
        const auto result = runMonteCarlo(*scheme, cfg);
        table.addRow({scheme->name(),
                      Table::sci(result.failByYear[3].value(), 2),
                      Table::sci(result.failByYear[5].value(), 2),
                      Table::sci(result.failByYear[7].value(), 2),
                      std::to_string(result.failByYear[7].successes())});
        switch (kind) {
          case SchemeKind::ChipkillX8Lockstep:
              single = result.probFailure();
              break;
          case SchemeKind::DoubleChipkillLockstep:
              dbl = result.probFailure();
              break;
          default: xedCk = result.probFailure(); break;
        }
    }
    table.print(std::cout,
                "Figure 9: Single-Chipkill vs Double-Chipkill vs "
                "XED+Chipkill (" + std::to_string(cfg.systems) +
                " systems/scheme)");
    std::cout << "\nDouble-Chipkill vs Single-Chipkill: "
              << Table::fmt(dbl > 0 ? single / dbl : 0, 1)
              << "x   (paper: ~10x)\n"
              << "XED+Chipkill vs Double-Chipkill:    "
              << Table::fmt(xedCk > 0 ? dbl / xedCk : 0, 1)
              << "x   (paper: 8.5x)\n";
    return 0;
}
