/**
 * Ablation: catch-word width vs collision interval. The paper uses the
 * full transfer width (64 bits for x8, 32 for x4, Section IX-A); this
 * sweep shows how quickly the collision interval collapses for
 * narrower devices and why the re-randomization protocol (Section
 * V-D3) matters for x4.
 */

#include <iostream>

#include "analysis/collision.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::analysis;

int
main()
{
    Table table({"Catch-word bits", "Mean time to collision",
                 "P(collision in 7y)"});
    for (const unsigned bits : {16u, 24u, 32u, 40u, 48u, 56u, 64u}) {
        CollisionModel m;
        m.catchWordBits = bits;
        m.writeIntervalSeconds = paperEffectiveWriteIntervalSeconds;
        const double years = m.meanYearsToCollision();
        std::string mean;
        if (years >= 1.0) {
            mean = Table::sci(years, 2) + " years";
        } else if (years * 365.25 >= 1.0) {
            mean = Table::fmt(years * 365.25, 1) + " days";
        } else {
            mean = Table::fmt(years * 365.25 * 24.0, 2) + " hours";
        }
        table.addRow({std::to_string(bits), mean,
                      Table::sci(m.probCollisionWithinYears(7.0), 2)});
    }
    table.print(std::cout,
                "Ablation: catch-word width vs collision interval "
                "(paper-effective write cadence)");
    std::cout << "\nAt 64 bits a collision is a once-per-millions-of-"
                 "years event; at 32 bits (x4 devices) it happens every "
                 "few hours -- still harmless, because XED detects the "
                 "collision and re-randomizes the catch-word in a few "
                 "hundred nanoseconds (Section IX-A).\n";
    return 0;
}
