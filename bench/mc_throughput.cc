/**
 * @file
 * Monte-Carlo sampling-kernel throughput on the fig07-shaped workload
 * (SECDED / XED / Chipkill, seed 61799): systems simulated per second,
 * serial and threaded, written as BENCH_mc_throughput.json.
 *
 * Knobs (see bench_util.hh): XED_MC_SYSTEMS scales the measured run
 * (default 1M), XED_MC_SEED / XED_MC_SAMPLER / XED_MC_THREADS select
 * the workload variant, XED_BENCH_REPEATS (default 3) controls the
 * best-of repetition count, and XED_BENCH_OUT overrides the JSON
 * output path (empty string suppresses the file, e.g. for the
 * perf-smoke ctest label).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/build_info.hh"
#include "common/json.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &t0,
        const std::chrono::steady_clock::time_point &t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-@p repeats wall time of one full runMonteCarlo call. */
double
bestSeconds(const Scheme &scheme, const McConfig &cfg, unsigned repeats)
{
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        runMonteCarlo(scheme, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, seconds(t0, t1));
    }
    return best;
}

} // namespace

int
main()
try {
    const std::uint64_t systems = bench::mcSystems(1000000);
    McConfig cfg = bench::mcConfig(61799, systems);
    cfg.systems = systems;

    unsigned repeats = static_cast<unsigned>(
        bench::envScale("XED_BENCH_REPEATS", 3));

    std::string outPath = "BENCH_mc_throughput.json";
    if (const char *env = std::getenv("XED_BENCH_OUT"))
        outPath = env;

    const SchemeKind kinds[] = {SchemeKind::Secded, SchemeKind::Xed,
                                SchemeKind::Chipkill};

    std::printf("Monte-Carlo sampling-kernel throughput "
                "(fig07 workload, %llu systems, seed %llu, %s)\n",
                static_cast<unsigned long long>(cfg.systems),
                static_cast<unsigned long long>(cfg.seed),
                poissonSamplerName(cfg.sampler));
    std::printf("%-12s %14s %14s %12s\n", "scheme", "serial sys/s",
                "threaded sys/s", "threads");

    auto results = json::Value::array();
    for (const SchemeKind kind : kinds) {
        const auto scheme = makeScheme(kind, OnDieOptions{});

        // Warm up allocators, page in the binary, settle the clock.
        {
            McConfig warm = cfg;
            warm.systems = std::min<std::uint64_t>(cfg.systems, 20000);
            warm.threads = 1;
            runMonteCarlo(*scheme, warm);
        }

        McConfig serialCfg = cfg;
        serialCfg.threads = 1;
        const double serialSec =
            bestSeconds(*scheme, serialCfg, repeats);

        const unsigned threads = bench::mcThreads();
        McConfig threadedCfg = cfg;
        threadedCfg.threads = threads;
        const double threadedSec =
            threads == 1 ? serialSec
                         : bestSeconds(*scheme, threadedCfg, repeats);

        const double serialRate = cfg.systems / serialSec;
        const double threadedRate = cfg.systems / threadedSec;
        std::printf("%-12s %14.4g %14.4g %12u\n", schemeKindName(kind),
                    serialRate, threadedRate, threads);

        auto entry = json::Value::object();
        entry.set("scheme", schemeKindName(kind));
        entry.set("serial_systems_per_sec", serialRate);
        entry.set("threaded_systems_per_sec", threadedRate);
        entry.set("threads", threads);
        results.push(std::move(entry));
    }

    if (!outPath.empty()) {
        auto doc = json::Value::object();
        doc.set("bench", "mc_throughput");
        doc.set("workload", "fig07");
        doc.set("systems", cfg.systems);
        doc.set("seed", cfg.seed);
        doc.set("sampler", poissonSamplerName(cfg.sampler));
        doc.set("repeats", repeats);
        doc.set("build", buildInfoJson());
        doc.set("results", std::move(results));
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "mc_throughput: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        out << json::dump(doc) << "\n";
        std::printf("-> %s\n", outPath.c_str());
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "mc_throughput: %s\n", e.what());
    return 1;
}
