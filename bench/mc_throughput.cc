/**
 * @file
 * Monte-Carlo sampling-kernel throughput on the fig07-shaped workload
 * (SECDED / XED / Chipkill, seed 61799): systems simulated per second,
 * serial and threaded, written as BENCH_mc_throughput.json.
 *
 * Knobs (see bench_util.hh): XED_MC_SYSTEMS scales the measured run
 * (default 1M), XED_MC_SEED / XED_MC_SAMPLER / XED_MC_THREADS select
 * the workload variant, XED_BENCH_REPEATS (default 3) controls the
 * best-of repetition count, and XED_BENCH_OUT overrides the JSON
 * output path (empty string suppresses the file, e.g. for the
 * perf-smoke ctest label).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/build_info.hh"
#include "common/json.hh"
#include "common/simd.hh"
#include "faultsim/engine.hh"
#include "xed/controller.hh"

using namespace xed;
using namespace xed::faultsim;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &t0,
        const std::chrono::steady_clock::time_point &t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-@p repeats wall time of one full runMonteCarlo call. */
double
bestSeconds(const Scheme &scheme, const McConfig &cfg, unsigned repeats)
{
    double best = 1e300;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        runMonteCarlo(scheme, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, seconds(t0, t1));
    }
    return best;
}

} // namespace

int
main()
try {
    const std::uint64_t systems = bench::mcSystems(1000000);
    McConfig cfg = bench::mcConfig(61799, systems);
    cfg.systems = systems;

    unsigned repeats = static_cast<unsigned>(
        bench::envScale("XED_BENCH_REPEATS", 3));

    std::string outPath = "BENCH_mc_throughput.json";
    if (const char *env = std::getenv("XED_BENCH_OUT"))
        outPath = env;

    const SchemeKind kinds[] = {SchemeKind::Secded, SchemeKind::Xed,
                                SchemeKind::Chipkill};

    std::printf("Monte-Carlo sampling-kernel throughput "
                "(fig07 workload, %llu systems, seed %llu, %s)\n",
                static_cast<unsigned long long>(cfg.systems),
                static_cast<unsigned long long>(cfg.seed),
                poissonSamplerName(cfg.sampler));
    std::printf("%-12s %14s %14s %12s\n", "scheme", "serial sys/s",
                "threaded sys/s", "threads");

    auto results = json::Value::array();
    for (const SchemeKind kind : kinds) {
        const auto scheme = makeScheme(kind, OnDieOptions{});

        // Warm up allocators, page in the binary, settle the clock.
        {
            McConfig warm = cfg;
            warm.systems = std::min<std::uint64_t>(cfg.systems, 20000);
            warm.threads = 1;
            runMonteCarlo(*scheme, warm);
        }

        McConfig serialCfg = cfg;
        serialCfg.threads = 1;
        const double serialSec =
            bestSeconds(*scheme, serialCfg, repeats);

        const unsigned threads = bench::mcThreads();
        McConfig threadedCfg = cfg;
        threadedCfg.threads = threads;
        const double threadedSec =
            threads == 1 ? serialSec
                         : bestSeconds(*scheme, threadedCfg, repeats);

        const double serialRate = cfg.systems / serialSec;
        const double threadedRate = cfg.systems / threadedSec;
        std::printf("%-12s %14.4g %14.4g %12u\n", schemeKindName(kind),
                    serialRate, threadedRate, threads);

        auto entry = json::Value::object();
        entry.set("scheme", schemeKindName(kind));
        entry.set("serial_systems_per_sec", serialRate);
        entry.set("threaded_systems_per_sec", threadedRate);
        entry.set("threads", threads);
        results.push(std::move(entry));
    }

    // --- Table II read-path workload: stream cache-line reads through
    // the XED controller on its table2 configuration (CRC-8 ATM
    // on-die code) with one permanent single-bit fault injected, so a
    // small fraction of lines takes the scalar fallback the way real
    // faulty campaigns do. "Before" is the per-line readLine() loop;
    // "after" is readMany() over the same addresses -- results and
    // counters are byte-identical (pinned by the equivalence tests),
    // so the delta is pure read-path throughput from the batched
    // catch-word screen (DESIGN.md section 4j).
    auto readPathJson = json::Value::object();
    {
        const std::uint64_t trials =
            bench::envScale("XED_TRIALS", 200000);
        xed::XedControllerConfig ctrlCfg;
        xed::XedController ctrl(ctrlCfg);
        dram::Fault fault;
        fault.granularity = dram::FaultGranularity::SingleBit;
        fault.permanent = true;
        fault.addr = {0, 3, 17};
        fault.bitPos = 5;
        ctrl.chip(2).faults().add(fault);

        constexpr unsigned rows = 16;
        constexpr unsigned cols = 128;
        std::vector<dram::WordAddr> addrs;
        addrs.reserve(static_cast<std::size_t>(rows) * cols);
        for (unsigned row = 0; row < rows; ++row)
            for (unsigned col = 0; col < cols; ++col)
                addrs.push_back({0, row, col});
        std::vector<xed::LineReadResult> lineResults(addrs.size());
        const std::uint64_t rounds = std::max<std::uint64_t>(
            1, trials / addrs.size());
        const std::uint64_t lines = rounds * addrs.size();

        const auto timeLines = [&](auto &&body) {
            body(); // warm up
            double best = 1e300;
            for (unsigned r = 0; r < repeats; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                body();
                const auto t1 = std::chrono::steady_clock::now();
                best = std::min(best, seconds(t0, t1));
            }
            return best;
        };
        volatile std::uint64_t sink = 0;
        const double beforeSec = timeLines([&] {
            std::uint64_t clean = 0;
            for (std::uint64_t r = 0; r < rounds; ++r)
                for (std::size_t i = 0; i < addrs.size(); ++i)
                    clean += ctrl.readLine(addrs[i]).outcome ==
                             xed::ReadOutcome::Clean;
            sink = sink + clean;
        });
        const double afterSec = timeLines([&] {
            std::uint64_t clean = 0;
            for (std::uint64_t r = 0; r < rounds; ++r) {
                ctrl.readMany(addrs, lineResults);
                for (const auto &result : lineResults)
                    clean += result.outcome == xed::ReadOutcome::Clean;
            }
            sink = sink + clean;
        });
        const double beforeRate = lines / beforeSec;
        const double afterRate = lines / afterSec;
        std::printf("table2 read path (%zu lines/round, %llu rounds, "
                    "simd %s): readLine %.4g lines/s, readMany %.4g "
                    "lines/s, %.2fx\n",
                    addrs.size(),
                    static_cast<unsigned long long>(rounds),
                    simdLevelName(simdLevel()), beforeRate, afterRate,
                    afterRate / beforeRate);
        readPathJson.set("workload", "table2_read_path");
        readPathJson.set("lines_per_round",
                         static_cast<std::uint64_t>(addrs.size()));
        readPathJson.set("rounds", rounds);
        readPathJson.set("simd_level", simdLevelName(simdLevel()));
        readPathJson.set("readline_lines_per_sec", beforeRate);
        readPathJson.set("readmany_lines_per_sec", afterRate);
        readPathJson.set("speedup", afterRate / beforeRate);
    }

    if (!outPath.empty()) {
        auto doc = json::Value::object();
        doc.set("bench", "mc_throughput");
        doc.set("workload", "fig07");
        doc.set("table2_read_path", std::move(readPathJson));
        doc.set("systems", cfg.systems);
        doc.set("seed", cfg.seed);
        doc.set("sampler", poissonSamplerName(cfg.sampler));
        doc.set("repeats", repeats);
        doc.set("build", buildInfoJson());
        doc.set("results", std::move(results));
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "mc_throughput: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        out << json::dump(doc) << "\n";
        std::printf("-> %s\n", outPath.c_str());
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "mc_throughput: %s\n", e.what());
    return 1;
}
