/**
 * Figure 7: reliability of ECC-DIMM (SECDED), XED and Chipkill, all
 * with On-Die ECC and no scaling faults. The paper's headline result:
 * XED is 172x more reliable than the ECC-DIMM and 4x more reliable
 * than Chipkill.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg;
    cfg.systems = bench::mcSystems();
    cfg.seed = 0xF167;

    const OnDieOptions onDie;
    const SchemeKind kinds[] = {SchemeKind::Secded, SchemeKind::Xed,
                                SchemeKind::Chipkill};

    Table table({"Scheme", "Y1", "Y2", "Y3", "Y4", "Y5", "Y6",
                 "Y7 P(fail)", "95% CI half-width"});
    double secded = 0, xed = 0, chipkill = 0;
    for (const auto kind : kinds) {
        const auto scheme = makeScheme(kind, onDie);
        const auto result = runMonteCarlo(*scheme, cfg);
        std::vector<std::string> row{scheme->name()};
        for (unsigned y = 1; y <= 7; ++y)
            row.push_back(Table::sci(result.failByYear[y].value(), 2));
        row.push_back(Table::sci(result.failByYear[7].halfWidth95(), 1));
        table.addRow(row);
        switch (kind) {
          case SchemeKind::Secded: secded = result.probFailure(); break;
          case SchemeKind::Xed: xed = result.probFailure(); break;
          default: chipkill = result.probFailure(); break;
        }
    }
    table.print(std::cout,
                "Figure 7: probability of system failure over 7 years "
                "(" + std::to_string(cfg.systems) + " systems/scheme)");
    std::cout << "\nXED vs ECC-DIMM:      "
              << Table::fmt(secded / xed, 0) << "x   (paper: 172x)\n"
              << "Chipkill vs ECC-DIMM: "
              << Table::fmt(secded / chipkill, 0) << "x   (paper: 43x)\n"
              << "XED vs Chipkill:      "
              << Table::fmt(chipkill / xed, 1) << "x  (paper: 4x)\n";
    return 0;
}
