/**
 * Figure 7: reliability of ECC-DIMM (SECDED), XED and Chipkill, all
 * with On-Die ECC and no scaling faults. The paper's headline result:
 * XED is 172x more reliable than the ECC-DIMM and 4x more reliable
 * than Chipkill.
 *
 * This bench is a thin wrapper over the campaign runner: the whole
 * experiment lives in specs/fig07.json, and the shard plan reproduces
 * the original hand-coded loop bit for bit (same seed, same
 * per-system RNG streams).
 */

#include <iostream>

#include "common/table.hh"
#include "campaign/runner.hh"

using namespace xed;
using namespace xed::campaign;

int
main()
{
    std::string error;
    auto spec = loadSpecFile(XED_SPEC_DIR "/fig07.json", &error);
    if (!spec) {
        std::cerr << "fig07: " << error << "\n";
        return 1;
    }
    applyEnvOverrides(*spec);

    const auto outcome = runCampaign(*spec, RunOptions{});
    if (!outcome.ok) {
        std::cerr << "fig07: " << outcome.error << "\n";
        return 1;
    }

    Table table({"Scheme", "Y1", "Y2", "Y3", "Y4", "Y5", "Y6",
                 "Y7 P(fail)", "95% CI half-width"});
    double secded = 0, xed = 0, chipkill = 0;
    for (unsigned i = 0; i < outcome.cells.size(); ++i) {
        const auto &cell = outcome.cells[i];
        const auto &result = cell.result.mc;
        const auto scheme =
            faultsim::makeScheme(spec->schemes[i], spec->onDie);
        std::vector<std::string> row{scheme->name()};
        for (unsigned y = 1; y <= 7; ++y)
            row.push_back(Table::sci(result.failByYear[y].value(), 2));
        row.push_back(Table::sci(result.failByYear[7].halfWidth95(), 1));
        table.addRow(row);
        if (cell.label == "secded")
            secded = result.probFailure();
        else if (cell.label == "xed")
            xed = result.probFailure();
        else
            chipkill = result.probFailure();
    }
    table.print(std::cout,
                "Figure 7: probability of system failure over 7 years "
                "(" + std::to_string(spec->systems) + " systems/scheme)");
    std::cout << "\nXED vs ECC-DIMM:      "
              << Table::fmt(secded / xed, 0) << "x   (paper: 172x)\n"
              << "Chipkill vs ECC-DIMM: "
              << Table::fmt(secded / chipkill, 0) << "x   (paper: 43x)\n"
              << "XED vs Chipkill:      "
              << Table::fmt(chipkill / xed, 1) << "x  (paper: 4x)\n";
    return 0;
}
