/**
 * Table IV: SDC and DUE rates of XED -- the closed-form vulnerability
 * model next to a Monte-Carlo cross-check of the dominant (multi-chip
 * data loss) term.
 */

#include <iostream>

#include "analysis/sdc_due.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::analysis;

int
main()
{
    XedVulnerabilityModel model;

    Table table({"Source of Vulnerability", "Rate over 7 years",
                 "Paper"});
    table.addRow({"XED: scaling-related faults", "no SDC or DUE",
                  "no SDC or DUE"});
    table.addRow({"XED: row/column/bank failure (SDC)",
                  Table::sci(model.sdcRatePerRank(), 1), "1.4e-13"});
    table.addRow({"XED: word failure (DUE, per rank)",
                  Table::sci(model.dueRatePerRank(), 1), "6.1e-6"});
    table.addRow({"Data loss from multi-chip failures",
                  Table::sci(model.multiChipDataLossProb(), 1),
                  "5.8e-4"});
    table.print(std::cout, "Table IV: SDC and DUE rates of XED "
                           "(closed form)");

    std::cout << "\nSupporting quantities:\n"
              << "  P(transient word fault, 9 chips, 7y) = "
              << Table::sci(model.transientWordFaultProbPerRank(), 2)
              << "  (paper: 7.7e-4)\n"
              << "  P(inter-line misdiagnosis per row)   = "
              << Table::sci(model.misdiagnosisProbPerRow(), 2)
              << "  (paper: ~1e-12)\n";

    // Monte-Carlo cross-check of the dominant term.
    faultsim::McConfig cfg = bench::mcConfig(0x7AB4);
    const auto scheme = faultsim::makeScheme(faultsim::SchemeKind::Xed,
                                             {});
    const auto mc = faultsim::runMonteCarlo(*scheme, cfg);
    const double dataLoss =
        static_cast<double>(
            mc.failureTypes.get("multi-chip-data-loss")) /
        static_cast<double>(cfg.systems);
    const double due =
        static_cast<double>(mc.failureTypes.get("due-word-fault")) /
        static_cast<double>(cfg.systems);
    std::cout << "\nMonte-Carlo cross-check ("
              << cfg.systems << " systems):\n"
              << "  multi-chip data loss = " << Table::sci(dataLoss, 2)
              << "  (analytic " << Table::sci(
                     model.multiChipDataLossProb(), 2)
              << ")\n"
              << "  word-fault DUE (8 ranks) = " << Table::sci(due, 2)
              << "  (analytic " << Table::sci(
                     8.0 * model.dueRatePerRank(), 2)
              << ")\n";
    return 0;
}
