/**
 * Ablation: patrol scrubbing (the "repair" half of a fault-and-repair
 * simulator). The paper lets faults accumulate for the full 7 years;
 * this ablation shows how much of XED's residual multi-chip data-loss
 * probability is attributable to *transient* fault accumulation that a
 * patrol scrubber would heal.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main()
{
    McConfig cfg = bench::mcConfig(0xAB1A);

    struct Row
    {
        const char *label;
        double hours;
    };
    const Row rows[] = {
        {"no scrubbing (paper model)", 0},
        {"monthly scrub", 30.4 * 24},
        {"weekly scrub", 7 * 24},
        {"daily scrub", 24},
    };

    Table table({"Scrub interval", "XED P(fail,7y)",
                 "Chipkill P(fail,7y)", "SECDED P(fail,7y)"});
    for (const auto &row : rows) {
        cfg.scrubIntervalHours = row.hours;
        const auto xed =
            runMonteCarlo(*makeScheme(SchemeKind::Xed, {}), cfg);
        const auto ck =
            runMonteCarlo(*makeScheme(SchemeKind::Chipkill, {}), cfg);
        const auto secded =
            runMonteCarlo(*makeScheme(SchemeKind::Secded, {}), cfg);
        table.addRow({row.label, Table::sci(xed.probFailure(), 2),
                      Table::sci(ck.probFailure(), 2),
                      Table::sci(secded.probFailure(), 2)});
    }
    table.print(std::cout,
                "Ablation: patrol scrubbing vs fault accumulation (" +
                    std::to_string(cfg.systems) + " systems/cell)");
    std::cout << "\nScrubbing trims the transient contribution to "
                 "multi-chip combinations; permanent faults (the "
                 "majority of the large-granularity FIT budget) are "
                 "unaffected, as is SECDED's single-fault failure "
                 "mode.\n";
    return 0;
}
