/**
 * Ablation: the Inter-Line Fault Diagnosis threshold (Section VI-A
 * fixes it at 10% of the 128-line row).
 *
 * Lowering the threshold makes diagnosis more sensitive (fewer DUEs
 * when a chip really failed) but raises the probability that scaling
 * faults alone cross it on a healthy chip (SDC through misdiagnosis).
 * This sweep quantifies that trade-off with the Table IV machinery.
 */

#include <iostream>

#include "analysis/sdc_due.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::analysis;

int
main()
{
    Table table({"Threshold (lines of 128)", "P(misdiag)/row @1e-4",
                 "@1e-5", "system SDC rate @1e-4"});
    for (const unsigned lines : {4u, 7u, 10u, 13u, 16u, 26u}) {
        XedVulnerabilityModel model;
        model.interLineThreshold =
            static_cast<double>(lines) / model.linesPerRow;

        XedVulnerabilityModel low = model;
        low.scalingRate = 1e-5;

        table.addRow({std::to_string(lines),
                      Table::sci(model.misdiagnosisProbPerRow(), 2),
                      Table::sci(low.misdiagnosisProbPerRow(), 2),
                      Table::sci(model.sdcRatePerRank(), 2)});
    }
    table.print(std::cout,
                "Ablation: Inter-Line diagnosis threshold vs "
                "misdiagnosis SDC (scaling rate columns)");
    std::cout
        << "\nThe paper's 13-line (10%) threshold keeps the "
           "misdiagnosis probability around 1e-12 even at the highest "
           "scaling rate; below ~7 lines it deteriorates by orders of "
           "magnitude, and far above it the diagnosis would start "
           "missing genuinely faulty chips (DUE instead of repair).\n";
    return 0;
}
