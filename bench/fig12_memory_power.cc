/**
 * Figure 12: normalized memory power (vs the ECC-DIMM SECDED baseline)
 * for XED, Chipkill, XED-on-Chipkill and Double-Chipkill. Chipkill's
 * longer execution time *lowers* its average power (~-8%);
 * Double-Chipkill's 36-chip activations raise it (~+8.4%).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "perfsim/system.hh"

using namespace xed;
using namespace xed::perfsim;

int
main()
{
    PerfConfig cfg;
    cfg.memOpsPerCore = bench::perfOps();

    const ProtectionMode modes[] = {
        ProtectionMode::Xed, ProtectionMode::Chipkill,
        ProtectionMode::XedChipkill, ProtectionMode::DoubleChipkill};

    Table table({"Benchmark", "XED (9)", "Chipkill (18)",
                 "XED+CK (18)", "Double-CK (36)"});
    double logSum[4] = {0, 0, 0, 0};
    int count = 0;
    for (const auto &w : paperWorkloads()) {
        const auto baseline =
            simulate(w, ProtectionMode::SecdedBaseline, cfg);
        std::vector<std::string> row{w.name};
        for (int m = 0; m < 4; ++m) {
            const auto run = simulate(w, modes[m], cfg);
            const double norm =
                run.memoryPowerWatts() / baseline.memoryPowerWatts();
            logSum[m] += std::log(norm);
            row.push_back(Table::fmt(norm, 2));
        }
        table.addRow(row);
        ++count;
    }
    table.addRow({"Gmean", Table::fmt(std::exp(logSum[0] / count), 2),
                  Table::fmt(std::exp(logSum[1] / count), 2),
                  Table::fmt(std::exp(logSum[2] / count), 2),
                  Table::fmt(std::exp(logSum[3] / count), 2)});
    table.print(std::cout,
                "Figure 12: normalized memory power vs ECC-DIMM "
                "(8 cores, " + std::to_string(cfg.memOpsPerCore) +
                " memory ops/core)");
    std::cout << "\nPaper: Chipkill ~0.92 (power drops with longer "
                 "execution), XED ~1.00, XED+CK ~0.92, "
                 "Double-Chipkill ~1.084.\n";
    return 0;
}
