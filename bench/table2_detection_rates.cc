/**
 * Table II: detection rate of random and burst errors for the (72,64)
 * Hamming and CRC8-ATM codes. "Detection" means the corrupted word is
 * not a valid codeword, i.e. the on-die engine notices *something* and
 * XED's DC-Mux emits the catch-word.
 */

#include <iostream>
#include <memory>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"

using namespace xed;
using namespace xed::ecc;

namespace
{

double
detectionRate(const Secded7264 &code, bool burst, unsigned weight,
              std::uint64_t trials)
{
    Rng rng(0xAB2 + weight + (burst ? 100 : 0));
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    std::uint64_t detected = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
        const Word72 error = burst ? solidBurstPattern(rng, weight)
                                   : randomPattern(rng, weight);
        if (!code.isValidCodeword(clean ^ error))
            ++detected;
    }
    return static_cast<double>(detected) / static_cast<double>(trials);
}

} // namespace

int
main()
{
    const std::uint64_t trials =
        bench::envScale("XED_TRIALS", 200000);
    Hamming7264 hamming;
    Crc8Atm crc;

    Table table({"Errors", "Hamming Random", "Hamming Burst",
                 "CRC8-ATM Random", "CRC8-ATM Burst"});
    for (unsigned k = 1; k <= 8; ++k) {
        table.addRow({std::to_string(k),
                      Table::pct(detectionRate(hamming, false, k, trials)),
                      Table::pct(detectionRate(hamming, true, k, trials)),
                      Table::pct(detectionRate(crc, false, k, trials)),
                      Table::pct(detectionRate(crc, true, k, trials))});
    }
    table.print(std::cout,
                "Table II: detection rate of random and burst errors, "
                "(72,64) codes (" + std::to_string(trials) +
                " trials/cell)");
    std::cout << "\nPaper: Hamming burst-4/8 ~50.7%, CRC8-ATM 100% on "
                 "all bursts, ~99.2% on even random errors.\n";
    return 0;
}
