/**
 * Table II: detection rate of random and burst errors for the (72,64)
 * Hamming and CRC8-ATM codes. "Detection" means the corrupted word is
 * not a valid codeword, i.e. the on-die engine notices *something* and
 * XED's DC-Mux emits the catch-word.
 *
 * Thin wrapper over the campaign runner: specs/table2.json declares
 * the code x pattern x weight grid, and the runner shards each cell's
 * trials deterministically (per-shard RNG streams, so the numbers are
 * thread-count invariant).
 */

#include <iostream>

#include "campaign/runner.hh"
#include "common/table.hh"

using namespace xed;
using namespace xed::campaign;

int
main()
{
    std::string error;
    auto spec = loadSpecFile(XED_SPEC_DIR "/table2.json", &error);
    if (!spec) {
        std::cerr << "table2: " << error << "\n";
        return 1;
    }
    applyEnvOverrides(*spec);

    const auto outcome = runCampaign(*spec, RunOptions{});
    if (!outcome.ok) {
        std::cerr << "table2: " << outcome.error << "\n";
        return 1;
    }

    // Cells are code-major, then pattern, then weight (see
    // campaign::detectionCell); rearrange into the paper's layout.
    const auto rate = [&](unsigned code, unsigned pattern, unsigned k) {
        const unsigned cell =
            (code * unsigned(spec->patterns.size()) + pattern) *
                spec->maxWeight +
            (k - 1);
        const auto &r = outcome.cells[cell].result;
        return static_cast<double>(r.detected) /
               static_cast<double>(r.trials);
    };
    const unsigned random = 0, burst = 1;

    Table table({"Errors", "Hamming Random", "Hamming Burst",
                 "CRC8-ATM Random", "CRC8-ATM Burst"});
    for (unsigned k = 1; k <= spec->maxWeight; ++k) {
        table.addRow({std::to_string(k),
                      Table::pct(rate(0, random, k)),
                      Table::pct(rate(0, burst, k)),
                      Table::pct(rate(1, random, k)),
                      Table::pct(rate(1, burst, k))});
    }
    table.print(std::cout,
                "Table II: detection rate of random and burst errors, "
                "(72,64) codes (" + std::to_string(spec->trials) +
                " trials/cell)");
    std::cout << "\nPaper: Hamming burst-4/8 ~50.7%, CRC8-ATM 100% on "
                 "all bursts, ~99.2% on even random errors.\n";
    return 0;
}
