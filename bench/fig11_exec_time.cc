/**
 * Figure 11: normalized execution time (vs the ECC-DIMM SECDED
 * baseline) for XED, Chipkill, XED-on-Chipkill and Double-Chipkill
 * across the 31 evaluation workloads, 8-core rate mode.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "perfsim/system.hh"

using namespace xed;
using namespace xed::perfsim;

int
main()
{
    PerfConfig cfg;
    cfg.memOpsPerCore = bench::perfOps();

    const ProtectionMode modes[] = {
        ProtectionMode::Xed, ProtectionMode::Chipkill,
        ProtectionMode::XedChipkill, ProtectionMode::DoubleChipkill};

    Table table({"Benchmark", "XED (9)", "Chipkill (18)",
                 "XED+CK (18)", "Double-CK (36)"});
    double logSum[4] = {0, 0, 0, 0};
    int count = 0;
    for (const auto &w : paperWorkloads()) {
        const auto baseline =
            simulate(w, ProtectionMode::SecdedBaseline, cfg);
        std::vector<std::string> row{w.name};
        for (int m = 0; m < 4; ++m) {
            const auto run = simulate(w, modes[m], cfg);
            const double norm = static_cast<double>(run.cycles) /
                                static_cast<double>(baseline.cycles);
            logSum[m] += std::log(norm);
            row.push_back(Table::fmt(norm, 2));
        }
        table.addRow(row);
        ++count;
    }
    table.addRow({"Gmean", Table::fmt(std::exp(logSum[0] / count), 2),
                  Table::fmt(std::exp(logSum[1] / count), 2),
                  Table::fmt(std::exp(logSum[2] / count), 2),
                  Table::fmt(std::exp(logSum[3] / count), 2)});
    table.print(std::cout,
                "Figure 11: normalized execution time vs ECC-DIMM "
                "(8 cores, " + std::to_string(cfg.memOpsPerCore) +
                " memory ops/core)");
    std::cout << "\nPaper gmeans: XED ~1.00, Chipkill 1.21, XED+CK "
                 "1.21, Double-Chipkill 1.82;\n"
                 "libquantum: CK +63.5%, DCK +220%; mcf: CK +50.7%, "
                 "DCK +180%.\n";
    return 0;
}
