/**
 * Performance comparison: one workload across every protection mode on
 * the USIMM-style memory-system simulator.
 *
 * Usage: ./perf_comparison [workload] [mem-ops-per-core]
 *   workload  one of the paper's 31 benchmarks (default libquantum);
 *             pass "list" to enumerate them.
 *
 * Prints absolute cycles, execution time and memory power plus values
 * normalized to the ECC-DIMM SECDED baseline (the Figures 11/12 view
 * for one benchmark).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "perfsim/system.hh"

using namespace xed;
using namespace xed::perfsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "libquantum";
    if (name == "list") {
        for (const auto &w : paperWorkloads())
            std::printf("%-12s %-10s mpki=%5.1f rowhit=%.2f wf=%.2f "
                        "mlp=%u\n",
                        w.name.c_str(), suiteName(w.suite), w.mpki,
                        w.rowHitRate, w.writeFraction, w.mlp);
        return 0;
    }

    PerfConfig cfg;
    cfg.memOpsPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12000;

    const Workload &workload = workloadByName(name);
    std::printf("workload %s (%s): mpki=%.1f rowhit=%.2f wf=%.2f "
                "mlp=%u; 8 cores, %llu ops/core\n\n",
                workload.name.c_str(), suiteName(workload.suite),
                workload.mpki, workload.rowHitRate,
                workload.writeFraction, workload.mlp,
                static_cast<unsigned long long>(cfg.memOpsPerCore));

    const auto baseline =
        simulate(workload, ProtectionMode::SecdedBaseline, cfg);
    std::printf("%-36s %12s %10s %9s %9s\n", "mode", "cycles",
                "power(W)", "exec(x)", "power(x)");

    const ProtectionMode modes[] = {
        ProtectionMode::SecdedBaseline,
        ProtectionMode::Xed,
        ProtectionMode::Chipkill,
        ProtectionMode::XedChipkill,
        ProtectionMode::DoubleChipkill,
        ProtectionMode::ChipkillExtraBurst,
        ProtectionMode::ChipkillExtraTransaction,
        ProtectionMode::LotEcc,
    };
    for (const auto mode : modes) {
        const auto run = simulate(workload, mode, cfg);
        std::printf("%-36s %12llu %10.2f %9.3f %9.3f\n",
                    run.mode.c_str(),
                    static_cast<unsigned long long>(run.cycles),
                    run.memoryPowerWatts(),
                    static_cast<double>(run.cycles) /
                        static_cast<double>(baseline.cycles),
                    run.memoryPowerWatts() /
                        baseline.memoryPowerWatts());
    }
    return 0;
}
