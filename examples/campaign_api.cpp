/**
 * Campaign API example: build a spec programmatically, run it in
 * memory with live progress, interrupt a stored run and resume it.
 *
 *   ./build/examples/campaign_api [systems]
 *
 * The same spec as JSON (see specs/*.json for real ones):
 *
 *   {"name": "demo", "seed": 12345, "schemes": ["secded", "xed"],
 *    "systems": 20000, "shardSystems": 2000,
 *    "sweep": {"parameter": "scalingRate", "values": [0, 1e-4]}}
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "campaign/runner.hh"

using namespace xed;
using namespace xed::campaign;

int
main(int argc, char **argv)
{
    CampaignSpec spec;
    spec.name = "demo";
    spec.seed = 12345;
    spec.schemes = {faultsim::SchemeKind::Secded,
                    faultsim::SchemeKind::Xed};
    spec.systems = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
    spec.shardSystems = 2000;
    spec.sweep.parameter = "scalingRate";
    spec.sweep.values = {0, 1e-4};

    std::cout << "spec " << specHash(spec) << ":\n"
              << json::dumpPretty(specToJson(spec)) << "\n\n";

    // 1. In-memory run with live progress on stderr.
    RunOptions options;
    options.progressIntervalSeconds = 0.5;
    options.progressOut = &std::cerr;
    options.telemetrySidecar = false;
    auto outcome = runCampaign(spec, options);
    if (!outcome.ok) {
        std::cerr << "run failed: " << outcome.error << "\n";
        return 1;
    }
    const unsigned cells = spec.cellCount();
    for (unsigned point = 0; point < spec.sweep.points(); ++point) {
        std::printf("scalingRate %.0e:\n", spec.sweep.values[point]);
        for (unsigned cell = 0; cell < cells; ++cell) {
            const auto &mc = outcome.mc(point, cell, cells);
            std::printf("  %-8s P(fail, 7y) = %.2e\n",
                        cellLabel(spec, cell).c_str(),
                        mc.probFailure());
        }
    }

    // 2. Stored run, interrupted after 3 shards, then resumed. The
    //    completed file is byte-identical to an uninterrupted one.
    const std::string out = "campaign_api_demo.jsonl";
    std::filesystem::remove(out);
    std::filesystem::remove(out + ".telemetry.jsonl");
    options = RunOptions{};
    options.outPath = out;
    options.maxShards = 3;
    runCampaign(spec, options);
    std::printf("\ninterrupted after 3 shards; resuming %s\n",
                out.c_str());
    options.maxShards = 0;
    options.resume = true;
    outcome = runCampaign(spec, options);
    std::printf("resume: replayed %llu, ran %llu, complete=%d\n",
                static_cast<unsigned long long>(outcome.shardsReplayed),
                static_cast<unsigned long long>(outcome.shardsRun),
                int(outcome.complete));
    return outcome.complete ? 0 : 1;
}
