/**
 * Quickstart: the XED data path in a dozen lines.
 *
 * Builds one 9-chip XED rank (8 data chips + RAID-3 parity chip, each
 * chip carrying (72,64) CRC8-ATM on-die ECC), writes a cache line,
 * breaks one chip, and shows the catch-word/erasure recovery of
 * Section V of the paper.
 *
 * Run: ./quickstart
 */

#include <array>
#include <cstdio>

#include "xed/controller.hh"

int
main()
{
    using namespace xed;

    XedController rank; // 9 chips, XED-Enable set, catch-words agreed

    // Write a 64-byte cache line: one 64-bit word per data chip.
    const dram::WordAddr line{/*bank=*/0, /*row=*/42, /*col=*/7};
    std::array<std::uint64_t, 8> data{1, 2, 3, 4, 5, 6, 7, 8};
    rank.writeLine(line, data);

    // A clean read returns the data with no correction activity.
    auto clean = rank.readLine(line);
    std::printf("clean read : outcome=Clean data[0..7] =");
    for (const auto w : clean.data)
        std::printf(" %llu", static_cast<unsigned long long>(w));
    std::printf("\n");

    // Now chip 3 suffers a multi-bit word failure. Its on-die ECC
    // detects the invalid codeword and the DC-Mux transmits the
    // catch-word instead of data (Figure 3 of the paper).
    dram::Fault fault;
    fault.granularity = dram::FaultGranularity::SingleWord;
    fault.permanent = true;
    fault.addr = line;
    fault.seed = 0xBAD;
    rank.chip(3).faults().add(fault);

    auto repaired = rank.readLine(line);
    std::printf("faulty read: catch-word from chip %u, rebuilt via "
                "parity -> data[3] = %llu (outcome %s)\n",
                repaired.catchWordChips.empty()
                    ? 99u
                    : repaired.catchWordChips[0],
                static_cast<unsigned long long>(repaired.data[3]),
                repaired.outcome == ReadOutcome::CorrectedErasure
                    ? "CorrectedErasure"
                    : "other");

    const bool ok = repaired.data == data;
    std::printf("recovered line matches original: %s\n",
                ok ? "yes" : "NO");
    std::printf("counters: reads=%llu rebuilds=%llu catch-words=%llu\n",
                static_cast<unsigned long long>(
                    rank.counters().get("reads")),
                static_cast<unsigned long long>(
                    rank.counters().get("rebuilds")),
                static_cast<unsigned long long>(
                    rank.counters().get("single_catch_word")));
    return ok ? 0 : 1;
}
