/**
 * Data-path recovery walkthrough: the harder scenarios of Sections
 * VI, VII and IX on the functional model.
 *
 *   1. A row failure: ~99% of the row's lines catch-word directly; the
 *      on-die detection escapes are located by Inter-Line Fault
 *      Diagnosis and recorded in the Faulty-row Chip Tracker.
 *   2. A bank failure: the FCT fills unanimously and the chip is
 *      permanently marked; later reads rebuild it without diagnosis.
 *   3. A catch-word/data collision: detected, corrected, and the
 *      catch-words re-randomized (Section V-D).
 *   4. XED on Chipkill: two simultaneously failing chips rebuilt
 *      through RS(18,16) erasure decoding (Section IX).
 *
 * Run: ./datapath_recovery
 */

#include <array>
#include <cstdio>

#include "common/rng.hh"
#include "xed/chipkill_controller.hh"
#include "xed/controller.hh"

using namespace xed;

namespace
{

std::array<std::uint64_t, 8>
randomLine(Rng &rng)
{
    std::array<std::uint64_t, 8> line{};
    for (auto &w : line)
        w = rng.next();
    return line;
}

void
scenarioRowFailure()
{
    std::printf("--- 1. row failure in chip 2 ---\n");
    XedController rank;
    Rng rng(1);
    std::array<std::array<std::uint64_t, 8>, 128> lines{};
    for (unsigned col = 0; col < 128; ++col) {
        lines[col] = randomLine(rng);
        rank.writeLine({1, 300, col}, lines[col]);
    }
    dram::Fault f;
    f.granularity = dram::FaultGranularity::SingleRow;
    f.permanent = true;
    f.addr = {1, 300, 0};
    f.seed = 42;
    rank.chip(2).faults().add(f);

    unsigned recovered = 0, viaDiagnosis = 0;
    for (unsigned col = 0; col < 128; ++col) {
        const auto r = rank.readLine({1, 300, col});
        recovered += (r.data == lines[col]) ? 1 : 0;
        viaDiagnosis +=
            (r.outcome == ReadOutcome::InterLineCorrected) ? 1 : 0;
    }
    std::printf("  128/128 lines corrupted; %u recovered, %u needed "
                "Inter-Line diagnosis, FCT entries: %u\n",
                recovered, viaDiagnosis, rank.fct().size());
}

void
scenarioBankFailureMarksChip()
{
    std::printf("--- 2. bank failure in chip 5 ---\n");
    XedController rank;
    dram::Fault f;
    f.granularity = dram::FaultGranularity::SingleBank;
    f.permanent = true;
    f.addr = {2, 0, 0};
    f.seed = 1337;
    rank.chip(5).faults().add(f);

    unsigned reads = 0;
    for (unsigned row = 0; row < 8000 && !rank.markedFaultyChip();
         ++row) {
        rank.readLine({2, row % 32768, row % 128});
        ++reads;
    }
    if (rank.markedFaultyChip())
        std::printf("  chip %u permanently marked faulty after %u "
                    "reads (%llu diagnoses); subsequent reads rebuild "
                    "directly\n",
                    *rank.markedFaultyChip(), reads,
                    static_cast<unsigned long long>(
                        rank.counters().get("inter_line_runs")));
    const auto after = rank.readLine({2, 9999, 0});
    std::printf("  post-marking read outcome: %s\n",
                after.outcome == ReadOutcome::MarkedChipCorrected
                    ? "MarkedChipCorrected"
                    : "other");
}

void
scenarioCollision()
{
    std::printf("--- 3. catch-word collision ---\n");
    XedController rank;
    Rng rng(3);
    auto line = randomLine(rng);
    line[6] = rank.catchWordOf(6); // store the catch-word as data
    rank.writeLine({0, 7, 7}, line);
    const auto before = rank.catchWordOf(6);
    const auto r = rank.readLine({0, 7, 7});
    std::printf("  collision detected: %s; data correct: %s; "
                "catch-word re-randomized: %s\n",
                r.outcome == ReadOutcome::CollisionCorrected ? "yes"
                                                             : "no",
                r.data == line ? "yes" : "no",
                rank.catchWordOf(6) != before ? "yes" : "no");
}

void
scenarioXedOnChipkill()
{
    std::printf("--- 4. XED on Chipkill: two chip failures ---\n");
    ChipkillConfig cfg;
    cfg.useCatchWordErasures = true;
    ChipkillController ctrl(cfg);
    Rng rng(4);
    std::vector<std::uint64_t> line(16);
    for (auto &w : line)
        w = rng.next();
    const dram::WordAddr addr{0, 11, 3};
    ctrl.writeLine(addr, line);

    for (const unsigned chip : {4u, 13u}) {
        dram::Fault f;
        f.granularity = dram::FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 100 + chip;
        ctrl.chip(chip).faults().add(f);
    }
    const auto r = ctrl.readLine(addr);
    std::printf("  catch-words from %zu chips; erasure decode: %s; "
                "data intact: %s\n",
                r.catchWordChips.size(),
                r.outcome == ChipkillOutcome::Corrected ? "corrected"
                                                        : "failed",
                r.data == line ? "yes" : "no");
}

} // namespace

int
main()
{
    scenarioRowFailure();
    scenarioBankFailureMarksChip();
    scenarioCollision();
    scenarioXedOnChipkill();
    return 0;
}
