/**
 * Reliability study: drive the FaultSim-style Monte-Carlo engine with
 * your own parameters.
 *
 * Usage: ./reliability_study [systems] [scaling-rate] [years]
 *   systems       Monte-Carlo sample count      (default 200000)
 *   scaling-rate  birthtime fault rate per bit  (default 0)
 *   years         lifetime                      (default 7)
 *
 * Prints the probability of system failure for every protection scheme
 * in the library, plus the failure-cause breakdown for XED.
 */

#include <cstdio>
#include <cstdlib>

#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

int
main(int argc, char **argv)
{
    McConfig cfg;
    cfg.systems = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                           : 200000;
    OnDieOptions onDie;
    onDie.scalingRate = argc > 2 ? std::strtod(argv[2], nullptr) : 0.0;
    cfg.years = argc > 3 ? std::strtod(argv[3], nullptr) : 7.0;

    std::printf("Monte-Carlo: %llu systems, %.1f years, scaling rate "
                "%.1e\n\n",
                static_cast<unsigned long long>(cfg.systems), cfg.years,
                onDie.scalingRate);
    std::printf("%-46s %-12s\n", "scheme", "P(failure)");

    const SchemeKind kinds[] = {
        SchemeKind::NonEcc,
        SchemeKind::Secded,
        SchemeKind::Xed,
        SchemeKind::Chipkill,
        SchemeKind::ChipkillX8Lockstep,
        SchemeKind::DoubleChipkill,
        SchemeKind::DoubleChipkillLockstep,
        SchemeKind::XedChipkill,
        SchemeKind::XedChipkillLockstep,
    };
    for (const auto kind : kinds) {
        const auto scheme = makeScheme(kind, onDie);
        const auto result = runMonteCarlo(*scheme, cfg);
        std::printf("%-46s %.3e\n", scheme->name().c_str(),
                    result.probFailure());
    }

    std::printf("\nXED failure-cause breakdown:\n");
    const auto xed = makeScheme(SchemeKind::Xed, onDie);
    const auto result = runMonteCarlo(*xed, cfg);
    for (const auto &[cause, count] : result.failureTypes.all())
        std::printf("  %-28s %llu\n", cause.c_str(),
                    static_cast<unsigned long long>(count));
    return 0;
}
