file(REMOVE_RECURSE
  "CMakeFiles/perf_comparison.dir/perf_comparison.cpp.o"
  "CMakeFiles/perf_comparison.dir/perf_comparison.cpp.o.d"
  "perf_comparison"
  "perf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
