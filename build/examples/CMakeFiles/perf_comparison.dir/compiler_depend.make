# Empty compiler generated dependencies file for perf_comparison.
# This may be replaced when dependencies are built.
