# Empty dependencies file for datapath_recovery.
# This may be replaced when dependencies are built.
