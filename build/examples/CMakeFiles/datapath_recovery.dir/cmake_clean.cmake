file(REMOVE_RECURSE
  "CMakeFiles/datapath_recovery.dir/datapath_recovery.cpp.o"
  "CMakeFiles/datapath_recovery.dir/datapath_recovery.cpp.o.d"
  "datapath_recovery"
  "datapath_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
