# Empty compiler generated dependencies file for reliability_study.
# This may be replaced when dependencies are built.
