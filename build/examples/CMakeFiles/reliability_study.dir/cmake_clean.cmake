file(REMOVE_RECURSE
  "CMakeFiles/reliability_study.dir/reliability_study.cpp.o"
  "CMakeFiles/reliability_study.dir/reliability_study.cpp.o.d"
  "reliability_study"
  "reliability_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
