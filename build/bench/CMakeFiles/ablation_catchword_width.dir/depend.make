# Empty dependencies file for ablation_catchword_width.
# This may be replaced when dependencies are built.
