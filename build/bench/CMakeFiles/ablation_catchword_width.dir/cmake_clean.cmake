file(REMOVE_RECURSE
  "CMakeFiles/ablation_catchword_width.dir/ablation_catchword_width.cc.o"
  "CMakeFiles/ablation_catchword_width.dir/ablation_catchword_width.cc.o.d"
  "ablation_catchword_width"
  "ablation_catchword_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_catchword_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
