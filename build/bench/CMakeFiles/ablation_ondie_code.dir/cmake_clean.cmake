file(REMOVE_RECURSE
  "CMakeFiles/ablation_ondie_code.dir/ablation_ondie_code.cc.o"
  "CMakeFiles/ablation_ondie_code.dir/ablation_ondie_code.cc.o.d"
  "ablation_ondie_code"
  "ablation_ondie_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ondie_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
