# Empty dependencies file for ablation_ondie_code.
# This may be replaced when dependencies are built.
