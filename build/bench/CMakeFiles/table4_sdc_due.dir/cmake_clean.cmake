file(REMOVE_RECURSE
  "CMakeFiles/table4_sdc_due.dir/table4_sdc_due.cc.o"
  "CMakeFiles/table4_sdc_due.dir/table4_sdc_due.cc.o.d"
  "table4_sdc_due"
  "table4_sdc_due.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sdc_due.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
