# Empty dependencies file for table4_sdc_due.
# This may be replaced when dependencies are built.
