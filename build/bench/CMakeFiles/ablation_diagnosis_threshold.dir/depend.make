# Empty dependencies file for ablation_diagnosis_threshold.
# This may be replaced when dependencies are built.
