file(REMOVE_RECURSE
  "CMakeFiles/ablation_diagnosis_threshold.dir/ablation_diagnosis_threshold.cc.o"
  "CMakeFiles/ablation_diagnosis_threshold.dir/ablation_diagnosis_threshold.cc.o.d"
  "ablation_diagnosis_threshold"
  "ablation_diagnosis_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diagnosis_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
