file(REMOVE_RECURSE
  "CMakeFiles/fig14_lotecc.dir/fig14_lotecc.cc.o"
  "CMakeFiles/fig14_lotecc.dir/fig14_lotecc.cc.o.d"
  "fig14_lotecc"
  "fig14_lotecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lotecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
