# Empty compiler generated dependencies file for fig14_lotecc.
# This may be replaced when dependencies are built.
