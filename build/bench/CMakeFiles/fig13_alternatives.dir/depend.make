# Empty dependencies file for fig13_alternatives.
# This may be replaced when dependencies are built.
