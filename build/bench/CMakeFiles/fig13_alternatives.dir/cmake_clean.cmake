file(REMOVE_RECURSE
  "CMakeFiles/fig13_alternatives.dir/fig13_alternatives.cc.o"
  "CMakeFiles/fig13_alternatives.dir/fig13_alternatives.cc.o.d"
  "fig13_alternatives"
  "fig13_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
