# Empty dependencies file for fig01_ondie_vs_dimm_ecc.
# This may be replaced when dependencies are built.
