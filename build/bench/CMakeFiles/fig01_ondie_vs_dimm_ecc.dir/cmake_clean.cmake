file(REMOVE_RECURSE
  "CMakeFiles/fig01_ondie_vs_dimm_ecc.dir/fig01_ondie_vs_dimm_ecc.cc.o"
  "CMakeFiles/fig01_ondie_vs_dimm_ecc.dir/fig01_ondie_vs_dimm_ecc.cc.o.d"
  "fig01_ondie_vs_dimm_ecc"
  "fig01_ondie_vs_dimm_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ondie_vs_dimm_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
