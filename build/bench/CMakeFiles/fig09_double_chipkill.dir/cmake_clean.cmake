file(REMOVE_RECURSE
  "CMakeFiles/fig09_double_chipkill.dir/fig09_double_chipkill.cc.o"
  "CMakeFiles/fig09_double_chipkill.dir/fig09_double_chipkill.cc.o.d"
  "fig09_double_chipkill"
  "fig09_double_chipkill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_double_chipkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
