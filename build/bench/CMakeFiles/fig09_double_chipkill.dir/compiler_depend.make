# Empty compiler generated dependencies file for fig09_double_chipkill.
# This may be replaced when dependencies are built.
