# Empty compiler generated dependencies file for fig12_memory_power.
# This may be replaced when dependencies are built.
