file(REMOVE_RECURSE
  "CMakeFiles/fig12_memory_power.dir/fig12_memory_power.cc.o"
  "CMakeFiles/fig12_memory_power.dir/fig12_memory_power.cc.o.d"
  "fig12_memory_power"
  "fig12_memory_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
