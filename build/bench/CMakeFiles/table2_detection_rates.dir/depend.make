# Empty dependencies file for table2_detection_rates.
# This may be replaced when dependencies are built.
