file(REMOVE_RECURSE
  "CMakeFiles/table2_detection_rates.dir/table2_detection_rates.cc.o"
  "CMakeFiles/table2_detection_rates.dir/table2_detection_rates.cc.o.d"
  "table2_detection_rates"
  "table2_detection_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_detection_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
