file(REMOVE_RECURSE
  "CMakeFiles/micro_codecs.dir/micro_codecs.cc.o"
  "CMakeFiles/micro_codecs.dir/micro_codecs.cc.o.d"
  "micro_codecs"
  "micro_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
