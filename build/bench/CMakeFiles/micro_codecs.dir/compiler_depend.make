# Empty compiler generated dependencies file for micro_codecs.
# This may be replaced when dependencies are built.
