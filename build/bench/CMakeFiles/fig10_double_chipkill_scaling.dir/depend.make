# Empty dependencies file for fig10_double_chipkill_scaling.
# This may be replaced when dependencies are built.
