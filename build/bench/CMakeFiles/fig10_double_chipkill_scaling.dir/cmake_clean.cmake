file(REMOVE_RECURSE
  "CMakeFiles/fig10_double_chipkill_scaling.dir/fig10_double_chipkill_scaling.cc.o"
  "CMakeFiles/fig10_double_chipkill_scaling.dir/fig10_double_chipkill_scaling.cc.o.d"
  "fig10_double_chipkill_scaling"
  "fig10_double_chipkill_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_double_chipkill_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
