# Empty dependencies file for ablation_scrubbing.
# This may be replaced when dependencies are built.
