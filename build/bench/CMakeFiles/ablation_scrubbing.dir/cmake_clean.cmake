file(REMOVE_RECURSE
  "CMakeFiles/ablation_scrubbing.dir/ablation_scrubbing.cc.o"
  "CMakeFiles/ablation_scrubbing.dir/ablation_scrubbing.cc.o.d"
  "ablation_scrubbing"
  "ablation_scrubbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
