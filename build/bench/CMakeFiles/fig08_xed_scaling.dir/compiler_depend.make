# Empty compiler generated dependencies file for fig08_xed_scaling.
# This may be replaced when dependencies are built.
