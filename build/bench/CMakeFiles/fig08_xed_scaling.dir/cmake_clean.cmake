file(REMOVE_RECURSE
  "CMakeFiles/fig08_xed_scaling.dir/fig08_xed_scaling.cc.o"
  "CMakeFiles/fig08_xed_scaling.dir/fig08_xed_scaling.cc.o.d"
  "fig08_xed_scaling"
  "fig08_xed_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_xed_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
