file(REMOVE_RECURSE
  "CMakeFiles/table3_multi_catchword.dir/table3_multi_catchword.cc.o"
  "CMakeFiles/table3_multi_catchword.dir/table3_multi_catchword.cc.o.d"
  "table3_multi_catchword"
  "table3_multi_catchword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_multi_catchword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
