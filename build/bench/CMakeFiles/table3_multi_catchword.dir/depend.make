# Empty dependencies file for table3_multi_catchword.
# This may be replaced when dependencies are built.
