# Empty compiler generated dependencies file for fig06_collision_probability.
# This may be replaced when dependencies are built.
