file(REMOVE_RECURSE
  "CMakeFiles/fig06_collision_probability.dir/fig06_collision_probability.cc.o"
  "CMakeFiles/fig06_collision_probability.dir/fig06_collision_probability.cc.o.d"
  "fig06_collision_probability"
  "fig06_collision_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_collision_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
