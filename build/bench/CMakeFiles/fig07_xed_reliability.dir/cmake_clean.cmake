file(REMOVE_RECURSE
  "CMakeFiles/fig07_xed_reliability.dir/fig07_xed_reliability.cc.o"
  "CMakeFiles/fig07_xed_reliability.dir/fig07_xed_reliability.cc.o.d"
  "fig07_xed_reliability"
  "fig07_xed_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_xed_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
