# Empty dependencies file for fig07_xed_reliability.
# This may be replaced when dependencies are built.
