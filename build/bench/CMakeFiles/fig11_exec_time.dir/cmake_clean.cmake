file(REMOVE_RECURSE
  "CMakeFiles/fig11_exec_time.dir/fig11_exec_time.cc.o"
  "CMakeFiles/fig11_exec_time.dir/fig11_exec_time.cc.o.d"
  "fig11_exec_time"
  "fig11_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
