# Empty dependencies file for fig11_exec_time.
# This may be replaced when dependencies are built.
