file(REMOVE_RECURSE
  "libxed_perfsim.a"
)
