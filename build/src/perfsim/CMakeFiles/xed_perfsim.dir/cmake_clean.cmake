file(REMOVE_RECURSE
  "CMakeFiles/xed_perfsim.dir/core.cc.o"
  "CMakeFiles/xed_perfsim.dir/core.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/memsys.cc.o"
  "CMakeFiles/xed_perfsim.dir/memsys.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/power.cc.o"
  "CMakeFiles/xed_perfsim.dir/power.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/protection.cc.o"
  "CMakeFiles/xed_perfsim.dir/protection.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/system.cc.o"
  "CMakeFiles/xed_perfsim.dir/system.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/tracegen.cc.o"
  "CMakeFiles/xed_perfsim.dir/tracegen.cc.o.d"
  "CMakeFiles/xed_perfsim.dir/workloads.cc.o"
  "CMakeFiles/xed_perfsim.dir/workloads.cc.o.d"
  "libxed_perfsim.a"
  "libxed_perfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
