# Empty compiler generated dependencies file for xed_perfsim.
# This may be replaced when dependencies are built.
