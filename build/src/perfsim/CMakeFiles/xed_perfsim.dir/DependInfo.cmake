
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfsim/core.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/core.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/core.cc.o.d"
  "/root/repo/src/perfsim/memsys.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/memsys.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/memsys.cc.o.d"
  "/root/repo/src/perfsim/power.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/power.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/power.cc.o.d"
  "/root/repo/src/perfsim/protection.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/protection.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/protection.cc.o.d"
  "/root/repo/src/perfsim/system.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/system.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/system.cc.o.d"
  "/root/repo/src/perfsim/tracegen.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/tracegen.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/tracegen.cc.o.d"
  "/root/repo/src/perfsim/workloads.cc" "src/perfsim/CMakeFiles/xed_perfsim.dir/workloads.cc.o" "gcc" "src/perfsim/CMakeFiles/xed_perfsim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
