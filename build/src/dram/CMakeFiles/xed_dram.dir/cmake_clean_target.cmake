file(REMOVE_RECURSE
  "libxed_dram.a"
)
