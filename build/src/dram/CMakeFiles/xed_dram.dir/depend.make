# Empty dependencies file for xed_dram.
# This may be replaced when dependencies are built.
