file(REMOVE_RECURSE
  "CMakeFiles/xed_dram.dir/chip.cc.o"
  "CMakeFiles/xed_dram.dir/chip.cc.o.d"
  "CMakeFiles/xed_dram.dir/fault_injector.cc.o"
  "CMakeFiles/xed_dram.dir/fault_injector.cc.o.d"
  "libxed_dram.a"
  "libxed_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
