# Empty dependencies file for xed_common.
# This may be replaced when dependencies are built.
