file(REMOVE_RECURSE
  "CMakeFiles/xed_common.dir/stats.cc.o"
  "CMakeFiles/xed_common.dir/stats.cc.o.d"
  "CMakeFiles/xed_common.dir/table.cc.o"
  "CMakeFiles/xed_common.dir/table.cc.o.d"
  "libxed_common.a"
  "libxed_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
