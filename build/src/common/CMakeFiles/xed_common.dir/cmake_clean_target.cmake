file(REMOVE_RECURSE
  "libxed_common.a"
)
