file(REMOVE_RECURSE
  "CMakeFiles/xed_core.dir/chipkill_controller.cc.o"
  "CMakeFiles/xed_core.dir/chipkill_controller.cc.o.d"
  "CMakeFiles/xed_core.dir/controller.cc.o"
  "CMakeFiles/xed_core.dir/controller.cc.o.d"
  "CMakeFiles/xed_core.dir/fct.cc.o"
  "CMakeFiles/xed_core.dir/fct.cc.o.d"
  "CMakeFiles/xed_core.dir/xed_system.cc.o"
  "CMakeFiles/xed_core.dir/xed_system.cc.o.d"
  "libxed_core.a"
  "libxed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
