# Empty compiler generated dependencies file for xed_core.
# This may be replaced when dependencies are built.
