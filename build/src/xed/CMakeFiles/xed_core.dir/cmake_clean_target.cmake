file(REMOVE_RECURSE
  "libxed_core.a"
)
