# Empty dependencies file for xed_faultsim.
# This may be replaced when dependencies are built.
