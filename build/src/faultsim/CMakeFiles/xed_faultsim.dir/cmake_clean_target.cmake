file(REMOVE_RECURSE
  "libxed_faultsim.a"
)
