
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/engine.cc" "src/faultsim/CMakeFiles/xed_faultsim.dir/engine.cc.o" "gcc" "src/faultsim/CMakeFiles/xed_faultsim.dir/engine.cc.o.d"
  "/root/repo/src/faultsim/fault_model.cc" "src/faultsim/CMakeFiles/xed_faultsim.dir/fault_model.cc.o" "gcc" "src/faultsim/CMakeFiles/xed_faultsim.dir/fault_model.cc.o.d"
  "/root/repo/src/faultsim/fault_range.cc" "src/faultsim/CMakeFiles/xed_faultsim.dir/fault_range.cc.o" "gcc" "src/faultsim/CMakeFiles/xed_faultsim.dir/fault_range.cc.o.d"
  "/root/repo/src/faultsim/schemes.cc" "src/faultsim/CMakeFiles/xed_faultsim.dir/schemes.cc.o" "gcc" "src/faultsim/CMakeFiles/xed_faultsim.dir/schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/xed_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/xed_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
