file(REMOVE_RECURSE
  "CMakeFiles/xed_faultsim.dir/engine.cc.o"
  "CMakeFiles/xed_faultsim.dir/engine.cc.o.d"
  "CMakeFiles/xed_faultsim.dir/fault_model.cc.o"
  "CMakeFiles/xed_faultsim.dir/fault_model.cc.o.d"
  "CMakeFiles/xed_faultsim.dir/fault_range.cc.o"
  "CMakeFiles/xed_faultsim.dir/fault_range.cc.o.d"
  "CMakeFiles/xed_faultsim.dir/schemes.cc.o"
  "CMakeFiles/xed_faultsim.dir/schemes.cc.o.d"
  "libxed_faultsim.a"
  "libxed_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
