file(REMOVE_RECURSE
  "libxed_ecc.a"
)
