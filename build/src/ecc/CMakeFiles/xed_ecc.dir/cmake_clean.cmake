file(REMOVE_RECURSE
  "CMakeFiles/xed_ecc.dir/crc8atm.cc.o"
  "CMakeFiles/xed_ecc.dir/crc8atm.cc.o.d"
  "CMakeFiles/xed_ecc.dir/error_patterns.cc.o"
  "CMakeFiles/xed_ecc.dir/error_patterns.cc.o.d"
  "CMakeFiles/xed_ecc.dir/gf256.cc.o"
  "CMakeFiles/xed_ecc.dir/gf256.cc.o.d"
  "CMakeFiles/xed_ecc.dir/hamming7264.cc.o"
  "CMakeFiles/xed_ecc.dir/hamming7264.cc.o.d"
  "CMakeFiles/xed_ecc.dir/parity_raid3.cc.o"
  "CMakeFiles/xed_ecc.dir/parity_raid3.cc.o.d"
  "CMakeFiles/xed_ecc.dir/reed_solomon.cc.o"
  "CMakeFiles/xed_ecc.dir/reed_solomon.cc.o.d"
  "libxed_ecc.a"
  "libxed_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
