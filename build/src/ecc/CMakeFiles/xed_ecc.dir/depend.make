# Empty dependencies file for xed_ecc.
# This may be replaced when dependencies are built.
