
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/crc8atm.cc" "src/ecc/CMakeFiles/xed_ecc.dir/crc8atm.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/crc8atm.cc.o.d"
  "/root/repo/src/ecc/error_patterns.cc" "src/ecc/CMakeFiles/xed_ecc.dir/error_patterns.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/error_patterns.cc.o.d"
  "/root/repo/src/ecc/gf256.cc" "src/ecc/CMakeFiles/xed_ecc.dir/gf256.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/gf256.cc.o.d"
  "/root/repo/src/ecc/hamming7264.cc" "src/ecc/CMakeFiles/xed_ecc.dir/hamming7264.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/hamming7264.cc.o.d"
  "/root/repo/src/ecc/parity_raid3.cc" "src/ecc/CMakeFiles/xed_ecc.dir/parity_raid3.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/parity_raid3.cc.o.d"
  "/root/repo/src/ecc/reed_solomon.cc" "src/ecc/CMakeFiles/xed_ecc.dir/reed_solomon.cc.o" "gcc" "src/ecc/CMakeFiles/xed_ecc.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
