# Empty compiler generated dependencies file for xed_analysis.
# This may be replaced when dependencies are built.
