
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/collision.cc" "src/analysis/CMakeFiles/xed_analysis.dir/collision.cc.o" "gcc" "src/analysis/CMakeFiles/xed_analysis.dir/collision.cc.o.d"
  "/root/repo/src/analysis/multi_catchword.cc" "src/analysis/CMakeFiles/xed_analysis.dir/multi_catchword.cc.o" "gcc" "src/analysis/CMakeFiles/xed_analysis.dir/multi_catchword.cc.o.d"
  "/root/repo/src/analysis/sdc_due.cc" "src/analysis/CMakeFiles/xed_analysis.dir/sdc_due.cc.o" "gcc" "src/analysis/CMakeFiles/xed_analysis.dir/sdc_due.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/xed_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/xed_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/xed_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
