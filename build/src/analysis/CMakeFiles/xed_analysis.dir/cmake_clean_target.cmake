file(REMOVE_RECURSE
  "libxed_analysis.a"
)
