file(REMOVE_RECURSE
  "CMakeFiles/xed_analysis.dir/collision.cc.o"
  "CMakeFiles/xed_analysis.dir/collision.cc.o.d"
  "CMakeFiles/xed_analysis.dir/multi_catchword.cc.o"
  "CMakeFiles/xed_analysis.dir/multi_catchword.cc.o.d"
  "CMakeFiles/xed_analysis.dir/sdc_due.cc.o"
  "CMakeFiles/xed_analysis.dir/sdc_due.cc.o.d"
  "libxed_analysis.a"
  "libxed_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xed_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
