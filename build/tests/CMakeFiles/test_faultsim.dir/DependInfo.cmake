
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/faultsim/test_engine.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_engine.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_engine.cc.o.d"
  "/root/repo/tests/faultsim/test_engine_lifetime.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_engine_lifetime.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_engine_lifetime.cc.o.d"
  "/root/repo/tests/faultsim/test_fault_model.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_fault_model.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_fault_model.cc.o.d"
  "/root/repo/tests/faultsim/test_fault_range.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_fault_range.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_fault_range.cc.o.d"
  "/root/repo/tests/faultsim/test_scheme_properties.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_scheme_properties.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_scheme_properties.cc.o.d"
  "/root/repo/tests/faultsim/test_schemes.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_schemes.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_schemes.cc.o.d"
  "/root/repo/tests/faultsim/test_scrubbing.cc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_scrubbing.cc.o" "gcc" "tests/CMakeFiles/test_faultsim.dir/faultsim/test_scrubbing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faultsim/CMakeFiles/xed_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/xed_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/xed_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
