file(REMOVE_RECURSE
  "CMakeFiles/test_faultsim.dir/faultsim/test_engine.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_engine.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_engine_lifetime.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_engine_lifetime.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_fault_model.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_fault_model.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_fault_range.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_fault_range.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_scheme_properties.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_scheme_properties.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_schemes.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_schemes.cc.o.d"
  "CMakeFiles/test_faultsim.dir/faultsim/test_scrubbing.cc.o"
  "CMakeFiles/test_faultsim.dir/faultsim/test_scrubbing.cc.o.d"
  "test_faultsim"
  "test_faultsim.pdb"
  "test_faultsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
