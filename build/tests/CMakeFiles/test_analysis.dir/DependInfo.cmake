
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_collision.cc" "tests/CMakeFiles/test_analysis.dir/analysis/test_collision.cc.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_collision.cc.o.d"
  "/root/repo/tests/analysis/test_multi_catchword.cc" "tests/CMakeFiles/test_analysis.dir/analysis/test_multi_catchword.cc.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_multi_catchword.cc.o.d"
  "/root/repo/tests/analysis/test_sdc_due.cc" "tests/CMakeFiles/test_analysis.dir/analysis/test_sdc_due.cc.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_sdc_due.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/xed_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/xed_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/xed_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/xed_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
