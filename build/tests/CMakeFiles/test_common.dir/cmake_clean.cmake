file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_bitops.cc.o"
  "CMakeFiles/test_common.dir/common/test_bitops.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_edge_cases.cc.o"
  "CMakeFiles/test_common.dir/common/test_edge_cases.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cc.o"
  "CMakeFiles/test_common.dir/common/test_rng.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cc.o"
  "CMakeFiles/test_common.dir/common/test_stats.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cc.o"
  "CMakeFiles/test_common.dir/common/test_table.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
