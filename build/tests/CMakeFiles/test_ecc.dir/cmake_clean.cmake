file(REMOVE_RECURSE
  "CMakeFiles/test_ecc.dir/ecc/test_crc8atm.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_crc8atm.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_detection_properties.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_detection_properties.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_error_patterns.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_error_patterns.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_gf256.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_gf256.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_hamming7264.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_hamming7264.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_parity_raid3.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_parity_raid3.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_reed_solomon.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_reed_solomon.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_rs_param_sweep.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_rs_param_sweep.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_word72.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_word72.cc.o.d"
  "test_ecc"
  "test_ecc.pdb"
  "test_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
