
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecc/test_crc8atm.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_crc8atm.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_crc8atm.cc.o.d"
  "/root/repo/tests/ecc/test_detection_properties.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_detection_properties.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_detection_properties.cc.o.d"
  "/root/repo/tests/ecc/test_error_patterns.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_error_patterns.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_error_patterns.cc.o.d"
  "/root/repo/tests/ecc/test_gf256.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_gf256.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_gf256.cc.o.d"
  "/root/repo/tests/ecc/test_hamming7264.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_hamming7264.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_hamming7264.cc.o.d"
  "/root/repo/tests/ecc/test_parity_raid3.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_parity_raid3.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_parity_raid3.cc.o.d"
  "/root/repo/tests/ecc/test_reed_solomon.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_reed_solomon.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_reed_solomon.cc.o.d"
  "/root/repo/tests/ecc/test_rs_param_sweep.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_rs_param_sweep.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_rs_param_sweep.cc.o.d"
  "/root/repo/tests/ecc/test_word72.cc" "tests/CMakeFiles/test_ecc.dir/ecc/test_word72.cc.o" "gcc" "tests/CMakeFiles/test_ecc.dir/ecc/test_word72.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecc/CMakeFiles/xed_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
