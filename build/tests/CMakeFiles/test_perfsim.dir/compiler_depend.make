# Empty compiler generated dependencies file for test_perfsim.
# This may be replaced when dependencies are built.
