
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perfsim/test_memsys.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_memsys.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_memsys.cc.o.d"
  "/root/repo/tests/perfsim/test_perf_properties.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_perf_properties.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_perf_properties.cc.o.d"
  "/root/repo/tests/perfsim/test_power.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_power.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_power.cc.o.d"
  "/root/repo/tests/perfsim/test_protection.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_protection.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_protection.cc.o.d"
  "/root/repo/tests/perfsim/test_system.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_system.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_system.cc.o.d"
  "/root/repo/tests/perfsim/test_tracegen.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_tracegen.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_tracegen.cc.o.d"
  "/root/repo/tests/perfsim/test_workloads.cc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_workloads.cc.o" "gcc" "tests/CMakeFiles/test_perfsim.dir/perfsim/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfsim/CMakeFiles/xed_perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
