file(REMOVE_RECURSE
  "CMakeFiles/test_perfsim.dir/perfsim/test_memsys.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_memsys.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_perf_properties.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_perf_properties.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_power.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_power.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_protection.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_protection.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_system.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_system.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_tracegen.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_tracegen.cc.o.d"
  "CMakeFiles/test_perfsim.dir/perfsim/test_workloads.cc.o"
  "CMakeFiles/test_perfsim.dir/perfsim/test_workloads.cc.o.d"
  "test_perfsim"
  "test_perfsim.pdb"
  "test_perfsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
