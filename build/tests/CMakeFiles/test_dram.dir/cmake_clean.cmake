file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/dram/test_chip.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_chip.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_fault_injector.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_fault_injector.cc.o.d"
  "CMakeFiles/test_dram.dir/dram/test_geometry.cc.o"
  "CMakeFiles/test_dram.dir/dram/test_geometry.cc.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
