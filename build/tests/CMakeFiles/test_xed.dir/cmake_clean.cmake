file(REMOVE_RECURSE
  "CMakeFiles/test_xed.dir/xed/test_chipkill_controller.cc.o"
  "CMakeFiles/test_xed.dir/xed/test_chipkill_controller.cc.o.d"
  "CMakeFiles/test_xed.dir/xed/test_controller.cc.o"
  "CMakeFiles/test_xed.dir/xed/test_controller.cc.o.d"
  "CMakeFiles/test_xed.dir/xed/test_controller_properties.cc.o"
  "CMakeFiles/test_xed.dir/xed/test_controller_properties.cc.o.d"
  "CMakeFiles/test_xed.dir/xed/test_fct.cc.o"
  "CMakeFiles/test_xed.dir/xed/test_fct.cc.o.d"
  "CMakeFiles/test_xed.dir/xed/test_xed_system.cc.o"
  "CMakeFiles/test_xed.dir/xed/test_xed_system.cc.o.d"
  "test_xed"
  "test_xed.pdb"
  "test_xed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
