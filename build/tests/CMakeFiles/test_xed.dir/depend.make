# Empty dependencies file for test_xed.
# This may be replaced when dependencies are built.
