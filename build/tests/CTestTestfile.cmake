# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_xed[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_perfsim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_faultsim[1]_include.cmake")
