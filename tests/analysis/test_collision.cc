#include <gtest/gtest.h>

#include <cmath>

#include "analysis/collision.hh"
#include "common/rng.hh"

namespace xed::analysis
{
namespace
{

TEST(Collision, PerWriteProbability)
{
    CollisionModel m;
    m.catchWordBits = 64;
    EXPECT_DOUBLE_EQ(m.perWriteProbability(), std::pow(2.0, -64));
    m.catchWordBits = 32;
    EXPECT_DOUBLE_EQ(m.perWriteProbability(), std::pow(2.0, -32));
}

TEST(Collision, PaperX8MeanIs3point2MillionYears)
{
    const auto m = paperX8Model();
    EXPECT_NEAR(m.meanYearsToCollision() / 3.2e6, 1.0, 0.02);
}

TEST(Collision, PaperX4MeanIs6point6Hours)
{
    const auto m = paperX4Model();
    const double hours = m.meanSecondsToCollision() / 3600.0;
    EXPECT_NEAR(hours / 6.6, 1.0, 0.03);
}

TEST(Collision, Raw4nsX8MeanIsThousandsOfYears)
{
    // The literal write-every-4ns reading gives ~2,339 years -- the
    // deviation from the paper documented in EXPERIMENTS.md.
    const auto m = raw4nsX8Model();
    EXPECT_NEAR(m.meanYearsToCollision(), 2337.0, 10.0);
}

TEST(Collision, ProbabilityIsExponentialCdf)
{
    const auto m = paperX8Model();
    const double mean = m.meanYearsToCollision();
    EXPECT_NEAR(m.probCollisionWithinYears(mean), 1 - std::exp(-1.0),
                1e-12);
    EXPECT_NEAR(m.probCollisionWithinYears(0), 0.0, 1e-15);
    EXPECT_LT(m.probCollisionWithinYears(1.0),
              m.probCollisionWithinYears(10.0));
    // Small-t linearization: P ~ t / mean.
    EXPECT_NEAR(m.probCollisionWithinYears(1.0), 1.0 / mean,
                1e-3 / mean);
}

TEST(Collision, MonteCarloMatchesModelOnScaledDownCatchWord)
{
    // With a 16-bit catch-word, collisions are frequent enough to
    // Monte-Carlo: count writes until a random value hits a fixed
    // catch-word; the mean must be 2^16.
    Rng rng(42);
    const std::uint64_t catchWord = rng.next() & 0xFFFF;
    double total = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        std::uint64_t writes = 0;
        while ((rng.next() & 0xFFFF) != catchWord)
            ++writes;
        total += static_cast<double>(writes);
    }
    EXPECT_NEAR(total / trials / 65536.0, 1.0, 0.08);
}

} // namespace
} // namespace xed::analysis
