#include <gtest/gtest.h>

#include "analysis/multi_catchword.hh"
#include "common/rng.hh"

namespace xed::analysis
{
namespace
{

TEST(MultiCatchword, WordScalingFaultProbability)
{
    EXPECT_DOUBLE_EQ(probWordHasScalingFault(0), 0.0);
    EXPECT_NEAR(probWordHasScalingFault(1e-4), 64e-4, 3e-5);
    EXPECT_NEAR(probWordHasScalingFault(1e-6), 64e-6, 1e-8);
}

TEST(MultiCatchword, PaperTable3Values)
{
    // Table III: 2e-5 / 2e-7 / 2e-9 at scaling rates 1e-4/1e-5/1e-6.
    EXPECT_NEAR(paperTable3Value(1e-4), 2e-5, 0.1e-5);
    EXPECT_NEAR(paperTable3Value(1e-5), 2e-7, 0.1e-7);
    EXPECT_NEAR(paperTable3Value(1e-6), 2e-9, 0.1e-9);
}

TEST(MultiCatchword, BinomialModelAgainstMonteCarlo)
{
    Rng rng(7);
    const double rate = 1e-3; // scaled up so the MC converges quickly
    const double p = probWordHasScalingFault(rate);
    int multi = 0;
    const int accesses = 400000;
    for (int a = 0; a < accesses; ++a) {
        int catchWords = 0;
        for (int chip = 0; chip < 9; ++chip)
            catchWords += rng.bernoulli(p) ? 1 : 0;
        multi += (catchWords >= 2) ? 1 : 0;
    }
    const double observed = static_cast<double>(multi) / accesses;
    const double expected = probMultipleCatchWords(rate, 9);
    EXPECT_NEAR(observed / expected, 1.0, 0.15);
}

TEST(MultiCatchword, SerialModeFrequency)
{
    // Section VII-B: "once every 200K accesses even for a high error
    // rate of 1e-4" -- with the paper's own per-pair formula. The full
    // 9-chip binomial gives roughly one in 700 accesses; both are
    // printed by the bench.
    EXPECT_NEAR(1.0 / paperTable3Value(1e-4), 48828.0, 1000.0);
    EXPECT_GT(accessesBetweenMultiCatchWords(1e-4), 500.0);
}

TEST(MultiCatchword, MonotoneInRateAndChips)
{
    EXPECT_LT(probMultipleCatchWords(1e-6), probMultipleCatchWords(1e-5));
    EXPECT_LT(probMultipleCatchWords(1e-5), probMultipleCatchWords(1e-4));
    EXPECT_LT(probMultipleCatchWords(1e-4, 9),
              probMultipleCatchWords(1e-4, 18));
}

} // namespace
} // namespace xed::analysis
