#include <gtest/gtest.h>

#include "analysis/sdc_due.hh"
#include "faultsim/engine.hh"

namespace xed::analysis
{
namespace
{

TEST(BinomialTail, ExactSmallCases)
{
    // X ~ Binomial(3, 0.5): P(X>=2) = 0.5, P(X>=1) = 7/8, P(X>=0) = 1.
    EXPECT_NEAR(binomialTail(3, 0.5, 2), 0.5, 1e-12);
    EXPECT_NEAR(binomialTail(3, 0.5, 1), 7.0 / 8.0, 1e-12);
    EXPECT_DOUBLE_EQ(binomialTail(3, 0.5, 0), 1.0);
    EXPECT_NEAR(binomialTail(3, 0.5, 3), 1.0 / 8.0, 1e-12);
    EXPECT_DOUBLE_EQ(binomialTail(10, 0.0, 1), 0.0);
}

TEST(BinomialTail, MatchesComplementOfCdf)
{
    // Sum of all point masses is 1.
    const double p = 0.3;
    double acc = 0;
    for (unsigned k = 0; k <= 20; ++k)
        acc += binomialTail(20, p, k) - binomialTail(20, p, k + 1);
    EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(SdcDue, TransientWordFaultProbMatchesPaper)
{
    // Section VIII: 7.7e-4 over 7 years (9 chips x 1.4 FIT).
    XedVulnerabilityModel m;
    EXPECT_NEAR(m.transientWordFaultProbPerRank(), 7.7e-4, 0.4e-4);
}

TEST(SdcDue, DueRateMatchesTable4)
{
    // Table IV: 6.1e-6.
    XedVulnerabilityModel m;
    EXPECT_NEAR(m.dueRatePerRank(), 6.1e-6, 0.4e-6);
}

TEST(SdcDue, MisdiagnosisProbIsAboutTenToMinus12)
{
    // Section VIII: "negligibly small (1e-12) under scaling fault rate
    // of 1e-4".
    XedVulnerabilityModel m;
    const double p = m.misdiagnosisProbPerRow();
    EXPECT_GT(p, 1e-14);
    EXPECT_LT(p, 1e-10);
}

TEST(SdcDue, SdcRateMatchesTable4Magnitude)
{
    // Table IV: 1.4e-13.
    XedVulnerabilityModel m;
    const double rate = m.sdcRatePerRank();
    EXPECT_GT(rate, 1e-15);
    EXPECT_LT(rate, 1e-11);
}

TEST(SdcDue, MultiChipDataLossMatchesTable4)
{
    // Table IV: 5.8e-4 for the whole system over 7 years.
    XedVulnerabilityModel m;
    EXPECT_NEAR(m.multiChipDataLossProb(), 5.8e-4, 3.0e-4);
}

TEST(SdcDue, AnalyticMatchesMonteCarlo)
{
    // The closed-form multi-chip estimate must agree with the fault
    // simulator's XED data-loss count.
    XedVulnerabilityModel m;
    faultsim::McConfig cfg;
    cfg.systems = 1000000;
    cfg.seed = 0xAB;
    const auto scheme =
        faultsim::makeScheme(faultsim::SchemeKind::Xed, {});
    const auto result = faultsim::runMonteCarlo(*scheme, cfg);
    const double mc =
        static_cast<double>(
            result.failureTypes.get("multi-chip-data-loss")) /
        static_cast<double>(cfg.systems);
    EXPECT_NEAR(m.multiChipDataLossProb() / mc, 1.0, 0.35);
}

TEST(SdcDue, DueIsTwoOrdersBelowDataLoss)
{
    // The paper's closing argument of Section VIII: the 6.1e-6 DUE
    // rate is ~two orders of magnitude below the 5.8e-4 multi-chip
    // data-loss probability (the exact paper ratio is 95x).
    XedVulnerabilityModel m;
    EXPECT_LT(m.dueRatePerRank() * 50.0, m.multiChipDataLossProb());
}

} // namespace
} // namespace xed::analysis
