#include <gtest/gtest.h>

#include "perfsim/protection.hh"

namespace xed::perfsim
{
namespace
{

TEST(Protection, BaselineAndXedAreIdenticalInShape)
{
    const auto base = modeEffects(ProtectionMode::SecdedBaseline);
    const auto xed = modeEffects(ProtectionMode::Xed);
    EXPECT_EQ(base.effectiveChannels, xed.effectiveChannels);
    EXPECT_EQ(base.effectiveRanks, xed.effectiveRanks);
    EXPECT_EQ(base.readBurstCycles, xed.readBurstCycles);
    EXPECT_EQ(base.ranksPerAccess, xed.ranksPerAccess);
    EXPECT_EQ(base.extraWriteProb, xed.extraWriteProb);
    EXPECT_NE(base.label, xed.label);
}

TEST(Protection, ChipkillLocksteps)
{
    const auto fx = modeEffects(ProtectionMode::Chipkill);
    EXPECT_EQ(fx.effectiveChannels, 4u);
    EXPECT_EQ(fx.effectiveRanks, 1u);
    EXPECT_EQ(fx.ranksPerAccess, 2u);
    EXPECT_EQ(fx.readBurstCycles, 8u); // 100% overfetch
}

TEST(Protection, XedChipkillMatchesChipkillCosts)
{
    // Section IX/XI: XED on Chipkill has exactly Chipkill's overheads.
    const auto ck = modeEffects(ProtectionMode::Chipkill);
    const auto xck = modeEffects(ProtectionMode::XedChipkill);
    EXPECT_EQ(ck.effectiveRanks, xck.effectiveRanks);
    EXPECT_EQ(ck.readBurstCycles, xck.readBurstCycles);
    EXPECT_EQ(ck.ranksPerAccess, xck.ranksPerAccess);
}

TEST(Protection, DoubleChipkillGangsChannels)
{
    const auto fx = modeEffects(ProtectionMode::DoubleChipkill);
    EXPECT_EQ(fx.effectiveChannels, 2u);
    EXPECT_EQ(fx.ranksPerAccess, 4u);
    EXPECT_EQ(fx.gangedBuses, 2u);
    EXPECT_DOUBLE_EQ(fx.activateRankEquivalents, 2.0);
}

TEST(Protection, AlternativesStretchBursts)
{
    EXPECT_EQ(modeEffects(ProtectionMode::ChipkillExtraBurst)
                  .readBurstCycles,
              10u);
    EXPECT_EQ(modeEffects(ProtectionMode::ChipkillExtraTransaction)
                  .readBurstCycles,
              12u);
    EXPECT_GT(
        modeEffects(ProtectionMode::ChipkillExtraBurst).ioEnergyScale,
        1.0);
    EXPECT_GT(modeEffects(ProtectionMode::ChipkillExtraTransaction)
                  .ioEnergyScale,
              modeEffects(ProtectionMode::ChipkillExtraBurst)
                  .ioEnergyScale);
}

TEST(Protection, LotEccAddsWrites)
{
    const auto fx = modeEffects(ProtectionMode::LotEcc);
    EXPECT_GT(fx.extraWriteProb, 0.0);
    EXPECT_EQ(fx.effectiveRanks, 2u); // single-rank accesses preserved
}

TEST(Protection, NamesAreUnique)
{
    const ProtectionMode all[] = {
        ProtectionMode::SecdedBaseline,
        ProtectionMode::Xed,
        ProtectionMode::Chipkill,
        ProtectionMode::XedChipkill,
        ProtectionMode::DoubleChipkill,
        ProtectionMode::ChipkillExtraBurst,
        ProtectionMode::DoubleChipkillExtraBurst,
        ProtectionMode::ChipkillExtraTransaction,
        ProtectionMode::DoubleChipkillExtraTransaction,
        ProtectionMode::LotEcc,
    };
    for (std::size_t i = 0; i < std::size(all); ++i)
        for (std::size_t j = i + 1; j < std::size(all); ++j) {
            EXPECT_STRNE(protectionModeName(all[i]),
                         protectionModeName(all[j]));
            EXPECT_NE(modeEffects(all[i]).label,
                      modeEffects(all[j]).label);
        }
}

} // namespace
} // namespace xed::perfsim
