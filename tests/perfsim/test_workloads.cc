#include <gtest/gtest.h>

#include "perfsim/workloads.hh"

namespace xed::perfsim
{
namespace
{

TEST(Workloads, TableCoversThePaperSuites)
{
    const auto &all = paperWorkloads();
    EXPECT_GE(all.size(), 28u); // Figure 11 x-axis
    unsigned spec = 0, parsec = 0, bio = 0, comm = 0;
    for (const auto &w : all) {
        switch (w.suite) {
          case Suite::Spec2006: ++spec; break;
          case Suite::Parsec: ++parsec; break;
          case Suite::BioBench: ++bio; break;
          case Suite::Commercial: ++comm; break;
        }
    }
    EXPECT_GE(spec, 15u);
    EXPECT_GE(parsec, 6u);
    EXPECT_EQ(bio, 2u);  // tigr, mummer
    EXPECT_EQ(comm, 5u); // comm1..comm5
}

TEST(Workloads, SelectionCriterionHolds)
{
    // Section X: only benchmarks with > 1 LLC miss per 1000 instrs.
    for (const auto &w : paperWorkloads()) {
        EXPECT_GT(w.mpki, 1.0) << w.name;
        EXPECT_GT(w.rowHitRate, 0.0) << w.name;
        EXPECT_LT(w.rowHitRate, 1.0) << w.name;
        EXPECT_GT(w.writeFraction, 0.0) << w.name;
        EXPECT_LT(w.writeFraction, 0.6) << w.name;
        EXPECT_GE(w.mlp, 1u) << w.name;
    }
}

TEST(Workloads, StreamingVsPointerChasing)
{
    // The workloads the paper calls out must have the right character:
    // libquantum bandwidth-bound (high MPKI, high locality, high MLP),
    // mcf latency-bound (high MPKI, low locality, low MLP).
    const auto &libq = workloadByName("libquantum");
    const auto &mcf = workloadByName("mcf");
    EXPECT_GT(libq.rowHitRate, 0.9);
    EXPECT_GE(libq.mlp, 8u);
    EXPECT_LT(mcf.rowHitRate, 0.3);
    EXPECT_LE(mcf.mlp, 3u);
    EXPECT_GT(mcf.mpki, 15.0);
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workloadByName("lbm").suite, Suite::Spec2006);
    EXPECT_EQ(workloadByName("mummer").suite, Suite::BioBench);
    EXPECT_THROW(workloadByName("quake3"), std::out_of_range);
}

TEST(Workloads, NamesAreUnique)
{
    const auto &all = paperWorkloads();
    for (std::size_t i = 0; i < all.size(); ++i)
        for (std::size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i].name, all[j].name);
}

TEST(Workloads, SuiteNames)
{
    EXPECT_STREQ(suiteName(Suite::Spec2006), "SPEC 2006");
    EXPECT_STREQ(suiteName(Suite::Commercial), "COMMERCIAL");
}

} // namespace
} // namespace xed::perfsim
