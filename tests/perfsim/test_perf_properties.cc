/**
 * Parameterized properties across all protection modes: runs finish,
 * conserve work, never beat the unprotected baseline, and produce
 * physically sensible power numbers.
 */

#include <gtest/gtest.h>

#include "perfsim/system.hh"

namespace xed::perfsim
{
namespace
{

const ProtectionMode allModes[] = {
    ProtectionMode::SecdedBaseline,
    ProtectionMode::Xed,
    ProtectionMode::Chipkill,
    ProtectionMode::XedChipkill,
    ProtectionMode::DoubleChipkill,
    ProtectionMode::ChipkillExtraBurst,
    ProtectionMode::DoubleChipkillExtraBurst,
    ProtectionMode::ChipkillExtraTransaction,
    ProtectionMode::DoubleChipkillExtraTransaction,
    ProtectionMode::LotEcc,
};

class ModeProperty : public ::testing::TestWithParam<ProtectionMode>
{
  protected:
    PerfConfig
    quick() const
    {
        PerfConfig cfg;
        cfg.memOpsPerCore = 3000;
        return cfg;
    }
};

TEST_P(ModeProperty, RunsFinishAndConserveWork)
{
    const auto cfg = quick();
    const auto r = simulate(workloadByName("milc"), GetParam(), cfg);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LT(r.cycles, cfg.maxCycles);
    // Every op issued by the cores is serviced exactly once (LOT-ECC
    // adds parity writes on top).
    const auto issued = 8 * cfg.memOpsPerCore;
    EXPECT_EQ(r.stats.reads + r.stats.writes - r.stats.extraWrites,
              issued);
}

TEST_P(ModeProperty, NeverFasterThanBaseline)
{
    const auto cfg = quick();
    const auto &w = workloadByName("soplex");
    const auto baseline =
        simulate(w, ProtectionMode::SecdedBaseline, cfg);
    const auto run = simulate(w, GetParam(), cfg);
    // A protection mode can only add constraints; allow 1% noise from
    // scheduling divergence.
    EXPECT_GE(run.cycles * 101, baseline.cycles * 100)
        << protectionModeName(GetParam());
}

TEST_P(ModeProperty, PowerIsPhysicallyBounded)
{
    const auto r =
        simulate(workloadByName("stream"), GetParam(), quick());
    // 72+ chips: between deep idle (~3W) and absolute burst roof.
    EXPECT_GT(r.memoryPowerWatts(), 3.0);
    EXPECT_LT(r.memoryPowerWatts(), 120.0);
    EXPECT_GT(r.power.background, 0.0);
    EXPECT_GE(r.power.refresh, 0.0);
}

TEST_P(ModeProperty, RefreshKeepsFiring)
{
    const auto r =
        simulate(workloadByName("gcc"), GetParam(), quick());
    // All 8 physical ranks refresh roughly every tREFI.
    const double expected =
        8.0 * static_cast<double>(r.cycles) / 6240.0;
    EXPECT_NEAR(static_cast<double>(r.stats.refreshes), expected,
                expected * 0.25 + 16.0)
        << protectionModeName(GetParam());
}

std::string
modeName(const ::testing::TestParamInfo<ProtectionMode> &info)
{
    std::string name = protectionModeName(info.param);
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeProperty,
                         ::testing::ValuesIn(allModes), modeName);

} // namespace
} // namespace xed::perfsim
