#include <gtest/gtest.h>

#include "perfsim/system.hh"

namespace xed::perfsim
{
namespace
{

PerfConfig
quick(std::uint64_t ops = 4000)
{
    PerfConfig cfg;
    cfg.memOpsPerCore = ops;
    return cfg;
}

TEST(System, RunCompletesAndCountsWork)
{
    const auto r = simulate(workloadByName("gcc"),
                            ProtectionMode::SecdedBaseline, quick());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LT(r.cycles, 100000000u);
    // 8 cores x ops, split into reads and writes.
    EXPECT_NEAR(static_cast<double>(r.stats.reads + r.stats.writes),
                8.0 * 4000.0, 8.0 * 4000.0 * 0.02);
    EXPECT_GT(r.memoryPowerWatts(), 1.0);
    EXPECT_LT(r.memoryPowerWatts(), 100.0);
}

TEST(System, DeterministicForSeed)
{
    const auto a = simulate(workloadByName("milc"),
                            ProtectionMode::Chipkill, quick());
    const auto b = simulate(workloadByName("milc"),
                            ProtectionMode::Chipkill, quick());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.reads, b.stats.reads);
}

TEST(System, XedMatchesBaselinePerformance)
{
    // Section XI-A: XED has < 0.01% overhead vs the SECDED baseline.
    const auto n = normalizedAgainstBaseline(workloadByName("lbm"),
                                             ProtectionMode::Xed,
                                             quick());
    EXPECT_NEAR(n.execTime, 1.0, 0.005);
    EXPECT_NEAR(n.memoryPower, 1.0, 0.01);
}

TEST(System, ChipkillSlowsMemoryIntensiveWorkloads)
{
    const auto n = normalizedAgainstBaseline(
        workloadByName("libquantum"), ProtectionMode::Chipkill,
        quick(8000));
    // Paper: libquantum +63.5%; our band: clearly bandwidth-bound.
    EXPECT_GT(n.execTime, 1.25);
    EXPECT_LT(n.execTime, 1.8);
    // Figure 12: Chipkill power *drops* for memory-bound workloads.
    EXPECT_LT(n.memoryPower, 1.0);
}

TEST(System, ChipkillBarelyAffectsComputeBoundWorkloads)
{
    const auto n = normalizedAgainstBaseline(workloadByName("black"),
                                             ProtectionMode::Chipkill,
                                             quick());
    EXPECT_LT(n.execTime, 1.1);
}

TEST(System, DoubleChipkillWorseThanChipkill)
{
    const auto &w = workloadByName("milc");
    const auto ck = normalizedAgainstBaseline(
        w, ProtectionMode::Chipkill, quick(8000));
    const auto dck = normalizedAgainstBaseline(
        w, ProtectionMode::DoubleChipkill, quick(8000));
    EXPECT_GT(dck.execTime, ck.execTime * 1.2);
}

TEST(System, XedChipkillCostsSameAsChipkill)
{
    const auto &w = workloadByName("soplex");
    const auto ck = normalizedAgainstBaseline(
        w, ProtectionMode::Chipkill, quick(8000));
    const auto xck = normalizedAgainstBaseline(
        w, ProtectionMode::XedChipkill, quick(8000));
    EXPECT_NEAR(xck.execTime, ck.execTime, 0.02);
}

TEST(System, AlternativesCostMoreThanXedChipkill)
{
    // Figure 13: extra burst / extra transaction are strictly worse
    // than the catch-word approach, and the transaction is worse than
    // the burst.
    const auto &w = workloadByName("bwaves");
    const auto xck =
        simulate(w, ProtectionMode::XedChipkill, quick(8000));
    const auto burst =
        simulate(w, ProtectionMode::ChipkillExtraBurst, quick(8000));
    const auto txn = simulate(
        w, ProtectionMode::ChipkillExtraTransaction, quick(8000));
    EXPECT_GT(burst.cycles, xck.cycles);
    EXPECT_GT(txn.cycles, burst.cycles);
    EXPECT_GT(burst.memoryPowerWatts(), xck.memoryPowerWatts() * 0.99);
}

TEST(System, LotEccSlowerThanXed)
{
    // Figure 14: LOT-ECC trails XED by ~6.6% due to extra writes.
    const auto &w = workloadByName("comm1");
    const auto xed = simulate(w, ProtectionMode::Xed, quick(8000));
    const auto lot = simulate(w, ProtectionMode::LotEcc, quick(8000));
    EXPECT_GT(lot.cycles, xed.cycles);
    EXPECT_LT(static_cast<double>(lot.cycles) / xed.cycles, 1.35);
    EXPECT_GT(lot.stats.extraWrites, 0u);
}

TEST(System, MlpDrivesLatencySensitivity)
{
    // mcf (MLP 2) suffers under Chipkill despite moderate bandwidth:
    // its stalls scale with loaded latency.
    const auto n = normalizedAgainstBaseline(workloadByName("mcf"),
                                             ProtectionMode::Chipkill,
                                             quick(8000));
    EXPECT_GT(n.execTime, 1.15);
}

} // namespace
} // namespace xed::perfsim
