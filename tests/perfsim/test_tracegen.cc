#include <gtest/gtest.h>

#include "perfsim/tracegen.hh"

namespace xed::perfsim
{
namespace
{

class TraceGenTest : public ::testing::Test
{
  protected:
    TraceGen::AddressSpace space;
};

TEST_F(TraceGenTest, StatisticsMatchWorkloadDescriptor)
{
    const auto &w = workloadByName("libquantum");
    TraceGen gen(w, space, 42);
    const int n = 200000;
    double gapSum = 0;
    int writes = 0, rowHits = 0;
    Address prev{};
    bool first = true;
    for (int i = 0; i < n; ++i) {
        const auto op = gen.next();
        gapSum += op.gapInstrs;
        writes += op.isWrite ? 1 : 0;
        if (!first && op.addr.channel == prev.channel &&
            op.addr.rank == prev.rank && op.addr.bank == prev.bank &&
            op.addr.row == prev.row)
            ++rowHits;
        prev = op.addr;
        first = false;
    }
    const double expectedGap =
        1000.0 * (1.0 - w.writeFraction) / w.mpki;
    EXPECT_NEAR(gapSum / n, expectedGap, expectedGap * 0.05);
    EXPECT_NEAR(static_cast<double>(writes) / n, w.writeFraction, 0.01);
    EXPECT_NEAR(static_cast<double>(rowHits) / n, w.rowHitRate, 0.02);
}

TEST_F(TraceGenTest, AddressesWithinSpace)
{
    TraceGen::AddressSpace tight;
    tight.channels = 2;
    tight.ranks = 1;
    TraceGen gen(workloadByName("mcf"), tight, 7);
    for (int i = 0; i < 50000; ++i) {
        const auto op = gen.next();
        EXPECT_LT(op.addr.channel, tight.channels);
        EXPECT_LT(op.addr.rank, tight.ranks);
        EXPECT_LT(op.addr.bank, tight.banks);
        EXPECT_LT(op.addr.row, tight.rows);
        EXPECT_LT(op.addr.col, tight.cols);
    }
}

TEST_F(TraceGenTest, DeterministicForSeed)
{
    TraceGen a(workloadByName("gcc"), space, 11);
    TraceGen b(workloadByName("gcc"), space, 11);
    for (int i = 0; i < 1000; ++i) {
        const auto x = a.next();
        const auto y = b.next();
        EXPECT_EQ(x.gapInstrs, y.gapInstrs);
        EXPECT_EQ(x.isWrite, y.isWrite);
        EXPECT_EQ(x.addr.row, y.addr.row);
        EXPECT_EQ(x.addr.col, y.addr.col);
    }
}

TEST_F(TraceGenTest, SeedsProduceDistinctStreams)
{
    TraceGen a(workloadByName("gcc"), space, 1);
    TraceGen b(workloadByName("gcc"), space, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next().addr.row == b.next().addr.row) ? 1 : 0;
    EXPECT_LT(same, 20);
}

TEST_F(TraceGenTest, RowHitsAdvanceColumn)
{
    // A row hit must be a *different* line of the same row.
    const Workload streaming{"s", Suite::Parsec, 10.0, 1.0, 0.0, 4};
    TraceGen gen(streaming, space, 3);
    auto prev = gen.next().addr;
    for (int i = 0; i < 1000; ++i) {
        const auto cur = gen.next().addr;
        EXPECT_EQ(cur.row, prev.row);
        EXPECT_EQ((prev.col + 1) % space.cols, cur.col);
        prev = cur;
    }
}

} // namespace
} // namespace xed::perfsim
