#include <gtest/gtest.h>

#include "perfsim/memsys.hh"

namespace xed::perfsim
{
namespace
{

class MemsysTest : public ::testing::Test
{
  protected:
    MemsysTest()
        : fx(modeEffects(ProtectionMode::SecdedBaseline)),
          mem(timing, fx)
    {
    }

    /** Run until the request completes; returns its done cycle. */
    std::int64_t
    runUntilDone(MemRequest &req, std::uint64_t start = 0)
    {
        for (std::uint64_t c = start; c < start + 100000; ++c) {
            mem.tick(c);
            if (req.done())
                return req.doneCycle;
        }
        return -1;
    }

    TimingParams timing;
    ModeEffects fx;
    MemorySystem mem;
};

TEST_F(MemsysTest, ClosedBankReadLatency)
{
    MemRequest req;
    req.addr = {0, 0, 0, 100, 5};
    mem.enqueueRead(&req);
    const auto done = runUntilDone(req);
    // ACT at cycle 0, CAS at tRCD, data done tCL + tBurst later.
    EXPECT_EQ(done, static_cast<std::int64_t>(timing.tRCD + timing.tCL +
                                              timing.tBurst));
    EXPECT_EQ(mem.stats().reads, 1u);
    EXPECT_EQ(mem.stats().bankActivates, 1u);
    EXPECT_EQ(mem.stats().rowHits, 0u);
}

TEST_F(MemsysTest, RowHitReadIsFaster)
{
    MemRequest first;
    first.addr = {0, 0, 0, 100, 5};
    mem.enqueueRead(&first);
    const auto t1 = runUntilDone(first);
    ASSERT_GT(t1, 0);

    MemRequest hit;
    hit.addr = {0, 0, 0, 100, 6};
    mem.enqueueRead(&hit);
    const auto start = static_cast<std::uint64_t>(t1) + 1;
    const auto t2 = runUntilDone(hit, start);
    EXPECT_EQ(t2, static_cast<std::int64_t>(start + timing.tCL +
                                            timing.tBurst));
    EXPECT_EQ(mem.stats().rowHits, 1u);
    EXPECT_EQ(mem.stats().bankActivates, 1u);
}

TEST_F(MemsysTest, RowConflictPaysPrecharge)
{
    MemRequest first;
    first.addr = {0, 0, 0, 100, 5};
    mem.enqueueRead(&first);
    const auto t1 = runUntilDone(first);
    ASSERT_GT(t1, 0);

    MemRequest conflict;
    conflict.addr = {0, 0, 0, 200, 5}; // same bank, other row
    mem.enqueueRead(&conflict);
    // Bank must respect tRTP after the read, then tRP + tRCD + tCL.
    const auto t2 = runUntilDone(conflict,
                                 static_cast<std::uint64_t>(t1) + 1);
    EXPECT_GT(t2, t1 + static_cast<std::int64_t>(timing.tRP +
                                                 timing.tRCD +
                                                 timing.tCL));
    EXPECT_EQ(mem.stats().bankActivates, 2u);
}

TEST_F(MemsysTest, IndependentBanksOverlap)
{
    MemRequest a, b;
    a.addr = {0, 0, 0, 100, 5};
    b.addr = {0, 0, 1, 100, 5};
    mem.enqueueRead(&a);
    mem.enqueueRead(&b);
    for (std::uint64_t c = 0; c < 1000 && !(a.done() && b.done()); ++c)
        mem.tick(c);
    ASSERT_TRUE(a.done() && b.done());
    // b's activation overlaps a's; b completes one burst after a
    // (bus-serialized), far sooner than a serial ACT+CAS would allow.
    EXPECT_LE(b.doneCycle, a.doneCycle + static_cast<std::int64_t>(
                                             timing.tBurst + timing.tRRD));
}

TEST_F(MemsysTest, FrFcfsPrefersRowHit)
{
    // Open row 100, then enqueue a conflict (older) and a hit (younger)
    // together: the hit must complete first.
    MemRequest opener;
    opener.addr = {0, 0, 0, 100, 0};
    mem.enqueueRead(&opener);
    const auto t1 = runUntilDone(opener);
    ASSERT_GT(t1, 0);

    MemRequest conflict, hit;
    conflict.addr = {0, 0, 0, 300, 0};
    hit.addr = {0, 0, 0, 100, 9};
    mem.enqueueRead(&conflict);
    mem.enqueueRead(&hit);
    for (std::uint64_t c = static_cast<std::uint64_t>(t1) + 1;
         c < 100000 && !(conflict.done() && hit.done()); ++c)
        mem.tick(c);
    ASSERT_TRUE(conflict.done() && hit.done());
    EXPECT_LT(hit.doneCycle, conflict.doneCycle);
}

TEST_F(MemsysTest, WritesDrainEventually)
{
    for (int i = 0; i < 10; ++i)
        mem.enqueueWrite({0, 0, static_cast<unsigned>(i % 8), 50, 0});
    EXPECT_FALSE(mem.drained());
    for (std::uint64_t c = 0; c < 100000 && !mem.drained(); ++c)
        mem.tick(c);
    EXPECT_TRUE(mem.drained());
    EXPECT_EQ(mem.stats().writes, 10u);
}

TEST_F(MemsysTest, RefreshHappensEveryTrefi)
{
    for (std::uint64_t c = 0; c < 3 * timing.tREFI + 10; ++c)
        mem.tick(c);
    // 4 channels x 2 ranks, ~3 refreshes each (x ranksPerAccess = 1).
    EXPECT_GE(mem.stats().refreshes, 4u * 2u * 2u);
    EXPECT_LE(mem.stats().refreshes, 4u * 2u * 4u);
}

TEST_F(MemsysTest, LockstepModeUsesLongBursts)
{
    const auto ck = modeEffects(ProtectionMode::Chipkill);
    MemorySystem ckMem(timing, ck);
    MemRequest req;
    req.addr = {0, 0, 0, 100, 5};
    ckMem.enqueueRead(&req);
    for (std::uint64_t c = 0; c < 1000 && !req.done(); ++c)
        ckMem.tick(c);
    ASSERT_TRUE(req.done());
    EXPECT_EQ(ckMem.stats().readBusCycles, 8u);
    EXPECT_DOUBLE_EQ(ckMem.stats().rankActivates,
                     ck.activateRankEquivalents);
    EXPECT_EQ(ckMem.stats().bankActivates, 1u);
}

TEST_F(MemsysTest, LotEccSpawnsExtraWrites)
{
    const auto lot = modeEffects(ProtectionMode::LotEcc);
    MemorySystem lotMem(timing, lot, 99);
    for (int i = 0; i < 2000; ++i)
        lotMem.enqueueWrite({0, 0, 0, static_cast<unsigned>(i % 32768),
                             0});
    // ~10% of writes spawn a parity update.
    EXPECT_GT(lotMem.stats().extraWrites, 120u);
    EXPECT_LT(lotMem.stats().extraWrites, 280u);
}

TEST_F(MemsysTest, QueueCapacityEnforced)
{
    std::vector<std::unique_ptr<MemRequest>> reqs;
    unsigned accepted = 0;
    while (mem.canAcceptRead(0)) {
        reqs.push_back(std::make_unique<MemRequest>());
        reqs.back()->addr = {0, 0, 0, accepted, 0};
        mem.enqueueRead(reqs.back().get());
        ++accepted;
    }
    EXPECT_EQ(accepted, 32u);
}

} // namespace
} // namespace xed::perfsim
