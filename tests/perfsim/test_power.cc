#include <gtest/gtest.h>

#include "perfsim/power.hh"

namespace xed::perfsim
{
namespace
{

TEST(Power, ZeroCyclesIsZeroPower)
{
    const auto p = computeMemoryPower({}, 0, {});
    EXPECT_EQ(p.total(), 0.0);
}

TEST(Power, IdleSystemIsBackgroundPlusRefresh)
{
    MemStats stats;
    PowerConfig cfg;
    const std::uint64_t cycles = 1000000;
    const auto p = computeMemoryPower(stats, cycles, cfg);
    EXPECT_GT(p.background, 0.0);
    EXPECT_EQ(p.activate, 0.0);
    EXPECT_EQ(p.readWrite, 0.0);
    EXPECT_EQ(p.refresh, 0.0);
    // 72 chips idling at IDD2N x 1.125 (on-die ECC) x VDD.
    const double expected =
        1.125 * 0.042 * 1.5 * 8.0 * 9.0;
    EXPECT_NEAR(p.background, expected, 1e-9);
}

TEST(Power, ActivityAddsDynamicComponents)
{
    MemStats stats;
    stats.reads = 10000;
    stats.writes = 4000;
    stats.readBusCycles = 40000;
    stats.writeBusCycles = 16000;
    stats.rankActivates = 8000;
    stats.refreshes = 160;
    const std::uint64_t cycles = 1000000;
    const auto p = computeMemoryPower(stats, cycles, {});
    EXPECT_GT(p.activate, 0.0);
    EXPECT_GT(p.readWrite, 0.0);
    EXPECT_GT(p.refresh, 0.0);
    EXPECT_GT(p.total(), p.background);
}

TEST(Power, BusyBackgroundExceedsIdleBackground)
{
    MemStats idle;
    MemStats busy;
    busy.readBusCycles = 3000000; // high utilization
    const auto pi = computeMemoryPower(idle, 1000000, {});
    const auto pb = computeMemoryPower(busy, 1000000, {});
    EXPECT_GT(pb.background, pi.background);
}

TEST(Power, IoEnergyScaleAppliesToBurstsOnly)
{
    MemStats stats;
    stats.reads = 10000;
    stats.rankActivates = 5000;
    PowerConfig base;
    PowerConfig scaled;
    scaled.ioEnergyScale = 1.5;
    const auto p0 = computeMemoryPower(stats, 1000000, base);
    const auto p1 = computeMemoryPower(stats, 1000000, scaled);
    EXPECT_NEAR(p1.readWrite / p0.readWrite, 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(p1.activate, p0.activate);
    EXPECT_DOUBLE_EQ(p1.background, p0.background);
}

TEST(Power, LongerRunLowersAveragePowerForSameWork)
{
    // The effect behind Figure 12's Chipkill result: same event counts
    // over more time -> lower average dynamic power.
    MemStats stats;
    stats.reads = 10000;
    stats.rankActivates = 8000;
    const auto fast = computeMemoryPower(stats, 1000000, {});
    const auto slow = computeMemoryPower(stats, 1210000, {});
    EXPECT_LT(slow.activate, fast.activate);
    EXPECT_LT(slow.readWrite, fast.readWrite);
}

} // namespace
} // namespace xed::perfsim
