/**
 * @file
 * Tests for the log-bucketed concurrent Histogram (common/metrics.hh):
 * bucket-index goldens, the 1/16-relative-width quantile accuracy
 * bound, the exact/associative/commutative merge contract, and a
 * many-thread registration+update race (also exercised under TSan by
 * scripts/check_campaign_tsan.sh via `ctest -L obs`).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hh"

namespace xed
{
namespace
{

TEST(Histogram, UnderflowBucketCatchesUnusableValues)
{
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              0u);
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<double>::infinity()),
              0u);
}

TEST(Histogram, BucketIndexGoldens)
{
    // 1.0 = 0.5 * 2^1: the first sub-bucket of the exponent-1 octave.
    const unsigned octave1 =
        1 +
        static_cast<unsigned>(1 - Histogram::minExponent) *
            Histogram::subBuckets;
    EXPECT_EQ(Histogram::bucketIndex(1.0), octave1);
    EXPECT_EQ(Histogram::bucketIndex(1.5), octave1 + 4);
    EXPECT_EQ(Histogram::bucketIndex(1.999), octave1 + 7);
    EXPECT_EQ(Histogram::bucketIndex(2.0),
              octave1 + Histogram::subBuckets);
    // Values outside the tracked [2^-32, 2^32) range clamp to the
    // edge buckets -- update() must never index past the array.
    EXPECT_EQ(Histogram::bucketIndex(1e-12), 1u);
    EXPECT_EQ(Histogram::bucketIndex(5e9),
              Histogram::bucketCount - 1);
    EXPECT_EQ(Histogram::bucketIndex(1e12),
              Histogram::bucketCount - 1);
    EXPECT_EQ(Histogram::bucketCount, 513u);
}

TEST(Histogram, BucketIndexIsMonotonic)
{
    unsigned last = 0;
    for (double v = 1e-10; v < 1e10; v *= 1.05) {
        const unsigned index = Histogram::bucketIndex(v);
        EXPECT_GE(index, last) << "v=" << v;
        last = index;
    }
    EXPECT_LT(last, Histogram::bucketCount);
}

TEST(Histogram, BucketValueIsWithinRelativeWidth)
{
    // Within the tracked range the representative (midpoint) of a
    // value's bucket is within half the bucket width, i.e. 1/16 of
    // the value -- the advertised quantile error bound.
    for (double v = 1e-9; v < 4e9; v *= 1.37) {
        const unsigned index = Histogram::bucketIndex(v);
        const double rep = Histogram::bucketValue(index);
        EXPECT_NEAR(rep, v, v / 16.0) << "v=" << v;
    }
}

TEST(Histogram, QuantileGoldens)
{
    Histogram empty;
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.quantile(0.5), 0.0);

    Histogram single;
    single.update(4.0);
    const double rep =
        Histogram::bucketValue(Histogram::bucketIndex(4.0));
    EXPECT_EQ(single.quantile(0.0), rep);
    EXPECT_EQ(single.quantile(0.5), rep);
    EXPECT_EQ(single.quantile(1.0), rep);

    Histogram uniform;
    for (int i = 1; i <= 100; ++i)
        uniform.update(static_cast<double>(i));
    EXPECT_EQ(uniform.count(), 100u);
    EXPECT_NEAR(uniform.quantile(0.50), 50.0, 50.0 / 16.0);
    EXPECT_NEAR(uniform.quantile(0.90), 90.0, 90.0 / 16.0);
    EXPECT_NEAR(uniform.quantile(0.99), 99.0, 99.0 / 16.0);
    EXPECT_NEAR(uniform.quantile(1.00), 100.0, 100.0 / 16.0);
}

/** Deterministic pseudo-random fill spanning ~12 octaves around 1. */
void
fill(Histogram &histogram, std::uint64_t seed, unsigned n)
{
    std::uint64_t state = seed;
    for (unsigned i = 0; i < n; ++i) {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        const double frac =
            1.0 + static_cast<double>(state >> 40) * 0x1p-24;
        histogram.update(
            std::ldexp(frac, static_cast<int>(state % 12) - 6));
    }
}

void
expectEqualBuckets(const Histogram &a, const Histogram &b)
{
    for (unsigned i = 0; i < Histogram::bucketCount; ++i)
        ASSERT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
}

TEST(Histogram, MergeMatchesPooledUpdates)
{
    Histogram pooled;
    fill(pooled, 11, 500);
    fill(pooled, 23, 700);

    Histogram a;
    Histogram b;
    fill(a, 11, 500);
    fill(b, 23, 700);
    a.merge(b);

    EXPECT_EQ(a.count(), 1200u);
    expectEqualBuckets(a, pooled);
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    Histogram a;
    Histogram b;
    Histogram c;
    fill(a, 1, 400);
    fill(b, 2, 300);
    fill(c, 3, 200);

    Histogram leftFold; // (a + b) + c
    leftFold.merge(a);
    leftFold.merge(b);
    leftFold.merge(c);

    Histogram bc; // a + (b + c)
    bc.merge(b);
    bc.merge(c);
    Histogram rightFold;
    rightFold.merge(a);
    rightFold.merge(bc);

    Histogram reversed; // c + b + a
    reversed.merge(c);
    reversed.merge(b);
    reversed.merge(a);

    EXPECT_EQ(leftFold.count(), 900u);
    expectEqualBuckets(leftFold, rightFold);
    expectEqualBuckets(leftFold, reversed);
}

TEST(Histogram, ConcurrentRegistrationAndUpdatesAreLossless)
{
    MetricsRegistry registry;
    constexpr unsigned threads = 8;
    constexpr std::uint64_t perThread = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&registry, t] {
            // Mix pre-registered and on-demand lookups across threads.
            auto &shared = registry.histogram("shard.seconds");
            for (std::uint64_t i = 0; i < perThread; ++i) {
                shared.update(0.001 * static_cast<double>(1 + i % 997));
                if (i % 1024 == 0)
                    registry.histogram("per." + std::to_string(t))
                        .update(1.0);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(registry.histogram("shard.seconds").count(),
              threads * perThread);
    const auto histograms = registry.histograms();
    EXPECT_EQ(histograms.size(), 1 + threads);

    // The per-thread histograms reduce exactly.
    Histogram total;
    for (const auto &[name, histogram] : histograms)
        if (name.rfind("per.", 0) == 0)
            total.merge(*histogram);
    EXPECT_EQ(total.count(), threads * (1 + (perThread - 1) / 1024));
}

// ---- Fleet-scale accumulation ------------------------------------
// A million-DIMM fleet campaign pushes per-epoch event counts through
// these histograms for years of simulated time, so the counters must
// be exact well past 2^32. Direct updates at that scale are too slow
// for a unit test; repeated self-merge doubles the buckets exactly
// (merge loads the addend before fetch_add, so merge(self) is 2x).

/** @p doublings exact doublings of @p h via self-merge. */
void
doubleHistogram(Histogram &h, unsigned doublings)
{
    for (unsigned i = 0; i < doublings; ++i)
        h.merge(h);
}

TEST(Histogram, CountsAccumulatePastUint32Exactly)
{
    Histogram h;
    h.update(1.0);
    h.update(1.0);
    h.update(1.0);
    doubleHistogram(h, 33);
    const std::uint64_t expected = 3ull << 33; // ~2.6e10 > 2^32
    EXPECT_EQ(h.count(), expected);
    EXPECT_EQ(h.bucket(Histogram::bucketIndex(1.0)), expected);
    // A subsequent single update still lands exactly.
    h.update(1.0);
    EXPECT_EQ(h.count(), expected + 1);
}

TEST(Histogram, QuantilesInterpolateAtFleetScaleCounts)
{
    // 2^33 samples at 0.5 and 3 * 2^33 at 256.0: the quartile boundary
    // sits exactly on the low bucket's last sample.
    Histogram low, high;
    low.update(0.5);
    doubleHistogram(low, 33);
    high.update(256.0);
    high.update(256.0);
    high.update(256.0);
    doubleHistogram(high, 33);
    Histogram all;
    all.merge(low);
    all.merge(high);
    ASSERT_EQ(all.count(), 4ull << 33);

    const double lowValue =
        Histogram::bucketValue(Histogram::bucketIndex(0.5));
    const double highValue =
        Histogram::bucketValue(Histogram::bucketIndex(256.0));
    EXPECT_EQ(all.quantile(0.10), lowValue);
    EXPECT_EQ(all.quantile(0.25), lowValue);
    EXPECT_EQ(all.quantile(0.26), highValue);
    EXPECT_EQ(all.quantile(0.90), highValue);
    EXPECT_EQ(all.quantile(1.0), highValue);
}

TEST(Histogram, MergeIsAssociativeAcrossShards)
{
    // Three shard histograms with overlapping but distinct
    // distributions, reduced in every association/order: identical
    // buckets everywhere -- the property the distributed merge and
    // the fleet per-cohort reductions rely on.
    Histogram a, b, c;
    for (unsigned i = 1; i <= 60; ++i) {
        a.update(0.001 * i);
        if (i % 2 == 0)
            b.update(0.5 * i);
        if (i % 3 == 0)
            c.update(16.0 * i);
    }
    doubleHistogram(a, 30);
    doubleHistogram(b, 31);
    doubleHistogram(c, 32);

    Histogram leftFold; // (a + b) + c
    leftFold.merge(a);
    leftFold.merge(b);
    leftFold.merge(c);
    Histogram rightFold; // a + (b + c)
    Histogram bc;
    bc.merge(b);
    bc.merge(c);
    rightFold.merge(a);
    rightFold.merge(bc);
    Histogram reversed; // c + b + a
    reversed.merge(c);
    reversed.merge(b);
    reversed.merge(a);

    EXPECT_GT(leftFold.count(),
              std::uint64_t{1} << 32); // fleet-scale totals
    for (unsigned i = 0; i < Histogram::bucketCount; ++i) {
        EXPECT_EQ(leftFold.bucket(i), rightFold.bucket(i)) << i;
        EXPECT_EQ(leftFold.bucket(i), reversed.bucket(i)) << i;
    }
    EXPECT_EQ(leftFold.quantile(0.5), rightFold.quantile(0.5));
    EXPECT_EQ(leftFold.quantile(0.5), reversed.quantile(0.5));
}

} // namespace
} // namespace xed
