/**
 * @file
 * Tests for the failure-attribution counters (obs/forensics.hh): the
 * stable class/outcome names, record() semantics, and the exact,
 * order-insensitive merge contract the shard reduction relies on.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/forensics.hh"

namespace xed::obs
{
namespace
{

TEST(Forensics, FailureClassNamesAreStable)
{
    // The sidecar format and the report tables key on these strings.
    EXPECT_STREQ(failureClassName(FailureClass::Sdc), "sdc");
    EXPECT_STREQ(failureClassName(FailureClass::Due), "due");
}

TEST(Forensics, DetectionOutcomeNamesAreStableAndDistinct)
{
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::None), "none");
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::RawPassthrough),
                 "raw-passthrough");
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::DimmDetect),
                 "dimm-detect");
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::CatchWord),
                 "catch-word");
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::Collision),
                 "collision");
    EXPECT_STREQ(detectionOutcomeName(DetectionOutcome::Miscorrection),
                 "miscorrection");
    EXPECT_STREQ(
        detectionOutcomeName(DetectionOutcome::ParityReconstruction),
        "parity-reconstruction");
    std::set<std::string> names;
    for (unsigned o = 0; o < numDetectionOutcomes; ++o)
        names.insert(
            detectionOutcomeName(static_cast<DetectionOutcome>(o)));
    EXPECT_EQ(names.size(), numDetectionOutcomes);
}

TEST(Forensics, RecordCountsClassKindsAndOutcome)
{
    FailureAttribution attribution;
    EXPECT_EQ(attribution.total(), 0u);

    attribution.record(FailureClass::Sdc, 0b1, DetectionOutcome::None);
    attribution.record(FailureClass::Sdc, 0b1, DetectionOutcome::None);
    attribution.record(FailureClass::Due, 0b1001,
                       DetectionOutcome::DimmDetect);

    EXPECT_EQ(attribution.byClassKinds[0][0b1], 2u);
    EXPECT_EQ(attribution.byClassKinds[1][0b1001], 1u);
    EXPECT_EQ(attribution
                  .byOutcome[static_cast<unsigned>(
                      DetectionOutcome::None)],
              2u);
    EXPECT_EQ(attribution
                  .byOutcome[static_cast<unsigned>(
                      DetectionOutcome::DimmDetect)],
              1u);
    EXPECT_EQ(attribution.total(), 3u);
}

TEST(Forensics, MergeIsExactAndOrderInsensitive)
{
    FailureAttribution a;
    a.record(FailureClass::Sdc, 0b1, DetectionOutcome::Collision);
    a.record(FailureClass::Due, 0b10, DetectionOutcome::DimmDetect);

    FailureAttribution b;
    b.record(FailureClass::Sdc, 0b1, DetectionOutcome::Collision);
    b.record(FailureClass::Due, 0b100,
             DetectionOutcome::ParityReconstruction);

    FailureAttribution ab;
    ab.merge(a);
    ab.merge(b);
    FailureAttribution ba;
    ba.merge(b);
    ba.merge(a);

    EXPECT_EQ(ab.total(), 4u);
    EXPECT_EQ(ab.byClassKinds, ba.byClassKinds);
    EXPECT_EQ(ab.byOutcome, ba.byOutcome);
    EXPECT_EQ(ab.byClassKinds[0][0b1], 2u);
    EXPECT_EQ(ab.byClassKinds[1][0b10], 1u);
    EXPECT_EQ(ab.byClassKinds[1][0b100], 1u);
}

TEST(Forensics, MergingTheIdentityChangesNothing)
{
    FailureAttribution a;
    a.record(FailureClass::Due, 0b11, DetectionOutcome::CatchWord);
    const FailureAttribution before = a;
    a.merge(FailureAttribution{});
    EXPECT_EQ(a.byClassKinds, before.byClassKinds);
    EXPECT_EQ(a.byOutcome, before.byOutcome);
}

} // namespace
} // namespace xed::obs
