/**
 * @file
 * The tolerant telemetry reader and the histogram wire codec
 * (obs/telemetry.hh):
 *
 *  - every well-formed object line comes back in file order; torn
 *    tails (a SIGKILL mid-append), unparseable garbage and non-object
 *    lines are skipped and counted, never fatal,
 *  - record types the reader has never heard of pass through (schema
 *    growth must not break old dashboards),
 *  - the sparse bucket codec round-trips a Histogram exactly, and
 *  - decoding N workers' encoded histograms into one accumulator is
 *    the exact N-way Histogram::merge: same buckets, same quantiles
 *    as one process observing every sample.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/metrics.hh"
#include "obs/telemetry.hh"

using namespace xed;
using namespace xed::obs;

namespace
{

std::string
fixturePath(const std::string &name)
{
    return ::testing::TempDir() + "xed_telemetry_" + name + ".jsonl";
}

std::string
writeFixture(const std::string &name, const std::string &bytes)
{
    const std::string path = fixturePath(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    return path;
}

TEST(TelemetryReader, ReadsWellFormedRecordsInOrder)
{
    const std::string path = writeFixture(
        "ok", "{\"type\":\"run\",\"name\":\"a\"}\n"
              "{\"type\":\"progress\",\"unitsDone\":5}\n"
              "{\"type\":\"done\",\"complete\":true}\n");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    ASSERT_EQ(telemetry.records.size(), 3u);
    EXPECT_EQ(telemetry.skippedLines, 0u);
    EXPECT_TRUE(recordIsType(telemetry.records[0], "run"));
    EXPECT_TRUE(recordIsType(telemetry.records[1], "progress"));
    EXPECT_TRUE(recordIsType(telemetry.records[2], "done"));
}

TEST(TelemetryReader, TornFinalLineIsSkippedAndCounted)
{
    // A kill mid-append leaves a prefix of the final line. The two
    // complete records must survive; the torn one is counted.
    const std::string path = writeFixture(
        "torn", "{\"type\":\"run\"}\n"
                "{\"type\":\"progress\",\"unitsDone\":7}\n"
                "{\"type\":\"progress\",\"unitsDo");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    ASSERT_EQ(telemetry.records.size(), 2u);
    EXPECT_EQ(telemetry.skippedLines, 1u);
}

TEST(TelemetryReader, CompleteFinalLineWithoutNewlineIsKept)
{
    // Only the newline was lost: the record itself is whole and must
    // not be discarded (it may be the terminal "done").
    const std::string path = writeFixture(
        "no_newline", "{\"type\":\"run\"}\n"
                      "{\"type\":\"done\",\"complete\":true}");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    ASSERT_EQ(telemetry.records.size(), 2u);
    EXPECT_EQ(telemetry.skippedLines, 0u);
    EXPECT_NE(lastRecordOfType(telemetry, "done"), nullptr);
}

TEST(TelemetryReader, GarbageAndNonObjectLinesAreSkippedNotFatal)
{
    const std::string path = writeFixture(
        "garbage", "{\"type\":\"run\"}\n"
                   "not json at all\n"
                   "[1,2,3]\n"
                   "42\n"
                   "\n"
                   "{\"type\":\"done\"}\n");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    ASSERT_EQ(telemetry.records.size(), 2u);
    // Blank lines are not damage; the three junk lines are.
    EXPECT_EQ(telemetry.skippedLines, 3u);
}

TEST(TelemetryReader, UnknownRecordTypesPassThrough)
{
    const std::string path = writeFixture(
        "unknown", "{\"type\":\"run\"}\n"
                   "{\"type\":\"gpu-thermals\",\"celsius\":81}\n"
                   "{\"no_type_at_all\":1}\n");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    ASSERT_EQ(telemetry.records.size(), 3u);
    EXPECT_EQ(telemetry.skippedLines, 0u);
    EXPECT_NE(lastRecordOfType(telemetry, "gpu-thermals"), nullptr);
    EXPECT_EQ(lastRecordOfType(telemetry, "cpu-thermals"), nullptr);
}

TEST(TelemetryReader, MissingFileIsTheOnlyError)
{
    const TelemetryRecords telemetry = readTelemetryRecords(
        ::testing::TempDir() + "xed_telemetry_does_not_exist.jsonl");
    EXPECT_FALSE(telemetry.ok);
    EXPECT_FALSE(telemetry.error.empty());
}

TEST(TelemetryReader, EmptyFileIsOkAndEmpty)
{
    const std::string path = writeFixture("empty", "");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    EXPECT_TRUE(telemetry.ok) << telemetry.error;
    EXPECT_TRUE(telemetry.records.empty());
    EXPECT_EQ(telemetry.skippedLines, 0u);
}

TEST(TelemetryReader, LastRecordOfTypeReturnsTheNewest)
{
    const std::string path = writeFixture(
        "latest", "{\"type\":\"progress\",\"unitsDone\":1}\n"
                  "{\"type\":\"progress\",\"unitsDone\":2}\n"
                  "{\"type\":\"progress\",\"unitsDone\":3}\n");
    const TelemetryRecords telemetry = readTelemetryRecords(path);
    ASSERT_TRUE(telemetry.ok) << telemetry.error;
    const json::Value *latest = lastRecordOfType(telemetry, "progress");
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->find("unitsDone")->asUint(), 3u);
}

// -- Histogram wire codec ---------------------------------------------

void
expectSameBuckets(const Histogram &a, const Histogram &b)
{
    for (unsigned i = 0; i < Histogram::bucketCount; ++i)
        ASSERT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
}

TEST(HistogramCodec, RoundTripsExactly)
{
    Histogram original;
    for (int i = 0; i < 500; ++i)
        original.update(0.0001 * static_cast<double>(i * i + 1));
    original.update(0);     // underflow bucket
    original.update(-3.5);  // underflow bucket
    original.update(1e300); // clamps to the top edge

    const json::Value payload = histogramJson(original);
    Histogram decoded;
    ASSERT_TRUE(histogramFromJson(payload, decoded));
    expectSameBuckets(original, decoded);
    EXPECT_EQ(decoded.count(), original.count());
    EXPECT_EQ(decoded.quantile(0.5), original.quantile(0.5));
}

TEST(HistogramCodec, EncodingIsSparseAndAscending)
{
    Histogram histogram;
    histogram.update(1.0);
    histogram.update(1.0);
    histogram.update(1000.0);
    const json::Value payload = histogramJson(histogram);
    ASSERT_TRUE(payload.isArray());
    ASSERT_EQ(payload.size(), 2u); // two nonzero buckets only
    EXPECT_LT(payload.at(0).at(0).asUint(), payload.at(1).at(0).asUint());
    EXPECT_EQ(payload.at(0).at(1).asUint(), 2u);
}

TEST(HistogramCodec, DecodeMergeEqualsSingleObserver)
{
    // Four "workers" each observe a disjoint slice of the sample set;
    // one reference histogram observes everything. Decoding the four
    // encoded payloads into one accumulator must reproduce the
    // reference bucket-for-bucket -- this is the exactness claim the
    // fleet-wide p50/p90/p99 rest on.
    Histogram reference;
    Histogram workers[4];
    for (int i = 0; i < 4000; ++i) {
        const double value =
            0.001 * static_cast<double>((i % 977) + 1) *
            static_cast<double>(1 + i / 1000);
        reference.update(value);
        workers[i % 4].update(value);
    }

    Histogram merged;
    for (const Histogram &worker : workers)
        ASSERT_TRUE(histogramFromJson(histogramJson(worker), merged));

    expectSameBuckets(reference, merged);
    EXPECT_EQ(merged.count(), reference.count());
    for (const double q : {0.5, 0.9, 0.99})
        EXPECT_EQ(merged.quantile(q), reference.quantile(q)) << q;
}

TEST(HistogramCodec, MalformedPayloadsAreRejected)
{
    Histogram histogram;
    const char *bad[] = {
        "{}",                       // not an array
        "[[1]]",                    // pair too short
        "[[1,2,3]]",                // pair too long
        "[[\"x\",2]]",              // non-integer index
        "[[1,2.5]]",                // non-integer count
        "[[999999,1]]",             // bucket index out of range
    };
    for (const char *text : bad) {
        const auto payload = json::parse(text);
        ASSERT_TRUE(payload.has_value()) << text;
        EXPECT_FALSE(histogramFromJson(*payload, histogram)) << text;
    }
    // An empty payload is a valid empty histogram.
    const auto empty = json::parse("[]");
    EXPECT_TRUE(histogramFromJson(*empty, histogram));
    EXPECT_EQ(histogram.bucket(0), 0u);
}

} // namespace
