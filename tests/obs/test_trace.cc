/**
 * @file
 * Tests for the in-process trace recorder (obs/trace.hh): disabled
 * spans record nothing, enabled spans land in the calling thread's
 * ring with their payload, ring wrap-around keeps the newest events
 * and counts the drops, and the Chrome-trace export is well-formed,
 * start-ordered JSON.
 *
 * TraceRecorder is a process-wide singleton, so every test runs
 * through the fixture, which leaves the recorder disabled and empty
 * for whichever test (in this binary) runs next.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "obs/trace.hh"

namespace xed::obs
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }

    static void
    reset()
    {
        TraceRecorder::instance().setEnabled(false);
        TraceRecorder::instance().setProcessLabel("");
        TraceRecorder::instance().clear();
    }
};

TEST_F(TraceTest, DisabledSpansRecordNothing)
{
    auto &recorder = TraceRecorder::instance();
    ASSERT_FALSE(recorder.enabled());
    {
        XED_TRACE_SPAN("never", "test");
        XED_TRACE_SPAN_ARG("never.arg", "test", "n", 3);
    }
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_EQ(recorder.droppedCount(), 0u);
}

TEST_F(TraceTest, EnabledSpanLandsInTheRing)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN_ARG("unit.work", "test", "items", 7);
    }
    ASSERT_EQ(recorder.eventCount(), 1u);

    const auto doc = recorder.toJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->size(), 1u);
    const json::Value &event = events->at(0);
    EXPECT_EQ(event.find("name")->asString(), "unit.work");
    EXPECT_EQ(event.find("cat")->asString(), "test");
    EXPECT_EQ(event.find("ph")->asString(), "X");
    EXPECT_EQ(event.find("pid")->asUint(), 1u);
    EXPECT_GE(event.find("dur")->asDouble(), 0.0);
    const json::Value *args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("items")->asUint(), 7u);
}

TEST_F(TraceTest, SpanWithoutPayloadOmitsArgs)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN("bare", "test");
    }
    const auto doc = recorder.toJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_EQ(events->size(), 1u);
    EXPECT_EQ(events->at(0).find("args"), nullptr);
}

TEST_F(TraceTest, RuntimeToggleStopsRecording)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN("on", "test");
    }
    recorder.setEnabled(false);
    {
        XED_TRACE_SPAN("off", "test");
    }
    EXPECT_EQ(recorder.eventCount(), 1u);
    const auto doc = recorder.toJson();
    EXPECT_EQ(doc.find("traceEvents")->at(0).find("name")->asString(),
              "on");
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDrops)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    const std::size_t capacity = recorder.capacityPerThread();
    const std::size_t extra = 100;
    for (std::size_t i = 0; i < capacity + extra; ++i) {
        XED_TRACE_SPAN("wrap", "test");
    }
    EXPECT_EQ(recorder.eventCount(), capacity);
    EXPECT_EQ(recorder.droppedCount(), extra);

    const auto doc = recorder.toJson();
    EXPECT_EQ(doc.find("traceEvents")->size(), capacity);
    EXPECT_EQ(doc.find("otherData")->find("droppedEvents")->asUint(),
              extra);
    EXPECT_EQ(
        doc.find("otherData")->find("capacityPerThread")->asUint(),
        capacity);
}

TEST_F(TraceTest, BufferRecordedCountIsMonotonicPastWrap)
{
    TraceBuffer buffer(0, 64);
    EXPECT_EQ(buffer.capacity(), 64u);
    TraceEvent event;
    event.name = "b";
    event.cat = "test";
    for (unsigned i = 0; i < 100; ++i) {
        event.startNs = i;
        buffer.record(event);
    }
    // recorded() never saturates: recorded - capacity is the recorder's
    // per-buffer drop count.
    EXPECT_EQ(buffer.recorded(), 100u);
}

TEST_F(TraceTest, ExportIsStartOrderedAcrossThreads)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN("main.span", "test");
    }
    std::thread workers[2];
    for (unsigned t = 0; t < 2; ++t) {
        workers[t] = std::thread([] {
            for (unsigned i = 0; i < 3; ++i) {
                XED_TRACE_SPAN("thread.span", "test");
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    const auto doc = recorder.toJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_EQ(events->size(), 7u);
    std::set<std::uint64_t> tids;
    double lastTs = 0;
    for (const auto &event : events->items()) {
        tids.insert(event.find("tid")->asUint());
        const double ts = event.find("ts")->asDouble();
        EXPECT_GE(ts, lastTs);
        lastTs = ts;
    }
    // Main thread plus two workers, each with its own ring.
    EXPECT_GE(tids.size(), 3u);
}

TEST_F(TraceTest, ExportToWritesParseableChromeTrace)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN_ARG("export.span", "test", "n", 1);
    }
    const std::string path =
        ::testing::TempDir() + "xed_test_trace_export.json";
    std::string error;
    ASSERT_TRUE(recorder.exportTo(path, &error)) << error;

    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = json::parse(text.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const json::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->size(), 1u);
    EXPECT_EQ(events->at(0).find("name")->asString(), "export.span");
    std::remove(path.c_str());
}

TEST_F(TraceTest, ProcessLabelBecomesChromeTraceMetadata)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    recorder.setProcessLabel("worker:host-42");
    {
        XED_TRACE_SPAN("labeled.span", "test");
    }
    const auto doc = recorder.toJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 2u);
    // Metadata event first, so viewers label the track before any
    // span lands on it.
    const json::Value &meta = events->at(0);
    EXPECT_EQ(meta.find("name")->asString(), "process_name");
    EXPECT_EQ(meta.find("ph")->asString(), "M");
    EXPECT_EQ(meta.find("args")->find("name")->asString(),
              "worker:host-42");
    EXPECT_EQ(events->at(1).find("name")->asString(), "labeled.span");
    const json::Value *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("process")->asString(), "worker:host-42");
}

TEST_F(TraceTest, NoProcessLabelMeansNoMetadataEvent)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN("plain.span", "test");
    }
    const auto doc = recorder.toJson();
    ASSERT_EQ(doc.find("traceEvents")->size(), 1u);
    EXPECT_EQ(doc.find("otherData")->find("process"), nullptr);
}

TEST_F(TraceTest, ExportToFailsCleanlyOnBadPath)
{
    std::string error;
    EXPECT_FALSE(TraceRecorder::instance().exportTo(
        "/nonexistent-dir/trace.json", &error));
    EXPECT_FALSE(error.empty());
}

TEST_F(TraceTest, ClearEmptiesEveryRing)
{
    auto &recorder = TraceRecorder::instance();
    recorder.setEnabled(true);
    {
        XED_TRACE_SPAN("gone", "test");
    }
    ASSERT_GE(recorder.eventCount(), 1u);
    recorder.clear();
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_EQ(recorder.droppedCount(), 0u);
}

} // namespace
} // namespace xed::obs
