/**
 * @file
 * Fleet observability end to end (campaign/status.hh):
 *
 *  - a real 4-worker queue directory scans to exactly the shard,
 *    unit and failure totals the single-process run of the same spec
 *    reports (the acceptance contract: status is derived from the
 *    same committed bytes the merge uses),
 *  - a worker whose lease mtime is back-dated beyond the lease
 *    lifetime classifies dead; a fresh lease classifies live,
 *  - fleet-wide shard-time quantiles come from exact cross-worker
 *    histogram merges (synthetic sidecars vs a reference histogram),
 *  - scanning is strictly read-only: every byte of the queue is
 *    identical before and after,
 *  - /metrics renders valid Prometheus text exposition (validated by
 *    a grammar checker, not substring luck), and
 *  - the serve endpoints answer over a real socket on an ephemeral
 *    port: /status.json parses, /metrics validates, junk 404s.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "campaign/runner.hh"
#include "campaign/status.hh"
#include "campaign/worker.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "obs/http.hh"
#include "obs/telemetry.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

namespace fs = std::filesystem;

CampaignSpec
statusSpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "status-test", "seed": 7171,
        "schemes": ["secded", "xed"],
        "systems": 600, "shardSystems": 100
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "xed_status_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Drain the queue with @p n sequential workers, telemetry on. */
void
runFleet(const CampaignSpec &spec, const std::string &queueDir,
         unsigned n, std::uint64_t maxShardsEach = 0)
{
    for (unsigned w = 0; w < n; ++w) {
        WorkerOptions options;
        options.queueDir = queueDir;
        options.workerId = "w" + std::to_string(w);
        options.pollSeconds = 0.01;
        options.maxShards = maxShardsEach;
        options.durable = false;
        const WorkerOutcome outcome = runWorker(spec, options);
        ASSERT_TRUE(outcome.ok) << outcome.error;
    }
}

std::map<std::string, std::string>
snapshotDir(const std::string &dir)
{
    std::map<std::string, std::string> bytes;
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        bytes[entry.path().filename().string()] = {
            std::istreambuf_iterator<char>(in), {}};
    }
    return bytes;
}

/**
 * Minimal Prometheus text-exposition validator: every line is a
 * comment (# HELP / # TYPE) or `name[{label="value",...}] number`,
 * metric names are legal, every sample's base name was TYPE-declared
 * first, and label values keep their quotes balanced.
 */
void
validatePrometheus(const std::string &text)
{
    std::set<std::string> declared;
    std::istringstream in(text);
    std::string line;
    const auto isNameChar = [](char c, bool first) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':' ||
               (!first && std::isdigit(static_cast<unsigned char>(c)));
    };
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty()) << "blank line in exposition";
        if (line[0] == '#') {
            std::istringstream fields(line);
            std::string hash, keyword, name;
            fields >> hash >> keyword >> name;
            ASSERT_TRUE(keyword == "HELP" || keyword == "TYPE")
                << line;
            if (keyword == "TYPE") {
                std::string type;
                fields >> type;
                ASSERT_TRUE(type == "counter" || type == "gauge" ||
                            type == "summary" || type == "histogram")
                    << line;
                declared.insert(name);
            }
            continue;
        }
        // Sample line: parse the name.
        std::size_t pos = 0;
        while (pos < line.size() && isNameChar(line[pos], pos == 0))
            ++pos;
        ASSERT_GT(pos, 0u) << line;
        std::string name = line.substr(0, pos);
        // Labels, if any: quotes must balance and the block must close.
        if (pos < line.size() && line[pos] == '{') {
            bool inQuote = false;
            bool closed = false;
            for (++pos; pos < line.size(); ++pos) {
                const char c = line[pos];
                if (inQuote && c == '\\') {
                    ++pos; // escaped char inside a label value
                    continue;
                }
                if (c == '"')
                    inQuote = !inQuote;
                else if (c == '}' && !inQuote) {
                    closed = true;
                    ++pos;
                    break;
                }
            }
            ASSERT_TRUE(closed && !inQuote) << line;
        }
        ASSERT_LT(pos, line.size()) << line;
        ASSERT_EQ(line[pos], ' ') << line;
        // The value must parse as a finite double consuming the rest.
        const std::string value = line.substr(pos + 1);
        char *endp = nullptr;
        std::strtod(value.c_str(), &endp);
        ASSERT_NE(endp, value.c_str()) << line;
        ASSERT_EQ(*endp, '\0') << line;
        // Summary series append _sum/_count to the declared name.
        std::string base = name;
        for (const char *suffix : {"_sum", "_count", "_bucket"}) {
            const std::string s = suffix;
            if (base.size() > s.size() &&
                base.compare(base.size() - s.size(), s.size(), s) == 0 &&
                declared.count(base.substr(0, base.size() - s.size())))
                base.resize(base.size() - s.size());
        }
        EXPECT_TRUE(declared.count(base))
            << "sample without TYPE declaration: " << line;
    }
}

} // namespace

TEST(FleetStatus, FourWorkerQueueMatchesSingleProcessRun)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("four");
    const std::string queueDir = dir + "/queue";
    // 12 shards, 4 workers, 3 shards each: every worker commits work.
    runFleet(spec, queueDir, 4, 3);

    // The single-process reference run of the same spec.
    RunOptions options;
    options.outPath = dir + "/single.jsonl";
    options.threads = 2;
    options.durableStore = false;
    const RunOutcome outcome = runCampaign(spec, options);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_TRUE(outcome.complete);

    const StatusOptions statusOptions;
    const FleetStatus queue = scanQueueDir(queueDir, statusOptions);
    ASSERT_TRUE(queue.ok) << queue.error;
    const FleetStatus store =
        scanStore(options.outPath, statusOptions);
    ASSERT_TRUE(store.ok) << store.error;

    // Exact agreement between the live queue view and the
    // single-process run: same committed bytes, same totals.
    EXPECT_EQ(queue.name, spec.name);
    EXPECT_EQ(queue.specHash, store.specHash);
    EXPECT_TRUE(queue.complete);
    EXPECT_TRUE(store.complete);
    EXPECT_EQ(queue.shardsTotal, 12u);
    EXPECT_EQ(queue.shardsDone, 12u);
    EXPECT_EQ(queue.shardsClaimed, 0u);
    EXPECT_EQ(queue.shardsPending, 0u);
    EXPECT_EQ(store.shardsDone, queue.shardsDone);
    EXPECT_EQ(queue.unitsDone, 1200u); // 600 systems x 2 schemes
    EXPECT_EQ(store.unitsDone, queue.unitsDone);
    EXPECT_EQ(store.failedUnits, queue.failedUnits);
    EXPECT_EQ(store.failuresByCell, queue.failuresByCell);
    EXPECT_EQ(store.failuresByType, queue.failuresByType);
    EXPECT_EQ(store.outcomes, queue.outcomes);

    // Four telemetry sidecars, all terminal, every shard accounted.
    EXPECT_EQ(queue.telemetryFiles, 4u);
    EXPECT_EQ(queue.workers.size(), 4u);
    std::uint64_t shardsByWorkers = 0;
    for (const WorkerStatus &worker : queue.workers) {
        EXPECT_EQ(worker.liveness, WorkerLiveness::Done) << worker.id;
        shardsByWorkers += worker.shardsDone;
    }
    EXPECT_EQ(shardsByWorkers, 12u);
    // Exact merged histogram: one sample per committed shard.
    EXPECT_EQ(queue.shardSeconds.count, 12u);
    EXPECT_EQ(queue.shardUnitsPerSec.count, 12u);

    // The canonical JSON agrees field-for-field where both sides are
    // derived from committed bytes.
    const json::Value a = statusJson(queue);
    const json::Value b = statusJson(store);
    EXPECT_EQ(*a.find("specHash"), *b.find("specHash"));
    EXPECT_EQ(*a.find("shards"), *b.find("shards"));
    EXPECT_EQ(*a.find("failures"), *b.find("failures"));
    EXPECT_EQ(a.find("units")->find("done")->asUint(),
              b.find("units")->find("done")->asUint());
}

TEST(FleetStatus, ScanIsStrictlyReadOnly)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("readonly");
    const std::string queueDir = dir + "/queue";
    runFleet(spec, queueDir, 2, 0);

    const auto before = snapshotDir(queueDir);
    const FleetStatus status = scanQueueDir(queueDir, StatusOptions{});
    ASSERT_TRUE(status.ok) << status.error;
    const auto after = snapshotDir(queueDir);
    EXPECT_EQ(before, after); // same files, byte-identical contents
}

TEST(FleetStatus, BackdatedLeaseClassifiesWorkerDead)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("dead");
    const std::string queueDir = dir + "/queue";
    // Commit 4 of the 12 shards, leaving real pending work.
    runFleet(spec, queueDir, 1, 4);

    // A dead worker: its lease's mtime is 10 lease lifetimes old.
    {
        std::ofstream lease(queueDir + "/lease-000006.json");
        lease << R"({"worker":"w-dead","shard":6})" << "\n";
    }
    fs::last_write_time(queueDir + "/lease-000006.json",
                        fs::file_time_type::clock::now() -
                            std::chrono::seconds(600));
    // A live worker: lease written just now.
    {
        std::ofstream lease(queueDir + "/lease-000007.json");
        lease << R"({"worker":"w-live","shard":7})" << "\n";
    }

    StatusOptions options;
    options.leaseSeconds = 60;
    const FleetStatus status = scanQueueDir(queueDir, options);
    ASSERT_TRUE(status.ok) << status.error;

    EXPECT_EQ(status.shardsDone, 4u);
    EXPECT_EQ(status.shardsClaimed, 2u);
    EXPECT_EQ(status.shardsPending, 6u);
    EXPECT_FALSE(status.complete);

    std::map<std::string, WorkerLiveness> liveness;
    for (const WorkerStatus &worker : status.workers)
        liveness[worker.id] = worker.liveness;
    ASSERT_TRUE(liveness.count("w-dead"));
    ASSERT_TRUE(liveness.count("w-live"));
    EXPECT_EQ(liveness["w-dead"], WorkerLiveness::Dead);
    EXPECT_EQ(liveness["w-live"], WorkerLiveness::Live);
    EXPECT_EQ(liveness["w0"], WorkerLiveness::Done);
}

TEST(FleetStatus, MergedQuantilesEqualSingleObserverHistogram)
{
    // Synthetic queue: 4 sidecars whose "hist" payloads cover
    // disjoint slices of one sample set. The scanner's merged
    // summary must equal the reference histogram's quantiles exactly.
    const std::string dir = freshDir("quantiles");
    {
        std::ofstream manifest(dir + "/queue.json");
        manifest << R"({"type":"queue","format":1,"name":"synthetic",)"
                 << R"("specHash":"feedbeef","shards":4,)"
                 << R"("forensics":false})" << "\n";
    }
    Histogram reference;
    for (unsigned w = 0; w < 4; ++w) {
        Histogram slice;
        for (int i = 0; i < 1000; ++i) {
            const double value =
                0.0005 * static_cast<double>((w * 1000 + i) % 773 + 1);
            reference.update(value);
            slice.update(value);
        }
        auto hist = json::Value::object();
        hist.set("shardSeconds", obs::histogramJson(slice));
        hist.set("shardUnitsPerSec", json::Value::array());
        auto progress = json::Value::object();
        progress.set("type", "progress");
        progress.set("unitsDone", std::uint64_t{1000});
        progress.set("hist", std::move(hist));
        std::ofstream sidecar(dir + "/worker-w" + std::to_string(w) +
                              ".telemetry.jsonl");
        sidecar << R"({"type":"run","host":"synthetic"})" << "\n"
                << json::dump(progress) << "\n";
    }

    const FleetStatus status = scanQueueDir(dir, StatusOptions{});
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.shardSeconds.count, reference.count());
    EXPECT_EQ(status.shardSeconds.p50, reference.quantile(0.50));
    EXPECT_EQ(status.shardSeconds.p90, reference.quantile(0.90));
    EXPECT_EQ(status.shardSeconds.p99, reference.quantile(0.99));
}

TEST(FleetStatus, TornTelemetryTailIsToleratedAndCounted)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("torn");
    const std::string queueDir = dir + "/queue";
    runFleet(spec, queueDir, 1, 0);

    // Tear the sidecar the way a SIGKILL mid-append would.
    {
        std::ofstream sidecar(queueDir + "/worker-w0.telemetry.jsonl",
                              std::ios::app | std::ios::binary);
        sidecar << "{\"type\":\"progress\",\"unitsDo";
    }
    const FleetStatus status = scanQueueDir(queueDir, StatusOptions{});
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.skippedTelemetryLines, 1u);
    EXPECT_TRUE(status.complete); // damage never hides real totals
    EXPECT_EQ(status.shardsDone, 12u);
}

TEST(FleetStatus, PrometheusExpositionIsValid)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("prom");
    const std::string queueDir = dir + "/queue";
    runFleet(spec, queueDir, 2, 0);

    const FleetStatus status = scanQueueDir(queueDir, StatusOptions{});
    ASSERT_TRUE(status.ok) << status.error;
    const std::string text = prometheusText(status);
    validatePrometheus(text);
    // Spot checks: identity, exact totals, the summary series.
    EXPECT_NE(text.find("xed_campaign_info{name=\"status-test\""),
              std::string::npos);
    EXPECT_NE(text.find("xed_shards{state=\"done\"} 12\n"),
              std::string::npos);
    EXPECT_NE(text.find("xed_units_done_total 1200\n"),
              std::string::npos);
    EXPECT_NE(text.find("xed_shard_seconds_count 12\n"),
              std::string::npos);
    EXPECT_NE(text.find("xed_shard_seconds{quantile=\"0.99\"}"),
              std::string::npos);
}

namespace
{

/** One blocking HTTP GET against 127.0.0.1:@p port. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return reply;
}

std::string
bodyOf(const std::string &reply)
{
    const std::size_t split = reply.find("\r\n\r\n");
    return split == std::string::npos ? "" : reply.substr(split + 4);
}

} // namespace

TEST(FleetStatus, ServeEndpointsAnswerOverARealSocket)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("serve");
    const std::string queueDir = dir + "/queue";
    runFleet(spec, queueDir, 2, 0);

    const StatusOptions options;
    obs::HttpServer server;
    std::string error;
    ASSERT_TRUE(server.start(
        0,
        [queueDir, options](const std::string &path) {
            obs::HttpResponse response;
            if (!statusEndpoint(path, queueDir, options,
                                &response.status,
                                &response.contentType,
                                &response.body))
                response = obs::httpNotFound(path);
            return response;
        },
        &error))
        << error;
    ASSERT_GT(server.port(), 0);
    std::thread serving([&server] { server.run(); });

    const std::string statusReply =
        httpGet(server.port(), "/status.json");
    EXPECT_NE(statusReply.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(statusReply.find("Content-Type: application/json"),
              std::string::npos);
    const auto doc = json::parse(bodyOf(statusReply));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("shards")->find("done")->asUint(), 12u);
    EXPECT_EQ(doc->find("name")->asString(), "status-test");

    const std::string metricsReply = httpGet(server.port(), "/metrics");
    EXPECT_NE(metricsReply.find("HTTP/1.0 200"), std::string::npos);
    validatePrometheus(bodyOf(metricsReply));

    const std::string htmlReply = httpGet(server.port(), "/");
    EXPECT_NE(htmlReply.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(htmlReply.find("text/html"), std::string::npos);

    const std::string missing = httpGet(server.port(), "/nope");
    EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

    server.stop();
    serving.join();
}

TEST(FleetStatus, ReportJsonSchemaFromStoreScan)
{
    const CampaignSpec spec = statusSpec();
    const std::string dir = freshDir("store");
    RunOptions options;
    options.outPath = dir + "/out.jsonl";
    options.threads = 2;
    options.durableStore = false;
    const RunOutcome outcome = runCampaign(spec, options);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // Scanning the sidecar path resolves to the store.
    const FleetStatus status =
        scanStatusSource(dir + "/out.jsonl.telemetry.jsonl",
                         StatusOptions{});
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.source, "store");
    EXPECT_TRUE(status.complete);
    EXPECT_EQ(status.shardsDone, 12u);
    ASSERT_EQ(status.workers.size(), 1u);
    EXPECT_EQ(status.workers[0].liveness, WorkerLiveness::Done);

    const json::Value doc = statusJson(status);
    for (const char *key : {"type", "source", "name", "specHash",
                            "complete", "shards", "units", "failures",
                            "throughput", "workers", "telemetry"})
        EXPECT_NE(doc.find(key), nullptr) << key;
}

TEST(FleetStatus, MissingQueueIsACleanError)
{
    const FleetStatus status = scanQueueDir(
        ::testing::TempDir() + "xed_status_nonexistent",
        StatusOptions{});
    EXPECT_FALSE(status.ok);
    EXPECT_FALSE(status.error.empty());
    const json::Value doc = statusJson(status);
    EXPECT_NE(doc.find("error"), nullptr);
}

