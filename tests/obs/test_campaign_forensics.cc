/**
 * @file
 * Tests for the campaign forensics sidecar (campaign/forensics.hh) and
 * the observability guarantees wired through it:
 *
 *  - kind-set names round-trip through every possible mask,
 *  - shard records written with forensicsShardRecord() load back via
 *    loadForensics() with exact attributions and byte offsets,
 *  - the loader tolerates torn tails / foreign lines and rejects
 *    out-of-order records,
 *  - ProgressReporter always terminates its telemetry stream: "done"
 *    when finished, "aborted" when unwound without finish(), and
 *  - enabling the trace recorder does not change engine results
 *    (tracing is RNG-neutral by construction; this pins it).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/forensics.hh"
#include "campaign/telemetry.hh"
#include "common/json.hh"
#include "common/metrics.hh"
#include "faultsim/engine.hh"
#include "faultsim/scheme.hh"
#include "obs/forensics.hh"
#include "obs/trace.hh"

namespace xed::campaign
{
namespace
{

TEST(KindsMask, NamesMatchFaultKindOrder)
{
    EXPECT_EQ(kindsMaskName(0), "none");
    EXPECT_EQ(kindsMaskName(0b1), "single-bit");
    EXPECT_EQ(kindsMaskName(0b1000), "single-row");
    EXPECT_EQ(kindsMaskName(0b1001), "single-bit+single-row");
    EXPECT_EQ(kindsMaskName(0b1100000), "multi-bank+multi-rank");
}

TEST(KindsMask, EveryMaskRoundTrips)
{
    for (unsigned mask = 0;
         mask < obs::FailureAttribution::maxKindMasks; ++mask) {
        const auto parsed = kindsMaskFromName(kindsMaskName(mask));
        ASSERT_TRUE(parsed.has_value()) << kindsMaskName(mask);
        EXPECT_EQ(*parsed, mask);
    }
}

TEST(KindsMask, UnknownNamesAreRejected)
{
    EXPECT_FALSE(kindsMaskFromName("bogus").has_value());
    EXPECT_FALSE(kindsMaskFromName("single-bit+bogus").has_value());
    EXPECT_FALSE(kindsMaskFromName("").has_value());
}

TEST(AttributionJson, ListsOnlyNonZeroEntries)
{
    obs::FailureAttribution attribution;
    attribution.record(obs::FailureClass::Sdc, 0b1,
                       obs::DetectionOutcome::Collision);
    attribution.record(obs::FailureClass::Sdc, 0b1,
                       obs::DetectionOutcome::Collision);
    attribution.record(obs::FailureClass::Due, 0b11,
                       obs::DetectionOutcome::DimmDetect);

    const auto doc = attributionJson(attribution);
    const json::Value *failures = doc.find("failures");
    ASSERT_NE(failures, nullptr);
    ASSERT_EQ(failures->size(), 2u);
    EXPECT_EQ(failures->find("sdc")->find("single-bit")->asUint(), 2u);
    EXPECT_EQ(failures->find("due")
                  ->find("single-bit+single-word")
                  ->asUint(),
              1u);
    const json::Value *outcomes = doc.find("outcomes");
    ASSERT_NE(outcomes, nullptr);
    ASSERT_EQ(outcomes->size(), 2u);
    EXPECT_EQ(outcomes->find("collision")->asUint(), 2u);
    EXPECT_EQ(outcomes->find("dimm-detect")->asUint(), 1u);
}

/** A small synthetic shard result with a known attribution. */
faultsim::McResult
syntheticResult(std::uint64_t firstSystem)
{
    faultsim::McResult mc;
    mc.attribution.record(obs::FailureClass::Due, 0b1001,
                          obs::DetectionOutcome::DimmDetect);
    mc.attribution.record(obs::FailureClass::Sdc, 0b1,
                          obs::DetectionOutcome::None);
    faultsim::AutopsyRecord autopsy;
    autopsy.system = firstSystem;
    autopsy.timeHours = 1234.5;
    autopsy.type = "due-double-bit";
    autopsy.kindsMask = 0b1001;
    autopsy.cls = obs::FailureClass::Due;
    autopsy.outcome = obs::DetectionOutcome::DimmDetect;
    mc.autopsy.push_back(autopsy);
    return mc;
}

std::string
shardLine(std::uint64_t index)
{
    ShardTask task;
    task.index = index;
    task.point = 0;
    task.cell = static_cast<unsigned>(index % 2);
    task.begin = index * 1000;
    task.end = (index + 1) * 1000;
    return json::dump(
        forensicsShardRecord(task, syntheticResult(task.begin)));
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(ForensicsSidecar, ShardRecordsRoundTripThroughLoad)
{
    const std::string line0 = shardLine(0);
    const std::string line1 = shardLine(1);
    const std::string path = tempPath("xed_test_forensics_rt.jsonl");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << line0 << '\n' << line1 << '\n';
    }

    const LoadedForensics loaded = loadForensics(path);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.shardRecords, 2u);
    ASSERT_EQ(loaded.bytesAfterShard.size(), 2u);
    EXPECT_EQ(loaded.bytesAfterShard[0],
              static_cast<long long>(line0.size() + 1));
    EXPECT_EQ(loaded.bytesAfterShard[1],
              static_cast<long long>(line0.size() + line1.size() + 2));
    EXPECT_EQ(loaded.validBytes, loaded.bytesAfterShard[1]);

    ASSERT_EQ(loaded.attributions.size(), 2u);
    const auto expected = syntheticResult(0).attribution;
    for (const auto &attribution : loaded.attributions) {
        EXPECT_EQ(attribution.byClassKinds, expected.byClassKinds);
        EXPECT_EQ(attribution.byOutcome, expected.byOutcome);
    }
    std::remove(path.c_str());
}

TEST(ForensicsSidecar, SummariesAndTornTailDoNotExtendThePrefix)
{
    const std::string line0 = shardLine(0);
    const std::string summary = json::dump(forensicsSummaryRecord(
        0, 0, "secded", syntheticResult(0)));
    const std::string path = tempPath("xed_test_forensics_torn.jsonl");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        // A completed run's summary plus a torn half-written record.
        out << line0 << '\n'
            << summary << '\n'
            << shardLine(1).substr(0, 17);
    }

    const LoadedForensics loaded = loadForensics(path);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.shardRecords, 1u);
    EXPECT_EQ(loaded.validBytes,
              static_cast<long long>(line0.size() + 1));
    std::remove(path.c_str());
}

TEST(ForensicsSidecar, ForeignLineEndsThePrefixQuietly)
{
    const std::string path =
        tempPath("xed_test_forensics_foreign.jsonl");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << shardLine(0) << '\n'
            << "not json at all\n"
            << shardLine(1) << '\n';
    }
    const LoadedForensics loaded = loadForensics(path);
    EXPECT_TRUE(loaded.ok);
    EXPECT_EQ(loaded.shardRecords, 1u);
    std::remove(path.c_str());
}

TEST(ForensicsSidecar, OutOfOrderRecordsAreRejected)
{
    const std::string path =
        tempPath("xed_test_forensics_order.jsonl");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << shardLine(0) << '\n' << shardLine(2) << '\n';
    }
    const LoadedForensics loaded = loadForensics(path);
    EXPECT_FALSE(loaded.ok);
    EXPECT_FALSE(loaded.error.empty());
    std::remove(path.c_str());
}

TEST(ForensicsSidecar, MissingFileIsAnError)
{
    const LoadedForensics loaded =
        loadForensics(tempPath("xed_test_forensics_missing.jsonl"));
    EXPECT_FALSE(loaded.ok);
    EXPECT_FALSE(loaded.error.empty());
}

TEST(ForensicsSidecar, PathIsDerivedFromTheStorePath)
{
    EXPECT_EQ(forensicsPath("results/fig07.jsonl"),
              "results/fig07.jsonl.forensics.jsonl");
}

/** Parse every line of a telemetry sidecar. */
std::vector<json::Value>
telemetryLines(const std::string &path)
{
    std::vector<json::Value> records;
    std::ifstream in(path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
        std::string error;
        auto record = json::parse(line, &error);
        EXPECT_TRUE(record.has_value()) << error << ": " << line;
        if (record)
            records.push_back(std::move(*record));
    }
    return records;
}

TEST(ProgressReporter, UnwindWithoutFinishEmitsAborted)
{
    const std::string path =
        tempPath("xed_test_telemetry_aborted.jsonl");
    std::remove(path.c_str());
    MetricsRegistry registry;
    faultsim::McProgress progress;
    {
        ProgressReporter::Setup setup;
        setup.intervalSeconds = 0; // no sampler thread
        setup.sidecarPath = path;
        ProgressReporter reporter(setup, registry, progress);
        reporter.start(runMetadata("probe", "hash", 1, 0));
        // Destroyed without finish(): a worker exception unwound.
    }
    const auto records = telemetryLines(path);
    ASSERT_GE(records.size(), 2u);
    EXPECT_EQ(records.front().find("type")->asString(), "run");
    const auto &last = records.back();
    EXPECT_EQ(last.find("type")->asString(), "aborted");
    EXPECT_FALSE(last.find("complete")->asBool());
    EXPECT_GE(last.find("wallSeconds")->asDouble(), 0.0);
    std::remove(path.c_str());
}

TEST(ProgressReporter, FinishSuppressesTheAbortedRecord)
{
    const std::string path = tempPath("xed_test_telemetry_done.jsonl");
    std::remove(path.c_str());
    MetricsRegistry registry;
    faultsim::McProgress progress;
    {
        ProgressReporter::Setup setup;
        setup.intervalSeconds = 0;
        setup.sidecarPath = path;
        ProgressReporter reporter(setup, registry, progress);
        reporter.start(runMetadata("probe", "hash", 1, 0));
        reporter.finish(true);
    }
    const auto records = telemetryLines(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records.front().find("type")->asString(), "run");
    const auto &last = records.back();
    EXPECT_EQ(last.find("type")->asString(), "done");
    EXPECT_TRUE(last.find("complete")->asBool());
    // The run manifest carries the build provenance record.
    const json::Value *build = records.front().find("build");
    ASSERT_NE(build, nullptr);
    EXPECT_NE(build->find("git"), nullptr);
    EXPECT_NE(build->find("compiler"), nullptr);
    std::remove(path.c_str());
}

TEST(ProgressReporter, EtaOmittedWithoutLiveRate)
{
    MetricsRegistry registry;
    faultsim::McProgress progress;
    registry.counter("units.total").add(1000);
    ProgressReporter::Setup setup;
    setup.intervalSeconds = 0;
    ProgressReporter reporter(setup, registry, progress);

    // No live-simulated units yet: a 0.0 ETA would read as "done
    // now", so the key must be absent entirely.
    const auto idle = reporter.sample();
    EXPECT_EQ(idle.find("etaSeconds"), nullptr);
    EXPECT_EQ(idle.find("unitsPerSec")->asDouble(), 0.0);

    progress.systemsDone.store(500);
    const auto live = reporter.sample();
    const json::Value *eta = live.find("etaSeconds");
    ASSERT_NE(eta, nullptr);
    EXPECT_GT(eta->asDouble(), 0.0);
    EXPECT_GT(live.find("unitsPerSec")->asDouble(), 0.0);
}

TEST(ProgressReporter, EtaOmittedWhenAllUnitsWereReplayed)
{
    MetricsRegistry registry;
    faultsim::McProgress progress;
    registry.counter("units.total").add(1000);
    registry.counter("units.replayed").add(400);
    progress.systemsDone.store(400);
    ProgressReporter::Setup setup;
    setup.intervalSeconds = 0;
    ProgressReporter reporter(setup, registry, progress);

    // Replayed shards were read from disk, not simulated; they carry
    // no rate information, so there is still no estimate.
    const auto record = reporter.sample();
    EXPECT_EQ(record.find("etaSeconds"), nullptr);
}

TEST(RunMetadata, RecordsWorkerProvenanceOnlyWhenGiven)
{
    const auto plain = runMetadata("probe", "hash", 2, 0);
    EXPECT_EQ(plain.find("worker"), nullptr);

    const auto tagged = runMetadata("probe", "hash", 1, 0, "host-77");
    const json::Value *worker = tagged.find("worker");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->asString(), "host-77");
}

} // namespace
} // namespace xed::campaign

namespace xed::faultsim
{
namespace
{

/** Field-by-field equality of two shard results. */
void
expectSameResult(const McResult &a, const McResult &b)
{
    for (unsigned y = 0; y < a.failByYear.size(); ++y) {
        EXPECT_EQ(a.failByYear[y].trials(), b.failByYear[y].trials());
        EXPECT_EQ(a.failByYear[y].successes(),
                  b.failByYear[y].successes());
    }
    EXPECT_EQ(a.failureTypes.all(), b.failureTypes.all());
    EXPECT_EQ(a.attribution.byClassKinds, b.attribution.byClassKinds);
    EXPECT_EQ(a.attribution.byOutcome, b.attribution.byOutcome);
    ASSERT_EQ(a.autopsy.size(), b.autopsy.size());
    for (std::size_t i = 0; i < a.autopsy.size(); ++i) {
        EXPECT_EQ(a.autopsy[i].system, b.autopsy[i].system);
        EXPECT_EQ(a.autopsy[i].timeHours, b.autopsy[i].timeHours);
        EXPECT_STREQ(a.autopsy[i].type, b.autopsy[i].type);
    }
}

TEST(TraceNeutrality, EnablingTheRecorderDoesNotChangeResults)
{
    // The observability contract: tracing never draws from any Rng
    // and never reorders work, so an instrumented run is bit-identical
    // to an uninstrumented one.
    McConfig cfg;
    cfg.seed = 61799;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});

    auto &recorder = obs::TraceRecorder::instance();
    recorder.setEnabled(false);
    const McResult plain = runMonteCarloShard(*scheme, cfg, 0, 3000);

    recorder.setEnabled(true);
    const McResult traced = runMonteCarloShard(*scheme, cfg, 0, 3000);
    recorder.setEnabled(false);
    recorder.clear();

    EXPECT_GT(plain.failByYear[7].trials(), 0u);
    expectSameResult(plain, traced);
}

} // namespace
} // namespace xed::faultsim
