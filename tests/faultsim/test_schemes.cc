#include <gtest/gtest.h>

#include "faultsim/scheme.hh"

namespace xed::faultsim
{
namespace
{

class SchemeTest : public ::testing::Test
{
  protected:
    FaultEvent
    event(unsigned rank, unsigned chip, FaultKind kind, bool transient,
          double time, FaultRange range)
    {
        FaultEvent e;
        e.rank = rank;
        e.chip = chip;
        e.kind = kind;
        e.transient = transient;
        e.timeHours = time;
        e.range = range;
        return e;
    }

    FaultRange
    chipRange()
    {
        return {0, layout.allMask()};
    }

    FaultRange
    bankRange(unsigned bank)
    {
        return {static_cast<std::uint64_t>(bank) << 28,
                layout.rowMask() | layout.colMask() | layout.bitMask()};
    }

    FaultRange
    wordRange(std::uint64_t word)
    {
        return {word << 6, layout.bitMask()};
    }

    FaultRange
    bitRange(std::uint64_t word, unsigned bit)
    {
        return {(word << 6) | bit, 0};
    }

    dram::ChipGeometry g;
    AddressLayout layout{g};
    Rng rng{7};
    OnDieOptions onDie{}; // present, no scaling
};

TEST_F(SchemeTest, NonEccWithoutOnDieFailsOnAnything)
{
    OnDieOptions none;
    none.present = false;
    const auto scheme = makeScheme(SchemeKind::NonEcc, none);
    const std::vector<FaultEvent> events = {
        event(0, 0, FaultKind::Bit, true, 100, bitRange(1, 1))};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_DOUBLE_EQ(f->timeHours, 100);
}

TEST_F(SchemeTest, NonEccWithOnDieSurvivesBitFaults)
{
    const auto scheme = makeScheme(SchemeKind::NonEcc, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 0, FaultKind::Bit, true, 100, bitRange(1, 1)),
        event(1, 3, FaultKind::Column, false, 200,
              {3, layout.rowMask()})};
    EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(SchemeTest, NonEccWithOnDieFailsOnLargeFault)
{
    const auto scheme = makeScheme(SchemeKind::NonEcc, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 2, FaultKind::Row, false, 500,
              {7ull << 13, layout.colMask() | layout.bitMask()})};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_DOUBLE_EQ(f->timeHours, 500);
}

TEST_F(SchemeTest, SecdedWithOnDieFailsOnLargeFaultOnly)
{
    // The Figure 1 punchline: with On-Die ECC, the 9th chip's SECDED
    // adds nothing -- both it and Non-ECC fail exactly on
    // large-granularity faults.
    const auto scheme = makeScheme(SchemeKind::Secded, onDie);
    const std::vector<FaultEvent> bitOnly = {
        event(0, 0, FaultKind::Bit, true, 10, bitRange(4, 2))};
    EXPECT_FALSE(scheme->evaluateDimm(bitOnly, layout, rng).has_value());

    const std::vector<FaultEvent> withBank = {
        event(0, 0, FaultKind::Bank, false, 300, bankRange(1))};
    const auto f = scheme->evaluateDimm(withBank, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "dimm-uncorrectable");
}

TEST_F(SchemeTest, SecdedWithoutOnDieDoubleBitSameBeat)
{
    OnDieOptions none;
    none.present = false;
    const auto scheme = makeScheme(SchemeKind::Secded, none);
    // Two bit faults in the same word and same beat, different chips.
    const std::vector<FaultEvent> sameBeat = {
        event(0, 1, FaultKind::Bit, true, 100, bitRange(9, 10)),
        event(0, 5, FaultKind::Bit, true, 400, bitRange(9, 12))};
    const auto f = scheme->evaluateDimm(sameBeat, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_DOUBLE_EQ(f->timeHours, 400); // fails when the second lands

    // Same word but different beats: both bits are individually
    // correctable at the DIMM level.
    const std::vector<FaultEvent> diffBeat = {
        event(0, 1, FaultKind::Bit, true, 100, bitRange(9, 10)),
        event(0, 5, FaultKind::Bit, true, 400, bitRange(9, 60))};
    EXPECT_FALSE(scheme->evaluateDimm(diffBeat, layout, rng).has_value());
}

TEST_F(SchemeTest, XedSurvivesAnySingleChipFault)
{
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    for (const auto kind :
         {FaultKind::Bit, FaultKind::Column, FaultKind::Row,
          FaultKind::Bank, FaultKind::MultiBank}) {
        const std::vector<FaultEvent> events = {
            event(0, 4, kind, false, 100,
                  randomRange(rng, layout, kind))};
        EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value())
            << faultKindName(kind);
    }
}

TEST_F(SchemeTest, XedSurvivesMultiRankFault)
{
    // The multi-rank fault lands one chip per rank; each rank rebuilds
    // its own chip -- a key advantage over lockstep Chipkill.
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 4, FaultKind::MultiRank, false, 100, chipRange()),
        event(1, 4, FaultKind::MultiRank, false, 100, chipRange())};
    EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(SchemeTest, XedFailsOnTwoOverlappingChipFaultsInOneRank)
{
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(0, 6, FaultKind::Bank, false, 900, bankRange(0))};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "multi-chip-data-loss");
    EXPECT_DOUBLE_EQ(f->timeHours, 900);
}

TEST_F(SchemeTest, XedSurvivesTwoChipFaultsInDifferentRanks)
{
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(1, 6, FaultKind::Bank, false, 900, bankRange(0))};
    EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(SchemeTest, XedSurvivesChipFaultPlusBitFault)
{
    // Serial mode: the bit fault is corrected on-die, the chip fault is
    // rebuilt from parity (Section VII-C).
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(0, 6, FaultKind::Bit, false, 900, bitRange(77, 3))};
    EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(SchemeTest, XedTransientWordEscapeIsDue)
{
    OnDieOptions alwaysEscape = onDie;
    alwaysEscape.detectionEscapeProb = 1.0;
    const auto scheme = makeScheme(SchemeKind::Xed, alwaysEscape);
    const std::vector<FaultEvent> events = {
        event(0, 3, FaultKind::Word, true, 42, wordRange(5))};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "due-word-fault");

    // Permanent word faults are located by Intra-Line diagnosis.
    const std::vector<FaultEvent> permanent = {
        event(0, 3, FaultKind::Word, false, 42, wordRange(5))};
    EXPECT_FALSE(
        scheme->evaluateDimm(permanent, layout, rng).has_value());
}

TEST_F(SchemeTest, ChipkillSurvivesSingleChipFailsOnPair)
{
    const auto scheme = makeScheme(SchemeKind::Chipkill, onDie);
    const std::vector<FaultEvent> single = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange())};
    EXPECT_FALSE(scheme->evaluateDimm(single, layout, rng).has_value());

    // Two chip failures in the same 18-chip codeword group are
    // uncorrectable for single-symbol-correct Chipkill.
    const std::vector<FaultEvent> pair = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(0, 6, FaultKind::MultiBank, false, 800, chipRange())};
    const auto f = scheme->evaluateDimm(pair, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "double-chip");
}

TEST_F(SchemeTest, X8LockstepChipkillFailsOnMultiRankFault)
{
    // The lockstep ablation: a multi-rank fault puts two chips into the
    // same spanning codeword -- commodity-x8 Chipkill loses exactly
    // where XED does not.
    const auto scheme =
        makeScheme(SchemeKind::ChipkillX8Lockstep, onDie);
    const std::vector<FaultEvent> events = {
        event(0, 4, FaultKind::MultiRank, false, 100, chipRange()),
        event(1, 4, FaultKind::MultiRank, false, 100, chipRange())};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "double-chip");

    // The paper's 18-chip Chipkill group instead sees one chip per
    // group and survives.
    const auto x4 = makeScheme(SchemeKind::Chipkill, onDie);
    const std::vector<FaultEvent> perGroup = {
        event(0, 4, FaultKind::MultiRank, false, 100, chipRange()),
        event(1, 4, FaultKind::MultiRank, false, 100, chipRange())};
    EXPECT_FALSE(x4->evaluateDimm(perGroup, layout, rng).has_value());
}

TEST_F(SchemeTest, DoubleChipkillNeedsThreeChips)
{
    const auto scheme = makeScheme(SchemeKind::DoubleChipkill, onDie);
    const std::vector<FaultEvent> two = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(1, 6, FaultKind::MultiBank, false, 800, chipRange())};
    EXPECT_FALSE(scheme->evaluateDimm(two, layout, rng).has_value());

    const std::vector<FaultEvent> three = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(1, 6, FaultKind::MultiBank, false, 800, chipRange()),
        event(0, 9, FaultKind::Bank, false, 1200, bankRange(0))};
    const auto f = scheme->evaluateDimm(three, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "triple-chip");
    EXPECT_DOUBLE_EQ(f->timeHours, 1200);
}

TEST_F(SchemeTest, DoubleChipkillThreeChipsDisjointWordsSurvive)
{
    const auto scheme = makeScheme(SchemeKind::DoubleChipkill, onDie);
    // Three row faults in different banks never share a word.
    const std::vector<FaultEvent> events = {
        event(0, 2, FaultKind::Row, false, 100,
              {0ull << 28 | (5ull << 13),
               layout.colMask() | layout.bitMask()}),
        event(0, 6, FaultKind::Row, false, 800,
              {1ull << 28 | (5ull << 13),
               layout.colMask() | layout.bitMask()}),
        event(1, 9, FaultKind::Row, false, 1200,
              {2ull << 28 | (5ull << 13),
               layout.colMask() | layout.bitMask()})};
    EXPECT_FALSE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(SchemeTest, XedChipkillCorrectsTwoChipsPerRank)
{
    const auto scheme = makeScheme(SchemeKind::XedChipkill, onDie);
    const std::vector<FaultEvent> two = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(0, 6, FaultKind::MultiBank, false, 800, chipRange())};
    EXPECT_FALSE(scheme->evaluateDimm(two, layout, rng).has_value());

    const std::vector<FaultEvent> three = {
        event(0, 2, FaultKind::MultiBank, false, 100, chipRange()),
        event(0, 6, FaultKind::MultiBank, false, 800, chipRange()),
        event(0, 9, FaultKind::MultiBank, false, 1500, chipRange())};
    const auto f = scheme->evaluateDimm(three, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "triple-chip");
}

TEST_F(SchemeTest, XedChipkillEscapePlusErasureIsDue)
{
    OnDieOptions alwaysEscape = onDie;
    alwaysEscape.detectionEscapeProb = 1.0;
    const auto scheme = makeScheme(SchemeKind::XedChipkill, alwaysEscape);
    const std::vector<FaultEvent> events = {
        event(0, 3, FaultKind::Word, true, 42, wordRange(5)),
        event(0, 9, FaultKind::MultiBank, false, 900, chipRange())};
    const auto f = scheme->evaluateDimm(events, layout, rng);
    ASSERT_TRUE(f.has_value());
    EXPECT_STREQ(f->type, "due-escape-plus-erasure");
}

TEST_F(SchemeTest, LockstepFamilyAbsorbsOrDiesOnMultiRank)
{
    // The Figure 9/10 configuration: a multi-rank fault lands two
    // chips inside the codeword group. Single-symbol-correct Chipkill
    // dies; the 2-erasure XED+Chipkill and Double-Chipkill absorb it.
    const std::vector<FaultEvent> multiRank = {
        event(0, 4, FaultKind::MultiRank, false, 100, chipRange()),
        event(1, 4, FaultKind::MultiRank, false, 100, chipRange())};

    const auto sck = makeScheme(SchemeKind::ChipkillX8Lockstep, onDie);
    EXPECT_TRUE(sck->evaluateDimm(multiRank, layout, rng).has_value());

    const auto xck = makeScheme(SchemeKind::XedChipkillLockstep, onDie);
    EXPECT_FALSE(xck->evaluateDimm(multiRank, layout, rng).has_value());

    const auto dck =
        makeScheme(SchemeKind::DoubleChipkillLockstep, onDie);
    EXPECT_FALSE(dck->evaluateDimm(multiRank, layout, rng).has_value());

    // ...but a third overlapping chip defeats both 2-chip correctors.
    auto triple = multiRank;
    triple.push_back(
        event(0, 7, FaultKind::MultiBank, false, 500, chipRange()));
    EXPECT_TRUE(xck->evaluateDimm(triple, layout, rng).has_value());
    EXPECT_TRUE(dck->evaluateDimm(triple, layout, rng).has_value());
}

TEST_F(SchemeTest, LockstepShapes)
{
    EXPECT_EQ(makeScheme(SchemeKind::XedChipkillLockstep, onDie)
                  ->dimmShape()
                  .chips(),
              18u);
    EXPECT_EQ(makeScheme(SchemeKind::DoubleChipkillLockstep, onDie)
                  ->dimmShape()
                  .chips(),
              36u);
    EXPECT_TRUE(makeScheme(SchemeKind::DoubleChipkillLockstep, onDie)
                    ->dimmShape()
                    .twinMultiRank);
    EXPECT_FALSE(makeScheme(SchemeKind::DoubleChipkill, onDie)
                     ->dimmShape()
                     .twinMultiRank);
}

TEST_F(SchemeTest, SchemeNamesAndShapes)
{
    EXPECT_EQ(makeScheme(SchemeKind::Xed, onDie)->dimmShape().chips(),
              18u);
    EXPECT_EQ(makeScheme(SchemeKind::NonEcc, onDie)->dimmShape().chips(),
              16u);
    EXPECT_EQ(
        makeScheme(SchemeKind::DoubleChipkill, onDie)->dimmShape().chips(),
        36u);
    EXPECT_FALSE(makeScheme(SchemeKind::Chipkill, onDie)->name().empty());
    EXPECT_STREQ(schemeKindName(SchemeKind::XedChipkill), "xed-chipkill");
}

} // namespace
} // namespace xed::faultsim
