/**
 * @file
 * Counting-allocator proof of the sampling kernel's allocation
 * contract: after the per-shard setup (SampleContext, the reserved
 * event buffer, the reserved EvalScratch), the system loop performs
 * ZERO heap allocations in steady state. Verified by replacing global
 * operator new with a counting forwarder and comparing shard runs of
 * different lengths -- identical setup, so any count difference is a
 * per-system allocation.
 *
 * This binary must stay separate from test_faultsim: the global
 * operator new replacement applies process-wide.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/units.hh"
#include "dram/geometry.hh"
#include "faultsim/engine.hh"
#include "faultsim/fault_model.hh"
#include "faultsim/scheme.hh"
#include "obs/trace.hh"

namespace
{

std::atomic<std::uint64_t> allocationCount{0};

void *
countedAlloc(std::size_t size)
{
    ++allocationCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace xed::faultsim
{
namespace
{

/** Allocations performed by one serial shard run of [0, systems). */
std::uint64_t
shardAllocations(const Scheme &scheme, const McConfig &cfg,
                 std::uint64_t systems)
{
    const std::uint64_t before =
        allocationCount.load(std::memory_order_relaxed);
    const McResult result = runMonteCarloShard(scheme, cfg, 0, systems);
    const std::uint64_t after =
        allocationCount.load(std::memory_order_relaxed);
    // Keep the result alive across the second load so its destructor
    // isn't interleaved with the measurement.
    EXPECT_LE(result.failByYear[7].successes(), systems);
    return after - before;
}

TEST(AllocationContract, SteadyStateIsAllocationFreeBitOnlyFit)
{
    // Bit faults only, scaled up so most systems sample and evaluate
    // several events, all of which SECDED corrects: no failures, no
    // failure-type counter insertions, nothing but the kernel. Every
    // allocation must come from the fixed per-shard setup, so the
    // count is independent of the number of systems simulated.
    McConfig cfg;
    cfg.seed = 61799;
    for (auto &entry : cfg.fit.rates)
        entry = {0.0, 0.0};
    cfg.fit.entry(FaultKind::Bit) = {142.0, 186.0}; // 10x Table I
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});

    const std::uint64_t shortRun = shardAllocations(*scheme, cfg, 500);
    const std::uint64_t longRun = shardAllocations(*scheme, cfg, 4000);
    EXPECT_EQ(shortRun, longRun)
        << (longRun - shortRun) << " steady-state allocations leaked "
        << "into 3500 extra systems";
}

TEST(AllocationContract, SteadyStateIsAllocationFreeTableOneRates)
{
    // Full Table I rates and real failures. The only steady-state
    // allocation candidate left is the failure-type counter map, which
    // allocates once per DISTINCT type; both runs see every type
    // inside the shorter prefix, so the totals must still match.
    McConfig cfg;
    cfg.seed = 61799;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});

    const std::uint64_t shortRun = shardAllocations(*scheme, cfg, 1500);
    const std::uint64_t longRun = shardAllocations(*scheme, cfg, 3000);
    EXPECT_EQ(shortRun, longRun);
}

TEST(AllocationContract, SteadyStateIsAllocationFreeWithTracingOn)
{
    // The traced hot path must be as allocation-free as the untraced
    // one: the only tracing allocation is the per-thread ring buffer,
    // registered on this thread's first recorded span (inside the
    // warm-up run), after which recording is a struct store into the
    // preallocated ring.
    McConfig cfg;
    cfg.seed = 61799;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});

    auto &recorder = obs::TraceRecorder::instance();
    recorder.setEnabled(true);
    shardAllocations(*scheme, cfg, 1500); // ring + counter-key warm-up

    const std::uint64_t shortRun = shardAllocations(*scheme, cfg, 1500);
    const std::uint64_t longRun = shardAllocations(*scheme, cfg, 3000);
    recorder.setEnabled(false);
    EXPECT_EQ(shortRun, longRun)
        << (longRun - shortRun) << " steady-state allocations leaked "
        << "into 1500 extra traced systems";
}

TEST(AllocationContract, SurvivorDeferralBatchIsAllocationFree)
{
    // The batched faulty path (DESIGN.md section 4j): the survivor
    // buffer is reserved during shard setup, so no evaluation batch
    // size may introduce per-system allocations -- the shard total
    // stays independent of the system count at every batch size.
    McConfig cfg;
    cfg.seed = 61799;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    for (const unsigned evalBatch : {1u, 8u, 1024u}) {
        cfg.evalBatch = evalBatch;
        const std::uint64_t shortRun =
            shardAllocations(*scheme, cfg, 1500);
        const std::uint64_t longRun =
            shardAllocations(*scheme, cfg, 3000);
        EXPECT_EQ(shortRun, longRun)
            << "evalBatch " << evalBatch << ": "
            << (longRun - shortRun)
            << " steady-state allocations leaked into 1500 extra "
            << "systems";
    }
}

TEST(AllocationContract, EvaluateDimmWithScratchDoesNotAllocate)
{
    // Direct check of the Scheme::evaluateDimm scratch contract: with
    // a warmed scratch, re-evaluating event sets allocates nothing.
    const dram::ChipGeometry geometry{};
    const AddressLayout layout(geometry);
    const auto scheme = makeScheme(SchemeKind::Chipkill, OnDieOptions{});
    // 20x the paper lifetime makes most DIMMs sample several events
    // (lambda ~ 3) without risking the 64-slot reserve high-water.
    const SampleContext ctx(FitTable{}, layout, scheme->dimmShape(),
                            20.0 * evaluationHours);

    std::vector<FaultEvent> events;
    events.reserve(64);
    EvalScratch scratch;
    scratch.reserve(64);

    Rng rng = Rng::stream(61799, 0);
    // Warm-up pass: let vectors inside the RS decoder (if any) and the
    // scratch reach their high-water marks.
    for (int i = 0; i < 2000; ++i) {
        sampleDimmFaultsInto(rng, ctx, events);
        if (!events.empty())
            scheme->evaluateDimm(events, layout, rng, scratch);
    }

    const std::uint64_t before =
        allocationCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 2000; ++i) {
        sampleDimmFaultsInto(rng, ctx, events);
        if (!events.empty())
            scheme->evaluateDimm(events, layout, rng, scratch);
    }
    const std::uint64_t after =
        allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

} // namespace
} // namespace xed::faultsim
