/**
 * Tests for the patrol-scrubbing (repair) extension: transient faults
 * heal at scrub boundaries, so only *concurrent* faults can combine
 * into multi-chip failures.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

class ScrubbingTest : public ::testing::Test
{
  protected:
    FaultEvent
    chipFault(unsigned rank, unsigned chip, bool transient, double t,
              double expires)
    {
        FaultEvent e;
        e.rank = rank;
        e.chip = chip;
        e.kind = FaultKind::MultiBank;
        e.transient = transient;
        e.timeHours = t;
        e.expiresHours = expires;
        e.range = {0, layout.allMask()};
        return e;
    }

    dram::ChipGeometry g;
    AddressLayout layout{g};
    Rng rng{1};
};

TEST_F(ScrubbingTest, ConcurrencyPredicate)
{
    const auto a = chipFault(0, 1, true, 100, 200);
    const auto b = chipFault(0, 2, true, 150, 300);
    const auto c = chipFault(0, 3, true, 250, 400);
    EXPECT_TRUE(a.concurrentWith(b));
    EXPECT_TRUE(b.concurrentWith(a));
    EXPECT_FALSE(a.concurrentWith(c));
    EXPECT_TRUE(b.concurrentWith(c));
}

TEST_F(ScrubbingTest, NonConcurrentTransientsDoNotKillXed)
{
    const auto scheme = makeScheme(SchemeKind::Xed, OnDieOptions{});
    // Two whole-chip transients in the same rank but in different
    // scrub windows: each was healed before the other arrived.
    const std::vector<FaultEvent> sequential = {
        chipFault(0, 1, true, 100, 168),
        chipFault(0, 5, true, 500, 672)};
    EXPECT_FALSE(
        scheme->evaluateDimm(sequential, layout, rng).has_value());

    // The same two faults without scrubbing (infinite lifetime) fail.
    const std::vector<FaultEvent> persistent = {
        chipFault(0, 1, true, 100, 1e300),
        chipFault(0, 5, true, 500, 1e300)};
    EXPECT_TRUE(
        scheme->evaluateDimm(persistent, layout, rng).has_value());
}

TEST_F(ScrubbingTest, PermanentFaultsUnaffectedByScrubbing)
{
    const auto scheme = makeScheme(SchemeKind::Xed, OnDieOptions{});
    const std::vector<FaultEvent> events = {
        chipFault(0, 1, false, 100, 1e300),
        chipFault(0, 5, false, 50000, 1e300)};
    EXPECT_TRUE(scheme->evaluateDimm(events, layout, rng).has_value());
}

TEST_F(ScrubbingTest, SamplerStampsExpiryAtScrubBoundary)
{
    const FitTable fit;
    const DimmShape shape{2, 9};
    const double scrub = 168.0; // weekly
    bool sawTransient = false, sawPermanent = false;
    for (int i = 0; i < 200000 && !(sawTransient && sawPermanent);
         ++i) {
        for (const auto &e : sampleDimmFaults(rng, fit, layout, shape,
                                              evaluationHours, scrub)) {
            if (e.transient) {
                sawTransient = true;
                EXPECT_GT(e.expiresHours, e.timeHours);
                EXPECT_LE(e.expiresHours - e.timeHours, scrub);
                // Expiry sits exactly on a scrub boundary.
                const double boundary = e.expiresHours / scrub;
                EXPECT_NEAR(boundary, std::round(boundary), 1e-9);
            } else {
                sawPermanent = true;
                EXPECT_GT(e.expiresHours, 1e200);
            }
        }
    }
    EXPECT_TRUE(sawTransient);
    EXPECT_TRUE(sawPermanent);
}

TEST_F(ScrubbingTest, ScrubbingImprovesReliability)
{
    McConfig base;
    base.systems = 150000;
    base.seed = 0x5C2B;
    McConfig scrubbed = base;
    scrubbed.scrubIntervalHours = 24.0; // daily patrol scrub

    for (const auto kind : {SchemeKind::Xed, SchemeKind::Chipkill}) {
        const auto scheme = makeScheme(kind, OnDieOptions{});
        const auto without = runMonteCarlo(*scheme, base);
        const auto with = runMonteCarlo(*scheme, scrubbed);
        EXPECT_LE(with.probFailure(), without.probFailure())
            << schemeKindName(kind);
    }
}

TEST_F(ScrubbingTest, SecdedSingleFaultFailuresNotMaskedByScrub)
{
    // A single large-granularity fault defeats SECDED the moment it
    // lands; scrubbing cannot help (the error is consumed on access).
    McConfig base;
    base.systems = 100000;
    base.seed = 0x5C2C;
    McConfig scrubbed = base;
    scrubbed.scrubIntervalHours = 24.0;

    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto without = runMonteCarlo(*scheme, base);
    const auto with = runMonteCarlo(*scheme, scrubbed);
    EXPECT_NEAR(with.probFailure(), without.probFailure(),
                0.05 * without.probFailure());
}

} // namespace
} // namespace xed::faultsim
