#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hh"
#include "faultsim/fault_model.hh"

namespace xed::faultsim
{
namespace
{

class FaultModelTest : public ::testing::Test
{
  protected:
    dram::ChipGeometry g;
    AddressLayout layout{g};
    FitTable fit;
    Rng rng{0xFEED};
};

TEST_F(FaultModelTest, TableIRatesAreAsPublished)
{
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Bit).transient, 14.2);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Bit).permanent, 18.6);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Word).transient, 1.4);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Column).permanent, 5.6);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Row).permanent, 8.2);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::Bank).permanent, 10.0);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::MultiBank).transient, 0.3);
    EXPECT_DOUBLE_EQ(fit.entry(FaultKind::MultiRank).permanent, 2.8);
    EXPECT_NEAR(fit.totalFit(), 66.1, 1e-9);
}

TEST_F(FaultModelTest, PoissonMeanMatches)
{
    const double lambda = 0.25;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += samplePoisson(rng, lambda);
    EXPECT_NEAR(sum / n, lambda, 0.01);
}

TEST_F(FaultModelTest, EventCountMatchesExpectation)
{
    const DimmShape shape{2, 9};
    const double hours = evaluationHours;
    const double expected =
        fit.totalFit() * 1e-9 * hours * shape.chips();
    double total = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += sampleDimmFaults(rng, fit, layout, shape, hours).size();
    // Multi-rank events expand into 2 FaultEvents each; correct for it.
    const double multiRankShare =
        fit.entry(FaultKind::MultiRank).total() / fit.totalFit();
    const double expectedExpanded = expected * (1.0 + multiRankShare);
    EXPECT_NEAR(total / n, expectedExpanded, expectedExpanded * 0.05);
}

TEST_F(FaultModelTest, EventsAreWellFormed)
{
    const DimmShape shape{2, 9};
    for (int i = 0; i < 20000; ++i) {
        for (const auto &e :
             sampleDimmFaults(rng, fit, layout, shape, evaluationHours)) {
            EXPECT_LT(e.rank, 2u);
            EXPECT_LT(e.chip, 9u);
            EXPECT_GE(e.timeHours, 0.0);
            EXPECT_LE(e.timeHours, evaluationHours);
            EXPECT_EQ(e.range.addr & e.range.mask, 0u);
        }
    }
}

TEST_F(FaultModelTest, MultiRankEventsComeInPairs)
{
    const DimmShape shape{2, 9};
    bool sawMultiRank = false;
    for (int i = 0; i < 300000 && !sawMultiRank; ++i) {
        const auto events =
            sampleDimmFaults(rng, fit, layout, shape, evaluationHours);
        for (std::size_t j = 0; j < events.size(); ++j) {
            if (events[j].kind != FaultKind::MultiRank)
                continue;
            sawMultiRank = true;
            // Find the twin on the other rank, same chip and time.
            bool twin = false;
            for (std::size_t k = 0; k < events.size(); ++k) {
                if (k == j)
                    continue;
                if (events[k].kind == FaultKind::MultiRank &&
                    events[k].chip == events[j].chip &&
                    events[k].rank != events[j].rank &&
                    events[k].timeHours == events[j].timeHours) {
                    twin = true;
                }
            }
            EXPECT_TRUE(twin);
        }
    }
    EXPECT_TRUE(sawMultiRank);
}

TEST_F(FaultModelTest, ZeroRateKindsAreUnreachable)
{
    // Regression: a draw landing exactly on a cumulative boundary used
    // to select the kind *before* the boundary, so kindDraw == 0 with
    // a zero-rate first entry produced impossible Bit faults.
    FitTable zeroBit;
    zeroBit.entry(FaultKind::Bit) = {0.0, 0.0};
    zeroBit.entry(FaultKind::Word) = {0.0, 0.0};

    EXPECT_NE(pickFaultKind(zeroBit, 0.0), FaultKind::Bit);
    EXPECT_NE(pickFaultKind(zeroBit, 0.0), FaultKind::Word);
    EXPECT_EQ(pickFaultKind(zeroBit, 0.0), FaultKind::Column);

    // Interior zero-rate bracket: the boundary draw skips it too.
    FitTable zeroRow;
    zeroRow.entry(FaultKind::Row) = {0.0, 0.0};
    double boundary = 0;
    for (auto kind : {FaultKind::Bit, FaultKind::Word, FaultKind::Column})
        boundary += zeroRow.entry(kind).total();
    EXPECT_EQ(pickFaultKind(zeroRow, boundary), FaultKind::Bank);

    // And the sampled stream never materializes a zero-rate kind.
    const DimmShape shape{2, 9};
    for (int i = 0; i < 50000; ++i) {
        for (const auto &e : sampleDimmFaults(rng, zeroBit, layout,
                                              shape, evaluationHours)) {
            EXPECT_NE(e.kind, FaultKind::Bit);
            EXPECT_NE(e.kind, FaultKind::Word);
        }
    }
}

TEST_F(FaultModelTest, PickFaultKindMatchesBrackets)
{
    // Draws strictly inside each nonzero bracket map to that kind.
    double low = 0;
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        const double width = fit.entry(kind).total();
        ASSERT_GT(width, 0.0);
        EXPECT_EQ(pickFaultKind(fit, low), kind);
        EXPECT_EQ(pickFaultKind(fit, low + width / 2), kind);
        low += width;
    }
}

TEST_F(FaultModelTest, KindDistributionRoughlyMatchesRates)
{
    const DimmShape shape{2, 9};
    std::array<unsigned, numFaultKinds> counts{};
    unsigned total = 0;
    for (int i = 0; i < 400000; ++i) {
        for (const auto &e :
             sampleDimmFaults(rng, fit, layout, shape, evaluationHours)) {
            if (e.kind == FaultKind::MultiRank)
                continue; // expanded twice; skip for distribution check
            ++counts[static_cast<unsigned>(e.kind)];
            ++total;
        }
    }
    ASSERT_GT(total, 10000u);
    const double nonMultiRankFit =
        fit.totalFit() - fit.entry(FaultKind::MultiRank).total();
    for (unsigned k = 0; k < numFaultKinds - 1; ++k) {
        const double expected =
            fit.rates[k].total() / nonMultiRankFit;
        const double observed = static_cast<double>(counts[k]) / total;
        EXPECT_NEAR(observed, expected, 0.015)
            << faultKindName(static_cast<FaultKind>(k));
    }
}

} // namespace
} // namespace xed::faultsim
