/**
 * Regression tests for non-default lifetimes: probFailure() must track
 * the last simulated year, not assume a 7-year run.
 */

#include <gtest/gtest.h>

#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

TEST(EngineLifetime, ShortLifetimeReportsLastSimulatedYear)
{
    McConfig cfg;
    cfg.systems = 40000;
    cfg.years = 3.0;
    cfg.seed = 0x717;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(result.failByYear[3].trials(), cfg.systems);
    EXPECT_EQ(result.failByYear[4].trials(), 0u);
    EXPECT_GT(result.probFailure(), 0.0);
    EXPECT_DOUBLE_EQ(result.probFailure(), result.failByYear[3].value());
}

TEST(EngineLifetime, FailureProbabilityGrowsWithLifetime)
{
    McConfig shortRun;
    shortRun.systems = 60000;
    shortRun.years = 2.0;
    shortRun.seed = 0x718;
    McConfig longRun = shortRun;
    longRun.years = 7.0;

    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto a = runMonteCarlo(*scheme, shortRun);
    const auto b = runMonteCarlo(*scheme, longRun);
    EXPECT_LT(a.probFailure(), b.probFailure());
}

TEST(EngineLifetime, EmptyRunHasZeroProbability)
{
    McResult empty;
    EXPECT_DOUBLE_EQ(empty.probFailure(), 0.0);
}

} // namespace
} // namespace xed::faultsim
