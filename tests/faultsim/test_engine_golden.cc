/**
 * @file
 * Golden-value regression fixtures for the Monte-Carlo engine: exact
 * per-year failure counts and failure-type counters at a small pinned
 * workload (2000 systems, seed 61799, the fig07 seed).
 *
 * These pin the BIT-IDENTICALITY contract of the sampling kernel: the
 * Knuth draw path must consume the same RNG draws in the same order as
 * the original per-call implementation, for any thread count. Any
 * change that alters the draw sequence -- reordering draws, changing a
 * floating-point expression, switching the default sampler -- fails
 * here with the exact counter diff. The expected values were captured
 * from the pre-SampleContext engine; see DESIGN.md (sampling kernel)
 * for the determinism contract and when regenerating them is
 * legitimate.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

struct GoldenCase
{
    const char *label;
    SchemeKind kind;
    double scrubIntervalHours;
    double scalingRate;
    /** failByYear[y].successes() for y = 1..7. */
    std::array<std::uint64_t, 7> failuresByYear;
    const char *dominantType;
    std::uint64_t dominantCount;
};

constexpr std::uint64_t goldenSystems = 2000;
constexpr std::uint64_t goldenSeed = 61799;

const GoldenCase goldenCases[] = {
    {"secded", SchemeKind::Secded, 0, 0,
     {40, 80, 114, 150, 187, 214, 239}, "dimm-uncorrectable", 239},
    {"xed", SchemeKind::Xed, 0, 0,
     {0, 0, 0, 1, 1, 1, 2}, "multi-chip-data-loss", 2},
    {"chipkill", SchemeKind::Chipkill, 0, 0,
     {0, 0, 0, 1, 2, 2, 4}, "double-chip", 4},
    {"secded-scaling", SchemeKind::Secded, 0, 1e-4,
     {47, 95, 145, 185, 225, 264, 292}, "dimm-uncorrectable", 231},
    {"xed-scrub", SchemeKind::Xed, 168, 0,
     {0, 0, 0, 1, 1, 1, 2}, "multi-chip-data-loss", 2},
    {"dck-lockstep", SchemeKind::DoubleChipkillLockstep, 0, 0,
     {0, 0, 0, 1, 2, 2, 3}, "triple-chip", 3},
};

McResult
runGolden(const GoldenCase &c, unsigned threads)
{
    McConfig cfg;
    cfg.systems = goldenSystems;
    cfg.seed = goldenSeed;
    cfg.threads = threads;
    cfg.scrubIntervalHours = c.scrubIntervalHours;
    OnDieOptions onDie;
    onDie.scalingRate = c.scalingRate;
    return runMonteCarlo(*makeScheme(c.kind, onDie), cfg);
}

void
expectGolden(const GoldenCase &c, const McResult &result)
{
    for (unsigned y = 1; y <= 7; ++y) {
        EXPECT_EQ(result.failByYear[y].successes(),
                  c.failuresByYear[y - 1])
            << c.label << " year " << y;
        EXPECT_EQ(result.failByYear[y].trials(), goldenSystems)
            << c.label << " year " << y;
    }
    EXPECT_EQ(result.failureTypes.get(c.dominantType), c.dominantCount)
        << c.label << " type " << c.dominantType;
}

TEST(EngineGolden, ExactCountersSingleThread)
{
    for (const GoldenCase &c : goldenCases)
        expectGolden(c, runGolden(c, 1));
}

TEST(EngineGolden, ExactCountersFourThreads)
{
    // Identical counters for any worker count: per-system RNG streams
    // make sharding invisible.
    for (const GoldenCase &c : goldenCases)
        expectGolden(c, runGolden(c, 4));
}

TEST(EngineGolden, ScalingInteractionCounterIsExact)
{
    // The scaling case splits its failures across two causes; pin the
    // secondary counter too so the cause attribution can't drift.
    const auto result = runGolden(goldenCases[3], 1);
    EXPECT_EQ(result.failureTypes.get("due-scaling-interaction"), 61u);
}

TEST(EngineGolden, ShardMergeReproducesSingleThread)
{
    // Merging arbitrary shard cuts must be byte-equal to one pass.
    const GoldenCase &c = goldenCases[0];
    McConfig cfg;
    cfg.systems = goldenSystems;
    cfg.seed = goldenSeed;
    cfg.scrubIntervalHours = c.scrubIntervalHours;
    const auto scheme = makeScheme(c.kind, OnDieOptions{});
    McResult merged;
    const std::uint64_t cuts[] = {0, 7, 512, 1999, 2000};
    for (unsigned i = 0; i + 1 < 5; ++i)
        merged.merge(runMonteCarloShard(*scheme, cfg, cuts[i],
                                        cuts[i + 1]));
    expectGolden(c, merged);
}

} // namespace
} // namespace xed::faultsim
