/**
 * @file
 * The Poisson fault-count samplers and the SampleContext prefix-CDF
 * kind picker: exactness of the hoisted tables against the original
 * per-call code paths, and statistical equivalence of the opt-in
 * inverse-CDF sampler against Knuth's method.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/units.hh"
#include "dram/geometry.hh"
#include "faultsim/engine.hh"
#include "faultsim/fault_model.hh"

namespace xed::faultsim
{
namespace
{

SampleContext
contextFor(PoissonSampler sampler, double hours = evaluationHours)
{
    const dram::ChipGeometry geometry{};
    const AddressLayout layout(geometry);
    return SampleContext(FitTable{}, layout, DimmShape{}, hours, 0,
                         sampler);
}

TEST(PoissonSampler, NamesRoundTrip)
{
    EXPECT_STREQ(poissonSamplerName(PoissonSampler::Knuth), "knuth");
    EXPECT_STREQ(poissonSamplerName(PoissonSampler::InvCdf), "invcdf");
    EXPECT_EQ(parsePoissonSampler("knuth"), PoissonSampler::Knuth);
    EXPECT_EQ(parsePoissonSampler("invcdf"), PoissonSampler::InvCdf);
    EXPECT_FALSE(parsePoissonSampler("poisson"));
    EXPECT_FALSE(parsePoissonSampler(""));
    EXPECT_FALSE(parsePoissonSampler("Knuth"));
}

TEST(PoissonSampler, KnuthContextPathMatchesFreeFunction)
{
    // The hoisted exp(-lambda) + integer zero-draw fast path must
    // consume the same draws and return the same counts as
    // samplePoisson() on an identical stream.
    const SampleContext ctx = contextFor(PoissonSampler::Knuth);
    Rng a = Rng::stream(99, 7);
    Rng b = Rng::stream(99, 7);
    for (int i = 0; i < 50000; ++i) {
        ASSERT_EQ(ctx.sampleFaultCount(a),
                  samplePoisson(b, ctx.lambda()));
        ASSERT_EQ(a.next(), b.next()) << "draw sequences diverged";
    }
}

TEST(PoissonSampler, PrefixCdfPickKindMatchesLinearScan)
{
    // Randomized FIT tables (zero entries included): the prefix-sum
    // pickKind must agree with pickFaultKind for every draw in
    // [0, totalFit), boundary rule included.
    const dram::ChipGeometry geometry{};
    const AddressLayout layout(geometry);
    Rng rng(0xF17);
    for (int table = 0; table < 200; ++table) {
        FitTable fit{};
        for (unsigned i = 0; i < numFaultKinds; ++i) {
            // ~1/3 of entries exactly zero to exercise empty brackets.
            fit.rates[i].transient =
                rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 20.0;
            fit.rates[i].permanent =
                rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 20.0;
        }
        if (fit.totalFit() <= 0)
            continue;
        const SampleContext ctx(fit, layout, DimmShape{}, 1000.0);
        ASSERT_DOUBLE_EQ(ctx.totalFit(), fit.totalFit());
        for (int d = 0; d < 500; ++d) {
            const double draw = rng.uniform() * fit.totalFit();
            ASSERT_EQ(ctx.pickKind(draw), pickFaultKind(fit, draw))
                << "table " << table << " draw " << draw;
        }
        // Bracket boundaries are the interesting edge: a draw exactly
        // on a cumulative sum belongs to the NEXT kind.
        double cumulative = 0;
        for (unsigned i = 0; i + 1 < numFaultKinds; ++i) {
            cumulative += fit.rates[i].total();
            if (cumulative < fit.totalFit()) {
                ASSERT_EQ(ctx.pickKind(cumulative),
                          pickFaultKind(fit, cumulative));
            }
        }
        ASSERT_EQ(ctx.pickKind(0.0), pickFaultKind(fit, 0.0));
    }
}

/** Empirical count histogram over n draws. */
std::vector<std::uint64_t>
histogram(const SampleContext &ctx, std::uint64_t seed, int n)
{
    std::vector<std::uint64_t> bins(16, 0);
    Rng rng = Rng::stream(seed, 0);
    for (int i = 0; i < n; ++i) {
        const unsigned k = ctx.sampleFaultCount(rng);
        bins[std::min<unsigned>(k, bins.size() - 1)]++;
    }
    return bins;
}

void
expectMatchesPoissonPmf(const SampleContext &ctx, std::uint64_t seed)
{
    const int n = 400000;
    const auto bins = histogram(ctx, seed, n);
    const double lambda = ctx.lambda();
    double p = std::exp(-lambda);
    for (unsigned k = 0; k + 1 < bins.size(); ++k) {
        const double expected = n * p;
        // 5-sigma binomial band; the test is deterministic (fixed
        // seed), the width just keeps it robust across samplers.
        const double slack = 5.0 * std::sqrt(n * p * (1 - p)) + 1.0;
        EXPECT_NEAR(static_cast<double>(bins[k]), expected, slack)
            << "lambda " << lambda << " count " << k;
        p *= lambda / (k + 1);
    }
}

TEST(PoissonSampler, InvCdfMatchesAnalyticPmf)
{
    // Lambda is controlled through the lifetime: lambda =
    // totalFit * 1e-9 * hours * chips, with Table I totalFit = 66.1
    // and 18 chips. Spot-check the Table I operating point and a
    // couple of stress points.
    for (const double hours :
         {8400.0, evaluationHours, 420000.0, 1680000.0}) {
        expectMatchesPoissonPmf(
            contextFor(PoissonSampler::InvCdf, hours), 0xABC);
    }
}

TEST(PoissonSampler, KnuthMatchesAnalyticPmf)
{
    for (const double hours : {8400.0, evaluationHours, 420000.0})
        expectMatchesPoissonPmf(
            contextFor(PoissonSampler::Knuth, hours), 0xABC);
}

TEST(PoissonSampler, InvCdfConsumesExactlyOneDraw)
{
    const SampleContext ctx = contextFor(PoissonSampler::InvCdf);
    Rng a = Rng::stream(5, 1);
    Rng b = Rng::stream(5, 1);
    for (int i = 0; i < 1000; ++i) {
        ctx.sampleFaultCount(a);
        b.next();
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(PoissonSampler, InvCdfEngineRunIsDeterministicAndPlausible)
{
    // Same config -> identical result object; and the invcdf estimate
    // agrees with knuth within Monte-Carlo noise (they are different
    // draw sequences, so exact equality would be a bug in itself).
    McConfig cfg;
    cfg.systems = 60000;
    cfg.seed = 0x5EED;
    cfg.threads = 1;
    cfg.sampler = PoissonSampler::InvCdf;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto a = runMonteCarlo(*scheme, cfg);
    const auto b = runMonteCarlo(*scheme, cfg);
    for (unsigned y = 1; y <= 7; ++y) {
        EXPECT_EQ(a.failByYear[y].successes(),
                  b.failByYear[y].successes());
    }

    McConfig knuthCfg = cfg;
    knuthCfg.sampler = PoissonSampler::Knuth;
    const auto k = runMonteCarlo(*scheme, knuthCfg);
    EXPECT_NE(a.failByYear[7].successes(),
              0u); // secded fails often enough to compare
    EXPECT_NEAR(a.probFailure(), k.probFailure(),
                0.1 * k.probFailure());
}

TEST(PoissonSampler, ContextInvariantsMatchFitTable)
{
    const SampleContext ctx = contextFor(PoissonSampler::Knuth);
    const FitTable fit{};
    EXPECT_DOUBLE_EQ(ctx.totalFit(), fit.totalFit());
    EXPECT_DOUBLE_EQ(ctx.lambda(),
                     fit.totalFit() * 1e-9 * evaluationHours * 18);
    EXPECT_DOUBLE_EQ(ctx.expNegLambda(), std::exp(-ctx.lambda()));
    for (unsigned i = 0; i < numFaultKinds; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        EXPECT_DOUBLE_EQ(ctx.kindTotal(kind), fit.rates[i].total());
        EXPECT_DOUBLE_EQ(ctx.kindTransient(kind),
                         fit.rates[i].transient);
    }
}

} // namespace
} // namespace xed::faultsim
