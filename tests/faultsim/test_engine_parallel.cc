/**
 * Regression tests for the parallel Monte-Carlo engine: sharding the
 * system loop over worker threads must not change the result by a
 * single count, because every system draws from its own counter-based
 * RNG stream (seed, s) regardless of which shard runs it.
 */

#include <gtest/gtest.h>

#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

McConfig
configWithThreads(unsigned threads, std::uint64_t systems = 60000)
{
    McConfig cfg;
    cfg.systems = systems;
    cfg.seed = 0xDE7;
    cfg.threads = threads;
    return cfg;
}

void
expectIdentical(const McResult &a, const McResult &b)
{
    for (unsigned y = 0; y < a.failByYear.size(); ++y) {
        EXPECT_EQ(a.failByYear[y].successes(),
                  b.failByYear[y].successes())
            << "year " << y;
        EXPECT_EQ(a.failByYear[y].trials(), b.failByYear[y].trials())
            << "year " << y;
    }
    EXPECT_EQ(a.failureTypes.all(), b.failureTypes.all());
}

TEST(EngineParallel, ResultIsThreadCountInvariant)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto serial = runMonteCarlo(*scheme, configWithThreads(1));
    const auto two = runMonteCarlo(*scheme, configWithThreads(2));
    const auto eight = runMonteCarlo(*scheme, configWithThreads(8));
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
    EXPECT_GT(serial.probFailure(), 0.0);
}

TEST(EngineParallel, ThreadCountInvariantWithRngHeavySchemes)
{
    // XED + scaling faults exercises the per-event Bernoulli draws in
    // the scheme evaluator, which also come from the per-system stream.
    OnDieOptions onDie;
    onDie.scalingRate = 1e-4;
    const auto scheme = makeScheme(SchemeKind::Xed, onDie);
    const auto serial =
        runMonteCarlo(*scheme, configWithThreads(1, 40000));
    const auto sharded =
        runMonteCarlo(*scheme, configWithThreads(7, 40000));
    expectIdentical(serial, sharded);
}

TEST(EngineParallel, MoreThreadsThanSystems)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto serial = runMonteCarlo(*scheme, configWithThreads(1, 5));
    const auto absurd =
        runMonteCarlo(*scheme, configWithThreads(64, 5));
    expectIdentical(serial, absurd);
    EXPECT_EQ(absurd.failByYear[7].trials(), 5u);
}

TEST(EngineParallel, FailureTypeBreakdownMatchesTotals)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, configWithThreads(4));
    std::uint64_t byType = 0;
    for (const auto &[type, count] : result.failureTypes.all())
        byType += count;
    // Every failed system is counted under exactly one type; the
    // year-7 failure count is the total number of failed systems.
    EXPECT_EQ(byType, result.failByYear[7].successes());
}

TEST(EngineParallel, MergeReducesPartials)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    // Two disjoint half-runs merged by hand equal one full run when
    // their seeds make the per-system streams line up; here we simply
    // check the arithmetic of merge() itself.
    McResult a = runMonteCarlo(*scheme, configWithThreads(1, 30000));
    const McResult b = runMonteCarlo(*scheme, configWithThreads(2));
    const std::uint64_t trialsA = a.failByYear[7].trials();
    const std::uint64_t failsA = a.failByYear[7].successes();
    a.merge(b);
    EXPECT_EQ(a.failByYear[7].trials(),
              trialsA + b.failByYear[7].trials());
    EXPECT_EQ(a.failByYear[7].successes(),
              failsA + b.failByYear[7].successes());
    for (const auto &[type, count] : b.failureTypes.all())
        EXPECT_GE(a.failureTypes.get(type), count);
}

TEST(EngineParallel, FractionalLifetimeCreditsNoUnfinishedYear)
{
    // years = 0.5 simulates half a year: no full year completed, so no
    // year bucket may report trials (the old engine rounded 0.5 up and
    // credited a full year of exposure to failByYear[1]).
    auto cfg = configWithThreads(2, 20000);
    cfg.years = 0.5;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, cfg);
    for (unsigned y = 1; y <= 7; ++y)
        EXPECT_EQ(result.failByYear[y].trials(), 0u) << "year " << y;
    EXPECT_DOUBLE_EQ(result.probFailure(), 0.0);
}

TEST(EngineParallel, FractionalLifetimeCountsOnlyCompletedYears)
{
    // years = 2.5: years 1 and 2 completed, year 3 only half-exposed.
    auto cfg = configWithThreads(3, 30000);
    cfg.years = 2.5;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(result.failByYear[1].trials(), cfg.systems);
    EXPECT_EQ(result.failByYear[2].trials(), cfg.systems);
    EXPECT_EQ(result.failByYear[3].trials(), 0u);
    EXPECT_DOUBLE_EQ(result.probFailure(), result.failByYear[2].value());
}

} // namespace
} // namespace xed::faultsim
