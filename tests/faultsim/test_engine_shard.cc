/**
 * @file
 * Tests for the shard-level Monte-Carlo entry point the campaign
 * runner builds on: range concatenation must reproduce runMonteCarlo
 * bit-for-bit, a 0-system shard must be a merge identity, FIT
 * overrides in McConfig must take effect, and the progress hook must
 * account for every simulated system.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

namespace
{

McConfig
smallConfig()
{
    McConfig cfg;
    cfg.systems = 4000;
    cfg.seed = 0x5A4D;
    cfg.threads = 1;
    return cfg;
}

void
expectSameResult(const McResult &a, const McResult &b)
{
    for (unsigned y = 1; y <= 7; ++y) {
        EXPECT_EQ(a.failByYear[y].successes(), b.failByYear[y].successes())
            << "year " << y;
        EXPECT_EQ(a.failByYear[y].trials(), b.failByYear[y].trials())
            << "year " << y;
    }
    EXPECT_EQ(a.failureTypes.all(), b.failureTypes.all());
}

/** expectSameResult plus attribution and the autopsy exemplars: the
 *  full McResult, byte for byte. */
void
expectIdenticalResult(const McResult &a, const McResult &b)
{
    expectSameResult(a, b);
    EXPECT_EQ(a.attribution.byClassKinds, b.attribution.byClassKinds);
    EXPECT_EQ(a.attribution.byOutcome, b.attribution.byOutcome);
    ASSERT_EQ(a.autopsy.size(), b.autopsy.size());
    for (std::size_t i = 0; i < a.autopsy.size(); ++i) {
        EXPECT_EQ(a.autopsy[i].system, b.autopsy[i].system) << i;
        EXPECT_EQ(a.autopsy[i].timeHours, b.autopsy[i].timeHours) << i;
        EXPECT_STREQ(a.autopsy[i].type, b.autopsy[i].type) << i;
        EXPECT_EQ(a.autopsy[i].kindsMask, b.autopsy[i].kindsMask) << i;
        EXPECT_EQ(static_cast<int>(a.autopsy[i].cls),
                  static_cast<int>(b.autopsy[i].cls))
            << i;
        EXPECT_EQ(static_cast<int>(a.autopsy[i].outcome),
                  static_cast<int>(b.autopsy[i].outcome))
            << i;
    }
}

} // namespace

TEST(EngineShard, EvalBatchSizeNeverChangesTheResult)
{
    // The survivor-deferral batch (DESIGN.md section 4j) schedules
    // which systems evaluate when; it must never reach the results.
    // Every batch size -- explicit, from the environment knob, or the
    // default -- must reproduce the evalBatch=1 shard byte for byte,
    // autopsy exemplars included.
    ::unsetenv("XED_MC_EVAL_BATCH");
    McConfig cfg = smallConfig();
    cfg.systems = 2000;
    for (const SchemeKind kind : {SchemeKind::Secded, SchemeKind::Xed}) {
        const auto scheme = makeScheme(kind, OnDieOptions{});
        cfg.evalBatch = 1;
        const McResult baseline =
            runMonteCarloShard(*scheme, cfg, 0, cfg.systems);
        ASSERT_GT(baseline.failByYear[7].trials(), 0u);
        for (const unsigned batch : {8u, 16u, 1024u}) {
            cfg.evalBatch = batch;
            expectIdenticalResult(
                runMonteCarloShard(*scheme, cfg, 0, cfg.systems),
                baseline);
        }
        cfg.evalBatch = 0; // auto: environment knob, then default 16
        ::setenv("XED_MC_EVAL_BATCH", "3", 1);
        expectIdenticalResult(
            runMonteCarloShard(*scheme, cfg, 0, cfg.systems), baseline);
        ::unsetenv("XED_MC_EVAL_BATCH");
        expectIdenticalResult(
            runMonteCarloShard(*scheme, cfg, 0, cfg.systems), baseline);
    }
}

TEST(EngineShard, EvalBatchEnvKnobIsStrict)
{
    // Garbage and an explicit 0 must fail loudly, naming the knob --
    // not resolve to some batch size.
    McConfig cfg = smallConfig();
    cfg.systems = 10;
    cfg.evalBatch = 0;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    for (const char *bogus : {"abc", "0", "16x", "-1"}) {
        ::setenv("XED_MC_EVAL_BATCH", bogus, 1);
        try {
            runMonteCarloShard(*scheme, cfg, 0, cfg.systems);
            FAIL() << "XED_MC_EVAL_BATCH=" << bogus << " was accepted";
        } catch (const std::runtime_error &error) {
            EXPECT_NE(
                std::string(error.what()).find("XED_MC_EVAL_BATCH"),
                std::string::npos)
                << error.what();
        }
    }
    ::unsetenv("XED_MC_EVAL_BATCH");

    // An explicit McConfig batch wins without consulting the knob.
    ::setenv("XED_MC_EVAL_BATCH", "abc", 1);
    cfg.evalBatch = 4;
    EXPECT_NO_THROW(runMonteCarloShard(*scheme, cfg, 0, cfg.systems));
    ::unsetenv("XED_MC_EVAL_BATCH");
}

TEST(EngineShard, ConcatenatedShardsMatchFullRun)
{
    const McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult full = runMonteCarlo(*scheme, cfg);

    // Uneven cuts, including a degenerate 1-system shard.
    const std::uint64_t cuts[] = {0, 1, 1000, 1003, 2500, 4000};
    McResult merged;
    for (unsigned i = 0; i + 1 < std::size(cuts); ++i)
        merged.merge(
            runMonteCarloShard(*scheme, cfg, cuts[i], cuts[i + 1]));
    expectSameResult(merged, full);
}

TEST(EngineShard, EmptyShardIsMergeIdentity)
{
    const McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Xed, OnDieOptions{});

    const McResult empty = runMonteCarloShard(*scheme, cfg, 100, 100);
    for (unsigned y = 0; y < 8; ++y)
        EXPECT_EQ(empty.failByYear[y].trials(), 0u);
    EXPECT_TRUE(empty.failureTypes.all().empty());
    EXPECT_EQ(empty.probFailure(), 0.0);

    // Merging the identity in either direction changes nothing.
    const McResult base = runMonteCarloShard(*scheme, cfg, 0, 500);
    McResult left = empty;
    left.merge(base);
    expectSameResult(left, base);
    McResult right = base;
    right.merge(empty);
    expectSameResult(right, base);
}

TEST(EngineShard, ZeroSystemsRunIsEmpty)
{
    McConfig cfg = smallConfig();
    cfg.systems = 0;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult result = runMonteCarlo(*scheme, cfg);
    for (unsigned y = 0; y < 8; ++y)
        EXPECT_EQ(result.failByYear[y].trials(), 0u);
    EXPECT_EQ(result.probFailure(), 0.0);
}

TEST(EngineShard, FitOverrideTakesEffect)
{
    McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult baseline = runMonteCarlo(*scheme, cfg);
    ASSERT_GT(baseline.failByYear[7].successes(), 0u);

    // All-zero FIT rates: no faults can arrive, so nothing fails.
    for (auto &entry : cfg.fit.rates)
        entry = FitEntry{};
    const McResult silent = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(silent.failByYear[7].successes(), 0u);
    EXPECT_EQ(silent.failByYear[7].trials(), cfg.systems);
}

TEST(EngineShard, ProgressHookCountsEverySystem)
{
    McConfig cfg = smallConfig();
    cfg.systems = 3000; // not a multiple of the flush batch
    McProgress progress;
    cfg.progress = &progress;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult result = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(progress.systemsDone.load(), cfg.systems);
    EXPECT_EQ(progress.failedSystems.load(),
              result.failByYear[7].successes());

    // The shard entry point accumulates into the same sink.
    runMonteCarloShard(*scheme, cfg, 0, 100);
    EXPECT_EQ(progress.systemsDone.load(), cfg.systems + 100);
}
