/**
 * @file
 * Tests for the shard-level Monte-Carlo entry point the campaign
 * runner builds on: range concatenation must reproduce runMonteCarlo
 * bit-for-bit, a 0-system shard must be a merge identity, FIT
 * overrides in McConfig must take effect, and the progress hook must
 * account for every simulated system.
 */

#include <gtest/gtest.h>

#include "faultsim/engine.hh"

using namespace xed;
using namespace xed::faultsim;

namespace
{

McConfig
smallConfig()
{
    McConfig cfg;
    cfg.systems = 4000;
    cfg.seed = 0x5A4D;
    cfg.threads = 1;
    return cfg;
}

void
expectSameResult(const McResult &a, const McResult &b)
{
    for (unsigned y = 1; y <= 7; ++y) {
        EXPECT_EQ(a.failByYear[y].successes(), b.failByYear[y].successes())
            << "year " << y;
        EXPECT_EQ(a.failByYear[y].trials(), b.failByYear[y].trials())
            << "year " << y;
    }
    EXPECT_EQ(a.failureTypes.all(), b.failureTypes.all());
}

} // namespace

TEST(EngineShard, ConcatenatedShardsMatchFullRun)
{
    const McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult full = runMonteCarlo(*scheme, cfg);

    // Uneven cuts, including a degenerate 1-system shard.
    const std::uint64_t cuts[] = {0, 1, 1000, 1003, 2500, 4000};
    McResult merged;
    for (unsigned i = 0; i + 1 < std::size(cuts); ++i)
        merged.merge(
            runMonteCarloShard(*scheme, cfg, cuts[i], cuts[i + 1]));
    expectSameResult(merged, full);
}

TEST(EngineShard, EmptyShardIsMergeIdentity)
{
    const McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Xed, OnDieOptions{});

    const McResult empty = runMonteCarloShard(*scheme, cfg, 100, 100);
    for (unsigned y = 0; y < 8; ++y)
        EXPECT_EQ(empty.failByYear[y].trials(), 0u);
    EXPECT_TRUE(empty.failureTypes.all().empty());
    EXPECT_EQ(empty.probFailure(), 0.0);

    // Merging the identity in either direction changes nothing.
    const McResult base = runMonteCarloShard(*scheme, cfg, 0, 500);
    McResult left = empty;
    left.merge(base);
    expectSameResult(left, base);
    McResult right = base;
    right.merge(empty);
    expectSameResult(right, base);
}

TEST(EngineShard, ZeroSystemsRunIsEmpty)
{
    McConfig cfg = smallConfig();
    cfg.systems = 0;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult result = runMonteCarlo(*scheme, cfg);
    for (unsigned y = 0; y < 8; ++y)
        EXPECT_EQ(result.failByYear[y].trials(), 0u);
    EXPECT_EQ(result.probFailure(), 0.0);
}

TEST(EngineShard, FitOverrideTakesEffect)
{
    McConfig cfg = smallConfig();
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult baseline = runMonteCarlo(*scheme, cfg);
    ASSERT_GT(baseline.failByYear[7].successes(), 0u);

    // All-zero FIT rates: no faults can arrive, so nothing fails.
    for (auto &entry : cfg.fit.rates)
        entry = FitEntry{};
    const McResult silent = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(silent.failByYear[7].successes(), 0u);
    EXPECT_EQ(silent.failByYear[7].trials(), cfg.systems);
}

TEST(EngineShard, ProgressHookCountsEverySystem)
{
    McConfig cfg = smallConfig();
    cfg.systems = 3000; // not a multiple of the flush batch
    McProgress progress;
    cfg.progress = &progress;
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const McResult result = runMonteCarlo(*scheme, cfg);
    EXPECT_EQ(progress.systemsDone.load(), cfg.systems);
    EXPECT_EQ(progress.failedSystems.load(),
              result.failByYear[7].successes());

    // The shard entry point accumulates into the same sink.
    runMonteCarloShard(*scheme, cfg, 0, 100);
    EXPECT_EQ(progress.systemsDone.load(), cfg.systems + 100);
}
