#include <gtest/gtest.h>

#include "faultsim/fault_range.hh"

namespace xed::faultsim
{
namespace
{

class FaultRangeTest : public ::testing::Test
{
  protected:
    dram::ChipGeometry g;
    AddressLayout layout{g};
    Rng rng{1};
};

TEST_F(FaultRangeTest, LayoutMasksPartitionAddressSpace)
{
    EXPECT_EQ(layout.bitMask(), 0x3Fu);
    EXPECT_EQ(layout.colMask(), 0x7Fu << 6);
    EXPECT_EQ(layout.rowMask(), 0x7FFFull << 13);
    EXPECT_EQ(layout.bankMask(), 0x7ull << 28);
    EXPECT_EQ(layout.bitMask() | layout.colMask() | layout.rowMask() |
                  layout.bankMask(),
              layout.allMask());
    EXPECT_EQ(layout.allMask(), (1ull << 31) - 1);
}

TEST_F(FaultRangeTest, RangeShapesMatchGranularity)
{
    EXPECT_EQ(randomRange(rng, layout, FaultKind::Bit).mask, 0u);
    EXPECT_EQ(randomRange(rng, layout, FaultKind::Word).mask,
              layout.bitMask());
    EXPECT_EQ(randomRange(rng, layout, FaultKind::Column).mask,
              layout.rowMask());
    EXPECT_EQ(randomRange(rng, layout, FaultKind::Row).mask,
              layout.colMask() | layout.bitMask());
    EXPECT_EQ(randomRange(rng, layout, FaultKind::Bank).mask,
              layout.rowMask() | layout.colMask() | layout.bitMask());
    EXPECT_EQ(randomRange(rng, layout, FaultKind::MultiBank).mask,
              layout.allMask());
}

TEST_F(FaultRangeTest, RangeSizes)
{
    EXPECT_EQ(rangeSize(randomRange(rng, layout, FaultKind::Bit)), 1u);
    EXPECT_EQ(rangeSize(randomRange(rng, layout, FaultKind::Word)), 64u);
    EXPECT_EQ(rangeSize(randomRange(rng, layout, FaultKind::Column)),
              32768u);
    EXPECT_EQ(rangeSize(randomRange(rng, layout, FaultKind::Row)),
              128u * 64u);
    EXPECT_EQ(rangeSize(randomRange(rng, layout, FaultKind::MultiBank)),
              1ull << 31);
}

TEST_F(FaultRangeTest, AddrHasNoWildcardBitsSet)
{
    for (int i = 0; i < 100; ++i) {
        for (const auto kind :
             {FaultKind::Word, FaultKind::Column, FaultKind::Row,
              FaultKind::Bank, FaultKind::MultiBank}) {
            const auto r = randomRange(rng, layout, kind);
            EXPECT_EQ(r.addr & r.mask, 0u);
            EXPECT_EQ(r.addr & ~layout.allMask(), 0u);
        }
    }
}

TEST_F(FaultRangeTest, BitFaultsSameWordDifferentBitIntersectAtWord)
{
    // Word granularity ignores the bit field: two bit faults in the
    // same 64-bit word but different cells share a codeword.
    FaultRange a{0x1000ull << 6 | 5, 0};
    FaultRange b{0x1000ull << 6 | 17, 0};
    EXPECT_TRUE(intersectAtWord(a, b, layout));
    EXPECT_FALSE(intersectExact(a, b));
}

TEST_F(FaultRangeTest, DifferentWordsDoNotIntersect)
{
    FaultRange a{0x1000ull << 6 | 5, 0};
    FaultRange b{0x1001ull << 6 | 5, 0};
    EXPECT_FALSE(intersectAtWord(a, b, layout));
}

TEST_F(FaultRangeTest, ChipRangeIntersectsEverything)
{
    FaultRange chip{0, layout.allMask()};
    for (int i = 0; i < 50; ++i) {
        const auto r = randomRange(
            rng, layout,
            static_cast<FaultKind>(rng.below(5)));
        EXPECT_TRUE(intersectAtWord(chip, r, layout));
    }
}

TEST_F(FaultRangeTest, BankRangesIntersectOnlyIfSameBank)
{
    const auto bankMask =
        layout.rowMask() | layout.colMask() | layout.bitMask();
    FaultRange bank0{0, bankMask};
    FaultRange bank1{1ull << 28, bankMask};
    FaultRange alsoBank0{0, bankMask};
    EXPECT_FALSE(intersectAtWord(bank0, bank1, layout));
    EXPECT_TRUE(intersectAtWord(bank0, alsoBank0, layout));
}

TEST_F(FaultRangeTest, RowAndColumnIntersectWhenCrossing)
{
    // A row failure and a column failure in the same bank always cross
    // at exactly one word.
    FaultRange row{/*bank 2, row 7*/ (2ull << 28) | (7ull << 13),
                   layout.colMask() | layout.bitMask()};
    FaultRange col{/*bank 2, col 9, bit 3*/ (2ull << 28) | (9ull << 6) | 3,
                   layout.rowMask()};
    EXPECT_TRUE(intersectAtWord(row, col, layout));

    FaultRange colOtherBank{(3ull << 28) | (9ull << 6) | 3,
                            layout.rowMask()};
    EXPECT_FALSE(intersectAtWord(row, colOtherBank, layout));
}

TEST_F(FaultRangeTest, IntersectRangeRefines)
{
    FaultRange row{(2ull << 28) | (7ull << 13),
                   layout.colMask() | layout.bitMask()};
    FaultRange col{(2ull << 28) | (9ull << 6) | 3, layout.rowMask()};
    const auto meet = intersectRange(row, col, layout);
    ASSERT_TRUE(meet.has_value());
    // The meet is the single word (bank 2, row 7, col 9).
    EXPECT_EQ(meet->mask, layout.bitMask());
    EXPECT_EQ(meet->addr, (2ull << 28) | (7ull << 13) | (9ull << 6));
}

TEST_F(FaultRangeTest, TripleIntersectionViaRefinement)
{
    // bank fault, row fault, column fault in the same bank: the three
    // share the word where row and column cross.
    const auto bankMask =
        layout.rowMask() | layout.colMask() | layout.bitMask();
    FaultRange bank{2ull << 28, bankMask};
    FaultRange row{(2ull << 28) | (7ull << 13),
                   layout.colMask() | layout.bitMask()};
    FaultRange col{(2ull << 28) | (9ull << 6), layout.rowMask()};
    auto meet = intersectRange(bank, row, layout);
    ASSERT_TRUE(meet.has_value());
    EXPECT_TRUE(intersectRange(*meet, col, layout).has_value());

    // Rows in different banks never meet.
    FaultRange rowOther{(3ull << 28) | (7ull << 13),
                        layout.colMask() | layout.bitMask()};
    EXPECT_FALSE(intersectRange(row, rowOther, layout).has_value());
}

TEST_F(FaultRangeTest, KindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::Bit), "single-bit");
    EXPECT_STREQ(faultKindName(FaultKind::MultiRank), "multi-rank");
}

TEST_F(FaultRangeTest, MultiBitPerWordClassification)
{
    EXPECT_FALSE(multiBitPerWord(FaultKind::Bit));
    EXPECT_FALSE(multiBitPerWord(FaultKind::Column));
    EXPECT_TRUE(multiBitPerWord(FaultKind::Word));
    EXPECT_TRUE(multiBitPerWord(FaultKind::Row));
    EXPECT_TRUE(multiBitPerWord(FaultKind::Bank));
    EXPECT_TRUE(multiBitPerWord(FaultKind::MultiBank));
    EXPECT_TRUE(multiBitPerWord(FaultKind::MultiRank));
}

} // namespace
} // namespace xed::faultsim
