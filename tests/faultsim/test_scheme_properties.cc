/**
 * Parameterized properties every correction scheme must satisfy:
 *  - a fault-free world never fails;
 *  - failure probability is monotone in time and in the FIT rates;
 *  - reported failure times lie within the simulated lifetime.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

const SchemeKind allKinds[] = {
    SchemeKind::NonEcc,
    SchemeKind::Secded,
    SchemeKind::Xed,
    SchemeKind::Chipkill,
    SchemeKind::ChipkillX8Lockstep,
    SchemeKind::DoubleChipkill,
    SchemeKind::DoubleChipkillLockstep,
    SchemeKind::XedChipkill,
    SchemeKind::XedChipkillLockstep,
};

class SchemeProperty : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SchemeProperty, NoFaultsNoFailure)
{
    const auto scheme = makeScheme(GetParam(), OnDieOptions{});
    dram::ChipGeometry g;
    AddressLayout layout(g);
    Rng rng(1);
    EXPECT_FALSE(scheme->evaluateDimm({}, layout, rng).has_value());
}

TEST_P(SchemeProperty, FailureTimesWithinLifetime)
{
    const auto scheme = makeScheme(GetParam(), OnDieOptions{});
    dram::ChipGeometry g;
    AddressLayout layout(g);
    const FitTable fit;
    Rng rng(2);
    const auto shape = scheme->dimmShape();
    for (int i = 0; i < 50000; ++i) {
        const auto events =
            sampleDimmFaults(rng, fit, layout, shape, evaluationHours);
        if (const auto f = scheme->evaluateDimm(events, layout, rng)) {
            EXPECT_GE(f->timeHours, 0.0);
            EXPECT_LE(f->timeHours, evaluationHours);
            EXPECT_STRNE(f->type, "");
        }
    }
}

TEST_P(SchemeProperty, FailByYearIsMonotone)
{
    McConfig cfg;
    cfg.systems = 30000;
    cfg.seed = 0xAB + static_cast<unsigned>(GetParam());
    const auto scheme = makeScheme(GetParam(), OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, cfg);
    for (unsigned y = 2; y <= 7; ++y)
        EXPECT_GE(result.failByYear[y].value(),
                  result.failByYear[y - 1].value());
}

TEST_P(SchemeProperty, MonotoneInFitRates)
{
    // Scaling every FIT rate up cannot make the system more reliable.
    // (Statistical property; checked with a decisive 8x factor.)
    dram::ChipGeometry g;
    AddressLayout layout(g);
    const auto scheme = makeScheme(GetParam(), OnDieOptions{});
    const auto shape = scheme->dimmShape();

    FitTable low;
    FitTable high;
    for (auto &e : high.rates) {
        e.transient *= 8;
        e.permanent *= 8;
    }

    auto failures = [&](const FitTable &fit, std::uint64_t seed) {
        Rng rng(seed);
        unsigned failed = 0;
        for (int i = 0; i < 60000; ++i) {
            const auto events = sampleDimmFaults(rng, fit, layout,
                                                 shape,
                                                 evaluationHours);
            failed +=
                scheme->evaluateDimm(events, layout, rng).has_value()
                    ? 1
                    : 0;
        }
        return failed;
    };
    EXPECT_LE(failures(low, 99), failures(high, 99));
}

std::string
kindName(const ::testing::TestParamInfo<SchemeKind> &info)
{
    std::string name = schemeKindName(info.param);
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperty,
                         ::testing::ValuesIn(allKinds), kindName);

} // namespace
} // namespace xed::faultsim
