#include <gtest/gtest.h>

#include "faultsim/engine.hh"

namespace xed::faultsim
{
namespace
{

McConfig
quickConfig(std::uint64_t systems = 60000)
{
    McConfig cfg;
    cfg.systems = systems;
    cfg.seed = 0xE2E;
    return cfg;
}

TEST(Engine, FailureProbabilityMonotoneInTime)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, quickConfig());
    for (unsigned y = 2; y <= 7; ++y)
        EXPECT_GE(result.failByYear[y].value(),
                  result.failByYear[y - 1].value());
    EXPECT_EQ(result.failByYear[7].trials(), 60000u);
}

TEST(Engine, SecdedMatchesLargeFaultExpectation)
{
    // With on-die ECC, the SECDED DIMM fails (to first order) whenever
    // any of the 72 chips takes a multi-bit-per-word fault:
    // P = 1 - exp(-72 * FIT_large * hours). FIT_large = word + row +
    // bank + multi-bank + multi-rank = 26.3 FIT.
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, quickConfig(120000));
    const double fitLarge = 1.7 + 8.4 + 10.8 + 1.7 + 3.7;
    const double expected =
        1.0 - std::exp(-72.0 * fitLarge * 1e-9 * evaluationHours);
    EXPECT_NEAR(result.probFailure(), expected, expected * 0.05);
}

TEST(Engine, ReliabilityOrderingMatchesPaper)
{
    // Figure 7: P(fail): SECDED >> Chipkill > XED, with the paper's
    // ratios (43x Chipkill, 172x XED, 4x XED-over-Chipkill) reproduced
    // within loose bands.
    const OnDieOptions onDie;
    const auto cfg = quickConfig(400000);
    const auto secded =
        runMonteCarlo(*makeScheme(SchemeKind::Secded, onDie), cfg);
    const auto chipkill =
        runMonteCarlo(*makeScheme(SchemeKind::Chipkill, onDie), cfg);
    const auto xed =
        runMonteCarlo(*makeScheme(SchemeKind::Xed, onDie), cfg);

    const double ckGain = secded.probFailure() / chipkill.probFailure();
    const double xedGain = secded.probFailure() / xed.probFailure();
    const double xedOverCk = chipkill.probFailure() / xed.probFailure();
    EXPECT_GT(ckGain, 20.0);
    EXPECT_LT(ckGain, 110.0);
    EXPECT_GT(xedGain, 90.0);
    EXPECT_LT(xedGain, 400.0);
    EXPECT_GT(xedOverCk, 1.5);
    EXPECT_LT(xedOverCk, 10.0);
}

TEST(Engine, LockstepX8ChipkillIsWorseThan18ChipGroups)
{
    // Ablation: building Chipkill by lockstepping the two x8 ranks
    // exposes it to multi-rank faults.
    const OnDieOptions onDie;
    const auto cfg = quickConfig(150000);
    const auto x4 =
        runMonteCarlo(*makeScheme(SchemeKind::Chipkill, onDie), cfg);
    const auto x8 = runMonteCarlo(
        *makeScheme(SchemeKind::ChipkillX8Lockstep, onDie), cfg);
    EXPECT_GT(x8.probFailure(), 3 * x4.probFailure());
}

TEST(Engine, NonEccAndSecdedEquivalentWithOnDie)
{
    // Figure 1: the 9th chip adds (almost) nothing once chips have
    // on-die ECC.
    const OnDieOptions onDie;
    const auto cfg = quickConfig(100000);
    const auto nonEcc =
        runMonteCarlo(*makeScheme(SchemeKind::NonEcc, onDie), cfg);
    const auto secded =
        runMonteCarlo(*makeScheme(SchemeKind::Secded, onDie), cfg);
    // Identical failure rule over 64 vs 72 chips: ratio ~ 72/64.
    EXPECT_NEAR(secded.probFailure() / nonEcc.probFailure(), 72.0 / 64.0,
                0.15);
}

TEST(Engine, DoubleChipkillOrderingX4)
{
    // Figure 9: Single-Chipkill < Double-Chipkill < XED+Chipkill in
    // reliability (reverse in P(fail)). The two strong schemes fail at
    // the 1e-5/1e-6 scale, so this needs millions of samples.
    const OnDieOptions onDie;
    const auto cfg = quickConfig(4000000);
    const auto single =
        runMonteCarlo(*makeScheme(SchemeKind::Chipkill, onDie), cfg);
    const auto dbl = runMonteCarlo(
        *makeScheme(SchemeKind::DoubleChipkill, onDie), cfg);
    const auto xedCk =
        runMonteCarlo(*makeScheme(SchemeKind::XedChipkill, onDie), cfg);

    EXPECT_GT(single.probFailure(), 5 * dbl.probFailure());
    EXPECT_GT(dbl.probFailure(), xedCk.probFailure());
}

TEST(Engine, FailureTypesAreTracked)
{
    const auto scheme = makeScheme(SchemeKind::Secded, OnDieOptions{});
    const auto result = runMonteCarlo(*scheme, quickConfig());
    EXPECT_GT(result.failureTypes.get("dimm-uncorrectable"), 0u);
}

TEST(Engine, ScalingFaultsDoNotHurtXed)
{
    OnDieOptions scaling;
    scaling.scalingRate = 1e-4;
    const auto cfg = quickConfig(100000);
    const auto clean =
        runMonteCarlo(*makeScheme(SchemeKind::Xed, OnDieOptions{}), cfg);
    const auto scaled =
        runMonteCarlo(*makeScheme(SchemeKind::Xed, scaling), cfg);
    // Section VII: XED corrects scaling faults; its failure probability
    // is unchanged (both estimates share the same seed).
    EXPECT_NEAR(scaled.probFailure(), clean.probFailure(),
                0.3 * clean.probFailure() + 1e-5);
}

} // namespace
} // namespace xed::faultsim
