/**
 * End-to-end integration tests spanning the subsystems: the functional
 * XED data path under realistic mixed fault loads, the consistency of
 * the functional model with the Monte-Carlo scheme rules, and a full
 * perfsim+power run for every paper configuration.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "common/rng.hh"
#include "common/units.hh"
#include "faultsim/engine.hh"
#include "perfsim/system.hh"
#include "xed/chipkill_controller.hh"
#include "xed/controller.hh"

namespace xed
{
namespace
{

using dram::Fault;
using dram::FaultGranularity;
using dram::WordAddr;

TEST(EndToEnd, MixedFaultSoakOnXedController)
{
    // Soak the functional controller with a mix of fault types across
    // many addresses: a permanent column fault, a permanent row fault
    // in another chip/bank, and scattered single-bit scaling faults,
    // then verify every line of a working set reads back correctly.
    XedController ctrl;
    Rng rng(0xE2E0);

    Fault column;
    column.granularity = FaultGranularity::SingleColumn;
    column.permanent = true;
    column.addr = {1, 0, 40};
    column.bitPos = 5;
    ctrl.chip(2).faults().add(column);

    Fault row;
    row.granularity = FaultGranularity::SingleRow;
    row.permanent = true;
    row.addr = {3, 77, 0};
    row.seed = 99;
    ctrl.chip(6).faults().add(row);

    for (unsigned i = 0; i < 20; ++i) {
        Fault bit;
        bit.granularity = FaultGranularity::SingleBit;
        bit.permanent = true;
        bit.addr = {static_cast<unsigned>(rng.below(8)),
                    static_cast<unsigned>(rng.below(32768)),
                    static_cast<unsigned>(rng.below(128))};
        bit.bitPos = static_cast<unsigned>(rng.below(72));
        ctrl.chip(static_cast<unsigned>(rng.below(9)))
            .faults()
            .add(bit);
    }

    std::map<std::uint64_t, std::array<std::uint64_t, 8>> written;
    for (int i = 0; i < 300; ++i) {
        WordAddr addr{static_cast<unsigned>(rng.below(8)),
                      static_cast<unsigned>(rng.below(32768)),
                      static_cast<unsigned>(rng.below(128))};
        if (i % 3 == 0)
            addr = {1, static_cast<unsigned>(rng.below(32768)), 40};
        if (i % 3 == 1)
            addr = {3, 77, static_cast<unsigned>(rng.below(128))};
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        ctrl.writeLine(addr, line);
        written[packWordAddr(ctrl.chip(0).geometry(), addr)] = line;
    }
    unsigned verified = 0;
    for (const auto &[packed, line] : written) {
        const auto addr =
            dram::unpackWordAddr(ctrl.chip(0).geometry(), packed);
        const auto r = ctrl.readLine(addr);
        ASSERT_NE(r.outcome, ReadOutcome::DetectedUncorrectable);
        EXPECT_EQ(r.data, line);
        ++verified;
    }
    EXPECT_GE(verified, 250u);
}

TEST(EndToEnd, FunctionalModelAgreesWithSchemeRuleOnSingleChip)
{
    // The Monte-Carlo XED rule says: any single-chip permanent fault
    // is corrected. Cross-check the *functional* model on every
    // granularity the rule covers.
    const auto scheme =
        faultsim::makeScheme(faultsim::SchemeKind::Xed, {});
    dram::ChipGeometry g;
    faultsim::AddressLayout layout(g);
    Rng rng(0xE2E1);

    for (const auto granularity :
         {FaultGranularity::SingleBit, FaultGranularity::SingleWord,
          FaultGranularity::SingleColumn, FaultGranularity::SingleRow,
          FaultGranularity::SingleBank, FaultGranularity::Chip}) {
        // Scheme rule: no failure for one chip.
        faultsim::FaultEvent ev;
        ev.rank = 0;
        ev.chip = 4;
        ev.kind = granularity == FaultGranularity::Chip
                      ? faultsim::FaultKind::MultiBank
                      : static_cast<faultsim::FaultKind>(
                            static_cast<int>(granularity));
        ev.transient = false;
        ev.timeHours = 10;
        ev.range = randomRange(rng, layout, ev.kind);
        EXPECT_FALSE(
            scheme->evaluateDimm({ev}, layout, rng).has_value());

        // Functional model: the same class of fault is corrected.
        XedController ctrl;
        const WordAddr addr{2, 123, 45};
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        ctrl.writeLine(addr, line);
        Fault f;
        f.granularity = granularity;
        f.permanent = true;
        f.addr = addr;
        f.bitPos = 7;
        f.seed = rng.next();
        ctrl.chip(4).faults().add(f);
        const auto r = ctrl.readLine(addr);
        EXPECT_NE(r.outcome, ReadOutcome::DetectedUncorrectable);
        EXPECT_EQ(r.data, line);
    }
}

TEST(EndToEnd, XedOnChipkillHandlesChipPlusScalingAcrossBeats)
{
    // Section IX data path: one hard-failed chip plus a scaling-faulted
    // chip, both signalled by catch-words, rebuilt via two erasures in
    // every beat.
    ChipkillConfig cfg;
    cfg.useCatchWordErasures = true;
    ChipkillController ctrl(cfg);
    Rng rng(0xE2E2);
    const WordAddr addr{5, 55, 5};
    std::vector<std::uint64_t> line(16);
    for (auto &w : line)
        w = rng.next();
    ctrl.writeLine(addr, line);

    Fault hard;
    hard.granularity = FaultGranularity::SingleBank;
    hard.permanent = true;
    hard.addr = {5, 0, 0};
    hard.seed = 1;
    ctrl.chip(2).faults().add(hard);

    Fault scaling;
    scaling.granularity = FaultGranularity::SingleBit;
    scaling.permanent = true;
    scaling.addr = addr;
    scaling.bitPos = 33;
    ctrl.chip(9).faults().add(scaling);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Corrected);
    EXPECT_EQ(r.data, line);
    EXPECT_EQ(r.catchWordChips.size(), 2u);
}

TEST(EndToEnd, ReliabilityAndPerformanceStoryIsConsistent)
{
    // The paper's pitch in one test: XED must (a) beat Chipkill's
    // reliability and (b) cost nothing over the SECDED baseline, while
    // Chipkill costs >15% on a memory-intensive workload.
    faultsim::McConfig mc;
    mc.systems = 120000;
    mc.seed = 0xE2E3;
    const auto xedRel = faultsim::runMonteCarlo(
        *faultsim::makeScheme(faultsim::SchemeKind::Xed, {}), mc);
    const auto ckRel = faultsim::runMonteCarlo(
        *faultsim::makeScheme(faultsim::SchemeKind::Chipkill, {}), mc);
    EXPECT_LT(xedRel.probFailure(), ckRel.probFailure());

    perfsim::PerfConfig pc;
    pc.memOpsPerCore = 5000;
    const auto &w = perfsim::workloadByName("bwaves");
    const auto base = perfsim::simulate(
        w, perfsim::ProtectionMode::SecdedBaseline, pc);
    const auto xedPerf =
        perfsim::simulate(w, perfsim::ProtectionMode::Xed, pc);
    const auto ckPerf =
        perfsim::simulate(w, perfsim::ProtectionMode::Chipkill, pc);
    EXPECT_EQ(xedPerf.cycles, base.cycles);
    EXPECT_GT(static_cast<double>(ckPerf.cycles) /
                  static_cast<double>(base.cycles),
              1.15);
}

} // namespace
} // namespace xed
