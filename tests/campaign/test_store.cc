/**
 * @file
 * JSONL result store: shard-record round-trips, prefix recovery after
 * an interrupt (including a torn final line), and rejection of stores
 * that do not belong to the spec being resumed.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "campaign/store.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

CampaignSpec
tinySpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "store-test", "seed": 11, "schemes": ["secded"],
        "systems": 100, "shardSystems": 50
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

ShardResult
simulatedShard(const CampaignSpec &spec, const ShardTask &task)
{
    const auto scheme =
        faultsim::makeScheme(spec.schemes[task.cell], spec.onDie);
    ShardResult result;
    result.mc = runMonteCarloShard(*scheme, mcConfigFor(spec, task.point),
                                   task.begin, task.end);
    return result;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Write the manifest plus the first @p shards shard records. */
void
writeStore(const std::string &path, const CampaignSpec &spec,
           const Plan &plan, unsigned shards)
{
    StoreWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, -1, &error)) << error;
    ASSERT_TRUE(
        writer.write(manifestRecord(spec, plan, specHash(spec)), &error));
    for (unsigned i = 0; i < shards; ++i)
        ASSERT_TRUE(writer.write(shardRecord(spec, plan.tasks[i],
                                             simulatedShard(
                                                 spec, plan.tasks[i])),
                                 &error))
            << error;
}

} // namespace

TEST(CampaignStore, ReliabilityShardRecordRoundTrips)
{
    const auto spec = tinySpec();
    const Plan plan = buildPlan(spec);
    const auto result = simulatedShard(spec, plan.tasks[0]);

    const auto record = shardRecord(spec, plan.tasks[0], result);
    const auto decoded = shardResultFromJson(spec, record);
    for (unsigned y = 1; y <= 7; ++y) {
        EXPECT_EQ(decoded.mc.failByYear[y].successes(),
                  result.mc.failByYear[y].successes());
        EXPECT_EQ(decoded.mc.failByYear[y].trials(),
                  result.mc.failByYear[y].trials());
    }
    EXPECT_EQ(decoded.mc.failureTypes.all(), result.mc.failureTypes.all());

    // The record itself survives a text round-trip byte for byte.
    std::string error;
    auto reparsed = json::parse(json::dump(record), &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_EQ(json::dump(*reparsed), json::dump(record));
}

TEST(CampaignStore, LoadRecoversCompletedPrefix)
{
    const auto spec = tinySpec();
    const Plan plan = buildPlan(spec);
    ASSERT_EQ(plan.tasks.size(), 2u);
    const auto path = tempPath("store_prefix.jsonl");
    writeStore(path, spec, plan, 1);

    const auto loaded = loadStore(path, specHash(spec), spec, plan);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.completedShards, 1u);
    EXPECT_FALSE(loaded.hasSummary);
    EXPECT_EQ(static_cast<std::uintmax_t>(loaded.validBytes),
              std::filesystem::file_size(path));

    const auto expected = simulatedShard(spec, plan.tasks[0]);
    EXPECT_EQ(loaded.shardResults[0].mc.failByYear[7].trials(),
              expected.mc.failByYear[7].trials());
}

TEST(CampaignStore, TornFinalLineIsDropped)
{
    const auto spec = tinySpec();
    const Plan plan = buildPlan(spec);
    const auto path = tempPath("store_torn.jsonl");
    writeStore(path, spec, plan, 1);
    const auto intact = std::filesystem::file_size(path);

    // Simulate a kill mid-write: half a record, no trailing newline.
    {
        std::ofstream app(path, std::ios::app | std::ios::binary);
        app << R"({"type":"shard","index":1,"point":0,"ce)";
    }
    const auto loaded = loadStore(path, specHash(spec), spec, plan);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.completedShards, 1u);
    EXPECT_EQ(static_cast<std::uintmax_t>(loaded.validBytes), intact);

    // Resume truncates at validBytes and the next append lines up.
    StoreWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, loaded.validBytes, &error)) << error;
    EXPECT_EQ(std::filesystem::file_size(path), intact);
}

TEST(CampaignStore, RejectsForeignAndCorruptStores)
{
    const auto spec = tinySpec();
    const Plan plan = buildPlan(spec);
    const auto path = tempPath("store_reject.jsonl");
    writeStore(path, spec, plan, 2);

    // A different spec hash means "this file is not your campaign".
    auto mismatch = loadStore(path, "0000000000000000", spec, plan);
    EXPECT_FALSE(mismatch.ok);
    EXPECT_NE(mismatch.error.find("hash"), std::string::npos);

    // A corrupt interior line is an error, not a silent prefix.
    std::string contents;
    {
        std::ifstream in(path, std::ios::binary);
        contents.assign(std::istreambuf_iterator<char>(in), {});
    }
    const auto firstBrace = contents.find("\n{");
    ASSERT_NE(firstBrace, std::string::npos);
    contents[firstBrace + 1] = '#';
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << contents;
    }
    auto corrupt = loadStore(path, specHash(spec), spec, plan);
    EXPECT_FALSE(corrupt.ok);
}
