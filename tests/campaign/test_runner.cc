/**
 * @file
 * Campaign runner determinism: the sharded run must reproduce the
 * direct engine bit for bit, thread count must be invisible, and an
 * interrupted store resumed to completion must be byte-identical to
 * one written by an uninterrupted run.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "campaign/runner.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

CampaignSpec
reliabilitySpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "runner-test", "seed": 4242,
        "schemes": ["secded", "xed"],
        "systems": 600, "shardSystems": 100
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

CampaignSpec
detectionSpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "runner-det", "kind": "detection", "seed": 99,
        "codes": ["hamming7264"], "patterns": ["random", "burst"],
        "maxWeight": 4, "trials": 2000, "shardTrials": 500
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return {std::istreambuf_iterator<char>(in), {}};
}

RunOptions
inMemory(unsigned threads)
{
    RunOptions options;
    options.threads = threads;
    options.telemetrySidecar = false;
    return options;
}

void
removeIfPresent(const std::string &path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

} // namespace

TEST(CampaignRunner, MatchesDirectEngineRun)
{
    const auto spec = reliabilitySpec();
    const auto outcome = runCampaign(spec, inMemory(2));
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_TRUE(outcome.complete);
    ASSERT_EQ(outcome.cells.size(), 2u);

    for (unsigned cell = 0; cell < 2; ++cell) {
        const auto scheme =
            faultsim::makeScheme(spec.schemes[cell], spec.onDie);
        auto cfg = mcConfigFor(spec, 0);
        const auto direct = runMonteCarlo(*scheme, cfg);
        const auto &merged = outcome.cells[cell].result.mc;
        for (unsigned y = 1; y <= 7; ++y) {
            EXPECT_EQ(merged.failByYear[y].successes(),
                      direct.failByYear[y].successes());
            EXPECT_EQ(merged.failByYear[y].trials(),
                      direct.failByYear[y].trials());
        }
        EXPECT_EQ(merged.failureTypes.all(), direct.failureTypes.all());
    }
}

TEST(CampaignRunner, ThreadCountIsInvisible)
{
    const auto spec = reliabilitySpec();
    const auto one = runCampaign(spec, inMemory(1));
    const auto four = runCampaign(spec, inMemory(4));
    ASSERT_TRUE(one.ok && four.ok);
    ASSERT_EQ(one.cells.size(), four.cells.size());
    for (unsigned i = 0; i < one.cells.size(); ++i)
        EXPECT_EQ(one.cells[i].result.mc.failByYear[7].successes(),
                  four.cells[i].result.mc.failByYear[7].successes());
}

TEST(CampaignRunner, DetectionRunIsThreadInvariant)
{
    const auto spec = detectionSpec();
    const auto one = runCampaign(spec, inMemory(1));
    const auto four = runCampaign(spec, inMemory(4));
    ASSERT_TRUE(one.ok && four.ok);
    ASSERT_EQ(one.cells.size(), spec.cellCount());
    for (unsigned i = 0; i < one.cells.size(); ++i) {
        EXPECT_EQ(one.cells[i].result.trials, spec.trials);
        EXPECT_EQ(one.cells[i].result.detected,
                  four.cells[i].result.detected);
    }
    // Weight-1 errors are always detected by a distance-4 code.
    EXPECT_EQ(one.cells[0].result.detected, spec.trials);
}

TEST(CampaignRunner, ResumedStoreIsByteIdentical)
{
    const auto spec = reliabilitySpec();
    for (const unsigned threads : {1u, 4u}) {
        const auto tag = std::to_string(threads);
        const auto full =
            ::testing::TempDir() + "runner_full_" + tag + ".jsonl";
        const auto split =
            ::testing::TempDir() + "runner_split_" + tag + ".jsonl";
        removeIfPresent(full);
        removeIfPresent(split);

        auto options = inMemory(threads);
        options.outPath = full;
        const auto uninterrupted = runCampaign(spec, options);
        ASSERT_TRUE(uninterrupted.ok) << uninterrupted.error;
        ASSERT_TRUE(uninterrupted.complete);

        // Interrupt after 5 of 12 shards, then resume to completion.
        options.outPath = split;
        options.maxShards = 5;
        const auto interrupted = runCampaign(spec, options);
        ASSERT_TRUE(interrupted.ok) << interrupted.error;
        EXPECT_FALSE(interrupted.complete);
        EXPECT_EQ(interrupted.shardsRun, 5u);
        EXPECT_EQ(slurp(split).find("\"type\":\"summary\""),
                  std::string::npos);

        options.maxShards = 0;
        options.resume = true;
        const auto resumed = runCampaign(spec, options);
        ASSERT_TRUE(resumed.ok) << resumed.error;
        ASSERT_TRUE(resumed.complete);
        EXPECT_EQ(resumed.shardsReplayed, 5u);

        EXPECT_EQ(slurp(split), slurp(full))
            << "resumed store differs at " << threads << " thread(s)";
    }
}

TEST(CampaignRunner, ResumeUnderDifferentSamplerIsRejected)
{
    // The sampler is part of the spec hash: a store written under
    // knuth must refuse to resume under invcdf (the merged result
    // would silently mix two different draw sequences).
    auto spec = reliabilitySpec();
    const auto path = ::testing::TempDir() + "runner_sampler.jsonl";
    removeIfPresent(path);

    auto options = inMemory(1);
    options.outPath = path;
    options.maxShards = 3;
    ASSERT_TRUE(runCampaign(spec, options).ok);

    spec.sampler = faultsim::PoissonSampler::InvCdf;
    options.maxShards = 0;
    options.resume = true;
    const auto crossResume = runCampaign(spec, options);
    EXPECT_FALSE(crossResume.ok);
    EXPECT_NE(crossResume.error.find("hash"), std::string::npos)
        << crossResume.error;

    // Under the original sampler the same store resumes cleanly.
    spec.sampler = faultsim::PoissonSampler::Knuth;
    const auto resumed = runCampaign(spec, options);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.shardsReplayed, 3u);
}

TEST(CampaignRunner, ResumeOfCompleteStoreIsNoOp)
{
    const auto spec = reliabilitySpec();
    const auto path = ::testing::TempDir() + "runner_done.jsonl";
    removeIfPresent(path);

    auto options = inMemory(2);
    options.outPath = path;
    ASSERT_TRUE(runCampaign(spec, options).complete);
    const auto before = slurp(path);

    options.resume = true;
    const auto again = runCampaign(spec, options);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.shardsRun, 0u);
    EXPECT_EQ(slurp(path), before);

    // Without --resume, refusing to clobber an existing store is the
    // only safe behavior.
    options.resume = false;
    EXPECT_FALSE(runCampaign(spec, options).ok);
}
