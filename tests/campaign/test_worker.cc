/**
 * @file
 * Distributed execution end to end (campaign/worker.hh): N symmetric
 * workers drain a shared queue and the merge must produce a result
 * store -- and forensics sidecar -- byte-identical to what one
 * uninterrupted single-process run writes. Also pins the failure
 * modes: partial workers, dead workers' leases being re-claimed,
 * missing fragments, and forensics-mode disagreement.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "campaign/forensics.hh"
#include "campaign/queue.hh"
#include "campaign/runner.hh"
#include "campaign/worker.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

namespace fs = std::filesystem;

CampaignSpec
reliabilitySpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "worker-test", "seed": 4242,
        "schemes": ["secded", "xed"],
        "systems": 600, "shardSystems": 100
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

CampaignSpec
detectionSpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "worker-det", "kind": "detection", "seed": 99,
        "codes": ["hamming7264"], "patterns": ["random", "burst"],
        "maxWeight": 4, "trials": 2000, "shardTrials": 500
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return {std::istreambuf_iterator<char>(in), {}};
}

/** Fresh scratch directory holding the queue and both stores. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "xed_worker_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** The single-process reference store for byte comparison. */
std::string
referenceStore(const CampaignSpec &spec, const std::string &dir)
{
    RunOptions options;
    options.outPath = dir + "/single.jsonl";
    options.threads = 2;
    options.telemetrySidecar = false;
    options.durableStore = false;
    const RunOutcome outcome = runCampaign(spec, options);
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_TRUE(outcome.complete);
    return options.outPath;
}

WorkerOptions
workerOptions(const std::string &dir, const std::string &id)
{
    WorkerOptions options;
    options.queueDir = dir + "/queue";
    options.workerId = id;
    options.pollSeconds = 0.01;
    options.telemetrySidecar = false;
    options.durable = false;
    return options;
}

MergeOptions
mergeOptions(const std::string &dir)
{
    MergeOptions options;
    options.queueDir = dir + "/queue";
    options.outPath = dir + "/merged.jsonl";
    options.durable = false;
    return options;
}

} // namespace

TEST(CampaignWorker, OneWorkerMergesByteIdentically)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("one");
    const std::string reference = referenceStore(spec, dir);

    const WorkerOutcome worker =
        runWorker(spec, workerOptions(dir, "w1"));
    ASSERT_TRUE(worker.ok) << worker.error;
    EXPECT_TRUE(worker.queueDrained);
    EXPECT_EQ(worker.shardsRun, buildPlan(spec).tasks.size());

    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.shardsMerged, worker.shardsRun);
    EXPECT_TRUE(merged.forensicsWritten);

    EXPECT_EQ(slurp(dir + "/merged.jsonl"), slurp(reference));
    EXPECT_EQ(slurp(forensicsPath(dir + "/merged.jsonl")),
              slurp(forensicsPath(reference)));
    fs::remove_all(dir);
}

TEST(CampaignWorker, FourConcurrentWorkersMergeByteIdentically)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("four");
    const std::string reference = referenceStore(spec, dir);

    std::vector<WorkerOutcome> outcomes(4);
    std::vector<std::thread> fleet;
    for (int w = 0; w < 4; ++w)
        fleet.emplace_back([&, w] {
            outcomes[w] = runWorker(
                spec, workerOptions(dir, "w" + std::to_string(w)));
        });
    for (auto &t : fleet)
        t.join();

    std::uint64_t total = 0;
    for (const auto &outcome : outcomes) {
        ASSERT_TRUE(outcome.ok) << outcome.error;
        EXPECT_TRUE(outcome.queueDrained);
        total += outcome.shardsRun;
    }
    EXPECT_GE(total, buildPlan(spec).tasks.size());

    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(slurp(dir + "/merged.jsonl"), slurp(reference));
    EXPECT_EQ(slurp(forensicsPath(dir + "/merged.jsonl")),
              slurp(forensicsPath(reference)));
    fs::remove_all(dir);
}

TEST(CampaignWorker, PartialWorkerIsFinishedByAnother)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("partial");
    const std::string reference = referenceStore(spec, dir);

    auto limited = workerOptions(dir, "quitter");
    limited.maxShards = 2;
    const WorkerOutcome first = runWorker(spec, limited);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.shardsRun, 2u);
    EXPECT_FALSE(first.queueDrained);

    // The merge must fail fast while fragments are missing.
    const MergeOutcome early = mergeFragments(spec, mergeOptions(dir));
    EXPECT_FALSE(early.ok);
    EXPECT_NE(early.error.find("no committed fragment"),
              std::string::npos)
        << early.error;

    const WorkerOutcome second =
        runWorker(spec, workerOptions(dir, "finisher"));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.queueDrained);
    EXPECT_EQ(first.shardsRun + second.shardsRun,
              buildPlan(spec).tasks.size());

    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(slurp(dir + "/merged.jsonl"), slurp(reference));
    fs::remove_all(dir);
}

TEST(CampaignWorker, DeadWorkersShardIsReclaimed)
{
    const auto spec = reliabilitySpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("reclaim");
    const std::string reference = referenceStore(spec, dir);

    // A "crashed" worker left an expired lease on shard 0: claimed,
    // never renewed, never committed.
    ShardQueue ghost;
    QueueOptions ghostOptions;
    ghostOptions.dir = dir + "/queue";
    ghostOptions.workerId = "ghost";
    ghostOptions.durable = false;
    std::string error;
    ASSERT_TRUE(ghost.open(spec, plan, ghostOptions, &error)) << error;
    ASSERT_EQ(ghost.tryClaim(0, &error), ShardQueue::Claim::Acquired);
    const auto mtime = fs::last_write_time(ghost.leasePath(0));
    fs::last_write_time(
        ghost.leasePath(0),
        mtime - std::chrono::duration_cast<fs::file_time_type::duration>(
                    std::chrono::duration<double>(300.0)));

    // A live worker must break the stale lease, run shard 0 itself,
    // and still drain the whole queue.
    const WorkerOutcome worker =
        runWorker(spec, workerOptions(dir, "live"));
    ASSERT_TRUE(worker.ok) << worker.error;
    EXPECT_TRUE(worker.queueDrained);
    EXPECT_EQ(worker.shardsRun, plan.tasks.size());

    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(slurp(dir + "/merged.jsonl"), slurp(reference));
    EXPECT_EQ(slurp(forensicsPath(dir + "/merged.jsonl")),
              slurp(forensicsPath(reference)));
    fs::remove_all(dir);
}

TEST(CampaignWorker, DetectionCampaignMergesByteIdentically)
{
    const auto spec = detectionSpec();
    const std::string dir = freshDir("detection");
    const std::string reference = referenceStore(spec, dir);

    std::vector<WorkerOutcome> outcomes(2);
    std::vector<std::thread> fleet;
    for (int w = 0; w < 2; ++w)
        fleet.emplace_back([&, w] {
            outcomes[w] = runWorker(
                spec, workerOptions(dir, "d" + std::to_string(w)));
        });
    for (auto &t : fleet)
        t.join();
    for (const auto &outcome : outcomes)
        ASSERT_TRUE(outcome.ok) << outcome.error;

    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;
    // Detection campaigns have no forensics sidecar at all.
    EXPECT_FALSE(merged.forensicsWritten);
    EXPECT_FALSE(
        fs::exists(forensicsPath(dir + "/merged.jsonl")));
    EXPECT_EQ(slurp(dir + "/merged.jsonl"), slurp(reference));
    fs::remove_all(dir);
}

TEST(CampaignWorker, MergeRefusesToOverwriteAnExistingStore)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("overwrite");

    const WorkerOutcome worker =
        runWorker(spec, workerOptions(dir, "w1"));
    ASSERT_TRUE(worker.ok) << worker.error;

    auto options = mergeOptions(dir);
    const MergeOutcome merged = mergeFragments(spec, options);
    ASSERT_TRUE(merged.ok) << merged.error;

    const MergeOutcome again = mergeFragments(spec, options);
    EXPECT_FALSE(again.ok);
    EXPECT_NE(again.error.find("already exists"), std::string::npos)
        << again.error;
    fs::remove_all(dir);
}

TEST(CampaignWorker, ForensicsModeMustMatchTheQueues)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("forensics_clash");

    auto noForensics = workerOptions(dir, "creator");
    noForensics.forensics = false;
    noForensics.maxShards = 1;
    const WorkerOutcome creator = runWorker(spec, noForensics);
    ASSERT_TRUE(creator.ok) << creator.error;

    // A second worker with forensics on would write two-line fragments
    // into a one-line queue; it must refuse up front.
    const WorkerOutcome clash =
        runWorker(spec, workerOptions(dir, "joiner"));
    EXPECT_FALSE(clash.ok);
    EXPECT_NE(clash.error.find("must agree"), std::string::npos)
        << clash.error;
    fs::remove_all(dir);
}

TEST(CampaignWorker, MergedSummariesMatchTheSingleProcessRun)
{
    const auto spec = reliabilitySpec();
    const std::string dir = freshDir("summaries");

    RunOptions inMemory;
    inMemory.threads = 2;
    inMemory.telemetrySidecar = false;
    const RunOutcome direct = runCampaign(spec, inMemory);
    ASSERT_TRUE(direct.ok) << direct.error;

    const WorkerOutcome worker =
        runWorker(spec, workerOptions(dir, "w1"));
    ASSERT_TRUE(worker.ok) << worker.error;
    const MergeOutcome merged = mergeFragments(spec, mergeOptions(dir));
    ASSERT_TRUE(merged.ok) << merged.error;

    ASSERT_EQ(merged.cells.size(), direct.cells.size());
    for (std::size_t i = 0; i < merged.cells.size(); ++i) {
        const auto &ours = merged.cells[i].result.mc;
        const auto &theirs = direct.cells[i].result.mc;
        for (unsigned y = 1; y <= 7; ++y) {
            EXPECT_EQ(ours.failByYear[y].successes(),
                      theirs.failByYear[y].successes());
            EXPECT_EQ(ours.failByYear[y].trials(),
                      theirs.failByYear[y].trials());
        }
        EXPECT_EQ(ours.failureTypes.all(), theirs.failureTypes.all());
    }
    fs::remove_all(dir);
}
