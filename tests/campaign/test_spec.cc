/**
 * @file
 * CampaignSpec parsing, validation, canonicalization and the shard
 * plan: strict rejection of malformed specs, a stable spec hash that
 * ignores runtime-only knobs, and deterministic plan geometry.
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <stdexcept>

#include "campaign/spec.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

CampaignSpec
parseOrDie(const std::string &text)
{
    std::string error;
    auto doc = json::parse(text, &error);
    EXPECT_TRUE(doc) << error;
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
parseError(const std::string &text)
{
    std::string error;
    auto doc = json::parse(text, &error);
    EXPECT_TRUE(doc) << error;
    auto spec = parseSpec(*doc, &error);
    EXPECT_FALSE(spec) << "spec unexpectedly parsed";
    return error;
}

constexpr const char *kMinimal = R"({
    "name": "t", "seed": 7, "schemes": ["xed"],
    "systems": 100, "shardSystems": 30
})";

} // namespace

TEST(CampaignSpec, ParsesMinimalReliabilitySpec)
{
    const auto spec = parseOrDie(kMinimal);
    EXPECT_EQ(spec.name, "t");
    EXPECT_EQ(spec.kind, CampaignKind::Reliability);
    EXPECT_EQ(spec.seed, 7u);
    ASSERT_EQ(spec.schemes.size(), 1u);
    EXPECT_EQ(spec.systems, 100u);
    EXPECT_EQ(spec.shardSystems, 30u);
}

TEST(CampaignSpec, RejectsUnknownKeysAndBadValues)
{
    EXPECT_NE(parseError(R"({"name":"t","seed":1,"schemes":["xed"],)"
                         R"("systemz":5})")
                  .find("systemz"),
              std::string::npos);
    // Unknown scheme name.
    EXPECT_FALSE(parseError(R"({"name":"t","seed":1,)"
                            R"("schemes":["tripleparity"]})")
                     .empty());
    // Zero shard size would make an infinite plan.
    EXPECT_FALSE(parseError(R"({"name":"t","seed":1,"schemes":["xed"],)"
                            R"("shardSystems":0})")
                     .empty());
    // Missing required keys.
    EXPECT_FALSE(parseError(R"({"seed":1,"schemes":["xed"]})").empty());
    EXPECT_FALSE(parseError(R"({"name":"t","schemes":["xed"]})").empty());
    // Nested unknown key inside onDie.
    EXPECT_FALSE(parseError(R"({"name":"t","seed":1,"schemes":["xed"],)"
                            R"("onDie":{"presence":true}})")
                     .empty());
    // Unknown sweep parameter.
    EXPECT_FALSE(parseError(R"({"name":"t","seed":1,"schemes":["xed"],)"
                            R"("sweep":{"parameter":"voltage",)"
                            R"("values":[1]}})")
                     .empty());
}

TEST(CampaignSpec, HashIsStableAndIgnoresThreads)
{
    const auto a = parseOrDie(kMinimal);
    auto b = a;
    EXPECT_EQ(specHash(a), specHash(b));

    // Threads are a runtime knob: same results, same hash.
    b.threads = 16;
    EXPECT_EQ(specHash(a), specHash(b));

    // Anything that changes results changes the hash.
    b = a;
    b.seed = 8;
    EXPECT_NE(specHash(a), specHash(b));
    b = a;
    b.systems = 101;
    EXPECT_NE(specHash(a), specHash(b));
}

TEST(CampaignSpec, CanonicalJsonRoundTrips)
{
    auto spec = parseOrDie(kMinimal);
    spec.onDie.scalingRate = 1e-5;
    spec.sweep.parameter = "channels";
    spec.sweep.values = {2, 4};

    std::string error;
    const auto doc = specToJson(spec);
    auto reparsed = parseSpec(doc, &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_EQ(json::dump(specToJson(*reparsed)), json::dump(doc));
    EXPECT_EQ(specHash(*reparsed), specHash(spec));
}

TEST(CampaignSpec, PlanCoversEveryUnitInPointMajorOrder)
{
    auto spec = parseOrDie(kMinimal);
    spec.schemes = {faultsim::SchemeKind::Secded,
                    faultsim::SchemeKind::Xed};
    spec.sweep.parameter = "scalingRate";
    spec.sweep.values = {0, 1e-5, 1e-4};

    const Plan plan = buildPlan(spec);
    EXPECT_EQ(plan.points, 3u);
    EXPECT_EQ(plan.cells, 2u);
    // 100 systems / 30 per shard = 4 shards (last one short).
    EXPECT_EQ(plan.shardsPerCell, 4u);
    ASSERT_EQ(plan.tasks.size(), 3u * 2u * 4u);

    std::uint64_t index = 0;
    for (unsigned point = 0; point < 3; ++point) {
        for (unsigned cell = 0; cell < 2; ++cell) {
            std::uint64_t begin = 0;
            for (unsigned s = 0; s < 4; ++s, ++index) {
                const auto &task = plan.tasks[index];
                EXPECT_EQ(task.index, index);
                EXPECT_EQ(task.point, point);
                EXPECT_EQ(task.cell, cell);
                EXPECT_EQ(task.begin, begin);
                begin = task.end;
            }
            EXPECT_EQ(begin, spec.systems);
        }
    }
}

TEST(CampaignSpec, SweepValuesReachTheEngineConfig)
{
    auto spec = parseOrDie(kMinimal);
    spec.sweep.parameter = "scrubIntervalHours";
    spec.sweep.values = {0, 24};
    EXPECT_EQ(mcConfigFor(spec, 0).scrubIntervalHours, 0.0);
    EXPECT_EQ(mcConfigFor(spec, 1).scrubIntervalHours, 24.0);

    spec.sweep.parameter = "scalingRate";
    spec.sweep.values = {1e-6, 1e-4};
    EXPECT_EQ(onDieFor(spec, 0).scalingRate, 1e-6);
    EXPECT_EQ(onDieFor(spec, 1).scalingRate, 1e-4);
    // The runner owns parallelism; per-shard configs stay serial.
    EXPECT_EQ(mcConfigFor(spec, 0).threads, 1u);
}

TEST(CampaignSpec, DetectionCellsEnumerateCodePatternWeight)
{
    const auto spec = parseOrDie(R"({
        "name": "d", "kind": "detection", "seed": 3,
        "codes": ["hamming7264", "crc8atm"],
        "patterns": ["random", "burst"],
        "maxWeight": 3, "trials": 10, "shardTrials": 10
    })");
    EXPECT_EQ(spec.cellCount(), 2u * 2u * 3u);

    const auto first = detectionCell(spec, 0);
    EXPECT_EQ(first.code, "hamming7264");
    EXPECT_FALSE(first.burst);
    EXPECT_EQ(first.weight, 1u);

    const auto last = detectionCell(spec, spec.cellCount() - 1);
    EXPECT_EQ(last.code, "crc8atm");
    EXPECT_TRUE(last.burst);
    EXPECT_EQ(last.weight, 3u);
    EXPECT_EQ(cellLabel(spec, spec.cellCount() - 1), "crc8atm/burst/w3");
}

TEST(CampaignSpec, EnvOverridesApplyAndAffectTheHash)
{
    auto spec = parseOrDie(kMinimal);
    const auto baseHash = specHash(spec);

    ::setenv("XED_MC_SYSTEMS", "60", 1);
    ::setenv("XED_MC_SEED", "99", 1);
    applyEnvOverrides(spec);
    ::unsetenv("XED_MC_SYSTEMS");
    ::unsetenv("XED_MC_SEED");

    EXPECT_EQ(spec.systems, 60u);
    EXPECT_EQ(spec.seed, 99u);
    EXPECT_NE(specHash(spec), baseHash);
}

TEST(CampaignSpec, SamplerParsesRoundTripsAndAffectsTheHash)
{
    // Knuth is the default and need not be spelled out.
    const auto def = parseOrDie(kMinimal);
    EXPECT_EQ(def.sampler, faultsim::PoissonSampler::Knuth);

    const auto inv = parseOrDie(R"({
        "name": "t", "seed": 7, "schemes": ["xed"],
        "systems": 100, "shardSystems": 30, "sampler": "invcdf"
    })");
    EXPECT_EQ(inv.sampler, faultsim::PoissonSampler::InvCdf);
    EXPECT_EQ(mcConfigFor(inv, 0).sampler,
              faultsim::PoissonSampler::InvCdf);

    // Unknown sampler names are rejected, naming the offender.
    EXPECT_NE(parseError(R"({"name":"t","seed":1,"schemes":["xed"],)"
                         R"("sampler":"gamma"})")
                  .find("gamma"),
              std::string::npos);

    // Switching samplers changes every sampled fault set, so it must
    // change the hash (and thereby poison cross-sampler resumes).
    EXPECT_NE(specHash(def), specHash(inv));

    // Canonical JSON spells the sampler out and round-trips it.
    std::string error;
    const auto doc = specToJson(inv);
    EXPECT_NE(json::dump(doc).find("\"sampler\":\"invcdf\""),
              std::string::npos);
    auto reparsed = parseSpec(doc, &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_EQ(reparsed->sampler, faultsim::PoissonSampler::InvCdf);
    EXPECT_EQ(specHash(*reparsed), specHash(inv));
}

TEST(CampaignSpec, SamplerEnvOverrideAppliesAndRejectsGarbage)
{
    auto spec = parseOrDie(kMinimal);
    ::setenv("XED_MC_SAMPLER", "invcdf", 1);
    applyEnvOverrides(spec);
    ::unsetenv("XED_MC_SAMPLER");
    EXPECT_EQ(spec.sampler, faultsim::PoissonSampler::InvCdf);

    ::setenv("XED_MC_SAMPLER", "poisson", 1);
    EXPECT_THROW(applyEnvOverrides(spec), std::runtime_error);
    ::unsetenv("XED_MC_SAMPLER");
}

TEST(CampaignSpec, MalformedEnvOverridesThrow)
{
    auto spec = parseOrDie(kMinimal);
    ::setenv("XED_MC_SYSTEMS", "50k", 1);
    EXPECT_THROW(applyEnvOverrides(spec), std::runtime_error);
    ::unsetenv("XED_MC_SYSTEMS");

    ::setenv("XED_MC_SEED", "-3", 1);
    EXPECT_THROW(applyEnvOverrides(spec), std::runtime_error);
    ::unsetenv("XED_MC_SEED");
}

TEST(CampaignSpec, ShippedSpecFilesParse)
{
    const char *files[] = {"fig07.json", "fig08.json", "table2.json",
                           "smoke.json", "sweep_scaling.json"};
    for (const char *file : files) {
        std::string error;
        auto spec = loadSpecFile(std::string(XED_SPEC_DIR "/") + file,
                                 &error);
        EXPECT_TRUE(spec) << file << ": " << error;
    }
}
