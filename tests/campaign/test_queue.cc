/**
 * @file
 * The filesystem shard queue (campaign/queue.hh): O_EXCL claim
 * arbitration, lease expiry and the tombstone-rename break protocol,
 * byte-checked duplicate commits, and manifest validation that keeps
 * two campaigns from ever mixing fragments in one directory.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>

#include "campaign/queue.hh"
#include "campaign/spec.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

namespace fs = std::filesystem;

CampaignSpec
queueSpec(std::uint64_t seed = 4242)
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "queue-test", "seed": )" +
                               std::to_string(seed) + R"(,
        "schemes": ["secded", "xed"],
        "systems": 300, "shardSystems": 100
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

/** Fresh queue directory under the test temp dir. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "xed_queue_" + name;
    fs::remove_all(dir);
    return dir;
}

QueueOptions
optionsFor(const std::string &dir, const std::string &worker,
           double leaseSeconds = 60.0)
{
    QueueOptions options;
    options.dir = dir;
    options.workerId = worker;
    options.leaseSeconds = leaseSeconds;
    options.durable = false; // queue protocol tests, not crash tests
    return options;
}

void
backdate(const std::string &path, double seconds)
{
    const auto mtime = fs::last_write_time(path);
    fs::last_write_time(
        path, mtime - std::chrono::duration_cast<
                          fs::file_time_type::duration>(
                          std::chrono::duration<double>(seconds)));
}

} // namespace

TEST(ShardQueue, ClaimCommitLifecycle)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("lifecycle");
    std::string error;

    ShardQueue a, b;
    ASSERT_TRUE(a.open(spec, plan, optionsFor(dir, "a"), &error))
        << error;
    ASSERT_TRUE(b.open(spec, plan, optionsFor(dir, "b"), &error))
        << error;
    EXPECT_EQ(a.shards(), plan.tasks.size());

    // First claimer wins; the rival sees a fresh lease.
    EXPECT_EQ(a.tryClaim(0, &error), ShardQueue::Claim::Acquired);
    EXPECT_EQ(b.tryClaim(0, &error), ShardQueue::Claim::Busy);
    EXPECT_TRUE(fs::exists(a.leasePath(0)));

    // Commit publishes the fragment and drops the lease; both workers
    // now see the shard as done.
    ASSERT_TRUE(a.commit(0, "fragment-bytes\n", &error)) << error;
    EXPECT_FALSE(fs::exists(a.leasePath(0)));
    EXPECT_TRUE(a.fragmentExists(0));
    EXPECT_EQ(a.tryClaim(0, &error), ShardQueue::Claim::Done);
    EXPECT_EQ(b.tryClaim(0, &error), ShardQueue::Claim::Done);
    EXPECT_EQ(a.fragmentsPresent(), 1u);

    // Other shards are independent.
    EXPECT_EQ(b.tryClaim(1, &error), ShardQueue::Claim::Acquired);
    b.release(1);
    EXPECT_FALSE(fs::exists(b.leasePath(1)));
    fs::remove_all(dir);
}

TEST(ShardQueue, ExpiredLeaseIsBrokenAndReclaimed)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("expiry");
    std::string error;

    ShardQueue dead, live;
    ASSERT_TRUE(
        dead.open(spec, plan, optionsFor(dir, "dead", 30), &error))
        << error;
    ASSERT_TRUE(
        live.open(spec, plan, optionsFor(dir, "live", 30), &error))
        << error;

    ASSERT_EQ(dead.tryClaim(0, &error), ShardQueue::Claim::Acquired);
    EXPECT_EQ(live.tryClaim(0, &error), ShardQueue::Claim::Busy);

    // Simulate a crashed holder: no renewals, lease mtime far in the
    // past. The live worker must break the lease and claim the shard.
    backdate(dead.leasePath(0), 120.0);
    EXPECT_EQ(live.tryClaim(0, &error), ShardQueue::Claim::Acquired);
    EXPECT_TRUE(fs::exists(live.leasePath(0)));

    // The straggler's renew must observe the loss instead of stomping
    // the new holder's lease.
    EXPECT_FALSE(dead.renew(0, &error));
    fs::remove_all(dir);
}

TEST(ShardQueue, RenewKeepsALeaseAlive)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("renew");
    std::string error;

    ShardQueue holder, rival;
    ASSERT_TRUE(
        holder.open(spec, plan, optionsFor(dir, "holder"), &error))
        << error;
    ASSERT_TRUE(
        rival.open(spec, plan, optionsFor(dir, "rival"), &error))
        << error;

    ASSERT_EQ(holder.tryClaim(0, &error), ShardQueue::Claim::Acquired);
    backdate(holder.leasePath(0), 120.0);
    // A heartbeat renewal refreshes the mtime, so the backdated lease
    // is fresh again and the rival keeps seeing Busy.
    ASSERT_TRUE(holder.renew(0, &error)) << error;
    EXPECT_EQ(rival.tryClaim(0, &error), ShardQueue::Claim::Busy);
    fs::remove_all(dir);
}

TEST(ShardQueue, DuplicateCommitMustBeByteIdentical)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("duplicate");
    std::string error;

    ShardQueue first, straggler;
    ASSERT_TRUE(
        first.open(spec, plan, optionsFor(dir, "first"), &error))
        << error;
    ASSERT_TRUE(straggler.open(spec, plan,
                               optionsFor(dir, "straggler"), &error))
        << error;

    ASSERT_TRUE(first.commit(3, "deterministic-bytes\n", &error))
        << error;

    // A re-claimed straggler re-commits the same shard: fine when the
    // bytes agree (deterministic execution), fatal when they differ.
    bool duplicate = false;
    EXPECT_TRUE(straggler.commit(3, "deterministic-bytes\n", &error,
                                 &duplicate));
    EXPECT_TRUE(duplicate);

    EXPECT_FALSE(straggler.commit(3, "different-bytes\n", &error));
    EXPECT_NE(error.find("determinism"), std::string::npos) << error;
    fs::remove_all(dir);
}

TEST(ShardQueue, RefusesAForeignCampaignsQueue)
{
    const auto spec = queueSpec(4242);
    const auto other = queueSpec(7777); // different seed, new hash
    const Plan plan = buildPlan(spec);
    const Plan otherPlan = buildPlan(other);
    const std::string dir = freshDir("foreign");
    std::string error;

    ShardQueue ours;
    ASSERT_TRUE(ours.open(spec, plan, optionsFor(dir, "a"), &error))
        << error;

    ShardQueue theirs;
    EXPECT_FALSE(
        theirs.open(other, otherPlan, optionsFor(dir, "b"), &error));
    EXPECT_NE(error.find("spec hash mismatch"), std::string::npos)
        << error;
    fs::remove_all(dir);
}

TEST(ShardQueue, ManifestRecordsForensicsMode)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("forensics_mode");
    std::string error;

    auto options = optionsFor(dir, "a");
    options.forensics = false;
    ShardQueue creator;
    ASSERT_TRUE(creator.open(spec, plan, options, &error)) << error;
    EXPECT_FALSE(creator.forensics());

    // A later worker adopts the manifest's mode regardless of its own
    // option; runWorker turns the disagreement into an error.
    ShardQueue joiner;
    ASSERT_TRUE(joiner.open(spec, plan, optionsFor(dir, "b"), &error))
        << error;
    EXPECT_FALSE(joiner.forensics());
    fs::remove_all(dir);
}

TEST(ShardQueue, WorkerIdsAreSanitizedForFileNames)
{
    const auto spec = queueSpec();
    const Plan plan = buildPlan(spec);
    const std::string dir = freshDir("sanitize");
    std::string error;

    ShardQueue queue;
    ASSERT_TRUE(queue.open(spec, plan,
                           optionsFor(dir, "host/1:2 bad"), &error))
        << error;
    EXPECT_EQ(queue.workerId(), "host-1-2-bad");

    const std::string byDefault = ShardQueue::defaultWorkerId();
    EXPECT_FALSE(byDefault.empty());
    EXPECT_EQ(byDefault.find('/'), std::string::npos);
    fs::remove_all(dir);
}

TEST(PollJitter, StaysWithinBoundsAndAboveFloor)
{
    // The claim-scan backoff jitters uniformly over [0.75, 1.25) of
    // the configured interval so a worker fleet started in lockstep
    // does not hammer the queue directory in phase.
    std::uint64_t state = pollJitterSeed("w1");
    double low = 1e9, high = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double s = jitteredPollSeconds(0.2, state);
        ASSERT_GE(s, 0.75 * 0.2);
        ASSERT_LT(s, 1.25 * 0.2);
        low = std::min(low, s);
        high = std::max(high, s);
    }
    // The draw actually spreads over the interval.
    EXPECT_LT(low, 0.8 * 0.2);
    EXPECT_GT(high, 1.2 * 0.2);

    // Tiny or zero bases clamp to the 10 ms floor instead of spinning.
    for (int i = 0; i < 100; ++i) {
        EXPECT_GE(jitteredPollSeconds(0.001, state), 0.01);
        EXPECT_EQ(jitteredPollSeconds(0.0, state), 0.01);
    }
}

TEST(PollJitter, DeterministicPerWorkerAndDecorrelatedAcrossWorkers)
{
    // Same worker id -> same backoff sequence (reproducible runs);
    // different ids -> different sequences (the anti-thundering-herd
    // point). 64 draws colliding across seeds is astronomically
    // unlikely with a splitmix64 stream.
    std::uint64_t a1 = pollJitterSeed("host-1");
    std::uint64_t a2 = pollJitterSeed("host-1");
    std::uint64_t b = pollJitterSeed("host-2");
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);

    bool differs = false;
    for (int i = 0; i < 64; ++i) {
        const double fromA1 = jitteredPollSeconds(1.0, a1);
        EXPECT_EQ(fromA1, jitteredPollSeconds(1.0, a2));
        differs = differs || fromA1 != jitteredPollSeconds(1.0, b);
    }
    EXPECT_TRUE(differs);
}
