/**
 * @file
 * Frozen pre-optimization codec implementations, kept as the reference
 * half of two contracts:
 *
 *  - the randomized equivalence suite (tests/ecc/test_codec_equivalence)
 *    proves the table-driven scratch kernels return byte-identical
 *    results to these originals;
 *  - the throughput bench (bench/codec_throughput) measures the new
 *    kernels against them, so the before/after ratios in
 *    BENCH_codecs.json compare real implementations rather than
 *    guesses.
 *
 * These are deliberate verbatim copies of the algorithms as they stood
 * before the kernel rewrite (log/exp multiply with the zero branch and
 * `% 255`, heap-based RS decode, byte-at-a-time dependent-chain CRC).
 * Do not "clean them up" into the optimized forms -- their value is
 * being the old code.
 */

#ifndef XED_TESTS_SUPPORT_CODEC_REFERENCE_HH
#define XED_TESTS_SUPPORT_CODEC_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "ecc/reed_solomon.hh"
#include "ecc/word72.hh"

namespace xed::ecc::legacy
{

/** The original GF(2^8) multiply: zero branch + log/exp + `% 255`. */
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

/** The original byte-at-a-time CRC8-ATM: an 8-step dependent chain. */
std::uint8_t crc8(std::uint64_t data);

/** The original CRC syndrome: crc(extracted data) ^ check byte. */
std::uint8_t crcSyndrome(const Word72 &received);

/**
 * The original heap-based RS(n, k) implementation (vector polynomials
 * throughout). Statuses and corrected words define the bit-identical
 * contract the scratch kernel is tested against.
 */
class ReedSolomon
{
  public:
    ReedSolomon(unsigned n, unsigned k);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned numCheck() const { return n_ - k_; }

    std::vector<std::uint8_t> encode(
        const std::vector<std::uint8_t> &data) const;

    RsResult decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures = {}) const;

    bool isCodeword(const std::vector<std::uint8_t> &received) const;

  private:
    unsigned degreeOf(unsigned index) const { return n_ - 1 - index; }

    std::vector<std::uint8_t> syndromes(
        const std::vector<std::uint8_t> &received) const;

    unsigned n_;
    unsigned k_;
    std::vector<std::uint8_t> gen_;
};

} // namespace xed::ecc::legacy

#endif // XED_TESTS_SUPPORT_CODEC_REFERENCE_HH
