#include "tests/support/codec_reference.hh"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace xed::ecc::legacy
{

namespace
{

constexpr unsigned fieldPoly = 0x11D;
constexpr unsigned groupOrder = 255;

/** The original log/exp table pair (no full product table). */
struct LogExp
{
    std::uint8_t exp[256];
    unsigned log[256];

    LogExp()
    {
        unsigned x = 1;
        for (unsigned i = 0; i < groupOrder; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[x] = i;
            x <<= 1;
            if (x & 0x100)
                x ^= fieldPoly;
        }
        exp[groupOrder] = exp[0];
        log[0] = 0;
    }
};

const LogExp &
tables()
{
    static const LogExp t;
    return t;
}

std::uint8_t
gfDiv(std::uint8_t a, std::uint8_t b)
{
    const LogExp &t = tables();
    if (a == 0)
        return 0;
    return t.exp[(t.log[a] + groupOrder - t.log[b]) % groupOrder];
}

std::uint8_t
gfExpAlpha(unsigned e)
{
    return tables().exp[e % groupOrder];
}

using Poly = std::vector<std::uint8_t>;

unsigned
degree(const Poly &p)
{
    for (std::size_t i = p.size(); i-- > 0;)
        if (p[i] != 0)
            return static_cast<unsigned>(i);
    return 0;
}

Poly
polyMul(const Poly &a, const Poly &b)
{
    Poly out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gfMul(a[i], b[j]);
    }
    return out;
}

std::uint8_t
polyEval(const Poly &p, std::uint8_t x)
{
    std::uint8_t acc = 0;
    for (std::size_t i = p.size(); i-- > 0;)
        acc = static_cast<std::uint8_t>(gfMul(acc, x) ^ p[i]);
    return acc;
}

Poly
polyDeriv(const Poly &p)
{
    Poly out(p.size() > 1 ? p.size() - 1 : 1, 0);
    for (std::size_t i = 1; i < p.size(); i += 2)
        out[i - 1] = p[i];
    return out;
}

/** The original MSB-first byte table: table[b] = b(x) * x^8 mod g. */
const std::uint8_t *
crcTable()
{
    static const auto table = [] {
        std::array<std::uint8_t, 256> t{};
        for (unsigned b = 0; b < 256; ++b) {
            std::uint8_t r = static_cast<std::uint8_t>(b);
            for (int i = 0; i < 8; ++i)
                r = static_cast<std::uint8_t>((r << 1) ^
                                              ((r & 0x80) ? 0x07 : 0));
            t[b] = r;
        }
        return t;
    }();
    return table.data();
}

} // namespace

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    const LogExp &t = tables();
    if (a == 0 || b == 0)
        return 0;
    return t.exp[(t.log[a] + t.log[b]) % groupOrder];
}

std::uint8_t
crc8(std::uint64_t data)
{
    const std::uint8_t *table = crcTable();
    std::uint8_t r = 0;
    for (int byte = 7; byte >= 0; --byte)
        r = table[r ^ static_cast<std::uint8_t>(data >> (8 * byte))];
    return r;
}

std::uint8_t
crcSyndrome(const Word72 &received)
{
    const std::uint64_t data =
        (static_cast<std::uint64_t>(received.hi) << 56) |
        (received.lo >> 8);
    return static_cast<std::uint8_t>(crc8(data) ^ (received.lo & 0xFF));
}

ReedSolomon::ReedSolomon(unsigned n, unsigned k) : n_(n), k_(k)
{
    if (n > groupOrder || k >= n || k == 0)
        throw std::invalid_argument("invalid RS parameters");
    gen_ = {1};
    for (unsigned i = 0; i < n - k; ++i) {
        const Poly factor = {gfExpAlpha(i), 1};
        gen_ = polyMul(gen_, factor);
    }
}

std::vector<std::uint8_t>
ReedSolomon::encode(const std::vector<std::uint8_t> &data) const
{
    if (data.size() != k_)
        throw std::invalid_argument("RS encode: wrong data length");
    const unsigned r = numCheck();
    std::vector<std::uint8_t> rem(r, 0);
    for (unsigned i = 0; i < k_; ++i) {
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(data[i] ^ rem[r - 1]);
        for (unsigned j = r; j-- > 1;)
            rem[j] = static_cast<std::uint8_t>(
                rem[j - 1] ^ gfMul(feedback, gen_[j]));
        rem[0] = gfMul(feedback, gen_[0]);
    }
    std::vector<std::uint8_t> out(data);
    out.resize(n_);
    for (unsigned j = 0; j < r; ++j)
        out[k_ + j] = rem[r - 1 - j];
    return out;
}

std::vector<std::uint8_t>
ReedSolomon::syndromes(const std::vector<std::uint8_t> &received) const
{
    const unsigned r = numCheck();
    std::vector<std::uint8_t> syn(r, 0);
    for (unsigned j = 0; j < r; ++j) {
        std::uint8_t acc = 0;
        const std::uint8_t x = gfExpAlpha(j);
        for (unsigned i = 0; i < n_; ++i)
            acc = static_cast<std::uint8_t>(gfMul(acc, x) ^ received[i]);
        syn[j] = acc;
    }
    return syn;
}

bool
ReedSolomon::isCodeword(const std::vector<std::uint8_t> &received) const
{
    const auto syn = syndromes(received);
    return std::all_of(syn.begin(), syn.end(),
                       [](std::uint8_t s) { return s == 0; });
}

RsResult
ReedSolomon::decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures) const
{
    if (received.size() != n_)
        throw std::invalid_argument("RS decode: wrong codeword length");
    RsResult result;
    const unsigned r = numCheck();

    const auto syn = syndromes(received);
    const bool clean = std::all_of(syn.begin(), syn.end(),
                                   [](std::uint8_t s) { return s == 0; });
    if (clean) {
        result.status = RsStatus::NoError;
        return result;
    }

    const unsigned e = static_cast<unsigned>(erasures.size());
    if (e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    Poly gamma = {1};
    for (const unsigned idx : erasures) {
        if (idx >= n_) {
            result.status = RsStatus::Failure;
            return result;
        }
        const Poly factor = {1, gfExpAlpha(degreeOf(idx))};
        gamma = polyMul(gamma, factor);
    }

    Poly sPoly(syn.begin(), syn.end());
    Poly t = polyMul(sPoly, gamma);
    t.resize(r, 0);

    const unsigned nSeq = r - e;
    Poly lambda = {1};
    Poly b = {1};
    unsigned lLen = 0;
    unsigned m = 1;
    std::uint8_t bCoef = 1;
    for (unsigned step = 0; step < nSeq; ++step) {
        std::uint8_t delta = 0;
        for (unsigned i = 0; i <= lLen && i < lambda.size(); ++i)
            if (step >= i)
                delta ^= gfMul(lambda[i], t[e + step - i]);
        if (delta == 0) {
            ++m;
        } else if (2 * lLen <= step) {
            const Poly oldLambda = lambda;
            const std::uint8_t factor = gfDiv(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gfMul(factor, shifted[i]);
            b = oldLambda;
            lLen = step + 1 - lLen;
            bCoef = delta;
            m = 1;
        } else {
            const std::uint8_t factor = gfDiv(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gfMul(factor, shifted[i]);
            ++m;
        }
    }
    if (degree(lambda) != lLen || 2 * lLen + e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    Poly psi = polyMul(lambda, gamma);
    std::vector<unsigned> positions;
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t xInv =
            gfExpAlpha(groupOrder - (deg % groupOrder));
        if (polyEval(psi, xInv) == 0)
            positions.push_back(p);
    }
    if (positions.size() != degree(psi)) {
        result.status = RsStatus::Failure;
        return result;
    }

    Poly omega = polyMul(sPoly, psi);
    omega.resize(r, 0);
    const Poly psiDeriv = polyDeriv(psi);
    for (const unsigned p : positions) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t x = gfExpAlpha(deg);
        const std::uint8_t xInv =
            gfExpAlpha(groupOrder - (deg % groupOrder));
        const std::uint8_t num = polyEval(omega, xInv);
        const std::uint8_t den = polyEval(psiDeriv, xInv);
        if (den == 0) {
            result.status = RsStatus::Failure;
            return result;
        }
        const std::uint8_t magnitude = gfMul(x, gfDiv(num, den));
        received[p] ^= magnitude;
    }

    if (!isCodeword(received)) {
        result.status = RsStatus::Failure;
        return result;
    }
    result.status = RsStatus::Corrected;
    result.numErasures = e;
    result.numErrors = lLen;
    return result;
}

} // namespace xed::ecc::legacy
