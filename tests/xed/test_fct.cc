#include <gtest/gtest.h>

#include "xed/fct.hh"

namespace xed
{
namespace
{

TEST(Fct, EmptyLookupMisses)
{
    FaultyRowChipTracker fct(4);
    EXPECT_FALSE(fct.lookup(0, 0).has_value());
    EXPECT_FALSE(fct.unanimousChip().has_value());
}

TEST(Fct, RecordAndLookup)
{
    FaultyRowChipTracker fct(4);
    EXPECT_FALSE(fct.record(1, 100, 3));
    ASSERT_TRUE(fct.lookup(1, 100).has_value());
    EXPECT_EQ(*fct.lookup(1, 100), 3u);
    EXPECT_FALSE(fct.lookup(1, 101).has_value());
}

TEST(Fct, SingleRowFailureDoesNotMarkChip)
{
    // Section VI-A: one faulty row populates one entry; the chip is NOT
    // marked permanently faulty.
    FaultyRowChipTracker fct(4);
    EXPECT_FALSE(fct.record(0, 7, 2));
    EXPECT_EQ(fct.size(), 1u);
}

TEST(Fct, ColumnFailureFillsTrackerUnanimously)
{
    // A column/bank failure produces many faulty rows all pointing at
    // the same chip; once the tracker is full and unanimous the caller
    // marks the chip.
    FaultyRowChipTracker fct(4);
    EXPECT_FALSE(fct.record(0, 1, 5));
    EXPECT_FALSE(fct.record(0, 2, 5));
    EXPECT_FALSE(fct.record(0, 3, 5));
    EXPECT_TRUE(fct.record(0, 4, 5));
    ASSERT_TRUE(fct.unanimousChip().has_value());
    EXPECT_EQ(*fct.unanimousChip(), 5u);
}

TEST(Fct, MixedChipsNotUnanimous)
{
    FaultyRowChipTracker fct(2);
    fct.record(0, 1, 5);
    EXPECT_FALSE(fct.record(0, 2, 6));
    EXPECT_FALSE(fct.unanimousChip().has_value());
}

TEST(Fct, FifoEviction)
{
    FaultyRowChipTracker fct(2);
    fct.record(0, 1, 1);
    fct.record(0, 2, 2);
    fct.record(0, 3, 3); // evicts (0,1)
    EXPECT_FALSE(fct.lookup(0, 1).has_value());
    EXPECT_TRUE(fct.lookup(0, 2).has_value());
    EXPECT_TRUE(fct.lookup(0, 3).has_value());
}

TEST(Fct, RecordExistingRowUpdatesChip)
{
    FaultyRowChipTracker fct(4);
    fct.record(0, 1, 1);
    fct.record(0, 1, 2);
    EXPECT_EQ(fct.size(), 1u);
    EXPECT_EQ(*fct.lookup(0, 1), 2u);
}

} // namespace
} // namespace xed
