#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "xed/controller.hh"

namespace xed
{
namespace
{

using dram::Fault;
using dram::FaultGranularity;
using dram::WordAddr;

class XedControllerTest : public ::testing::Test
{
  protected:
    std::array<std::uint64_t, 8>
    randomLine(Rng &rng)
    {
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        return line;
    }

    XedController ctrl;
    Rng rng{0x7357};
};

TEST_F(XedControllerTest, CleanWriteReadRoundTrip)
{
    const WordAddr addr{0, 100, 5};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::Clean);
    EXPECT_EQ(r.data, line);
    EXPECT_TRUE(r.catchWordChips.empty());
}

TEST_F(XedControllerTest, UnwrittenLinesReadCleanBackground)
{
    const auto r = ctrl.readLine({3, 3, 3});
    EXPECT_EQ(r.outcome, ReadOutcome::Clean);
}

TEST_F(XedControllerTest, SingleChipScalingFaultCorrectedByErasure)
{
    // A single-bit (scaling-class) fault in one chip: the chip sends
    // its catch-word and the controller rebuilds via parity.
    const WordAddr addr{1, 50, 10};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);

    Fault f;
    f.granularity = FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr;
    f.bitPos = 12;
    ctrl.chip(4).faults().add(f);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::CorrectedErasure);
    EXPECT_EQ(r.data, line);
    ASSERT_EQ(r.catchWordChips.size(), 1u);
    EXPECT_EQ(r.catchWordChips[0], 4u);
    ASSERT_TRUE(r.rebuiltChip.has_value());
    EXPECT_EQ(*r.rebuiltChip, 4u);
}

TEST_F(XedControllerTest, EveryDataChipPositionRecoverable)
{
    for (unsigned victim = 0; victim < 8; ++victim) {
        const WordAddr addr{0, 200, victim};
        const auto line = randomLine(rng);
        ctrl.writeLine(addr, line);
        Fault f;
        f.granularity = FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 1000 + victim;
        ctrl.chip(victim).faults().add(f);

        const auto r = ctrl.readLine(addr);
        EXPECT_EQ(r.data, line) << victim;
        EXPECT_NE(r.outcome, ReadOutcome::DetectedUncorrectable)
            << victim;
    }
}

TEST_F(XedControllerTest, ParityChipFaultDoesNotDisturbData)
{
    const WordAddr addr{2, 60, 11};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);

    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 17;
    ctrl.chip(XedController::parityChipIndex).faults().add(f);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::CorrectedParityChip);
    EXPECT_EQ(r.data, line);
}

TEST_F(XedControllerTest, RowFailureCorrectedForWholeRow)
{
    // A row failure in one chip corrupts 128 lines; every one of them
    // must be reconstructed (the chip catch-words on ~99.2% of lines
    // and the rest go through inter-line diagnosis).
    const unsigned bank = 1, row = 300;
    std::array<std::array<std::uint64_t, 8>, 128> lines{};
    for (unsigned col = 0; col < 128; ++col) {
        lines[col] = randomLine(rng);
        ctrl.writeLine({bank, row, col}, lines[col]);
    }
    Fault f;
    f.granularity = FaultGranularity::SingleRow;
    f.permanent = true;
    f.addr = {bank, row, 0};
    f.seed = 42;
    ctrl.chip(2).faults().add(f);

    for (unsigned col = 0; col < 128; ++col) {
        const auto r = ctrl.readLine({bank, row, col});
        EXPECT_EQ(r.data, lines[col]) << col;
        EXPECT_NE(r.outcome, ReadOutcome::DetectedUncorrectable) << col;
    }
}

TEST_F(XedControllerTest, MultipleScalingFaultsSerialModeOnDie)
{
    // Two chips with single-bit scaling faults in the same line: two
    // catch-words; serial-mode re-read lets the on-die ECC correct
    // both (Section VII-B).
    const WordAddr addr{5, 70, 3};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);

    for (const unsigned chipIdx : {1u, 6u}) {
        Fault f;
        f.granularity = FaultGranularity::SingleBit;
        f.permanent = true;
        f.addr = addr;
        f.bitPos = 5 + chipIdx;
        ctrl.chip(chipIdx).faults().add(f);
    }

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::MultiCatchWordOnDie);
    EXPECT_EQ(r.data, line);
    EXPECT_EQ(r.catchWordChips.size(), 2u);
    EXPECT_GE(ctrl.counters().get("serial_mode"), 1u);
}

TEST_F(XedControllerTest, ChipFailurePlusScalingFaultCorrected)
{
    // Section VII-C: a runtime multi-bit chip failure in one chip with
    // a concurrent scaling fault in another chip. Serial-mode re-read
    // fixes the scaling fault on-die; diagnosis locates the failed
    // chip; parity rebuilds it.
    const unsigned bank = 4, row = 40;
    std::array<std::array<std::uint64_t, 8>, 128> lines{};
    for (unsigned col = 0; col < 128; ++col) {
        lines[col] = randomLine(rng);
        ctrl.writeLine({bank, row, col}, lines[col]);
    }
    const WordAddr addr{bank, row, 9};

    Fault scaling;
    scaling.granularity = FaultGranularity::SingleBit;
    scaling.permanent = true;
    scaling.addr = addr;
    scaling.bitPos = 2;
    ctrl.chip(0).faults().add(scaling);

    Fault rowFail;
    rowFail.granularity = FaultGranularity::SingleRow;
    rowFail.permanent = true;
    rowFail.addr = {bank, row, 0};
    rowFail.seed = 55;
    ctrl.chip(7).faults().add(rowFail);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.data, lines[9]);
    EXPECT_NE(r.outcome, ReadOutcome::DetectedUncorrectable);
}

TEST_F(XedControllerTest, CollisionDetectedAndCatchWordsRegenerated)
{
    // Store the catch-word itself as data in chip 3: the controller
    // must return the correct value AND re-randomize the catch-words
    // (Section V-D).
    const WordAddr addr{6, 80, 2};
    auto line = randomLine(rng);
    line[3] = ctrl.catchWordOf(3);
    ctrl.writeLine(addr, line);

    const auto before = ctrl.catchWordOf(3);
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::CollisionCorrected);
    EXPECT_EQ(r.data, line);
    EXPECT_NE(ctrl.catchWordOf(3), before);
    EXPECT_GE(ctrl.counters().get("collisions"), 1u);
    // After regeneration the same line reads clean.
    const auto r2 = ctrl.readLine(addr);
    EXPECT_EQ(r2.outcome, ReadOutcome::Clean);
    EXPECT_EQ(r2.data, line);
}

TEST_F(XedControllerTest, TransientWordFaultEscapingOnDieIsDue)
{
    // Force the worst case of Section VIII: corrupt a word with a
    // pattern the on-die code cannot see (we emulate the 0.8% escape by
    // crafting a codeword-aliasing pattern), transient so the
    // intra-line probe cannot find it either. Expect a DUE, not SDC.
    const WordAddr addr{7, 90, 1};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);

    // Find an error pattern that is a nonzero CRC8-ATM *codeword* (so
    // the on-die syndrome stays zero): any codeword of the on-die code
    // works since the code is linear. Use encode(1) (nonzero data).
    const auto alias = ctrl.onDieCode().encode(1);
    ASSERT_FALSE(alias.isZero());

    // Inject it as a one-shot transient via a custom fault: we emulate
    // by directly rewriting the stored word through the chip interface
    // with the aliased data, leaving check bits consistent.
    // encode(data ^ 1) differs from encode(data) by exactly `alias`.
    ctrl.chip(5).write(addr, line[5] ^ 1);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ReadOutcome::DetectedUncorrectable);
    EXPECT_TRUE(r.uncorrectable());
    EXPECT_GE(ctrl.counters().get("due"), 1u);
}

TEST_F(XedControllerTest, BankFailureEventuallyMarksChip)
{
    // A bank failure produces faulty lines in thousands of rows; after
    // enough diagnoses the FCT fills unanimously and the chip is
    // permanently marked (Section VI-A).
    const unsigned bank = 2;
    Fault f;
    f.granularity = FaultGranularity::SingleBank;
    f.permanent = true;
    f.addr = {bank, 0, 0};
    f.seed = 31337;
    ctrl.chip(3).faults().add(f);

    // Touch many distinct rows. Most reads see a catch-word from chip 3
    // (single catch-word, erasure-corrected); to exercise the FCT we
    // need detection *escapes*, which are rare -- so instead drive the
    // FCT through repeated inter-line diagnoses by reading rows where
    // the corruption aliases the on-die code. Simpler and deterministic:
    // record via the public read path using rows with crafted escapes.
    unsigned diagnoses = 0;
    for (unsigned row = 0; row < 4000 && !ctrl.markedFaultyChip(); ++row) {
        const WordAddr addr{bank, row, row % 128};
        const auto r = ctrl.readLine(addr);
        ASSERT_NE(r.outcome, ReadOutcome::DetectedUncorrectable);
        if (r.outcome == ReadOutcome::InterLineCorrected)
            ++diagnoses;
    }
    // The 0.8% escape rate over 4000 rows gives ~32 diagnoses; the FCT
    // (8 entries, all chip 3) marks the chip well before that.
    EXPECT_TRUE(ctrl.markedFaultyChip().has_value());
    EXPECT_EQ(*ctrl.markedFaultyChip(), 3u);
    EXPECT_GE(diagnoses, 8u);

    // Once marked, reads are rebuilt directly.
    const auto r = ctrl.readLine({bank, 4001 % 32768, 0});
    EXPECT_EQ(r.outcome, ReadOutcome::MarkedChipCorrected);
}

TEST_F(XedControllerTest, CountersTrackActivity)
{
    const WordAddr addr{0, 0, 0};
    const auto line = randomLine(rng);
    ctrl.writeLine(addr, line);
    ctrl.readLine(addr);
    EXPECT_EQ(ctrl.counters().get("writes"), 1u);
    EXPECT_EQ(ctrl.counters().get("reads"), 1u);
}

} // namespace
} // namespace xed
