/**
 * @file
 * readMany() against a readLine() loop (DESIGN.md section 4j): the
 * batched read path may only accelerate -- results, counters, RNG
 * draws (catch-word regenerations) and marked-chip state must be
 * byte-identical to scalar reads of the same addresses in the same
 * order. Two controllers are built from the same config and seed and
 * driven through identical writes and fault injections; one reads
 * line by line, the other in one readMany() call.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "xed/chipkill_controller.hh"
#include "xed/controller.hh"

namespace xed
{
namespace
{

using dram::Fault;
using dram::FaultGranularity;
using dram::WordAddr;

void
expectSameLineResult(const LineReadResult &a, const LineReadResult &b,
                     std::size_t index)
{
    ASSERT_EQ(a.data, b.data) << "line " << index;
    ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
        << "line " << index;
    ASSERT_TRUE(a.catchWordChips == b.catchWordChips)
        << "line " << index;
    ASSERT_EQ(a.rebuiltChip, b.rebuiltChip) << "line " << index;
}

/** Run @p setup on two identical controllers, then read @p addrs line
 *  by line on one and via readMany() on the other and demand
 *  byte-identical results, counters and catch-words. */
template <typename Setup>
void
checkXedReadManyMatchesLoop(Setup &&setup,
                            const std::vector<WordAddr> &addrs)
{
    XedController loop;
    XedController batch;
    setup(loop);
    setup(batch);

    std::vector<LineReadResult> loopResults;
    loopResults.reserve(addrs.size());
    for (const WordAddr &addr : addrs)
        loopResults.push_back(loop.readLine(addr));

    std::vector<LineReadResult> batchResults(addrs.size());
    batch.readMany(std::span<const WordAddr>(addrs),
                   std::span<LineReadResult>(batchResults));

    for (std::size_t i = 0; i < addrs.size(); ++i)
        expectSameLineResult(loopResults[i], batchResults[i], i);
    EXPECT_EQ(loop.counters().all(), batch.counters().all());
    // Identical catch-words afterwards == identical RNG draw count
    // and order (regeneration is the only runtime draw).
    for (unsigned c = 0; c < XedController::numChips; ++c)
        EXPECT_EQ(loop.catchWordOf(c), batch.catchWordOf(c)) << c;
    EXPECT_EQ(loop.markedFaultyChip(), batch.markedFaultyChip());
}

TEST(ReadMany, XedMatchesReadLineLoopMixedFaults)
{
    // 200 lines (crossing internal batch chunks) with faults placed at
    // chunk edges: an erasure-class single-bit fault, a parity-chip
    // fault, and a two-chip serial-mode line, among mostly clean lines.
    std::vector<WordAddr> addrs;
    for (unsigned i = 0; i < 200; ++i)
        addrs.push_back({i % 4, 10 + i / 128, i % 128});

    const auto setup = [&](XedController &ctrl) {
        Rng rng(0x5E70);
        for (const WordAddr &addr : addrs) {
            std::array<std::uint64_t, 8> line{};
            for (auto &word : line)
                word = rng.next();
            ctrl.writeLine(addr, line);
        }
        Fault bit;
        bit.granularity = FaultGranularity::SingleBit;
        bit.permanent = true;
        bit.addr = addrs[0];
        bit.bitPos = 12;
        ctrl.chip(4).faults().add(bit);

        Fault edge = bit;
        edge.addr = addrs[63];
        edge.bitPos = 3;
        ctrl.chip(1).faults().add(edge);

        Fault parity;
        parity.granularity = FaultGranularity::SingleWord;
        parity.permanent = true;
        parity.addr = addrs[64];
        parity.seed = 77;
        ctrl.chip(XedController::parityChipIndex).faults().add(parity);

        // Two scaling faults on one line: serial-mode re-read.
        Fault serialA = bit;
        serialA.addr = addrs[130];
        serialA.bitPos = 7;
        ctrl.chip(2).faults().add(serialA);
        Fault serialB = bit;
        serialB.addr = addrs[130];
        serialB.bitPos = 9;
        ctrl.chip(6).faults().add(serialB);
    };
    checkXedReadManyMatchesLoop(setup, addrs);
}

TEST(ReadMany, XedPreservesRngDrawOrderOnCollisions)
{
    // Catch-word collisions regenerate EVERY catch-word (the only
    // runtime RNG draw), and later collisions depend on the earlier
    // draws, so any reordering or elision in the batch path shows up
    // as diverging catch-words, outcomes or counters. Duplicate
    // addresses check the re-read after regeneration too.
    std::vector<WordAddr> addrs;
    for (unsigned i = 0; i < 150; ++i)
        addrs.push_back({i % 2, 40 + i / 64, i % 64});
    addrs.push_back(addrs[5]);
    addrs.push_back(addrs[70]);

    const auto setup = [&](XedController &ctrl) {
        Rng rng(0xC0111DE);
        for (unsigned i = 0; i < 150; ++i) {
            std::array<std::uint64_t, 8> line{};
            for (auto &word : line)
                word = rng.next();
            // Plant the CURRENT catch-word as data on a few scattered
            // lines; both controllers start from the same seed, so the
            // planted values agree.
            if (i == 5 || i == 70 || i == 131)
                line[3] = ctrl.catchWordOf(3);
            if (i == 70)
                line[6] = ctrl.catchWordOf(6);
            ctrl.writeLine(addrs[i], line);
        }
    };
    checkXedReadManyMatchesLoop(setup, addrs);
}

void
expectSameChipkillResult(const ChipkillReadResult &a,
                         const ChipkillReadResult &b, std::size_t index)
{
    ASSERT_TRUE(a.data == b.data) << "line " << index;
    ASSERT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome))
        << "line " << index;
    ASSERT_TRUE(a.catchWordChips == b.catchWordChips)
        << "line " << index;
    ASSERT_EQ(a.beatsCorrected, b.beatsCorrected) << "line " << index;
}

void
checkChipkillReadManyMatchesLoop(const ChipkillConfig &config,
                                 unsigned faultyChips)
{
    // 200 lines span four 64-line chunks; faulty lines sit at chunk
    // edges and interiors so clean fast-path lines surround scalar
    // fallbacks on both sides.
    std::vector<WordAddr> addrs;
    for (unsigned i = 0; i < 200; ++i)
        addrs.push_back({i % 4, 20 + i / 100, i % 100});

    const auto setup = [&](ChipkillController &ctrl) {
        Rng rng(0xC41F);
        for (const WordAddr &addr : addrs) {
            std::vector<std::uint64_t> line(config.dataChips);
            for (auto &word : line)
                word = rng.next();
            ctrl.writeLine(addr, line);
        }
        const unsigned faultyLines[] = {0, 63, 64, 65, 127, 128, 199};
        unsigned seed = 900;
        for (unsigned chip = 0; chip < faultyChips; ++chip)
            for (const unsigned lineIndex : faultyLines) {
                Fault fault;
                fault.granularity = FaultGranularity::SingleWord;
                fault.permanent = true;
                fault.addr = addrs[lineIndex];
                fault.seed = seed++;
                ctrl.chip(3 + 5 * chip).faults().add(fault);
            }
    };

    ChipkillController loop(config);
    ChipkillController batch(config);
    setup(loop);
    setup(batch);

    std::vector<ChipkillReadResult> loopResults;
    loopResults.reserve(addrs.size());
    for (const WordAddr &addr : addrs)
        loopResults.push_back(loop.readLine(addr));

    std::vector<ChipkillReadResult> batchResults(addrs.size());
    batch.readMany(std::span<const WordAddr>(addrs),
                   std::span<ChipkillReadResult>(batchResults));

    for (std::size_t i = 0; i < addrs.size(); ++i)
        expectSameChipkillResult(loopResults[i], batchResults[i], i);
    EXPECT_EQ(loop.counters().all(), batch.counters().all());
}

TEST(ReadMany, ChipkillMatchesReadLineLoop)
{
    checkChipkillReadManyMatchesLoop(ChipkillConfig{}, 1);
}

TEST(ReadMany, XedOnChipkillMatchesReadLineLoop)
{
    ChipkillConfig config;
    config.useCatchWordErasures = true;
    checkChipkillReadManyMatchesLoop(config, 2);
}

TEST(ReadMany, DoubleChipkillMatchesReadLineLoop)
{
    ChipkillConfig config;
    config.dataChips = 32;
    config.checkChips = 4;
    checkChipkillReadManyMatchesLoop(config, 2);
}

} // namespace
} // namespace xed
