/**
 * Randomized property tests for the XED controller, checked against
 * the chips' expectedData() oracle:
 *
 *  P1. Any *permanent* fault confined to one chip is always corrected:
 *      the returned line equals the written line, whatever the
 *      granularity, address or victim chip.
 *  P2. With any *single-chip* fault (transient or permanent), the
 *      controller never silently returns wrong data: every read either
 *      matches the oracle or is flagged DetectedUncorrectable.
 *  P3. Reads are idempotent: re-reading after a corrected read returns
 *      the same (correct) data.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "xed/controller.hh"

namespace xed
{
namespace
{

using dram::Fault;
using dram::FaultGranularity;
using dram::WordAddr;

class ControllerProperty : public ::testing::TestWithParam<unsigned>
{
  protected:
    WordAddr
    randomAddr(Rng &rng, const dram::ChipGeometry &g)
    {
        return {static_cast<unsigned>(rng.below(g.banks())),
                static_cast<unsigned>(rng.below(g.rowsPerBank())),
                static_cast<unsigned>(rng.below(g.colsPerRow()))};
    }

    Fault
    randomFault(Rng &rng, const WordAddr &anchor, bool permanent)
    {
        Fault f;
        f.granularity = static_cast<FaultGranularity>(rng.below(6));
        f.permanent = permanent;
        f.addr = anchor;
        f.bitPos = static_cast<unsigned>(rng.below(72));
        f.seed = rng.next();
        return f;
    }
};

TEST_P(ControllerProperty, SingleChipPermanentFaultAlwaysCorrected)
{
    Rng rng(0x1000 + GetParam());
    XedController ctrl({dram::ChipGeometry{}, 8, 0.10,
                        0xC0DE + GetParam()});
    const auto g = ctrl.chip(0).geometry();

    for (int trial = 0; trial < 30; ++trial) {
        const auto addr = randomAddr(rng, g);
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        ctrl.writeLine(addr, line);

        const unsigned victim = static_cast<unsigned>(rng.below(9));
        ctrl.chip(victim).faults().add(
            randomFault(rng, addr, /*permanent=*/true));

        const auto r = ctrl.readLine(addr);
        EXPECT_NE(r.outcome, ReadOutcome::DetectedUncorrectable)
            << "victim=" << victim << " trial=" << trial;
        EXPECT_EQ(r.data, line)
            << "victim=" << victim << " trial=" << trial;

        ctrl.chip(victim).faults().clear();
    }
}

TEST_P(ControllerProperty, NeverSilentlyWrongUnderSingleChipFault)
{
    Rng rng(0x2000 + GetParam());
    XedController ctrl({dram::ChipGeometry{}, 8, 0.10,
                        0xFACE + GetParam()});
    const auto g = ctrl.chip(0).geometry();

    int dues = 0;
    for (int trial = 0; trial < 30; ++trial) {
        const auto addr = randomAddr(rng, g);
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        ctrl.writeLine(addr, line);

        const unsigned victim = static_cast<unsigned>(rng.below(9));
        auto fault = randomFault(rng, addr, rng.bernoulli(0.5));
        fault.epoch = ctrl.chip(victim).nextFaultEpoch();
        ctrl.chip(victim).faults().add(fault);

        const auto r = ctrl.readLine(addr);
        if (r.outcome == ReadOutcome::DetectedUncorrectable) {
            ++dues; // acceptable: flagged, not silent
        } else {
            EXPECT_EQ(r.data, line)
                << "victim=" << victim << " trial=" << trial;
        }
        ctrl.chip(victim).faults().clear();
    }
    // Transient word-level escapes are rare; DUEs must not dominate.
    EXPECT_LT(dues, 10);
}

TEST_P(ControllerProperty, CorrectedReadsAreIdempotent)
{
    Rng rng(0x3000 + GetParam());
    XedController ctrl;
    const auto g = ctrl.chip(0).geometry();
    const auto addr = randomAddr(rng, g);
    std::array<std::uint64_t, 8> line{};
    for (auto &w : line)
        w = rng.next();
    ctrl.writeLine(addr, line);

    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = GetParam() * 7919 + 13;
    ctrl.chip(GetParam() % 9).faults().add(f);

    const auto first = ctrl.readLine(addr);
    const auto second = ctrl.readLine(addr);
    EXPECT_EQ(first.data, line);
    EXPECT_EQ(second.data, line);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerProperty,
                         ::testing::Range(0u, 8u));

} // namespace
} // namespace xed
