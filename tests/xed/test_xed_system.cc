#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "xed/xed_system.hh"

namespace xed
{
namespace
{

class XedSystemTest : public ::testing::Test
{
  protected:
    XedSystem sys;
    Rng rng{0x5E5};
};

TEST_F(XedSystemTest, CapacityMatchesTableV)
{
    // 4 channels x 2 ranks x 2GB per rank (8 x 2Gb data chips) = 16GB.
    EXPECT_EQ(sys.capacityBytes(), 16ull << 30);
}

TEST_F(XedSystemTest, DecodeEncodeRoundTrip)
{
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t phys =
            (rng.next() % sys.capacityBytes()) & ~0x3Full;
        const auto addr = sys.decode(phys);
        EXPECT_LT(addr.channel, 4u);
        EXPECT_LT(addr.rank, 2u);
        EXPECT_LT(addr.line.bank, 8u);
        EXPECT_LT(addr.line.row, 32768u);
        EXPECT_LT(addr.line.col, 128u);
        EXPECT_EQ(sys.encode(addr), phys);
    }
}

TEST_F(XedSystemTest, ConsecutiveLinesInterleaveAcrossChannels)
{
    // Line-interleaving: physical lines 0..3 land on channels 0..3.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.decode(i * 64ull).channel, i % 4);
}

TEST_F(XedSystemTest, WriteReadThroughPhysicalAddresses)
{
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t phys =
            (rng.next() % sys.capacityBytes()) & ~0x3Full;
        std::array<std::uint64_t, 8> line{};
        for (auto &w : line)
            w = rng.next();
        sys.writeLine(phys, line);
        const auto r = sys.readLine(phys);
        EXPECT_EQ(r.outcome, ReadOutcome::Clean);
        EXPECT_EQ(r.data, line);
    }
}

TEST_F(XedSystemTest, FaultInOneRankIsolatedAndCorrected)
{
    const std::uint64_t phys = 0x12340 << 6;
    const auto addr = sys.decode(phys);
    std::array<std::uint64_t, 8> line{};
    for (auto &w : line)
        w = rng.next();
    sys.writeLine(phys, line);

    dram::Fault f;
    f.granularity = dram::FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr.line;
    f.seed = 7;
    sys.controller(addr.channel, addr.rank).chip(2).faults().add(f);

    const auto r = sys.readLine(phys);
    EXPECT_EQ(r.outcome, ReadOutcome::CorrectedErasure);
    EXPECT_EQ(r.data, line);
    EXPECT_EQ(sys.totalCounter("rebuilds"), 1u);

    // A different channel is untouched by the fault.
    const std::uint64_t other = phys ^ (1ull << 6);
    EXPECT_NE(sys.decode(other).channel, addr.channel);
    EXPECT_EQ(sys.readLine(other).outcome, ReadOutcome::Clean);
}

TEST_F(XedSystemTest, CountersAggregateAcrossRanks)
{
    std::array<std::uint64_t, 8> line{};
    for (int i = 0; i < 16; ++i)
        sys.writeLine(static_cast<std::uint64_t>(i) * 64, line);
    EXPECT_EQ(sys.totalCounter("writes"), 16u);
}

TEST_F(XedSystemTest, RejectsNonPowerOfTwoShapes)
{
    XedSystemConfig bad;
    bad.channels = 3;
    EXPECT_THROW(XedSystem{bad}, std::invalid_argument);
}

TEST_F(XedSystemTest, HammingOnDieCodeOptionWorks)
{
    XedSystemConfig cfg;
    cfg.controller.onDieCode = OnDieCodeKind::Hamming;
    XedSystem hsys(cfg);
    std::array<std::uint64_t, 8> line{1, 2, 3, 4, 5, 6, 7, 8};
    hsys.writeLine(0x1000, line);

    const auto addr = hsys.decode(0x1000);
    dram::Fault f;
    f.granularity = dram::FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr.line;
    f.bitPos = 11;
    hsys.controller(addr.channel, addr.rank).chip(0).faults().add(f);

    const auto r = hsys.readLine(0x1000);
    EXPECT_EQ(r.outcome, ReadOutcome::CorrectedErasure);
    EXPECT_EQ(r.data, line);
    EXPECT_EQ(hsys.controller(addr.channel, addr.rank)
                  .onDieCode()
                  .name(),
              "(72,64) Hamming");
}

} // namespace
} // namespace xed
