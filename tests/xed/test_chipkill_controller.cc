#include <gtest/gtest.h>

#include "common/rng.hh"
#include "xed/chipkill_controller.hh"

namespace xed
{
namespace
{

using dram::Fault;
using dram::FaultGranularity;
using dram::WordAddr;

std::vector<std::uint64_t>
randomLine(Rng &rng, unsigned chips)
{
    std::vector<std::uint64_t> line(chips);
    for (auto &w : line)
        w = rng.next();
    return line;
}

ChipkillConfig
chipkillCfg()
{
    return {};
}

ChipkillConfig
xedChipkillCfg()
{
    ChipkillConfig cfg;
    cfg.useCatchWordErasures = true;
    return cfg;
}

ChipkillConfig
doubleChipkillCfg()
{
    ChipkillConfig cfg;
    cfg.dataChips = 32;
    cfg.checkChips = 4;
    return cfg;
}

TEST(ChipkillController, CleanRoundTrip)
{
    Rng rng(1);
    ChipkillController ctrl(chipkillCfg());
    const WordAddr addr{0, 1, 2};
    const auto line = randomLine(rng, 16);
    ctrl.writeLine(addr, line);
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Clean);
    EXPECT_EQ(r.data, line);
}

TEST(ChipkillController, SingleChipFailureCorrected)
{
    Rng rng(2);
    ChipkillController ctrl(chipkillCfg());
    const WordAddr addr{1, 2, 3};
    const auto line = randomLine(rng, 16);
    ctrl.writeLine(addr, line);

    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 9;
    ctrl.chip(5).faults().add(f);

    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Corrected);
    EXPECT_EQ(r.data, line);
}

TEST(ChipkillController, CheckChipFailureCorrected)
{
    Rng rng(3);
    ChipkillController ctrl(chipkillCfg());
    const WordAddr addr{1, 2, 4};
    const auto line = randomLine(rng, 16);
    ctrl.writeLine(addr, line);

    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 10;
    ctrl.chip(17).faults().add(f); // one of the two check chips

    const auto r = ctrl.readLine(addr);
    EXPECT_NE(r.outcome, ChipkillOutcome::Uncorrectable);
    EXPECT_EQ(r.data, line);
}

TEST(ChipkillController, TwoChipFailuresUncorrectableWithoutXed)
{
    Rng rng(4);
    ChipkillController ctrl(chipkillCfg());
    const WordAddr addr{2, 3, 4};
    const auto line = randomLine(rng, 16);
    ctrl.writeLine(addr, line);

    for (const unsigned c : {3u, 11u}) {
        Fault f;
        f.granularity = FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 20 + c;
        ctrl.chip(c).faults().add(f);
    }
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Uncorrectable);
}

TEST(ChipkillController, XedErasuresCorrectTwoChipFailures)
{
    // Section IX: same 18-chip hardware, but catch-words locate the two
    // faulty chips so the two check symbols can rebuild both.
    Rng rng(5);
    ChipkillController ctrl(xedChipkillCfg());
    const WordAddr addr{2, 3, 5};
    const auto line = randomLine(rng, 16);
    ctrl.writeLine(addr, line);

    for (const unsigned c : {3u, 11u}) {
        Fault f;
        f.granularity = FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 30 + c;
        ctrl.chip(c).faults().add(f);
    }
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Corrected);
    EXPECT_EQ(r.data, line);
    EXPECT_EQ(r.catchWordChips.size(), 2u);
}

TEST(ChipkillController, XedErasuresThreeChipFailuresUncorrectable)
{
    Rng rng(6);
    ChipkillController ctrl(xedChipkillCfg());
    const WordAddr addr{2, 3, 6};
    ctrl.writeLine(addr, randomLine(rng, 16));

    for (const unsigned c : {1u, 8u, 15u}) {
        Fault f;
        f.granularity = FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 40 + c;
        ctrl.chip(c).faults().add(f);
    }
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Uncorrectable);
}

TEST(ChipkillController, DoubleChipkillCorrectsTwoUnlocatedFailures)
{
    Rng rng(7);
    ChipkillController ctrl(doubleChipkillCfg());
    const WordAddr addr{3, 4, 5};
    const auto line = randomLine(rng, 32);
    ctrl.writeLine(addr, line);

    for (const unsigned c : {7u, 21u}) {
        Fault f;
        f.granularity = FaultGranularity::SingleWord;
        f.permanent = true;
        f.addr = addr;
        f.seed = 50 + c;
        ctrl.chip(c).faults().add(f);
    }
    const auto r = ctrl.readLine(addr);
    EXPECT_EQ(r.outcome, ChipkillOutcome::Corrected);
    EXPECT_EQ(r.data, line);
}

TEST(ChipkillController, RowFailureCorrectedAcrossRow)
{
    Rng rng(8);
    ChipkillController ctrl(chipkillCfg());
    const unsigned bank = 1, row = 9;
    std::vector<std::vector<std::uint64_t>> lines;
    for (unsigned col = 0; col < 16; ++col) {
        lines.push_back(randomLine(rng, 16));
        ctrl.writeLine({bank, row, col}, lines.back());
    }
    Fault f;
    f.granularity = FaultGranularity::SingleRow;
    f.permanent = true;
    f.addr = {bank, row, 0};
    f.seed = 60;
    ctrl.chip(4).faults().add(f);

    for (unsigned col = 0; col < 16; ++col) {
        const auto r = ctrl.readLine({bank, row, col});
        EXPECT_EQ(r.outcome, ChipkillOutcome::Corrected) << col;
        EXPECT_EQ(r.data, lines[col]) << col;
    }
}

} // namespace
} // namespace xed
