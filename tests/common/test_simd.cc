/**
 * @file
 * The SIMD dispatch layer and the per-level byte-identity contract
 * (DESIGN.md section 4i): level names and strict parsing, host support
 * probing, forced overrides, and -- for every level the host can
 * execute -- GF(2^8) constant rows, the RS structure-of-arrays
 * validity sweep, the nibble-table linearity fence, the Monte-Carlo
 * zero-fault filter, and full-engine McResult identity.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "ecc/detect_simd.hh"
#include "ecc/gf256.hh"
#include "ecc/reed_solomon.hh"
#include "faultsim/engine.hh"
#include "faultsim/zero_filter.hh"

namespace xed
{
namespace
{

constexpr SimdLevel allLevels[] = {SimdLevel::Scalar, SimdLevel::Neon,
                                   SimdLevel::Avx2, SimdLevel::Avx512};

/** Every level this host can execute, Scalar first. */
std::vector<SimdLevel>
executableLevels()
{
    std::vector<SimdLevel> levels;
    for (const SimdLevel level : allLevels)
        if (simdLevelSupported(level))
            levels.push_back(level);
    return levels;
}

/** Force a dispatch level for one scope; restores the previous one. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : prev_(simdLevel())
    {
        simdForceLevel(level, "test");
    }
    ~ScopedSimdLevel() { simdForceLevel(prev_, "test"); }
    ScopedSimdLevel(const ScopedSimdLevel &) = delete;
    ScopedSimdLevel &operator=(const ScopedSimdLevel &) = delete;

  private:
    SimdLevel prev_;
};

TEST(SimdDispatch, LevelNamesRoundTrip)
{
    for (const SimdLevel level : allLevels) {
        const auto parsed = parseSimdLevel(simdLevelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Neon), "neon");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx512), "avx512");
}

TEST(SimdDispatch, ParseIsStrict)
{
    // Strict means strict: no case folding, no whitespace trimming, no
    // prefixes, no aliases.
    for (const char *bad : {"", "AVX2", "Scalar", " scalar", "scalar ",
                            "avx", "avx-512", "sse2", "auto", "native",
                            "0", "neon64"})
        EXPECT_FALSE(parseSimdLevel(bad).has_value()) << bad;
}

TEST(SimdDispatch, ScalarAlwaysExecutable)
{
    EXPECT_TRUE(simdLevelSupported(SimdLevel::Scalar));
    EXPECT_TRUE(simdLevelSupported(simdDetectedLevel()));
    EXPECT_TRUE(simdLevelSupported(simdLevel()));
}

TEST(SimdDispatch, NeonAndAvxAreMutuallyExclusive)
{
    // One ISA per host: a level that is not executable must exist on
    // every machine, which is what keeps ForceRejects... non-vacuous.
    EXPECT_FALSE(simdLevelSupported(SimdLevel::Neon) &&
                 simdLevelSupported(SimdLevel::Avx2));
}

TEST(SimdDispatch, ForceRejectsUnexecutableLevel)
{
    const SimdLevel original = simdLevel();
    bool sawUnsupported = false;
    for (const SimdLevel level : allLevels) {
        if (simdLevelSupported(level))
            continue;
        sawUnsupported = true;
        EXPECT_THROW(simdForceLevel(level, "test"),
                     std::runtime_error)
            << simdLevelName(level);
    }
    EXPECT_TRUE(sawUnsupported);
    // A rejected force must leave the resolved level untouched.
    EXPECT_EQ(simdLevel(), original);
}

TEST(SimdDispatch, ForceSetsLevelAndRecordsOrigin)
{
    const SimdLevel original = simdLevel();
    simdForceLevel(SimdLevel::Scalar, "--simd=scalar");
    EXPECT_EQ(simdLevel(), SimdLevel::Scalar);
    EXPECT_EQ(simdOverride(), "--simd=scalar");
    simdForceLevel(original, "test");
    EXPECT_EQ(simdLevel(), original);
    EXPECT_EQ(simdOverride(), "test");
}

TEST(SimdGf256, MulConstMatchesScalarRowAtEveryLevel)
{
    const ecc::GF256 &gf = ecc::GF256::instance();
    Rng rng(0x6F256);
    constexpr std::size_t sizes[] = {0,  1,  7,   15,  16,  17,  31,
                                     32, 33, 63,  64,  65,  100, 127,
                                     128, 129, 255, 256, 257};
    constexpr std::size_t maxSize = 257;
    constexpr std::size_t maxOffset = 3;
    std::vector<std::uint8_t> src(maxSize + maxOffset);
    for (auto &symbol : src)
        symbol = static_cast<std::uint8_t>(rng.below(256));

    for (unsigned c = 0; c < 256; c += 7) {
        const std::uint8_t *row =
            gf.mulRowPtr(static_cast<std::uint8_t>(c));
        for (const std::size_t size : sizes) {
            const std::size_t offset = rng.below(maxOffset + 1);
            std::vector<std::uint8_t> expected(size);
            std::vector<std::uint8_t> expectedXor(size, 0xA5);
            for (std::size_t i = 0; i < size; ++i) {
                expected[i] = row[src[offset + i]];
                expectedXor[i] =
                    static_cast<std::uint8_t>(0xA5 ^ expected[i]);
            }
            for (const SimdLevel level : executableLevels()) {
                const ScopedSimdLevel forced(level);
                std::vector<std::uint8_t> dst(size, 0xEE);
                gf.mulConstInto(static_cast<std::uint8_t>(c),
                                src.data() + offset, dst.data(), size);
                ASSERT_EQ(dst, expected)
                    << simdLevelName(level) << " c=" << c
                    << " n=" << size;
                std::vector<std::uint8_t> acc(size, 0xA5);
                gf.mulConstXorInto(static_cast<std::uint8_t>(c),
                                   src.data() + offset, acc.data(),
                                   size);
                ASSERT_EQ(acc, expectedXor)
                    << simdLevelName(level) << " c=" << c
                    << " n=" << size;
            }
        }
    }
}

TEST(SimdGf256, MulConstInPlaceMatchesOutOfPlace)
{
    const ecc::GF256 &gf = ecc::GF256::instance();
    Rng rng(0x6F257);
    for (const SimdLevel level : executableLevels()) {
        const ScopedSimdLevel forced(level);
        std::vector<std::uint8_t> buffer(129);
        for (auto &symbol : buffer)
            symbol = static_cast<std::uint8_t>(rng.below(256));
        std::vector<std::uint8_t> expected(buffer.size());
        gf.mulConstInto(0x8E, buffer.data(), expected.data(),
                        buffer.size());
        gf.mulConstInto(0x8E, buffer.data(), buffer.data(),
                        buffer.size());
        ASSERT_EQ(buffer, expected) << simdLevelName(level);
    }
}

TEST(SimdRs, CountInvalidSoaMatchesPerWordValidityAtEveryLevel)
{
    // Symbol-major layout, mixed valid/corrupted columns, counts that
    // cross the kernel's 512-column chunk boundary.
    for (const unsigned n : {18u, 36u}) {
        const ecc::ReedSolomon rs(n, n - 2);
        Rng rng(0x50A + n);
        for (const std::size_t count : {1u, 2u, 31u, 64u, 257u, 513u}) {
            std::vector<std::uint8_t> soa(n * count);
            std::vector<std::uint8_t> word(n);
            std::size_t expected = 0;
            for (std::size_t c = 0; c < count; ++c) {
                std::vector<std::uint8_t> data(rs.k());
                for (auto &symbol : data)
                    symbol = static_cast<std::uint8_t>(rng.below(256));
                word = rs.encode(data);
                if (rng.bernoulli(0.5))
                    word[rng.below(n)] ^=
                        static_cast<std::uint8_t>(1 + rng.below(255));
                expected += !rs.isValidCodeword(
                    std::span<const std::uint8_t>(word));
                for (unsigned i = 0; i < n; ++i)
                    soa[i * count + c] = word[i];
            }
            for (const SimdLevel level : executableLevels()) {
                const ScopedSimdLevel forced(level);
                ASSERT_EQ(rs.countInvalidSoa(
                              std::span<const std::uint8_t>(soa),
                              count),
                          expected)
                    << simdLevelName(level) << " n=" << n
                    << " count=" << count;
            }
        }
    }
}

TEST(SimdDetect, NibbleTablesVerifyLinearity)
{
    // Identity lanes are GF(2)-linear: b == (b & 0x0F) ^ (b & 0xF0).
    std::array<std::array<std::uint8_t, 256>, 9> lanes{};
    for (auto &lane : lanes)
        for (unsigned b = 0; b < 256; ++b)
            lane[b] = static_cast<std::uint8_t>(b);
    EXPECT_NO_THROW(ecc::detail::makeNibbleTables(lanes));

    // One non-linear entry in one lane must be rejected: a silently
    // wrong nibble split would corrupt every vector detection result.
    lanes[4][0x33] ^= 1;
    EXPECT_THROW(ecc::detail::makeNibbleTables(lanes),
                 std::logic_error);
}

TEST(SimdZeroFilter, WidthIsZeroOrServedByTheMaskKernels)
{
    EXPECT_EQ(faultsim::zeroFilterWidth(SimdLevel::Scalar), 0u);
    for (const SimdLevel level : executableLevels()) {
        const unsigned width = faultsim::zeroFilterWidth(level);
        EXPECT_TRUE(width == 0 || width == 8)
            << simdLevelName(level);
    }
}

TEST(SimdZeroFilter, MaskMatchesRngReplayAtEveryLevel)
{
    // Independent replay of the contract: lane i is zero-fault iff the
    // first `channels` draws of stream (mixedSeed, firstSystem + i)
    // all satisfy (next() >> 11) <= zeroMax.
    const std::uint64_t zeroMaxes[] = {
        0,
        0x1DCCCCCCCCCCCCCull, // ~ exp(-lambda) = 0.93 in 53-bit form
        (1ull << 53) - 1,
    };
    const std::uint64_t mixedSeed = Rng::mixSeed(61799);
    for (const std::uint64_t zeroMax : zeroMaxes) {
        for (const std::uint64_t first :
             {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{12345},
              std::uint64_t{1} << 40}) {
            for (const unsigned channels : {1u, 2u, 4u}) {
                std::uint32_t expected = 0;
                for (unsigned i = 0; i < 8; ++i) {
                    Rng rng = Rng::streamMixed(mixedSeed, first + i);
                    bool zero = true;
                    for (unsigned ch = 0; ch < channels; ++ch)
                        zero = zero &&
                               (rng.next() >> 11) <= zeroMax;
                    expected |= static_cast<std::uint32_t>(zero) << i;
                }
                for (const SimdLevel level : executableLevels()) {
                    ASSERT_EQ(faultsim::zeroFaultMask(
                                  level, mixedSeed, first, 8, channels,
                                  zeroMax),
                              expected)
                        << simdLevelName(level) << " first=" << first
                        << " channels=" << channels;
                    // Sub-width counts always have a correct path too.
                    ASSERT_EQ(faultsim::zeroFaultMask(
                                  level, mixedSeed, first, 4, channels,
                                  zeroMax),
                              expected & 0xFu)
                        << simdLevelName(level);
                }
            }
        }
    }
}

TEST(SimdEngine, McResultIdenticalAcrossLevels)
{
    // Full engine run per level: the zero-fault filter must change
    // nothing observable -- same per-year counts, same trial totals,
    // same forensic exemplars in the same order.
    const auto scheme =
        faultsim::makeScheme(faultsim::SchemeKind::Secded, {});
    faultsim::McConfig config;
    config.systems = 4000;
    config.seed = 61799;
    config.threads = 1;

    std::vector<faultsim::McResult> results;
    for (const SimdLevel level : executableLevels()) {
        const ScopedSimdLevel forced(level);
        results.push_back(faultsim::runMonteCarlo(*scheme, config));
    }
    const faultsim::McResult &scalar = results.front();
    // Secded at 4000 systems fails often enough to make the
    // comparison meaningful.
    ASSERT_GT(scalar.failByYear[7].successes(), 0u);
    for (std::size_t r = 1; r < results.size(); ++r) {
        const faultsim::McResult &other = results[r];
        for (unsigned y = 1; y <= 7; ++y) {
            ASSERT_EQ(other.failByYear[y].successes(),
                      scalar.failByYear[y].successes())
                << "level " << r << " year " << y;
            ASSERT_EQ(other.failByYear[y].trials(),
                      scalar.failByYear[y].trials());
        }
        ASSERT_EQ(other.autopsy.size(), scalar.autopsy.size());
        for (std::size_t i = 0; i < scalar.autopsy.size(); ++i) {
            ASSERT_EQ(other.autopsy[i].system,
                      scalar.autopsy[i].system);
            ASSERT_EQ(other.autopsy[i].timeHours,
                      scalar.autopsy[i].timeHours);
            ASSERT_STREQ(other.autopsy[i].type,
                         scalar.autopsy[i].type);
            ASSERT_EQ(other.autopsy[i].kindsMask,
                      scalar.autopsy[i].kindsMask);
        }
    }
}

} // namespace
} // namespace xed
