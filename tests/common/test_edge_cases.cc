#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "common/table.hh"

namespace xed
{
namespace
{

TEST(EdgeCases, EmptyTableStillPrintsHeaders)
{
    Table t({"a", "b"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("a"), std::string::npos);
    EXPECT_EQ(t.rows(), 0u);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "a,b\n");
}

TEST(EdgeCases, RngBelowZeroAndOne)
{
    Rng rng(1);
    EXPECT_EQ(rng.below(0), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(EdgeCases, RngBelowLargeBound)
{
    Rng rng(2);
    const std::uint64_t bound = 1ull << 62;
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(bound), bound);
}

TEST(EdgeCases, BernoulliExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

} // namespace
} // namespace xed
