#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace xed
{
namespace
{

TEST(Bitops, Popcount)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xFFFFFFFFFFFFFFFFull), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
}

TEST(Bitops, Parity)
{
    EXPECT_EQ(parity64(0), 0);
    EXPECT_EQ(parity64(1), 1);
    EXPECT_EQ(parity64(3), 0);
    EXPECT_EQ(parity64(7), 1);
}

TEST(Bitops, GetSetFlip)
{
    std::uint64_t v = 0;
    v = setBit(v, 5, 1);
    EXPECT_EQ(getBit(v, 5), 1);
    EXPECT_EQ(getBit(v, 4), 0);
    v = flipBit(v, 5);
    EXPECT_EQ(v, 0u);
    v = setBit(v, 63, 1);
    EXPECT_EQ(v, 0x8000000000000000ull);
    v = setBit(v, 63, 0);
    EXPECT_EQ(v, 0u);
}

TEST(Bitops, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
}

TEST(Bitops, BitField)
{
    const std::uint64_t v = 0xABCD1234u;
    EXPECT_EQ(bitField(v, 0, 4), 0x4u);
    EXPECT_EQ(bitField(v, 4, 8), 0x23u);
    EXPECT_EQ(bitField(v, 16, 16), 0xABCDu);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

} // namespace
} // namespace xed
