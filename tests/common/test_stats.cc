#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"
#include "common/units.hh"

namespace xed
{
namespace
{

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeOfSplitStreamsMatchesCombined)
{
    // Stream one sequence through a single accumulator, and the same
    // sequence split across two accumulators merged afterwards (the
    // parallel-shard reduction); the moments must agree to rounding.
    RunningStat combined, left, right;
    for (int i = 0; i < 1000; ++i) {
        // Deterministic but irregular values spanning several decades.
        const double x = std::sin(i * 0.7) * std::exp((i % 13) - 6.0);
        combined.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), combined.count());
    EXPECT_DOUBLE_EQ(left.min(), combined.min());
    EXPECT_DOUBLE_EQ(left.max(), combined.max());
    EXPECT_NEAR(left.sum(), combined.sum(),
                1e-12 * std::abs(combined.sum()));
    EXPECT_NEAR(left.mean(), combined.mean(),
                1e-12 * std::abs(combined.mean()));
    EXPECT_NEAR(left.variance(), combined.variance(),
                1e-9 * combined.variance());
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat filled, empty;
    for (const double x : {1.0, 2.0, 6.0})
        filled.add(x);
    const double mean = filled.mean();
    const double var = filled.variance();

    RunningStat target;
    target.merge(filled); // empty <- filled adopts everything
    EXPECT_EQ(target.count(), 3u);
    EXPECT_DOUBLE_EQ(target.mean(), mean);
    EXPECT_DOUBLE_EQ(target.variance(), var);

    filled.merge(empty); // filled <- empty is a no-op
    EXPECT_EQ(filled.count(), 3u);
    EXPECT_DOUBLE_EQ(filled.mean(), mean);
    EXPECT_DOUBLE_EQ(filled.variance(), var);
}

TEST(Proportion, Basic)
{
    Proportion p;
    for (int i = 0; i < 30; ++i)
        p.add(i < 3);
    EXPECT_EQ(p.successes(), 3u);
    EXPECT_EQ(p.trials(), 30u);
    EXPECT_DOUBLE_EQ(p.value(), 0.1);
}

TEST(Proportion, IntervalBracketsTruth)
{
    Proportion p;
    p.addMany(100, 1000);
    EXPECT_LT(p.lower95(), 0.1);
    EXPECT_GT(p.upper95(), 0.1);
    EXPECT_GT(p.lower95(), 0.0);
    EXPECT_LT(p.upper95(), 1.0);
}

TEST(Proportion, ZeroSuccessesStaysNonNegative)
{
    Proportion p;
    p.addMany(0, 100000);
    EXPECT_EQ(p.value(), 0.0);
    EXPECT_GE(p.lower95(), 0.0);
    EXPECT_GT(p.upper95(), 0.0);
}

TEST(Proportion, IntervalShrinksWithSamples)
{
    Proportion small, large;
    small.addMany(10, 100);
    large.addMany(1000, 10000);
    EXPECT_GT(small.halfWidth95(), large.halfWidth95());
}

TEST(CounterSet, IncrementAndLookup)
{
    CounterSet c;
    EXPECT_EQ(c.get("due"), 0u);
    c.inc("due");
    c.inc("due", 4);
    c.inc("sdc");
    EXPECT_EQ(c.get("due"), 5u);
    EXPECT_EQ(c.get("sdc"), 1u);
    EXPECT_EQ(c.all().size(), 2u);
}

TEST(Proportion, MergeAddsCounts)
{
    Proportion a, b;
    a.addMany(3, 100);
    b.addMany(7, 400);
    a.merge(b);
    EXPECT_EQ(a.successes(), 10u);
    EXPECT_EQ(a.trials(), 500u);
    EXPECT_DOUBLE_EQ(a.value(), 0.02);
}

TEST(CounterSet, MergeAddsPerName)
{
    CounterSet a, b;
    a.inc("due", 2);
    a.inc("sdc");
    b.inc("due", 3);
    b.inc("triple-chip", 5);
    a.merge(b);
    EXPECT_EQ(a.get("due"), 5u);
    EXPECT_EQ(a.get("sdc"), 1u);
    EXPECT_EQ(a.get("triple-chip"), 5u);
    EXPECT_EQ(a.all().size(), 3u);
}

TEST(Units, FitConversions)
{
    // 1 FIT = 1e-9 failures/hour; over 1e9 hours expect exactly 1.
    EXPECT_DOUBLE_EQ(fitToPerHour(14.2), 14.2e-9);
    EXPECT_DOUBLE_EQ(fitToExpectedEvents(1.0, 1e9), 1.0);
    // The paper's transient word-fault example: 1.4 FIT * 9 chips * 7y
    // = 7.7e-4 (Section VIII).
    const double rate = fitToExpectedEvents(1.4, evaluationHours) * 9.0;
    EXPECT_NEAR(rate, 7.7e-4, 0.4e-4);
}

TEST(Units, ByteSuffixes)
{
    EXPECT_EQ(2_Gi, 2ull << 30);
    EXPECT_EQ(4_Ki, 4096u);
    EXPECT_EQ(8_Mi, 8ull << 20);
}

} // namespace
} // namespace xed
