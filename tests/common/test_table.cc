#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace xed
{
namespace
{

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"Scheme", "P(fail)"});
    t.addRow({"XED", "6.4e-04"});
    t.addRow({"Chipkill", "2.6e-03"});
    std::ostringstream os;
    t.print(os, "Figure 7");
    const std::string out = os.str();
    EXPECT_NE(out.find("Figure 7"), std::string::npos);
    EXPECT_NE(out.find("Scheme"), std::string::npos);
    EXPECT_NE(out.find("XED"), std::string::npos);
    EXPECT_NE(out.find("2.6e-03"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, Csv)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::sci(0.000123, 2), "1.23e-04");
    EXPECT_EQ(Table::pct(0.5073, 2), "50.73%");
}

} // namespace
} // namespace xed
