/**
 * @file
 * Tests for the hand-rolled JSON parser/writer: round-trips, escaping,
 * exact integers, deterministic double formatting and strict rejection
 * of malformed input. The campaign result store depends on dump() being
 * byte-deterministic, so several tests pin exact output strings.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/json.hh"

using namespace xed;

namespace
{

json::Value
mustParse(const std::string &text)
{
    std::string error;
    auto v = json::parse(text, &error);
    EXPECT_TRUE(v.has_value()) << "parse failed: " << error
                               << " for input: " << text;
    return v ? *v : json::Value();
}

} // namespace

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(mustParse("null").isNull());
    EXPECT_EQ(mustParse("true").asBool(), true);
    EXPECT_EQ(mustParse("false").asBool(), false);
    EXPECT_EQ(mustParse("\"hi\"").asString(), "hi");
    EXPECT_EQ(mustParse("42").asUint(), 42u);
    EXPECT_EQ(mustParse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(mustParse("2.5").asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(mustParse("1e-4").asDouble(), 1e-4);
    EXPECT_DOUBLE_EQ(mustParse("-1.25E+2").asDouble(), -125.0);
}

TEST(Json, IntegersStayExact)
{
    const std::uint64_t big = 18446744073709551615ull; // 2^64 - 1
    const auto v = mustParse("18446744073709551615");
    EXPECT_TRUE(v.isIntegral());
    EXPECT_EQ(v.asUint(), big);
    EXPECT_EQ(json::dump(v), "18446744073709551615");

    const auto neg = mustParse("-9223372036854775808");
    EXPECT_TRUE(neg.isIntegral());
    EXPECT_EQ(neg.asInt(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(json::dump(neg), "-9223372036854775808");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    const auto v = mustParse(R"({"z":1,"a":2,"m":3})");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
    EXPECT_EQ(json::dump(v), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, NestedRoundTrip)
{
    const std::string text =
        R"({"name":"fig07","systems":1000000,"rates":[1e-06,0.0001],)"
        R"("onDie":{"present":true,"escape":0.008},"note":null})";
    const auto v = mustParse(text);
    // dump() normalizes number spellings; re-parsing dump() must give
    // an equal value, and dumping again must be a fixed point.
    const std::string once = json::dump(v);
    const auto v2 = mustParse(once);
    EXPECT_EQ(v, v2);
    EXPECT_EQ(json::dump(v2), once);
}

TEST(Json, StringEscaping)
{
    json::Value v(std::string("a\"b\\c\n\t\x01z"));
    const std::string dumped = json::dump(v);
    EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
    EXPECT_EQ(mustParse(dumped).asString(), v.asString());
}

TEST(Json, UnicodeEscapes)
{
    EXPECT_EQ(mustParse("\"\\u0041\"").asString(), "A");
    // U+00E9 e-acute -> 2-byte UTF-8.
    EXPECT_EQ(mustParse("\"\\u00e9\"").asString(), "\xC3\xA9");
    // U+20AC euro sign -> 3-byte UTF-8.
    EXPECT_EQ(mustParse("\"\\u20ac\"").asString(), "\xE2\x82\xAC");
    // Surrogate pair U+1F600 -> 4-byte UTF-8.
    EXPECT_EQ(mustParse("\"\\ud83d\\ude00\"").asString(),
              "\xF0\x9F\x98\x80");
}

TEST(Json, DoubleFormattingIsShortestRoundTrip)
{
    EXPECT_EQ(json::formatDouble(0.5), "0.5");
    EXPECT_EQ(json::formatDouble(1e-4), "0.0001");
    EXPECT_EQ(json::formatDouble(0.1), "0.1");
    EXPECT_EQ(json::formatDouble(1.0 / 3.0), "0.3333333333333333");
    // Round-trip exactness for an awkward value.
    const double p = 0.1234567890123456789;
    EXPECT_EQ(std::strtod(json::formatDouble(p).c_str(), nullptr), p);
}

TEST(Json, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "   ",
        "{",
        "[1,2",
        "{\"a\":}",
        "{\"a\" 1}",
        "{'a':1}",
        "[1,]",
        "{\"a\":1,}",
        "\"unterminated",
        "\"bad\\escape\"",
        "\"\\u12g4\"",
        "\"\\ud800\"",      // unpaired high surrogate
        "\"\\udc00\"",      // unpaired low surrogate
        "01",               // leading zero
        "1.",               // digits required after '.'
        ".5",               // leading digit required
        "1e",               // digits required in exponent
        "+1",
        "nul",
        "truee",
        "[1] []",           // trailing garbage
        "1e999",            // overflows to inf
        "nan",
        "{\"a\":1,\"a\":2}", // duplicate key
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(json::parse(text, &error).has_value())
            << "should reject: " << text;
        EXPECT_NE(error.find("offset"), std::string::npos)
            << "error should carry a position: " << error;
    }
}

TEST(Json, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    for (int i = 0; i < 100; ++i)
        deep += ']';
    EXPECT_FALSE(json::parse(deep).has_value());
}

TEST(Json, BuilderInterface)
{
    auto obj = json::Value::object();
    obj.set("type", "shard");
    obj.set("index", std::uint64_t{7});
    auto arr = json::Value::array();
    arr.push(json::Value(1));
    arr.push(json::Value(2.5));
    obj.set("values", std::move(arr));
    EXPECT_EQ(json::dump(obj),
              R"({"type":"shard","index":7,"values":[1,2.5]})");
    // set() overwrites in place, preserving position.
    obj.set("index", std::uint64_t{8});
    EXPECT_EQ(json::dump(obj),
              R"({"type":"shard","index":8,"values":[1,2.5]})");
    ASSERT_NE(obj.find("values"), nullptr);
    EXPECT_EQ(obj.find("values")->size(), 2u);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, PrettyPrintParsesBack)
{
    const auto v = mustParse(R"({"a":[1,2],"b":{"c":true}})");
    const std::string pretty = json::dumpPretty(v);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_EQ(mustParse(pretty), v);
}
