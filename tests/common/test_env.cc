/**
 * @file
 * Strict numeric parsing (common/env.hh): every CLI flag and
 * environment knob routes through parseU64/parseF64, so "reject
 * malformed instead of silently truncating" is pinned here once for
 * all of them. The old CLI paths turned "--threads 4x" into 4 via
 * bare strtoul; these tests are the regression fence.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/env.hh"

namespace xed
{
namespace
{

TEST(ParseU64, AcceptsPlainBase10)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("42"), 42u);
    EXPECT_EQ(parseU64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsJunkSignsAndOverflow)
{
    EXPECT_FALSE(parseU64(""));
    EXPECT_FALSE(parseU64("4x"));
    EXPECT_FALSE(parseU64("x4"));
    EXPECT_FALSE(parseU64("-1"));
    EXPECT_FALSE(parseU64("+1"));
    EXPECT_FALSE(parseU64(" 1"));
    EXPECT_FALSE(parseU64("1 "));
    EXPECT_FALSE(parseU64("1e3"));
    EXPECT_FALSE(parseU64("0x10"));
    EXPECT_FALSE(parseU64("18446744073709551616")); // UINT64_MAX + 1
}

TEST(ParseF64, AcceptsFiniteBase10)
{
    EXPECT_DOUBLE_EQ(*parseF64("0"), 0.0);
    EXPECT_DOUBLE_EQ(*parseF64("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*parseF64("-2.25"), -2.25);
    EXPECT_DOUBLE_EQ(*parseF64("+0.5"), 0.5);
    EXPECT_DOUBLE_EQ(*parseF64("1e3"), 1000.0);
    EXPECT_DOUBLE_EQ(*parseF64("2.5E-1"), 0.25);
    EXPECT_DOUBLE_EQ(*parseF64(".5"), 0.5);
}

TEST(ParseF64, RejectsJunkWhitespaceAndNonFinite)
{
    EXPECT_FALSE(parseF64(""));
    EXPECT_FALSE(parseF64("1.5x"));
    EXPECT_FALSE(parseF64("x1.5"));
    EXPECT_FALSE(parseF64(" 1.5"));
    EXPECT_FALSE(parseF64("1.5 "));
    EXPECT_FALSE(parseF64("nan"));
    EXPECT_FALSE(parseF64("NaN"));
    EXPECT_FALSE(parseF64("inf"));
    EXPECT_FALSE(parseF64("-inf"));
    EXPECT_FALSE(parseF64("infinity"));
    EXPECT_FALSE(parseF64("0x1p3")); // hex floats are not CLI values
    EXPECT_FALSE(parseF64("1,5"));
    EXPECT_FALSE(parseF64("--1"));
    EXPECT_FALSE(parseF64("1e999")); // overflows to +inf
}

TEST(EnvU64, UnsetIsNulloptMalformedThrows)
{
    ::unsetenv("XED_TEST_ENV_U64");
    EXPECT_FALSE(envU64("XED_TEST_ENV_U64").has_value());

    ::setenv("XED_TEST_ENV_U64", "123", 1);
    EXPECT_EQ(envU64("XED_TEST_ENV_U64"), 123u);

    ::setenv("XED_TEST_ENV_U64", "12x", 1);
    EXPECT_THROW(envU64("XED_TEST_ENV_U64"), std::runtime_error);
    ::unsetenv("XED_TEST_ENV_U64");
}

TEST(EnvU64Positive, RejectsExplicitZeroNamingTheKnob)
{
    // XED_MC_EVAL_BATCH routes through envU64Positive: unset is
    // nullopt (auto), a positive value parses, and garbage OR an
    // explicit 0 throws an error naming the knob.
    ::unsetenv("XED_MC_EVAL_BATCH");
    EXPECT_FALSE(envU64Positive("XED_MC_EVAL_BATCH").has_value());

    ::setenv("XED_MC_EVAL_BATCH", "16", 1);
    EXPECT_EQ(envU64Positive("XED_MC_EVAL_BATCH"), 16u);

    for (const char *bogus : {"0", "8x", "-1", ""}) {
        ::setenv("XED_MC_EVAL_BATCH", bogus, 1);
        try {
            envU64Positive("XED_MC_EVAL_BATCH");
            FAIL() << "\"" << bogus << "\" was accepted";
        } catch (const std::runtime_error &error) {
            EXPECT_NE(
                std::string(error.what()).find("XED_MC_EVAL_BATCH"),
                std::string::npos)
                << error.what();
        }
    }
    ::unsetenv("XED_MC_EVAL_BATCH");
}

} // namespace
} // namespace xed
