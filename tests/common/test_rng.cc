#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace xed
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(72);
        EXPECT_LT(v, 72u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    bool seen[9] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(9)] = true;
    for (const bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(5);
    const double rate = 4.0;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, StreamIsDeterministicPerIndex)
{
    // The counter-based derivation depends only on (seed, index); it
    // must not matter in which order or how often streams are made.
    Rng late = Rng::stream(0xFA517, 1000);
    Rng early = Rng::stream(0xFA517, 3);
    Rng earlyAgain = Rng::stream(0xFA517, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(early.next(), earlyAgain.next());
    (void)late;
}

TEST(Rng, StreamsWithDifferentIndicesAreIndependent)
{
    Rng a = Rng::stream(0xFA517, 0);
    Rng b = Rng::stream(0xFA517, 1);
    Rng c = Rng::stream(0xFA518, 0); // different seed, same index
    int sameAb = 0, sameAc = 0;
    for (int i = 0; i < 64; ++i) {
        const auto va = a.next();
        sameAb += (va == b.next()) ? 1 : 0;
        sameAc += (va == c.next()) ? 1 : 0;
    }
    EXPECT_LT(sameAb, 2);
    EXPECT_LT(sameAc, 2);
}

TEST(Rng, StreamIndexZeroIsNotTheRawSeed)
{
    // stream(seed, 0) must be a distinct stream, not Rng(seed) itself,
    // or the serial engine's historical stream would alias system 0.
    Rng raw(0xFA517);
    Rng stream0 = Rng::stream(0xFA517, 0);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (raw.next() == stream0.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(123);
    Rng child = a.fork();
    // The forked stream must not replay the parent stream.
    Rng b(123);
    b.next(); // advance as the fork did
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (child.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace xed
