/**
 * @file
 * Tests for the telemetry metrics registry: registration semantics,
 * snapshots, and concurrent hot-path updates (also exercised under
 * TSan by the campaign smoke flow).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.hh"

using namespace xed;

TEST(Metrics, CounterBasics)
{
    MetricsRegistry registry;
    auto &c = registry.counter("systems");
    EXPECT_EQ(c.get(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.get(), 42u);
    // Same name returns the same counter.
    EXPECT_EQ(&registry.counter("systems"), &c);
    EXPECT_EQ(registry.counters().at("systems"), 42u);
}

TEST(Metrics, GaugeBasics)
{
    MetricsRegistry registry;
    auto &g = registry.gauge("eta");
    EXPECT_EQ(g.get(), 0.0);
    g.set(12.5);
    g.set(3.25);
    EXPECT_EQ(g.get(), 3.25);
    EXPECT_EQ(registry.gauges().at("eta"), 3.25);
}

TEST(Metrics, HistogramBasics)
{
    MetricsRegistry registry;
    auto &h = registry.histogram("shard.seconds");
    EXPECT_EQ(h.count(), 0u);
    h.update(1.0);
    h.update(2.0);
    h.update(4.0);
    EXPECT_EQ(h.count(), 3u);
    // Same name returns the same histogram; the snapshot pointer is
    // the registered instance itself.
    EXPECT_EQ(&registry.histogram("shard.seconds"), &h);
    EXPECT_EQ(registry.histograms().at("shard.seconds"), &h);
    // The median of {1, 2, 4} sits in 2.0's bucket.
    EXPECT_EQ(h.quantile(0.5),
              Histogram::bucketValue(Histogram::bucketIndex(2.0)));
}

TEST(Metrics, SnapshotListsAllNames)
{
    MetricsRegistry registry;
    registry.counter("a").add(1);
    registry.counter("b").add(2);
    registry.gauge("x").set(1.0);
    const auto counters = registry.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters.at("a"), 1u);
    EXPECT_EQ(counters.at("b"), 2u);
    EXPECT_EQ(registry.gauges().size(), 1u);
}

TEST(Metrics, ConcurrentUpdatesAreLossless)
{
    MetricsRegistry registry;
    constexpr unsigned threads = 8;
    constexpr std::uint64_t perThread = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&registry, t] {
            // Mix pre-registered and on-demand lookups across threads.
            auto &mine = registry.counter("shared");
            for (std::uint64_t i = 0; i < perThread; ++i) {
                mine.add();
                if (i % 1024 == 0)
                    registry.counter("per." + std::to_string(t)).add();
            }
            registry.gauge("rate").set(static_cast<double>(t));
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(registry.counter("shared").get(), threads * perThread);
    const auto counters = registry.counters();
    EXPECT_EQ(counters.size(), 1 + threads);
    const double rate = registry.gauge("rate").get();
    EXPECT_GE(rate, 0.0);
    EXPECT_LT(rate, static_cast<double>(threads));
}
