/**
 * @file
 * Fleet-spec parsing and canonicalization: strict rejection of
 * malformed fleet documents, cohort/policy validation, plan geometry
 * over the single fleet cell, and the canonical-form round trip that
 * report/resume/hash all depend on.
 */

#include <cstdlib>
#include <gtest/gtest.h>

#include "campaign/spec.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

CampaignSpec
parseOrDie(const std::string &text)
{
    std::string error;
    auto doc = json::parse(text, &error);
    EXPECT_TRUE(doc) << error;
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
parseError(const std::string &text)
{
    std::string error;
    auto doc = json::parse(text, &error);
    EXPECT_TRUE(doc) << error;
    auto spec = parseSpec(*doc, &error);
    EXPECT_FALSE(spec) << "spec unexpectedly parsed";
    return error;
}

constexpr const char *kMinimal = R"({
    "name": "fleet-t", "kind": "fleet", "seed": 11,
    "years": 2, "shardDimms": 100,
    "cohorts": [{"name": "a", "scheme": "secded", "dimms": 250}]
})";

} // namespace

TEST(FleetSpec, ParsesMinimalFleetSpec)
{
    const auto spec = parseOrDie(kMinimal);
    EXPECT_EQ(spec.kind, CampaignKind::Fleet);
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_DOUBLE_EQ(spec.years, 2.0);
    EXPECT_EQ(spec.shardDimms, 100u);
    // Defaults: monthly epochs, replace-on-DUE with one epoch of lag,
    // no retirement, no canary threshold, Knuth sampler.
    EXPECT_DOUBLE_EQ(spec.fleet.epochHours, hoursPerYear / 12.0);
    EXPECT_TRUE(spec.fleet.policies.replaceOnDue);
    EXPECT_EQ(spec.fleet.policies.replacementLagEpochs, 1u);
    EXPECT_EQ(spec.fleet.policies.retireAfterPermanentFaults, 0u);
    EXPECT_DOUBLE_EQ(spec.fleet.policies.canaryDueThreshold, 0.0);
    EXPECT_EQ(spec.sampler, faultsim::PoissonSampler::Knuth);
    ASSERT_EQ(spec.fleet.cohorts.size(), 1u);
    const auto &cohort = spec.fleet.cohorts[0];
    EXPECT_EQ(cohort.name, "a");
    EXPECT_EQ(cohort.scheme, faultsim::SchemeKind::Secded);
    EXPECT_EQ(cohort.dimms, 250u);
    EXPECT_EQ(cohort.deployEpoch, 0u);
    EXPECT_FALSE(cohort.canary);
    // Vendor profile defaults to Table I.
    EXPECT_DOUBLE_EQ(
        cohort.fit.entry(faultsim::FaultKind::Bit).transient, 14.2);
}

TEST(FleetSpec, PlanGeometryIsOneCellShardedByDimms)
{
    const auto spec = parseOrDie(kMinimal);
    EXPECT_EQ(spec.cellCount(), 1u);
    EXPECT_EQ(spec.unitsPerCell(), 250u);
    EXPECT_EQ(spec.unitsPerShard(), 100u);
    EXPECT_EQ(cellLabel(spec, 0), "fleet");
    const Plan plan = buildPlan(spec);
    ASSERT_EQ(plan.tasks.size(), 3u);
    EXPECT_EQ(plan.tasks[2].begin, 200u);
    EXPECT_EQ(plan.tasks[2].end, 250u);
}

TEST(FleetSpec, ParsesCohortsPoliciesAndOverrides)
{
    const auto spec = parseOrDie(R"({
        "name": "f", "kind": "fleet", "seed": 3, "years": 3,
        "epochHours": 2000, "shardDimms": 50,
        "sampler": "invcdf",
        "onDie": {"present": false},
        "policies": {"replaceOnDue": false, "replacementLagEpochs": 2,
                     "retireAfterPermanentFaults": 3,
                     "canaryDueThreshold": 0.25},
        "cohorts": [
            {"name": "vendorA", "scheme": "xed", "dimms": 100,
             "deployEpoch": 4, "canary": true,
             "scrubIntervalHours": 168,
             "fitOverrides": {"single-bit": {"transient": 99.5}}},
            {"name": "vendorB", "scheme": "chipkill", "dimms": 60}
        ]
    })");
    EXPECT_EQ(spec.sampler, faultsim::PoissonSampler::InvCdf);
    EXPECT_FALSE(spec.onDie.present);
    EXPECT_FALSE(spec.fleet.policies.replaceOnDue);
    EXPECT_EQ(spec.fleet.policies.replacementLagEpochs, 2u);
    EXPECT_EQ(spec.fleet.policies.retireAfterPermanentFaults, 3u);
    EXPECT_DOUBLE_EQ(spec.fleet.policies.canaryDueThreshold, 0.25);
    ASSERT_EQ(spec.fleet.cohorts.size(), 2u);
    const auto &a = spec.fleet.cohorts[0];
    EXPECT_EQ(a.deployEpoch, 4u);
    EXPECT_TRUE(a.canary);
    EXPECT_DOUBLE_EQ(a.scrubIntervalHours, 168.0);
    EXPECT_DOUBLE_EQ(
        a.fit.entry(faultsim::FaultKind::Bit).transient, 99.5);
    // The override leaves the other rates at Table I.
    EXPECT_DOUBLE_EQ(
        a.fit.entry(faultsim::FaultKind::Bit).permanent, 18.6);
    EXPECT_DOUBLE_EQ(
        spec.fleet.cohorts[1].fit.entry(faultsim::FaultKind::Bit)
            .transient,
        14.2);
    EXPECT_EQ(spec.fleet.totalDimms(), 160u);
    EXPECT_EQ(spec.fleet.cohortBegin(1), 100u);
}

TEST(FleetSpec, RejectsMalformedFleetSpecs)
{
    // Unknown key at the top level, inside policies, inside a cohort.
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "bogus":1,
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("bogus"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "policies":{"replaceOnDew":true},
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("policies"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "cohorts":[{"name":"a","scheme":"xed","dimms":10,"vendor":"x"}]})")
                  .find("cohorts[0]"),
              std::string::npos);
    // Missing / empty cohorts.
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1})")
                  .find("cohorts"),
              std::string::npos);
    EXPECT_NE(parseError(
                  R"({"name":"f","kind":"fleet","seed":1,"cohorts":[]})")
                  .find("cohorts"),
              std::string::npos);
    // Bad cohort fields.
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "cohorts":[{"name":"a","scheme":"notascheme","dimms":10}]})")
                  .find("notascheme"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "cohorts":[{"name":"a","scheme":"xed","dimms":0}]})")
                  .find("dimms"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "cohorts":[{"name":"a","scheme":"xed","dimms":5},
                   {"name":"a","scheme":"secded","dimms":5}]})")
                  .find("duplicate"),
              std::string::npos);
    // Policy and geometry bounds.
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "policies":{"canaryDueThreshold":1.5},
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("canaryDueThreshold"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "shardDimms":0,
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("shardDimms"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "epochHours":0,
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("epochHours"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"name":"f","kind":"fleet","seed":1,
        "years":0,
        "cohorts":[{"name":"a","scheme":"xed","dimms":10}]})")
                  .find("years"),
              std::string::npos);
}

TEST(FleetSpec, RejectsDeployEpochOutsideHorizon)
{
    // 2 years of monthly epochs = 24 epochs; 24 is out of range.
    const std::string error = parseError(R"({
        "name":"f","kind":"fleet","seed":1,"years":2,
        "cohorts":[{"name":"late","scheme":"xed","dimms":10,
                    "deployEpoch":24}]})");
    EXPECT_NE(error.find("late"), std::string::npos) << error;
    EXPECT_NE(error.find("deployEpoch"), std::string::npos) << error;
    // 23 is the last valid epoch.
    parseOrDie(R"({
        "name":"f","kind":"fleet","seed":1,"years":2,
        "cohorts":[{"name":"late","scheme":"xed","dimms":10,
                    "deployEpoch":23}]})");
}

TEST(FleetSpec, CanonicalFormRoundTrips)
{
    const auto spec = parseOrDie(R"({
        "name": "f", "kind": "fleet", "seed": 3, "years": 3,
        "epochHours": 2000, "shardDimms": 50,
        "policies": {"retireAfterPermanentFaults": 2},
        "cohorts": [
            {"name": "a", "scheme": "xed", "dimms": 100, "canary": true,
             "fitOverrides": {"single-row": {"permanent": 42.0}}},
            {"name": "b", "scheme": "secded", "dimms": 60,
             "deployEpoch": 5}
        ]
    })");
    const json::Value canonical = specToJson(spec);
    std::string error;
    const auto reparsed = parseSpec(canonical, &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_EQ(json::dump(specToJson(*reparsed)),
              json::dump(canonical));
    EXPECT_EQ(specHash(*reparsed), specHash(spec));
    EXPECT_EQ(reparsed->fleet.cohorts[0]
                  .fit.entry(faultsim::FaultKind::Row)
                  .permanent,
              42.0);
}

TEST(FleetSpec, HashCoversFleetShape)
{
    const auto base = parseOrDie(kMinimal);
    auto changedPolicy = parseOrDie(kMinimal);
    changedPolicy.fleet.policies.replacementLagEpochs = 3;
    auto changedCohort = parseOrDie(kMinimal);
    changedCohort.fleet.cohorts[0].dimms = 251;
    EXPECT_NE(specHash(base), specHash(changedPolicy));
    EXPECT_NE(specHash(base), specHash(changedCohort));
}

TEST(FleetSpec, EnvOverridesApplySeedAndSamplerOnly)
{
    auto spec = parseOrDie(kMinimal);
    ::setenv("XED_MC_SEED", "77", 1);
    ::setenv("XED_MC_SAMPLER", "invcdf", 1);
    ::setenv("XED_MC_SYSTEMS", "999", 1); // reliability-only knob
    ::setenv("XED_TRIALS", "888", 1);     // detection-only knob
    applyEnvOverrides(spec);
    ::unsetenv("XED_MC_SEED");
    ::unsetenv("XED_MC_SAMPLER");
    ::unsetenv("XED_MC_SYSTEMS");
    ::unsetenv("XED_TRIALS");
    EXPECT_EQ(spec.seed, 77u);
    EXPECT_EQ(spec.sampler, faultsim::PoissonSampler::InvCdf);
    EXPECT_EQ(spec.fleet.totalDimms(), 250u); // untouched
    EXPECT_EQ(spec.trials, 200000u);          // untouched default
}

TEST(FleetSpec, FleetConfigMirrorsSpec)
{
    const auto spec = parseOrDie(kMinimal);
    const fleet::FleetConfig config = fleetConfigFor(spec);
    EXPECT_EQ(config.seed, spec.seed);
    EXPECT_DOUBLE_EQ(config.years, spec.years);
    EXPECT_EQ(config.sampler, spec.sampler);
    EXPECT_EQ(config.setup.cohorts.size(), 1u);
    EXPECT_EQ(config.epochs(), 24u); // 2 years of monthly epochs
}
