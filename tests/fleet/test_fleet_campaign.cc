/**
 * @file
 * Fleet campaigns through the full campaign machinery: byte-identical
 * stores across thread counts, resume after an interrupt, the shard
 * payload (de)serialization round trip, distributed worker/merge
 * byte-identity, and report rendering.
 */

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "campaign/runner.hh"
#include "campaign/worker.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

/** Two cohorts, 1 simulated year of monthly epochs, FIT rates cranked
 *  high enough that DUEs, replacements and canary alerts all occur in
 *  a few hundred DIMMs. 5 shards (300 + 200 over shardDimms 100). */
CampaignSpec
fleetSpec()
{
    std::string error;
    auto doc = json::parse(R"({
        "name": "fleet-camp", "kind": "fleet", "seed": 616,
        "years": 1, "shardDimms": 100,
        "policies": {"replacementLagEpochs": 1,
                     "canaryDueThreshold": 0.02},
        "cohorts": [
            {"name": "vendorA-secded", "scheme": "secded", "dimms": 300,
             "fitOverrides": {
                 "single-bit": {"transient": 20000, "permanent": 26000},
                 "single-word": {"transient": 2000, "permanent": 400}}},
            {"name": "vendorB-xed", "scheme": "xed", "dimms": 200,
             "canary": true,
             "fitOverrides": {
                 "single-bit": {"transient": 20000, "permanent": 26000},
                 "single-bank": {"transient": 1200, "permanent": 15000}}}
        ]
    })",
                           &error);
    auto spec = parseSpec(*doc, &error);
    EXPECT_TRUE(spec) << error;
    return *spec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return {std::istreambuf_iterator<char>(in), {}};
}

void
removeIfPresent(const std::string &path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

RunOptions
storeOptions(const std::string &path, unsigned threads)
{
    RunOptions options;
    options.outPath = path;
    options.threads = threads;
    options.telemetrySidecar = false;
    return options;
}

std::string
lastLine(const std::string &text)
{
    // The store ends with "...}\n"; find the start of the final line.
    const std::size_t end = text.find_last_not_of('\n');
    const std::size_t start = text.rfind('\n', end);
    return text.substr(start + 1, end - start);
}

} // namespace

TEST(FleetCampaign, StoreBytesIdenticalAcrossThreadCounts)
{
    const auto spec = fleetSpec();
    const auto pathA = ::testing::TempDir() + "fleet_t1.jsonl";
    const auto pathB = ::testing::TempDir() + "fleet_t4.jsonl";
    removeIfPresent(pathA);
    removeIfPresent(pathB);

    const auto a = runCampaign(spec, storeOptions(pathA, 1));
    const auto b = runCampaign(spec, storeOptions(pathB, 4));
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_TRUE(a.complete);
    // No forensics sidecar for fleet campaigns: attribution is
    // embedded in the shard payloads instead.
    EXPECT_FALSE(a.forensicsWritten);
    EXPECT_FALSE(
        std::filesystem::exists(pathA + ".forensics.jsonl"));

    const std::string bytesA = slurp(pathA);
    EXPECT_EQ(bytesA, slurp(pathB));
    EXPECT_FALSE(bytesA.empty());
    removeIfPresent(pathA);
    removeIfPresent(pathB);
}

TEST(FleetCampaign, InterruptedRunResumesToIdenticalBytes)
{
    const auto spec = fleetSpec();
    const auto full = ::testing::TempDir() + "fleet_full.jsonl";
    const auto split = ::testing::TempDir() + "fleet_split.jsonl";
    removeIfPresent(full);
    removeIfPresent(split);

    ASSERT_TRUE(runCampaign(spec, storeOptions(full, 2)).ok);

    auto partial = storeOptions(split, 2);
    partial.maxShards = 2;
    const auto first = runCampaign(spec, partial);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_FALSE(first.complete);

    auto resume = storeOptions(split, 2);
    resume.resume = true;
    const auto second = runCampaign(spec, resume);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.complete);
    EXPECT_EQ(second.shardsReplayed, 2u);

    EXPECT_EQ(slurp(full), slurp(split));
    removeIfPresent(full);
    removeIfPresent(split);
}

TEST(FleetCampaign, ShardPayloadRoundTripsThroughJson)
{
    const auto spec = fleetSpec();
    const Plan plan = buildPlan(spec);
    const ShardResult result = runShard(spec, plan.tasks[0], nullptr);
    const json::Value record =
        shardRecord(spec, plan.tasks[0], result);
    const ShardResult decoded = shardResultFromJson(spec, record);
    ASSERT_EQ(decoded.fleet.cohorts.size(),
              result.fleet.cohorts.size());
    for (std::size_t c = 0; c < result.fleet.cohorts.size(); ++c) {
        const auto &a = result.fleet.cohorts[c];
        const auto &b = decoded.fleet.cohorts[c];
        EXPECT_EQ(a.installs, b.installs);
        EXPECT_EQ(a.removals, b.removals);
        EXPECT_EQ(a.due, b.due);
        EXPECT_EQ(a.sdc, b.sdc);
        EXPECT_EQ(a.replacements, b.replacements);
        EXPECT_EQ(a.retirements, b.retirements);
        EXPECT_EQ(a.attribution.byClassKinds,
                  b.attribution.byClassKinds);
        EXPECT_EQ(a.attribution.byOutcome, b.attribution.byOutcome);
    }
    // Re-encoding the decoded payload reproduces the record exactly
    // (the distributed merge relies on byte-stable shard records).
    EXPECT_EQ(json::dump(shardRecord(spec, plan.tasks[0], decoded)),
              json::dump(record));
}

TEST(FleetCampaign, WorkersAndMergeReproduceSingleProcessBytes)
{
    const auto spec = fleetSpec();
    const auto single = ::testing::TempDir() + "fleet_single.jsonl";
    const auto merged = ::testing::TempDir() + "fleet_merged.jsonl";
    const auto queueDir = ::testing::TempDir() + "fleet_queue";
    removeIfPresent(single);
    removeIfPresent(merged);
    std::filesystem::remove_all(queueDir);

    ASSERT_TRUE(runCampaign(spec, storeOptions(single, 2)).ok);

    WorkerOptions workerOptions;
    workerOptions.queueDir = queueDir;
    workerOptions.telemetrySidecar = false;
    workerOptions.workerId = "w1";
    workerOptions.maxShards = 2;
    const auto w1 = runWorker(spec, workerOptions);
    ASSERT_TRUE(w1.ok) << w1.error;
    EXPECT_EQ(w1.shardsRun, 2u);

    workerOptions.workerId = "w2";
    workerOptions.maxShards = 0;
    const auto w2 = runWorker(spec, workerOptions);
    ASSERT_TRUE(w2.ok) << w2.error;
    EXPECT_TRUE(w2.queueDrained);

    MergeOptions mergeOptions;
    mergeOptions.queueDir = queueDir;
    mergeOptions.outPath = merged;
    const auto m = mergeFragments(spec, mergeOptions);
    ASSERT_TRUE(m.ok) << m.error;
    EXPECT_EQ(m.shardsMerged, 5u);
    EXPECT_FALSE(m.forensicsWritten);

    EXPECT_EQ(slurp(single), slurp(merged));
    removeIfPresent(single);
    removeIfPresent(merged);
    std::filesystem::remove_all(queueDir);
}

TEST(FleetCampaign, SummaryCarriesFleetTimeSeries)
{
    const auto spec = fleetSpec();
    const auto path = ::testing::TempDir() + "fleet_summary.jsonl";
    removeIfPresent(path);
    ASSERT_TRUE(runCampaign(spec, storeOptions(path, 2)).ok);

    std::string error;
    const auto summary = json::parse(lastLine(slurp(path)), &error);
    ASSERT_TRUE(summary) << error;
    const json::Value *results = summary->find("results");
    ASSERT_TRUE(results && results->isArray() && results->size() == 1);
    const json::Value *payload = results->at(0).find("fleet");
    ASSERT_TRUE(payload && payload->isObject());

    const json::Value *epochs = payload->find("epochs");
    ASSERT_TRUE(epochs && epochs->isIntegral());
    EXPECT_EQ(epochs->asUint(), 12u); // 1 year of monthly epochs
    for (const char *key :
         {"inService", "availability", "cumulativeDue", "cumulativeSdc",
          "cumulativeReplacements", "scrubPasses"}) {
        const json::Value *series = payload->find(key);
        ASSERT_TRUE(series && series->isArray()) << key;
        EXPECT_EQ(series->size(), 12u) << key;
    }
    // Monotone cumulative failure series, with events present.
    const json::Value *due = payload->find("cumulativeDue");
    std::uint64_t previous = 0;
    for (std::size_t e = 0; e < due->size(); ++e) {
        EXPECT_GE(due->at(e).asUint(), previous);
        previous = due->at(e).asUint();
    }
    EXPECT_GT(previous, 0u);

    const json::Value *cohorts = payload->find("cohorts");
    ASSERT_TRUE(cohorts && cohorts->isArray());
    ASSERT_EQ(cohorts->size(), 2u);
    EXPECT_EQ(cohorts->at(0).find("name")->asString(),
              "vendorA-secded");
    // The canary cohort reports an alert epoch (FIT rates are cranked
    // far past the 2% DUE threshold); the non-canary reports null.
    EXPECT_TRUE(cohorts->at(0).find("canaryAlertEpoch")->isNull());
    EXPECT_TRUE(cohorts->at(1).find("canaryAlertEpoch")->isIntegral());
    removeIfPresent(path);
}

TEST(FleetCampaign, ReportRendersCohortAndSeriesTables)
{
    const auto spec = fleetSpec();
    const auto path = ::testing::TempDir() + "fleet_report.jsonl";
    removeIfPresent(path);
    ASSERT_TRUE(runCampaign(spec, storeOptions(path, 2)).ok);

    std::ostringstream out;
    std::string error;
    ASSERT_TRUE(printReport(path, out, &error)) << error;
    const std::string text = out.str();
    EXPECT_NE(text.find("vendorA-secded"), std::string::npos);
    EXPECT_NE(text.find("vendorB-xed"), std::string::npos);
    EXPECT_NE(text.find("fleet time series"), std::string::npos);
    EXPECT_NE(text.find("Availability"), std::string::npos);
    removeIfPresent(path);
}

TEST(FleetCampaign, DryRunPlanPrintsFleetKind)
{
    const auto spec = fleetSpec();
    std::ostringstream out;
    printPlan(spec, out);
    EXPECT_NE(out.str().find("(fleet)"), std::string::npos);
    EXPECT_NE(out.str().find("fleet-camp"), std::string::npos);
}
