/**
 * @file
 * Fleet engine semantics: the determinism contract (shard-cut
 * invariance, run-to-run identity), conservation laws of the epoch
 * delta series, maintenance-policy behavior (replace-on-DUE,
 * retirement, replacement lag) and the summary-time derivations
 * (in-service series, canary alerts).
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hh"

using namespace xed;
using namespace xed::fleet;

namespace
{

/** All Table I rates scaled by @p factor (stress fault density). */
faultsim::FitTable
scaledFit(double factor)
{
    faultsim::FitTable fit;
    for (auto &entry : fit.rates) {
        entry.transient *= factor;
        entry.permanent *= factor;
    }
    return fit;
}

FleetConfig
baseConfig(std::uint64_t dimms, double fitFactor,
           faultsim::SchemeKind scheme = faultsim::SchemeKind::Secded)
{
    FleetConfig config;
    config.seed = 20260808;
    config.years = 2.0;
    FleetCohort cohort;
    cohort.name = "c0";
    cohort.scheme = scheme;
    cohort.dimms = dimms;
    cohort.fit = scaledFit(fitFactor);
    config.setup.cohorts.push_back(cohort);
    return config;
}

void
expectSeriesEqual(const CohortSeries &a, const CohortSeries &b)
{
    EXPECT_EQ(a.installs, b.installs);
    EXPECT_EQ(a.removals, b.removals);
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.replacements, b.replacements);
    EXPECT_EQ(a.retirements, b.retirements);
    EXPECT_EQ(a.attribution.total(), b.attribution.total());
    EXPECT_EQ(a.attribution.byOutcome, b.attribution.byOutcome);
    EXPECT_EQ(a.attribution.byClassKinds, b.attribution.byClassKinds);
}

} // namespace

TEST(FleetSim, ZeroFitFleetIsQuiet)
{
    const FleetConfig config = baseConfig(500, 0.0);
    const FleetResult result =
        runFleetShard(config, 0, config.setup.totalDimms());
    ASSERT_EQ(result.cohorts.size(), 1u);
    const CohortSeries &series = result.cohorts[0];
    EXPECT_EQ(series.totalInstalls(), 500u);
    EXPECT_EQ(series.installs[0], 500u);
    EXPECT_EQ(series.totalDue(), 0u);
    EXPECT_EQ(series.totalSdc(), 0u);
    EXPECT_EQ(series.totalReplacements(), 0u);
    EXPECT_EQ(series.totalRetirements(), 0u);
    const auto inService = inServiceSeries(series);
    EXPECT_EQ(inService.front(), 500u);
    EXPECT_EQ(inService.back(), 500u);
}

TEST(FleetSim, ShardCutInvariance)
{
    FleetConfig config = baseConfig(400, 500.0);
    // A second cohort exercises the segment walk across cut points.
    FleetCohort second;
    second.name = "c1";
    second.scheme = faultsim::SchemeKind::Xed;
    second.dimms = 200;
    second.fit = scaledFit(500.0);
    second.deployEpoch = 2;
    config.setup.cohorts.push_back(second);
    const std::uint64_t total = config.setup.totalDimms();

    const FleetResult whole = runFleetShard(config, 0, total);
    // Cuts landing mid-cohort, on the cohort boundary, and at the end.
    FleetResult pieces;
    for (const auto &[lo, hi] :
         {std::pair<std::uint64_t, std::uint64_t>{0, 137},
          {137, 400},
          {400, 523},
          {523, total}})
        pieces.merge(runFleetShard(config, lo, hi));

    ASSERT_EQ(whole.cohorts.size(), pieces.cohorts.size());
    for (std::size_t c = 0; c < whole.cohorts.size(); ++c)
        expectSeriesEqual(whole.cohorts[c], pieces.cohorts[c]);
    // The stress factor must actually produce events, or this test
    // proves nothing.
    EXPECT_GT(whole.cohorts[0].totalDue() + whole.cohorts[0].totalSdc(),
              0u);
}

TEST(FleetSim, RunToRunDeterminism)
{
    const FleetConfig config = baseConfig(300, 800.0);
    const FleetResult a = runFleetShard(config, 0, 300);
    const FleetResult b = runFleetShard(config, 0, 300);
    expectSeriesEqual(a.cohorts[0], b.cohorts[0]);
}

TEST(FleetSim, ConservationLaws)
{
    const FleetConfig config = baseConfig(400, 1000.0);
    const FleetResult result = runFleetShard(config, 0, 400);
    const CohortSeries &series = result.cohorts[0];
    // Every install is either the initial deployment or a replacement.
    EXPECT_EQ(series.totalInstalls(),
              400u + series.totalReplacements());
    // In-service count stays within [0, dimms] at every epoch, and
    // removals never outrun installs.
    std::uint64_t level = 0;
    for (unsigned e = 0; e < series.epochs(); ++e) {
        ASSERT_GE(level + series.installs[e], series.removals[e]);
        level += series.installs[e];
        level -= series.removals[e];
        EXPECT_LE(level, 400u);
    }
    // Failures were recorded with full attribution.
    EXPECT_EQ(series.attribution.total(),
              series.totalDue() + series.totalSdc());
    EXPECT_GT(series.totalDue() + series.totalSdc(), 0u);
}

TEST(FleetSim, ReplaceOnDueDisabledMeansNoChurn)
{
    FleetConfig config = baseConfig(300, 1000.0);
    config.setup.policies.replaceOnDue = false;
    const FleetResult result = runFleetShard(config, 0, 300);
    const CohortSeries &series = result.cohorts[0];
    EXPECT_GT(series.totalDue(), 0u);
    EXPECT_EQ(series.totalReplacements(), 0u);
    EXPECT_EQ(series.totalInstalls(), 300u);
    // No retirement policy either, so nothing ever leaves service.
    for (const std::uint64_t r : series.removals)
        EXPECT_EQ(r, 0u);
}

TEST(FleetSim, RetirementPolicyPullsDimms)
{
    // Chipkill corrects isolated chip faults, so with retirement
    // after the first permanent fault the threshold pull fires before
    // most failures would.
    FleetConfig config =
        baseConfig(300, 1000.0, faultsim::SchemeKind::Chipkill);
    config.setup.policies.retireAfterPermanentFaults = 1;
    const FleetResult result = runFleetShard(config, 0, 300);
    const CohortSeries &series = result.cohorts[0];
    EXPECT_GT(series.totalRetirements(), 0u);
    // A retirement pulls the DIMM: unless it happened in the final
    // epoch, a removal follows, then a replacement install after the
    // configured lag (1 epoch by default).
    EXPECT_EQ(series.totalInstalls(),
              300u + series.totalReplacements());
}

TEST(FleetSim, ReplacementLagDelaysReinstall)
{
    FleetConfig quick = baseConfig(300, 1500.0);
    FleetConfig slow = quick;
    slow.setup.policies.replacementLagEpochs = 6;
    const CohortSeries quickSeries =
        runFleetShard(quick, 0, 300).cohorts[0];
    const CohortSeries slowSeries =
        runFleetShard(slow, 0, 300).cohorts[0];
    // Same failure process, but the lagged fleet spends more epochs
    // with fewer DIMMs racked: its total in-service DIMM-epochs are
    // strictly fewer whenever any replacement happened.
    ASSERT_GT(quickSeries.totalReplacements(), 0u);
    std::uint64_t quickEpochs = 0, slowEpochs = 0;
    for (const std::uint64_t v : inServiceSeries(quickSeries))
        quickEpochs += v;
    for (const std::uint64_t v : inServiceSeries(slowSeries))
        slowEpochs += v;
    EXPECT_LT(slowEpochs, quickEpochs);
}

TEST(FleetSim, DeployEpochDelaysInstalls)
{
    FleetConfig config = baseConfig(100, 0.0);
    config.setup.cohorts[0].deployEpoch = 5;
    const CohortSeries series =
        runFleetShard(config, 0, 100).cohorts[0];
    const auto inService = inServiceSeries(series);
    for (unsigned e = 0; e < 5; ++e)
        EXPECT_EQ(inService[e], 0u);
    EXPECT_EQ(series.installs[5], 100u);
    EXPECT_EQ(inService.back(), 100u);
}

TEST(FleetSim, EmptyRangeAndMergeIdentity)
{
    const FleetConfig config = baseConfig(100, 100.0);
    const FleetResult empty = runFleetShard(config, 50, 50);
    EXPECT_EQ(empty.cohorts[0].totalInstalls(), 0u);
    FleetResult merged = runFleetShard(config, 0, 100);
    const FleetResult reference = runFleetShard(config, 0, 100);
    merged.merge(empty);
    merged.merge(FleetResult{}); // default value is the identity
    expectSeriesEqual(merged.cohorts[0], reference.cohorts[0]);
}

TEST(FleetSim, CanaryAlertEpochThresholds)
{
    CohortSeries series;
    series.resize(3);
    series.due = {0, 3, 5};
    // ceil(0.5 * 10) = 5 DUEs needed: cumulative 0, 3, 8 -> epoch 2.
    EXPECT_EQ(canaryAlertEpoch(series, 10, 0.5),
              std::optional<unsigned>(2));
    // One DUE suffices for any positive threshold at tiny scale.
    EXPECT_EQ(canaryAlertEpoch(series, 1, 0.001),
              std::optional<unsigned>(1));
    // Disabled threshold, empty cohort, or never-reached threshold.
    EXPECT_EQ(canaryAlertEpoch(series, 10, 0.0), std::nullopt);
    EXPECT_EQ(canaryAlertEpoch(series, 0, 0.5), std::nullopt);
    EXPECT_EQ(canaryAlertEpoch(series, 100, 0.5), std::nullopt);
}

TEST(FleetSim, ProgressCountsSlots)
{
    const FleetConfig config = baseConfig(700, 100.0);
    faultsim::McProgress progress;
    runFleetShard(config, 0, 700, &progress);
    EXPECT_EQ(progress.systemsDone.load(), 700u);
}
