#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hamming7264.hh"

namespace xed::ecc
{
namespace
{

class HammingTest : public ::testing::Test
{
  protected:
    Hamming7264 code;
};

TEST_F(HammingTest, EncodeRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        const Word72 word = code.encode(data);
        EXPECT_TRUE(code.isValidCodeword(word));
        EXPECT_EQ(code.extractData(word), data);
        const auto result = code.decode(word);
        EXPECT_EQ(result.status, DecodeStatus::NoError);
        EXPECT_EQ(result.data, data);
    }
}

TEST_F(HammingTest, ZeroAndAllOnesData)
{
    for (const std::uint64_t data : {std::uint64_t{0}, ~std::uint64_t{0}}) {
        const Word72 word = code.encode(data);
        EXPECT_TRUE(code.isValidCodeword(word));
        EXPECT_EQ(code.decode(word).data, data);
    }
}

TEST_F(HammingTest, CorrectsEverySingleBitError)
{
    Rng rng(2);
    const std::uint64_t data = rng.next();
    const Word72 word = code.encode(data);
    for (unsigned pos = 0; pos < codeLength; ++pos) {
        Word72 corrupted = word;
        corrupted.flip(pos);
        const auto result = code.decode(corrupted);
        EXPECT_EQ(result.status, DecodeStatus::CorrectedSingle) << pos;
        EXPECT_EQ(result.data, data) << pos;
        EXPECT_EQ(result.correctedBit, static_cast<int>(pos));
        EXPECT_TRUE(result.errorObserved());
    }
}

TEST_F(HammingTest, DetectsEveryDoubleBitError)
{
    Rng rng(3);
    const std::uint64_t data = rng.next();
    const Word72 word = code.encode(data);
    for (unsigned a = 0; a < codeLength; ++a) {
        for (unsigned b = a + 1; b < codeLength; ++b) {
            Word72 corrupted = word;
            corrupted.flip(a);
            corrupted.flip(b);
            const auto result = code.decode(corrupted);
            EXPECT_EQ(result.status, DecodeStatus::DetectedUncorrectable)
                << a << "," << b;
        }
    }
}

TEST_F(HammingTest, TripleErrorsAlwaysObserved)
{
    // SECDED mis-corrects most 3-bit errors, but the word is never seen
    // as a *valid* codeword, which is all XED needs (Figure 4).
    Rng rng(4);
    const std::uint64_t data = rng.next();
    const Word72 word = code.encode(data);
    for (int trial = 0; trial < 2000; ++trial) {
        Word72 corrupted = word;
        unsigned flipped = 0;
        while (flipped < 3) {
            const unsigned pos =
                static_cast<unsigned>(rng.below(codeLength));
            if (corrupted.bit(pos) == word.bit(pos)) {
                corrupted.flip(pos);
                ++flipped;
            }
        }
        const auto result = code.decode(corrupted);
        EXPECT_NE(result.status, DecodeStatus::NoError);
        EXPECT_TRUE(result.errorObserved());
    }
}

TEST_F(HammingTest, SomeAlignedSolidBurst4Undetected)
{
    // The weakness the paper exploits to argue for CRC8-ATM: with
    // natural column ordering, bursts of 4 starting at even columns XOR
    // to a zero syndrome and pass as valid codewords.
    const Word72 word = code.encode(0xDEADBEEFCAFEF00Dull);
    int undetected = 0;
    for (unsigned start = 0; start + 4 <= codeLength; ++start) {
        Word72 corrupted = word;
        for (unsigned i = 0; i < 4; ++i)
            corrupted.flip(start + i);
        if (code.isValidCodeword(corrupted))
            ++undetected;
    }
    // 34 of 69 start positions alias to codewords (~49%).
    EXPECT_GT(undetected, 25);
    EXPECT_LT(undetected, 45);
}

TEST_F(HammingTest, SyndromeZeroOnlyForCodewords)
{
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        Word72 w{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        const bool valid = code.isValidCodeword(w);
        EXPECT_EQ(valid, code.syndrome(w) == 0);
        if (valid) {
            // Validity must be preserved by re-encoding extracted data.
            EXPECT_EQ(code.encode(code.extractData(w)), w);
        }
    }
}

TEST_F(HammingTest, LinearityOfSyndrome)
{
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        Word72 a{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        Word72 b{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        EXPECT_EQ(code.syndrome(a ^ b),
                  code.syndrome(a) ^ code.syndrome(b));
    }
}

} // namespace
} // namespace xed::ecc
