#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/gf256.hh"

namespace xed::ecc
{
namespace
{

class GfTest : public ::testing::Test
{
  protected:
    const GF256 &gf = GF256::instance();
};

TEST_F(GfTest, AddIsXor)
{
    EXPECT_EQ(gf.add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(gf.add(7, 7), 0);
}

TEST_F(GfTest, MulIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1), a);
        EXPECT_EQ(gf.mul(1, static_cast<std::uint8_t>(a)), a);
        EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
    }
}

TEST_F(GfTest, MulMatchesCarrylessReference)
{
    // Reference: shift-and-add multiply reduced by 0x11D.
    auto refMul = [](std::uint8_t a, std::uint8_t b) {
        unsigned acc = 0;
        unsigned aa = a;
        for (int i = 0; i < 8; ++i) {
            if ((b >> i) & 1)
                acc ^= aa << i;
        }
        for (int bit = 15; bit >= 8; --bit)
            if ((acc >> bit) & 1)
                acc ^= GF256::fieldPoly << (bit - 8);
        return static_cast<std::uint8_t>(acc);
    };
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(gf.mul(a, b), refMul(a, b));
    }
}

TEST_F(GfTest, EveryNonzeroElementHasInverse)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto inv = gf.inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), inv), 1) << a;
    }
}

TEST_F(GfTest, MulRowPtrMatchesMul)
{
    for (unsigned c = 0; c < 256; ++c) {
        const std::uint8_t *row =
            gf.mulRowPtr(static_cast<std::uint8_t>(c));
        for (unsigned x = 0; x < 256; ++x)
            ASSERT_EQ(row[x], gf.mul(static_cast<std::uint8_t>(c),
                                     static_cast<std::uint8_t>(x)));
    }
}

TEST_F(GfTest, FullMulTableMatchesCarrylessReference)
{
    // Exhaustive 256x256 cross-check of the product table against an
    // independent shift-and-reduce multiply.
    auto refMul = [](std::uint8_t a, std::uint8_t b) {
        unsigned acc = 0;
        for (int i = 0; i < 8; ++i)
            if ((b >> i) & 1)
                acc ^= static_cast<unsigned>(a) << i;
        for (int bit = 15; bit >= 8; --bit)
            if ((acc >> bit) & 1)
                acc ^= GF256::fieldPoly << (bit - 8);
        return static_cast<std::uint8_t>(acc);
    };
    for (unsigned a = 0; a < 256; ++a)
        for (unsigned b = 0; b < 256; ++b)
            ASSERT_EQ(gf.mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)),
                      refMul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)))
                << a << " * " << b;
}

TEST_F(GfTest, DivByZeroIsRejected)
{
    // Regression: div(a, 0) used to read the undefined log_[0] entry
    // and silently return garbage. The precondition is now enforced
    // (in release builds too).
    for (unsigned a : {0u, 1u, 2u, 0x53u, 0xFFu})
        EXPECT_THROW(gf.div(static_cast<std::uint8_t>(a), 0),
                     std::domain_error)
            << "div(" << a << ", 0)";
}

TEST_F(GfTest, DivConsistentWithMul)
{
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
        EXPECT_EQ(gf.mul(gf.div(a, b), b), a);
    }
}

TEST_F(GfTest, AlphaGeneratesWholeGroup)
{
    bool seen[256] = {};
    for (unsigned e = 0; e < GF256::groupOrder; ++e)
        seen[gf.expAlpha(e)] = true;
    unsigned count = 0;
    for (unsigned v = 1; v < 256; ++v)
        count += seen[v] ? 1 : 0;
    EXPECT_EQ(count, GF256::groupOrder);
    EXPECT_EQ(gf.expAlpha(GF256::groupOrder), 1);
}

TEST_F(GfTest, PowMatchesRepeatedMul)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.below(256));
        const auto n = static_cast<unsigned>(rng.below(600));
        std::uint8_t ref = 1;
        for (unsigned j = 0; j < n; ++j)
            ref = gf.mul(ref, a);
        EXPECT_EQ(gf.pow(a, n), ref);
    }
}

} // namespace
} // namespace xed::ecc
