/**
 * @file
 * Counting-allocator proof of the codec layer's allocation contract:
 * once a code object exists, the hot paths -- RS scratch decode with
 * errors and erasures, CRC/Hamming decode, batched detection, and a
 * whole campaign detection shard -- perform ZERO steady-state heap
 * allocations. Same technique as tests/faultsim/test_alloc.cc: global
 * operator new is replaced with a counting forwarder.
 *
 * This binary must stay separate from test_ecc: the global operator
 * new replacement applies process-wide.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "obs/trace.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"
#include "ecc/reed_solomon.hh"
#include "xed/chipkill_controller.hh"
#include "xed/controller.hh"

namespace
{

std::atomic<std::uint64_t> allocationCount{0};

void *
countedAlloc(std::size_t size)
{
    ++allocationCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

std::uint64_t
allocations()
{
    return allocationCount.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace xed::ecc
{
namespace
{

/** Corrupt a codeword in place: @p errors random symbols plus @p
 *  erased symbols whose indices go into @p erasures. */
template <std::size_t N>
unsigned
damage(Rng &rng, std::span<std::uint8_t> word, unsigned errors,
       unsigned erased, std::array<unsigned, N> &erasures)
{
    const unsigned n = static_cast<unsigned>(word.size());
    bool used[RsScratch::maxN] = {};
    unsigned numErasures = 0;
    for (unsigned i = 0; i < errors + erased; ++i) {
        unsigned pos;
        do
            pos = static_cast<unsigned>(rng.below(n));
        while (used[pos]);
        used[pos] = true;
        word[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        if (i >= errors)
            erasures[numErasures++] = pos;
    }
    return numErasures;
}

TEST(CodecAllocation, RsScratchDecodeIsAllocationFree)
{
    // RS(18,16) with one error, RS(18,16) with two erasures
    // (XED-on-Chipkill), RS(36,32) with errors+erasures: every decode
    // configuration the controllers use, on stack scratch.
    struct Config
    {
        unsigned n, k, errors, erased;
    };
    const Config configs[] = {
        {18, 16, 0, 0}, {18, 16, 1, 0}, {18, 16, 0, 2},
        {36, 32, 2, 0}, {36, 32, 1, 2}, {36, 32, 0, 4},
    };
    for (const Config &config : configs) {
        const ReedSolomon rs(config.n, config.k);
        Rng rng(0xA110C + config.n + config.errors * 8 +
                config.erased);
        std::array<std::uint8_t, RsScratch::maxN> data{};
        std::array<std::uint8_t, RsScratch::maxN> codeword;
        std::array<std::uint8_t, RsScratch::maxN> received;
        std::array<unsigned, RsScratch::maxR> erasures;
        for (unsigned i = 0; i < config.k; ++i)
            data[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(std::span<const std::uint8_t>(data.data(), config.k),
                  std::span<std::uint8_t>(codeword.data(), config.n));
        RsScratch scratch;

        const std::uint64_t before = allocations();
        for (unsigned trial = 0; trial < 2000; ++trial) {
            std::copy(codeword.begin(), codeword.begin() + config.n,
                      received.begin());
            const std::span<std::uint8_t> word(received.data(),
                                               config.n);
            const unsigned numErasures = damage(
                rng, word, config.errors, config.erased, erasures);
            const RsResult result = rs.decode(
                word,
                std::span<const unsigned>(erasures.data(), numErasures),
                scratch);
            // Within capacity, so decode must land on the codeword.
            ASSERT_NE(static_cast<int>(result.status),
                      static_cast<int>(RsStatus::Failure));
            ASSERT_TRUE(rs.isValidCodeword(word));
        }
        EXPECT_EQ(allocations() - before, 0u)
            << "RS(" << config.n << "," << config.k << ") with "
            << config.errors << " errors + " << config.erased
            << " erasures allocated in steady state";
    }
}

template <typename Code>
void
checkSecdedDecodeAllocationFree(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    std::array<Word72, 256> batch;

    const std::uint64_t before = allocations();
    std::uint64_t observed = 0;
    for (unsigned trial = 0; trial < 20000; ++trial) {
        Word72 word = clean;
        if (rng.bernoulli(0.75))
            word ^= randomPattern(rng, 1 + rng.below(8));
        observed += code.decode(word).errorObserved();
    }
    randomPatternsInto(rng, 4, std::span<Word72>(batch));
    for (Word72 &word : batch)
        word = clean ^ word;
    observed += code.detectMany(std::span<const Word72>(batch));
    EXPECT_EQ(allocations() - before, 0u)
        << observed << " errors observed; decode/detectMany allocated";
}

TEST(CodecAllocation, HammingDecodeIsAllocationFree)
{
    checkSecdedDecodeAllocationFree<Hamming7264>(0x4A11);
}

TEST(CodecAllocation, Crc8DecodeIsAllocationFree)
{
    checkSecdedDecodeAllocationFree<Crc8Atm>(0xC4C4);
}

TEST(CodecAllocation, BatchKernelsAllocationFreeAtEveryLevel)
{
    // The SIMD batch kernels (detectMany, GF constant rows, the RS
    // SoA validity sweep) must stay allocation-free at EVERY dispatch
    // level, not just the detected one. Level forcing and all buffers
    // live outside the counted window (simdForceLevel stores the
    // origin string).
    std::vector<SimdLevel> levels;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Neon, SimdLevel::Avx2,
          SimdLevel::Avx512})
        if (simdLevelSupported(level))
            levels.push_back(level);
    const SimdLevel original = simdLevel();

    const Hamming7264 hamming;
    const Crc8Atm crc;
    const ReedSolomon rs(18, 16);
    const GF256 &gf = GF256::instance();
    Rng rng(0x51A110C);

    std::vector<Word72> batch(513);
    const Word72 clean = hamming.encode(0xDEADBEEFCAFEF00Dull);
    for (Word72 &word : batch)
        word = clean ^ randomPattern(rng, 1 + rng.below(8));

    constexpr std::size_t soaCount = 64;
    std::vector<std::uint8_t> soa(rs.n() * soaCount);
    for (auto &symbol : soa)
        symbol = static_cast<std::uint8_t>(rng.below(256));
    std::vector<std::uint8_t> gfSrc(513), gfDst(513);
    for (auto &symbol : gfSrc)
        symbol = static_cast<std::uint8_t>(rng.below(256));

    // Buffers for the batched faulty-path kernels (DESIGN.md section
    // 4j): RS syndromes/validity flags, transposed catch-word planes,
    // and a staged RsWordBlock -- all sized before the counted window.
    std::vector<std::uint8_t> syn(rs.numCheck() * soaCount);
    std::vector<std::uint8_t> valid(soaCount);
    std::vector<std::uint8_t> planes(9 * batch.size());
    for (std::size_t c = 0; c < batch.size(); ++c) {
        for (unsigned b = 0; b < 8; ++b)
            planes[b * batch.size() + c] =
                static_cast<std::uint8_t>(batch[c].lo >> (8 * b));
        planes[8 * batch.size() + c] = batch[c].hi;
    }
    std::vector<std::uint8_t> catchSyn(batch.size());
    RsWordBlock block(rs.n(), soaCount);

    for (const SimdLevel level : levels) {
        simdForceLevel(level, "test");
        const std::uint64_t before = allocations();
        std::uint64_t observed = 0;
        observed +=
            hamming.detectMany(std::span<const Word72>(batch));
        observed += crc.detectMany(std::span<const Word72>(batch));
        gf.mulConstInto(0x53, gfSrc.data(), gfDst.data(),
                        gfSrc.size());
        gf.mulConstXorInto(0xA7, gfSrc.data(), gfDst.data(),
                           gfSrc.size());
        observed += gfDst[0];
        observed += rs.countInvalidSoa(
            std::span<const std::uint8_t>(soa), soaCount);
        rs.syndromesManySoa(std::span<const std::uint8_t>(soa),
                            soaCount, std::span<std::uint8_t>(syn));
        observed += rs.isValidCodewordMany(
            std::span<const std::uint8_t>(soa), soaCount,
            std::span<std::uint8_t>(valid));
        crc.syndromeManySoa(planes.data(), batch.size(), batch.size(),
                            catchSyn.data());
        hamming.syndromeManySoa(planes.data(), batch.size(),
                                batch.size(), catchSyn.data());
        observed += catchSyn[0];
        block.clear();
        for (std::size_t c = 0; c < soaCount; ++c) {
            const std::size_t col = block.openColumn();
            for (unsigned i = 0; i < rs.n(); ++i)
                block.setSymbol(i, col, soa[i * soaCount + c]);
        }
        rs.syndromesManySoa(block, std::span<std::uint8_t>(syn));
        observed += rs.isValidCodewordMany(
            block, std::span<std::uint8_t>(valid));
        EXPECT_EQ(allocations() - before, 0u)
            << simdLevelName(level) << " batch kernels allocated ("
            << observed << " observed)";
    }
    simdForceLevel(original, "test");
}

TEST(CodecAllocation, ChipkillReadPathSteadyStateIsAllocationFree)
{
    // The functional read path end to end: XED-on-Chipkill reads with
    // catch-word erasures decode 8 RS beats per line on scratch.
    // Setup (controller, chips, counter-map keys) allocates; steady
    // state must not, so a longer run costs exactly the same.
    auto readAllocations = [](unsigned reads) {
        ChipkillConfig config;
        config.useCatchWordErasures = true;
        ChipkillController controller(config);
        const dram::WordAddr addr{0, 3, 7};
        std::vector<std::uint64_t> line(config.dataChips, 0xA5A5A5A5ull);
        controller.writeLine(addr, line);
        dram::Fault fault;
        fault.granularity = dram::FaultGranularity::SingleWord;
        fault.permanent = true;
        fault.addr = addr;
        fault.seed = 9;
        controller.chip(2).faults().add(fault);
        const std::uint64_t before = allocations();
        std::uint64_t corrected = 0;
        for (unsigned i = 0; i < reads; ++i) {
            const auto result = controller.readLine(addr);
            corrected += result.outcome != ChipkillOutcome::Uncorrectable;
        }
        const std::uint64_t after = allocations();
        EXPECT_LE(corrected, reads);
        return after - before;
    };
    const std::uint64_t shortRun = readAllocations(200);
    const std::uint64_t longRun = readAllocations(2000);
    EXPECT_EQ(shortRun, longRun)
        << (longRun - shortRun)
        << " steady-state allocations leaked into 1800 extra reads";
}

TEST(CodecAllocation, ControllerReadManySteadyStateIsAllocationFree)
{
    // The batched read paths (DESIGN.md section 4j): the first
    // readMany() call sizes the transposed staging planes; after that
    // warm-up, batched reads -- including the scalar fallbacks for the
    // faulty lines -- must not allocate at all.
    using dram::WordAddr;
    {
        XedController controller;
        std::vector<WordAddr> addrs;
        for (unsigned i = 0; i < 96; ++i)
            addrs.push_back({0, 5 + i / 64, i % 64});
        dram::Fault fault;
        fault.granularity = dram::FaultGranularity::SingleBit;
        fault.permanent = true;
        fault.addr = addrs[10];
        fault.bitPos = 5;
        controller.chip(2).faults().add(fault);
        std::vector<LineReadResult> results(addrs.size());
        controller.readMany(std::span<const WordAddr>(addrs),
                            std::span<LineReadResult>(results));
        const std::uint64_t before = allocations();
        std::uint64_t clean = 0;
        for (unsigned round = 0; round < 50; ++round) {
            controller.readMany(std::span<const WordAddr>(addrs),
                                std::span<LineReadResult>(results));
            clean += results[0].outcome == ReadOutcome::Clean;
        }
        EXPECT_EQ(allocations() - before, 0u)
            << "XedController::readMany allocated in steady state ("
            << clean << " clean)";
    }
    {
        ChipkillConfig config;
        config.useCatchWordErasures = true;
        ChipkillController controller(config);
        std::vector<WordAddr> addrs;
        for (unsigned i = 0; i < 96; ++i)
            addrs.push_back({1, 7 + i / 64, i % 64});
        std::vector<std::uint64_t> line(config.dataChips,
                                        0x5A5A5A5Aull);
        for (const WordAddr &addr : addrs)
            controller.writeLine(addr, line);
        dram::Fault fault;
        fault.granularity = dram::FaultGranularity::SingleWord;
        fault.permanent = true;
        fault.addr = addrs[20];
        fault.seed = 17;
        controller.chip(4).faults().add(fault);
        std::vector<ChipkillReadResult> results(addrs.size());
        controller.readMany(std::span<const WordAddr>(addrs),
                            std::span<ChipkillReadResult>(results));
        const std::uint64_t before = allocations();
        std::uint64_t clean = 0;
        for (unsigned round = 0; round < 50; ++round) {
            controller.readMany(std::span<const WordAddr>(addrs),
                                std::span<ChipkillReadResult>(results));
            clean += results[0].outcome == ChipkillOutcome::Clean;
        }
        EXPECT_EQ(allocations() - before, 0u)
            << "ChipkillController::readMany allocated in steady state"
            << " (" << clean << " clean)";
    }
}

} // namespace
} // namespace xed::ecc

namespace xed::campaign
{
namespace
{

/** Allocations performed by one detection shard of @p trials. */
std::uint64_t
shardAllocations(const CampaignSpec &spec, std::uint64_t trials)
{
    ShardTask task;
    task.index = 0;
    task.point = 0;
    task.cell = 0;
    task.begin = 0;
    task.end = trials;
    const std::uint64_t before = allocations();
    const ShardResult result = runDetectionShard(spec, task, nullptr);
    const std::uint64_t after = allocations();
    EXPECT_LE(result.detected, result.trials);
    return after - before;
}

TEST(CodecAllocation, DetectionShardSteadyStateIsAllocationFree)
{
    // A full runDetectionShard cell: code construction and the result
    // are the only allocations, so doubling the trial count must not
    // change the total.
    for (const char *code : {"hamming7264", "crc8atm"}) {
        for (const bool burst : {false, true}) {
            CampaignSpec spec;
            spec.name = "alloc-probe";
            spec.kind = CampaignKind::Detection;
            spec.seed = 2738;
            spec.codes = {code};
            spec.patterns = {burst ? "burst" : "random"};
            spec.maxWeight = 4;
            spec.trials = 40000;
            spec.shardTrials = 40000;
            const std::uint64_t shortRun =
                shardAllocations(spec, 10000);
            const std::uint64_t longRun = shardAllocations(spec, 40000);
            EXPECT_EQ(shortRun, longRun)
                << code << (burst ? " burst" : " random") << ": "
                << (longRun - shortRun)
                << " steady-state allocations leaked into 30000 extra "
                << "trials";
        }
    }
}

TEST(CodecAllocation, TracedDetectionShardSteadyStateIsAllocationFree)
{
    // Same contract with the span recorder enabled: every per-batch
    // span is a struct store into the thread's preallocated ring, so
    // quadrupling the trial count (and the span count with it) must
    // not change the allocation total after the ring is registered.
    CampaignSpec spec;
    spec.name = "alloc-probe-traced";
    spec.kind = CampaignKind::Detection;
    spec.seed = 2738;
    spec.codes = {"hamming7264"};
    spec.patterns = {"random"};
    spec.maxWeight = 4;
    spec.trials = 40000;
    spec.shardTrials = 40000;

    auto &recorder = obs::TraceRecorder::instance();
    recorder.setEnabled(true);
    shardAllocations(spec, 10000); // ring registration warm-up

    const std::uint64_t shortRun = shardAllocations(spec, 10000);
    const std::uint64_t longRun = shardAllocations(spec, 40000);
    recorder.setEnabled(false);
    EXPECT_EQ(shortRun, longRun)
        << (longRun - shortRun)
        << " steady-state allocations leaked into 30000 extra traced "
        << "trials";
}

} // namespace
} // namespace xed::campaign
