#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/error_patterns.hh"

namespace xed::ecc
{
namespace
{

TEST(ErrorPatterns, RandomPatternHasExactWeight)
{
    Rng rng(1);
    for (unsigned w = 1; w <= 8; ++w)
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(randomPattern(rng, w).weight(), static_cast<int>(w));
}

TEST(ErrorPatterns, RandomPatternCoversAllPositions)
{
    Rng rng(2);
    bool seen[codeLength] = {};
    for (int i = 0; i < 5000; ++i) {
        const auto p = randomPattern(rng, 1);
        for (unsigned pos = 0; pos < codeLength; ++pos)
            if (p.bit(pos))
                seen[pos] = true;
    }
    for (unsigned pos = 0; pos < codeLength; ++pos)
        EXPECT_TRUE(seen[pos]) << pos;
}

TEST(ErrorPatterns, SolidBurstShape)
{
    Rng rng(3);
    for (unsigned len = 1; len <= 8; ++len) {
        for (int i = 0; i < 200; ++i) {
            const auto p = solidBurstPattern(rng, len);
            EXPECT_EQ(p.weight(), static_cast<int>(len));
            // All set bits must be consecutive.
            unsigned first = codeLength, last = 0;
            for (unsigned pos = 0; pos < codeLength; ++pos) {
                if (p.bit(pos)) {
                    first = std::min(first, pos);
                    last = std::max(last, pos);
                }
            }
            EXPECT_EQ(last - first + 1, len);
        }
    }
}

TEST(ErrorPatterns, BurstSpanIsExact)
{
    Rng rng(4);
    for (unsigned len = 2; len <= 8; ++len) {
        for (int i = 0; i < 200; ++i) {
            const auto p = burstPattern(rng, len);
            unsigned first = codeLength, last = 0;
            for (unsigned pos = 0; pos < codeLength; ++pos) {
                if (p.bit(pos)) {
                    first = std::min(first, pos);
                    last = std::max(last, pos);
                }
            }
            EXPECT_EQ(last - first + 1, len);
            EXPECT_GE(p.weight(), 2);
            EXPECT_LE(p.weight(), static_cast<int>(len));
        }
    }
}

TEST(ErrorPatterns, BurstLengthOne)
{
    Rng rng(5);
    const auto p = burstPattern(rng, 1);
    EXPECT_EQ(p.weight(), 1);
}

} // namespace
} // namespace xed::ecc
