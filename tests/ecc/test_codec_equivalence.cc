/**
 * @file
 * Randomized equivalence suite for the codec kernel rewrite: the
 * table-driven, allocation-free scratch/batched kernels must return
 * byte-identical results to the frozen pre-optimization implementations
 * in tests/support/codec_reference.* -- same statuses, same corrected
 * words, same syndromes, same RNG draw order for the batched pattern
 * generators. The AcrossSimdLevels suites force every dispatch level
 * the host can execute (DESIGN.md section 4i) through the real
 * dispatch and demand the same bytes from each. Together with the
 * golden_table2 stdout fixture this pins the PR's bit-identicality
 * contract.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"
#include "ecc/reed_solomon.hh"
#include "tests/support/codec_reference.hh"

namespace xed::ecc
{
namespace
{

struct RsShape
{
    unsigned n;
    unsigned k;
};

constexpr RsShape shapes[] = {{18, 16}, {36, 32}, {15, 11}};

/** One random received word: codeword + random/burst/erasure damage. */
struct RsCase
{
    std::vector<std::uint8_t> received;
    std::vector<unsigned> erasures;
};

RsCase
makeCase(Rng &rng, const ReedSolomon &rs)
{
    const unsigned n = rs.n();
    const unsigned r = rs.numCheck();
    std::vector<std::uint8_t> data(rs.k());
    for (auto &symbol : data)
        symbol = static_cast<std::uint8_t>(rng.below(256));
    RsCase out;
    out.received = rs.encode(data);

    // Damage model: 0..r+1 corrupted symbols, placed randomly or as a
    // consecutive burst; a subset (sometimes superset) of the corrupted
    // positions is declared erased, so the suite exercises clean
    // words, errors-only, erasures-only, errors+erasures, mismatched
    // erasure declarations and beyond-capacity failures.
    const unsigned corrupt = static_cast<unsigned>(rng.below(r + 2));
    const bool burst = rng.bernoulli(0.5);
    const unsigned start =
        burst ? static_cast<unsigned>(rng.below(n)) : 0;
    for (unsigned c = 0; c < corrupt; ++c) {
        const unsigned pos =
            burst ? (start + c) % n
                  : static_cast<unsigned>(rng.below(n));
        out.received[pos] ^= static_cast<std::uint8_t>(rng.below(256));
        if (rng.bernoulli(0.5) && out.erasures.size() < r)
            out.erasures.push_back(pos);
    }
    if (rng.bernoulli(0.1) && out.erasures.size() < r)
        out.erasures.push_back(static_cast<unsigned>(rng.below(n)));
    return out;
}

TEST(CodecEquivalence, RsDecodeMatchesLegacyByteForByte)
{
    // >= 10^5 fuzz trials across the three shapes; every trial runs
    // the frozen legacy decoder, the vector wrapper and the explicit
    // scratch kernel and demands identical results from all three.
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const legacy::ReedSolomon ref(shape.n, shape.k);
        ASSERT_TRUE(rs.fitsScratch());
        Rng rng(0xEC0DEC + shape.n);
        RsScratch scratch;
        for (unsigned trial = 0; trial < 34000; ++trial) {
            const RsCase c = makeCase(rng, rs);

            std::vector<std::uint8_t> legacyWord = c.received;
            const RsResult legacyResult =
                ref.decode(legacyWord, c.erasures);

            std::vector<std::uint8_t> vectorWord = c.received;
            const RsResult vectorResult =
                rs.decode(vectorWord, c.erasures);

            std::vector<std::uint8_t> scratchWord = c.received;
            const RsResult scratchResult = rs.decode(
                std::span<std::uint8_t>(scratchWord),
                std::span<const unsigned>(c.erasures), scratch);

            ASSERT_EQ(static_cast<int>(vectorResult.status),
                      static_cast<int>(legacyResult.status));
            ASSERT_EQ(static_cast<int>(scratchResult.status),
                      static_cast<int>(legacyResult.status));
            ASSERT_EQ(vectorResult.numErrors, legacyResult.numErrors);
            ASSERT_EQ(scratchResult.numErrors, legacyResult.numErrors);
            ASSERT_EQ(vectorResult.numErasures,
                      legacyResult.numErasures);
            ASSERT_EQ(scratchResult.numErasures,
                      legacyResult.numErasures);
            ASSERT_EQ(vectorWord, legacyWord);
            ASSERT_EQ(scratchWord, legacyWord);
        }
    }
}

TEST(CodecEquivalence, RsEncodeMatchesLegacy)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const legacy::ReedSolomon ref(shape.n, shape.k);
        Rng rng(0x5EED + shape.n);
        std::vector<std::uint8_t> data(shape.k);
        std::vector<std::uint8_t> spanOut(shape.n);
        for (unsigned trial = 0; trial < 5000; ++trial) {
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            const auto expected = ref.encode(data);
            ASSERT_EQ(rs.encode(data), expected);
            rs.encode(std::span<const std::uint8_t>(data),
                      std::span<std::uint8_t>(spanOut));
            ASSERT_EQ(spanOut, expected);
        }
    }
}

TEST(CodecEquivalence, RsIsValidCodewordMatchesSyndromeDefinition)
{
    const ReedSolomon rs(18, 16);
    const legacy::ReedSolomon ref(18, 16);
    Rng rng(0x15C0DE);
    for (unsigned trial = 0; trial < 20000; ++trial) {
        std::vector<std::uint8_t> word(rs.n());
        if (rng.bernoulli(0.5)) {
            // Half the probes are true codewords (possibly damaged).
            std::vector<std::uint8_t> data(rs.k());
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            word = rs.encode(data);
            if (rng.bernoulli(0.5))
                word[rng.below(rs.n())] ^=
                    static_cast<std::uint8_t>(rng.below(256));
        } else {
            for (auto &symbol : word)
                symbol = static_cast<std::uint8_t>(rng.below(256));
        }
        ASSERT_EQ(rs.isValidCodeword(std::span<const std::uint8_t>(word)),
                  ref.isCodeword(word));
        ASSERT_EQ(rs.isCodeword(word), ref.isCodeword(word));
    }
}

TEST(CodecEquivalence, CrcSliceTablesMatchByteAtATimeChain)
{
    const Crc8Atm code;
    Rng rng(0xC8C8C8);
    for (unsigned trial = 0; trial < 100000; ++trial) {
        const std::uint64_t data = rng.next();
        ASSERT_EQ(code.crc(data), legacy::crc8(data));
        Word72 word;
        word.lo = rng.next();
        word.hi = static_cast<std::uint8_t>(rng.next());
        ASSERT_EQ(code.syndrome(word), legacy::crcSyndrome(word));
    }
}

/** detectMany == a scalar isValidCodeword loop, for both on-die codes. */
template <typename Code>
void
checkDetectMany(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    std::array<Word72, 257> batch; // odd size: exercises partial tails
    for (unsigned round = 0; round < 200; ++round) {
        for (Word72 &word : batch) {
            // Mix clean words, lightly corrupted words and noise.
            word = clean;
            if (rng.bernoulli(0.7))
                word ^= randomPattern(rng, 1 + rng.below(8));
        }
        std::size_t expected = 0;
        for (const Word72 &word : batch)
            expected += !code.isValidCodeword(word);
        ASSERT_EQ(code.detectMany(std::span<const Word72>(batch)),
                  expected);
    }
}

TEST(CodecEquivalence, DetectManyMatchesScalarLoopHamming)
{
    checkDetectMany<Hamming7264>(0x4A11);
}

TEST(CodecEquivalence, DetectManyMatchesScalarLoopCrc8)
{
    checkDetectMany<Crc8Atm>(0xC4C4);
}

/** Every SIMD level this host can execute, Scalar first. */
std::vector<SimdLevel>
executableLevels()
{
    std::vector<SimdLevel> levels;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Neon, SimdLevel::Avx2,
          SimdLevel::Avx512})
        if (simdLevelSupported(level))
            levels.push_back(level);
    return levels;
}

/** Force a dispatch level for one scope; restores the previous one. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : prev_(simdLevel())
    {
        simdForceLevel(level, "test");
    }
    ~ScopedSimdLevel() { simdForceLevel(prev_, "test"); }
    ScopedSimdLevel(const ScopedSimdLevel &) = delete;
    ScopedSimdLevel &operator=(const ScopedSimdLevel &) = delete;

  private:
    SimdLevel prev_;
};

/**
 * detectMany through the real dispatch at every executable level, for
 * every batch size 1..513 and every element offset 0..3 into the pool
 * (word alignment 16 bytes, so offsets cover all head misalignments
 * relative to the 32/64-byte vector blocks). The reference count comes
 * from per-word isValidCodeword(), independent of any batch kernel.
 */
template <typename Code>
void
checkDetectManyAcrossLevels(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    constexpr std::size_t maxBatch = 513;
    constexpr std::size_t maxOffset = 3;
    std::vector<Word72> pool(maxBatch + maxOffset);
    const Word72 clean = code.encode(0xFEEDFACECAFEBEEFull);
    for (Word72 &word : pool) {
        word = clean;
        if (rng.bernoulli(0.6))
            word ^= randomPattern(rng, 1 + rng.below(8));
    }
    for (std::size_t offset = 0; offset <= maxOffset; ++offset) {
        // prefix[i] = invalid words among pool[offset .. offset+i).
        std::vector<std::size_t> prefix(maxBatch + 1, 0);
        for (std::size_t i = 0; i < maxBatch; ++i)
            prefix[i + 1] =
                prefix[i] + !code.isValidCodeword(pool[offset + i]);
        for (const SimdLevel level : executableLevels()) {
            const ScopedSimdLevel forced(level);
            for (std::size_t size = 1; size <= maxBatch; ++size)
                ASSERT_EQ(code.detectMany(std::span<const Word72>(
                              pool.data() + offset, size)),
                          prefix[size])
                    << simdLevelName(level) << " offset " << offset
                    << " size " << size;
        }
    }
}

TEST(CodecEquivalence, DetectManyIdenticalAcrossSimdLevelsHamming)
{
    checkDetectManyAcrossLevels<Hamming7264>(0x51AD1);
}

TEST(CodecEquivalence, DetectManyIdenticalAcrossSimdLevelsCrc8)
{
    checkDetectManyAcrossLevels<Crc8Atm>(0x51AD2);
}

/**
 * RS decode (the Chien search runs on the GF(2^8) mulConstXorInto
 * batch kernels) must return byte-identical words and statuses at
 * every dispatch level.
 */
TEST(CodecEquivalence, RsDecodeIdenticalAcrossSimdLevels)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        RsScratch scratch;
        Rng rng(0x51D5 + shape.n);
        std::vector<RsCase> cases;
        for (unsigned trial = 0; trial < 4000; ++trial)
            cases.push_back(makeCase(rng, rs));

        std::vector<std::vector<std::uint8_t>> scalarWords;
        std::vector<RsResult> scalarResults;
        {
            const ScopedSimdLevel forced(SimdLevel::Scalar);
            for (const RsCase &c : cases) {
                std::vector<std::uint8_t> word = c.received;
                scalarResults.push_back(rs.decode(
                    std::span<std::uint8_t>(word),
                    std::span<const unsigned>(c.erasures), scratch));
                scalarWords.push_back(std::move(word));
            }
        }
        for (const SimdLevel level : executableLevels()) {
            if (level == SimdLevel::Scalar)
                continue;
            const ScopedSimdLevel forced(level);
            for (std::size_t i = 0; i < cases.size(); ++i) {
                std::vector<std::uint8_t> word = cases[i].received;
                const RsResult result = rs.decode(
                    std::span<std::uint8_t>(word),
                    std::span<const unsigned>(cases[i].erasures),
                    scratch);
                ASSERT_EQ(static_cast<int>(result.status),
                          static_cast<int>(scalarResults[i].status))
                    << simdLevelName(level) << " case " << i;
                ASSERT_EQ(result.numErrors, scalarResults[i].numErrors);
                ASSERT_EQ(result.numErasures,
                          scalarResults[i].numErasures);
                ASSERT_EQ(word, scalarWords[i])
                    << simdLevelName(level) << " case " << i;
            }
        }
    }
}

/** Batched pattern fills must consume the RNG in scalar draw order. */
TEST(CodecEquivalence, BatchedPatternsPreserveDrawOrder)
{
    for (unsigned weight = 1; weight <= 8; ++weight) {
        Rng scalarRng(0xBA7C4 + weight);
        Rng batchRng(0xBA7C4 + weight);
        std::array<Word72, 777> batch;

        randomPatternsInto(batchRng, weight, std::span<Word72>(batch));
        for (const Word72 &pattern : batch)
            ASSERT_EQ(pattern, randomPattern(scalarRng, weight));
        ASSERT_EQ(batchRng.next(), scalarRng.next());

        solidBurstPatternsInto(batchRng, weight,
                               std::span<Word72>(batch));
        for (const Word72 &pattern : batch)
            ASSERT_EQ(pattern, solidBurstPattern(scalarRng, weight));
        ASSERT_EQ(batchRng.next(), scalarRng.next());

        if (weight >= 2) {
            burstPatternsInto(batchRng, weight, std::span<Word72>(batch));
            for (const Word72 &pattern : batch)
                ASSERT_EQ(pattern, burstPattern(scalarRng, weight));
            ASSERT_EQ(batchRng.next(), scalarRng.next());
        }
    }
}

} // namespace
} // namespace xed::ecc
