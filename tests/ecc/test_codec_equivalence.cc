/**
 * @file
 * Randomized equivalence suite for the codec kernel rewrite: the
 * table-driven, allocation-free scratch/batched kernels must return
 * byte-identical results to the frozen pre-optimization implementations
 * in tests/support/codec_reference.* -- same statuses, same corrected
 * words, same syndromes, same RNG draw order for the batched pattern
 * generators. The AcrossSimdLevels suites force every dispatch level
 * the host can execute (DESIGN.md section 4i) through the real
 * dispatch and demand the same bytes from each. Together with the
 * golden_table2 stdout fixture this pins the PR's bit-identicality
 * contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"
#include "ecc/reed_solomon.hh"
#include "tests/support/codec_reference.hh"

namespace xed::ecc
{
namespace
{

struct RsShape
{
    unsigned n;
    unsigned k;
};

constexpr RsShape shapes[] = {{18, 16}, {36, 32}, {15, 11}};

/** One random received word: codeword + random/burst/erasure damage. */
struct RsCase
{
    std::vector<std::uint8_t> received;
    std::vector<unsigned> erasures;
};

RsCase
makeCase(Rng &rng, const ReedSolomon &rs)
{
    const unsigned n = rs.n();
    const unsigned r = rs.numCheck();
    std::vector<std::uint8_t> data(rs.k());
    for (auto &symbol : data)
        symbol = static_cast<std::uint8_t>(rng.below(256));
    RsCase out;
    out.received = rs.encode(data);

    // Damage model: 0..r+1 corrupted symbols, placed randomly or as a
    // consecutive burst; a subset (sometimes superset) of the corrupted
    // positions is declared erased, so the suite exercises clean
    // words, errors-only, erasures-only, errors+erasures, mismatched
    // erasure declarations and beyond-capacity failures.
    const unsigned corrupt = static_cast<unsigned>(rng.below(r + 2));
    const bool burst = rng.bernoulli(0.5);
    const unsigned start =
        burst ? static_cast<unsigned>(rng.below(n)) : 0;
    for (unsigned c = 0; c < corrupt; ++c) {
        const unsigned pos =
            burst ? (start + c) % n
                  : static_cast<unsigned>(rng.below(n));
        out.received[pos] ^= static_cast<std::uint8_t>(rng.below(256));
        if (rng.bernoulli(0.5) && out.erasures.size() < r)
            out.erasures.push_back(pos);
    }
    if (rng.bernoulli(0.1) && out.erasures.size() < r)
        out.erasures.push_back(static_cast<unsigned>(rng.below(n)));
    return out;
}

TEST(CodecEquivalence, RsDecodeMatchesLegacyByteForByte)
{
    // >= 10^5 fuzz trials across the three shapes; every trial runs
    // the frozen legacy decoder, the vector wrapper and the explicit
    // scratch kernel and demands identical results from all three.
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const legacy::ReedSolomon ref(shape.n, shape.k);
        ASSERT_TRUE(rs.fitsScratch());
        Rng rng(0xEC0DEC + shape.n);
        RsScratch scratch;
        for (unsigned trial = 0; trial < 34000; ++trial) {
            const RsCase c = makeCase(rng, rs);

            std::vector<std::uint8_t> legacyWord = c.received;
            const RsResult legacyResult =
                ref.decode(legacyWord, c.erasures);

            std::vector<std::uint8_t> vectorWord = c.received;
            const RsResult vectorResult =
                rs.decode(vectorWord, c.erasures);

            std::vector<std::uint8_t> scratchWord = c.received;
            const RsResult scratchResult = rs.decode(
                std::span<std::uint8_t>(scratchWord),
                std::span<const unsigned>(c.erasures), scratch);

            ASSERT_EQ(static_cast<int>(vectorResult.status),
                      static_cast<int>(legacyResult.status));
            ASSERT_EQ(static_cast<int>(scratchResult.status),
                      static_cast<int>(legacyResult.status));
            ASSERT_EQ(vectorResult.numErrors, legacyResult.numErrors);
            ASSERT_EQ(scratchResult.numErrors, legacyResult.numErrors);
            ASSERT_EQ(vectorResult.numErasures,
                      legacyResult.numErasures);
            ASSERT_EQ(scratchResult.numErasures,
                      legacyResult.numErasures);
            ASSERT_EQ(vectorWord, legacyWord);
            ASSERT_EQ(scratchWord, legacyWord);
        }
    }
}

TEST(CodecEquivalence, RsEncodeMatchesLegacy)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const legacy::ReedSolomon ref(shape.n, shape.k);
        Rng rng(0x5EED + shape.n);
        std::vector<std::uint8_t> data(shape.k);
        std::vector<std::uint8_t> spanOut(shape.n);
        for (unsigned trial = 0; trial < 5000; ++trial) {
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            const auto expected = ref.encode(data);
            ASSERT_EQ(rs.encode(data), expected);
            rs.encode(std::span<const std::uint8_t>(data),
                      std::span<std::uint8_t>(spanOut));
            ASSERT_EQ(spanOut, expected);
        }
    }
}

TEST(CodecEquivalence, RsIsValidCodewordMatchesSyndromeDefinition)
{
    const ReedSolomon rs(18, 16);
    const legacy::ReedSolomon ref(18, 16);
    Rng rng(0x15C0DE);
    for (unsigned trial = 0; trial < 20000; ++trial) {
        std::vector<std::uint8_t> word(rs.n());
        if (rng.bernoulli(0.5)) {
            // Half the probes are true codewords (possibly damaged).
            std::vector<std::uint8_t> data(rs.k());
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            word = rs.encode(data);
            if (rng.bernoulli(0.5))
                word[rng.below(rs.n())] ^=
                    static_cast<std::uint8_t>(rng.below(256));
        } else {
            for (auto &symbol : word)
                symbol = static_cast<std::uint8_t>(rng.below(256));
        }
        ASSERT_EQ(rs.isValidCodeword(std::span<const std::uint8_t>(word)),
                  ref.isCodeword(word));
        ASSERT_EQ(rs.isCodeword(word), ref.isCodeword(word));
    }
}

TEST(CodecEquivalence, CrcSliceTablesMatchByteAtATimeChain)
{
    const Crc8Atm code;
    Rng rng(0xC8C8C8);
    for (unsigned trial = 0; trial < 100000; ++trial) {
        const std::uint64_t data = rng.next();
        ASSERT_EQ(code.crc(data), legacy::crc8(data));
        Word72 word;
        word.lo = rng.next();
        word.hi = static_cast<std::uint8_t>(rng.next());
        ASSERT_EQ(code.syndrome(word), legacy::crcSyndrome(word));
    }
}

/** detectMany == a scalar isValidCodeword loop, for both on-die codes. */
template <typename Code>
void
checkDetectMany(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    const Word72 clean = code.encode(0x0123456789ABCDEFull);
    std::array<Word72, 257> batch; // odd size: exercises partial tails
    for (unsigned round = 0; round < 200; ++round) {
        for (Word72 &word : batch) {
            // Mix clean words, lightly corrupted words and noise.
            word = clean;
            if (rng.bernoulli(0.7))
                word ^= randomPattern(rng, 1 + rng.below(8));
        }
        std::size_t expected = 0;
        for (const Word72 &word : batch)
            expected += !code.isValidCodeword(word);
        ASSERT_EQ(code.detectMany(std::span<const Word72>(batch)),
                  expected);
    }
}

TEST(CodecEquivalence, DetectManyMatchesScalarLoopHamming)
{
    checkDetectMany<Hamming7264>(0x4A11);
}

TEST(CodecEquivalence, DetectManyMatchesScalarLoopCrc8)
{
    checkDetectMany<Crc8Atm>(0xC4C4);
}

/** Every SIMD level this host can execute, Scalar first. */
std::vector<SimdLevel>
executableLevels()
{
    std::vector<SimdLevel> levels;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Neon, SimdLevel::Avx2,
          SimdLevel::Avx512})
        if (simdLevelSupported(level))
            levels.push_back(level);
    return levels;
}

/** Force a dispatch level for one scope; restores the previous one. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : prev_(simdLevel())
    {
        simdForceLevel(level, "test");
    }
    ~ScopedSimdLevel() { simdForceLevel(prev_, "test"); }
    ScopedSimdLevel(const ScopedSimdLevel &) = delete;
    ScopedSimdLevel &operator=(const ScopedSimdLevel &) = delete;

  private:
    SimdLevel prev_;
};

/**
 * detectMany through the real dispatch at every executable level, for
 * every batch size 1..513 and every element offset 0..3 into the pool
 * (word alignment 16 bytes, so offsets cover all head misalignments
 * relative to the 32/64-byte vector blocks). The reference count comes
 * from per-word isValidCodeword(), independent of any batch kernel.
 */
template <typename Code>
void
checkDetectManyAcrossLevels(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    constexpr std::size_t maxBatch = 513;
    constexpr std::size_t maxOffset = 3;
    std::vector<Word72> pool(maxBatch + maxOffset);
    const Word72 clean = code.encode(0xFEEDFACECAFEBEEFull);
    for (Word72 &word : pool) {
        word = clean;
        if (rng.bernoulli(0.6))
            word ^= randomPattern(rng, 1 + rng.below(8));
    }
    for (std::size_t offset = 0; offset <= maxOffset; ++offset) {
        // prefix[i] = invalid words among pool[offset .. offset+i).
        std::vector<std::size_t> prefix(maxBatch + 1, 0);
        for (std::size_t i = 0; i < maxBatch; ++i)
            prefix[i + 1] =
                prefix[i] + !code.isValidCodeword(pool[offset + i]);
        for (const SimdLevel level : executableLevels()) {
            const ScopedSimdLevel forced(level);
            for (std::size_t size = 1; size <= maxBatch; ++size)
                ASSERT_EQ(code.detectMany(std::span<const Word72>(
                              pool.data() + offset, size)),
                          prefix[size])
                    << simdLevelName(level) << " offset " << offset
                    << " size " << size;
        }
    }
}

TEST(CodecEquivalence, DetectManyIdenticalAcrossSimdLevelsHamming)
{
    checkDetectManyAcrossLevels<Hamming7264>(0x51AD1);
}

TEST(CodecEquivalence, DetectManyIdenticalAcrossSimdLevelsCrc8)
{
    checkDetectManyAcrossLevels<Crc8Atm>(0x51AD2);
}

/**
 * RS decode (the Chien search runs on the GF(2^8) mulConstXorInto
 * batch kernels) must return byte-identical words and statuses at
 * every dispatch level.
 */
TEST(CodecEquivalence, RsDecodeIdenticalAcrossSimdLevels)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        RsScratch scratch;
        Rng rng(0x51D5 + shape.n);
        std::vector<RsCase> cases;
        for (unsigned trial = 0; trial < 4000; ++trial)
            cases.push_back(makeCase(rng, rs));

        std::vector<std::vector<std::uint8_t>> scalarWords;
        std::vector<RsResult> scalarResults;
        {
            const ScopedSimdLevel forced(SimdLevel::Scalar);
            for (const RsCase &c : cases) {
                std::vector<std::uint8_t> word = c.received;
                scalarResults.push_back(rs.decode(
                    std::span<std::uint8_t>(word),
                    std::span<const unsigned>(c.erasures), scratch));
                scalarWords.push_back(std::move(word));
            }
        }
        for (const SimdLevel level : executableLevels()) {
            if (level == SimdLevel::Scalar)
                continue;
            const ScopedSimdLevel forced(level);
            for (std::size_t i = 0; i < cases.size(); ++i) {
                std::vector<std::uint8_t> word = cases[i].received;
                const RsResult result = rs.decode(
                    std::span<std::uint8_t>(word),
                    std::span<const unsigned>(cases[i].erasures),
                    scratch);
                ASSERT_EQ(static_cast<int>(result.status),
                          static_cast<int>(scalarResults[i].status))
                    << simdLevelName(level) << " case " << i;
                ASSERT_EQ(result.numErrors, scalarResults[i].numErrors);
                ASSERT_EQ(result.numErasures,
                          scalarResults[i].numErasures);
                ASSERT_EQ(word, scalarWords[i])
                    << simdLevelName(level) << " case " << i;
            }
        }
    }
}

/**
 * The RS SoA batch kernels (DESIGN.md section 4j) against the scalar
 * definition, through the real dispatch at every executable level: for
 * every block width 1..513 and head misalignment 0..3,
 * syndromesManySoa() must write the same bytes as per-word syndromes
 * (width-1 calls), and isValidCodewordMany() / countInvalidSoa() must
 * reproduce a per-word isValidCodeword() loop flag for flag.
 */
TEST(CodecEquivalence, RsSoaKernelsIdenticalAcrossSimdLevels)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const unsigned n = shape.n;
        const unsigned r = rs.numCheck();
        Rng rng(0x50AF + shape.n);
        constexpr std::size_t maxBatch = 513;
        constexpr std::size_t maxOffset = 3;
        const std::size_t poolSize = maxBatch + maxOffset;

        // AoS pool: codewords, most lightly damaged.
        std::vector<std::vector<std::uint8_t>> pool;
        pool.reserve(poolSize);
        std::vector<std::uint8_t> data(shape.k);
        for (std::size_t w = 0; w < poolSize; ++w) {
            for (auto &symbol : data)
                symbol = static_cast<std::uint8_t>(rng.below(256));
            std::vector<std::uint8_t> word = rs.encode(data);
            const unsigned corrupt =
                static_cast<unsigned>(rng.below(r + 2));
            for (unsigned c = 0; c < corrupt; ++c)
                word[rng.below(n)] ^=
                    static_cast<std::uint8_t>(rng.below(256));
            pool.push_back(std::move(word));
        }

        // Per-word references: validity flags from the public scalar
        // check, syndrome bytes from width-1 SoA calls at Scalar.
        std::vector<std::uint8_t> flagPool(poolSize);
        std::vector<std::uint8_t> synPool(poolSize * r);
        {
            const ScopedSimdLevel forced(SimdLevel::Scalar);
            for (std::size_t w = 0; w < poolSize; ++w) {
                flagPool[w] =
                    rs.isValidCodeword(
                        std::span<const std::uint8_t>(pool[w]))
                        ? 1
                        : 0;
                rs.syndromesManySoa(
                    std::span<const std::uint8_t>(pool[w]), 1,
                    std::span<std::uint8_t>(synPool.data() + w * r, r));
                bool zero = true;
                for (unsigned j = 0; j < r; ++j)
                    zero = zero && synPool[w * r + j] == 0;
                ASSERT_EQ(zero, flagPool[w] == 1) << "word " << w;
            }
        }

        std::vector<std::uint8_t> soaBuf, expectedSyn, syn, valid;
        for (std::size_t headOff = 0; headOff <= maxOffset; ++headOff) {
            for (std::size_t size = 1; size <= maxBatch; ++size) {
                soaBuf.assign(n * size + headOff, 0);
                std::uint8_t *soa = soaBuf.data() + headOff;
                for (std::size_t c = 0; c < size; ++c)
                    for (unsigned i = 0; i < n; ++i)
                        soa[i * size + c] = pool[headOff + c][i];
                expectedSyn.assign(static_cast<std::size_t>(r) * size,
                                   0);
                std::size_t expectedInvalid = 0;
                for (std::size_t c = 0; c < size; ++c) {
                    for (unsigned j = 0; j < r; ++j)
                        expectedSyn[j * size + c] =
                            synPool[(headOff + c) * r + j];
                    expectedInvalid += flagPool[headOff + c] == 0;
                }
                const std::span<const std::uint8_t> soaSpan(soa,
                                                            n * size);
                for (const SimdLevel level : executableLevels()) {
                    const ScopedSimdLevel forced(level);
                    syn.assign(expectedSyn.size(), 0xAA);
                    rs.syndromesManySoa(soaSpan, size,
                                        std::span<std::uint8_t>(syn));
                    ASSERT_EQ(syn, expectedSyn)
                        << simdLevelName(level) << " RS(" << n << ","
                        << shape.k << ") offset " << headOff
                        << " width " << size;
                    valid.assign(size, 0xAA);
                    ASSERT_EQ(rs.isValidCodewordMany(
                                  soaSpan, size,
                                  std::span<std::uint8_t>(valid)),
                              expectedInvalid);
                    ASSERT_TRUE(std::equal(valid.begin(), valid.end(),
                                           flagPool.begin() + headOff))
                        << simdLevelName(level) << " offset " << headOff
                        << " width " << size;
                    ASSERT_EQ(rs.countInvalidSoa(soaSpan, size),
                              expectedInvalid);
                }
            }
        }
    }
}

/**
 * RsWordBlock staging (both the push() and the openColumn()/setSymbol()
 * gather order) against the flat SoA overloads: the plane stride is the
 * capacity, not the size, so every partially filled block exercises the
 * strided kernel cores at every dispatch level.
 */
TEST(CodecEquivalence, RsWordBlockStagingMatchesFlatSoa)
{
    for (const RsShape shape : shapes) {
        const ReedSolomon rs(shape.n, shape.k);
        const unsigned n = shape.n;
        const unsigned r = rs.numCheck();
        Rng rng(0xB10C + shape.n);
        constexpr std::size_t capacity = 192;
        RsWordBlock pushed(n, capacity);
        RsWordBlock columns(n, capacity);
        ASSERT_EQ(pushed.stride(), capacity);
        for (const std::size_t size :
             {std::size_t{1}, std::size_t{7}, std::size_t{64},
              std::size_t{191}, capacity}) {
            pushed.clear();
            columns.clear();
            std::vector<std::vector<std::uint8_t>> words;
            words.reserve(size);
            for (std::size_t c = 0; c < size; ++c) {
                std::vector<std::uint8_t> word(n);
                if (rng.bernoulli(0.3)) {
                    // A true codeword, so valid lanes appear too.
                    std::vector<std::uint8_t> data(shape.k);
                    for (auto &symbol : data)
                        symbol =
                            static_cast<std::uint8_t>(rng.below(256));
                    word = rs.encode(data);
                } else {
                    for (auto &symbol : word)
                        symbol =
                            static_cast<std::uint8_t>(rng.below(256));
                }
                ASSERT_EQ(pushed.push(
                              std::span<const std::uint8_t>(word)),
                          c);
                ASSERT_EQ(columns.openColumn(), c);
                for (unsigned i = 0; i < n; ++i)
                    columns.setSymbol(i, c, word[i]);
                words.push_back(std::move(word));
            }
            ASSERT_EQ(pushed.size(), size);
            ASSERT_EQ(columns.size(), size);
            for (std::size_t c = 0; c < size; ++c)
                for (unsigned i = 0; i < n; ++i) {
                    ASSERT_EQ(pushed.symbol(i, c), words[c][i]);
                    ASSERT_EQ(columns.symbol(i, c), words[c][i]);
                }

            // Flat SoA reference, computed once at the Scalar level.
            std::vector<std::uint8_t> soa(n * size);
            for (std::size_t c = 0; c < size; ++c)
                for (unsigned i = 0; i < n; ++i)
                    soa[i * size + c] = words[c][i];
            std::vector<std::uint8_t> expectedSyn(
                static_cast<std::size_t>(r) * size);
            std::vector<std::uint8_t> expectedValid(size);
            std::size_t expectedInvalid = 0;
            {
                const ScopedSimdLevel forced(SimdLevel::Scalar);
                rs.syndromesManySoa(
                    std::span<const std::uint8_t>(soa), size,
                    std::span<std::uint8_t>(expectedSyn));
                expectedInvalid = rs.isValidCodewordMany(
                    std::span<const std::uint8_t>(soa), size,
                    std::span<std::uint8_t>(expectedValid));
            }

            std::vector<std::uint8_t> syn(expectedSyn.size());
            std::vector<std::uint8_t> valid(size);
            for (const SimdLevel level : executableLevels()) {
                const ScopedSimdLevel forced(level);
                for (const RsWordBlock *block : {&pushed, &columns}) {
                    syn.assign(expectedSyn.size(), 0xAA);
                    rs.syndromesManySoa(*block,
                                        std::span<std::uint8_t>(syn));
                    ASSERT_EQ(syn, expectedSyn)
                        << simdLevelName(level) << " RS(" << n << ","
                        << shape.k << ") size " << size;
                    valid.assign(size, 0xAA);
                    ASSERT_EQ(rs.isValidCodewordMany(
                                  *block,
                                  std::span<std::uint8_t>(valid)),
                              expectedInvalid);
                    ASSERT_EQ(valid, expectedValid);
                }
            }
        }
    }
}

/**
 * The batched catch-word syndrome kernel over transposed byte planes
 * (DESIGN.md section 4j) against the per-word syndrome() definition:
 * every width 1..513, head misalignments 0..3 and a plane stride wider
 * than any batch, at every executable dispatch level.
 */
template <typename Code>
void
checkSyndromeManySoaAcrossLevels(std::uint64_t seed)
{
    const Code code;
    Rng rng(seed);
    constexpr std::size_t maxBatch = 513;
    constexpr std::size_t maxOffset = 3;
    constexpr std::size_t stride = maxBatch + maxOffset;
    std::vector<std::uint8_t> planes(9 * stride);
    std::vector<std::uint8_t> expected(stride);
    const Word72 clean = code.encode(0xFEEDFACECAFEBEEFull);
    for (std::size_t c = 0; c < stride; ++c) {
        Word72 word = clean;
        if (rng.bernoulli(0.6))
            word ^= randomPattern(rng, 1 + rng.below(8));
        for (unsigned b = 0; b < 8; ++b)
            planes[b * stride + c] =
                static_cast<std::uint8_t>(word.lo >> (8 * b));
        planes[8 * stride + c] = word.hi;
        expected[c] = code.syndrome(word);
    }
    std::vector<std::uint8_t> out(maxBatch);
    for (std::size_t offset = 0; offset <= maxOffset; ++offset)
        for (const SimdLevel level : executableLevels()) {
            const ScopedSimdLevel forced(level);
            for (std::size_t size = 1; size <= maxBatch; ++size) {
                out.assign(size, 0xAA);
                code.syndromeManySoa(planes.data() + offset, stride,
                                     size, out.data());
                ASSERT_TRUE(std::equal(out.begin(), out.end(),
                                       expected.begin() + offset))
                    << simdLevelName(level) << " offset " << offset
                    << " size " << size;
            }
        }
}

TEST(CodecEquivalence, CatchWordSyndromeSoaIdenticalAcrossSimdLevelsCrc8)
{
    checkSyndromeManySoaAcrossLevels<Crc8Atm>(0x50AC1);
}

TEST(CodecEquivalence,
     CatchWordSyndromeSoaIdenticalAcrossSimdLevelsHamming)
{
    checkSyndromeManySoaAcrossLevels<Hamming7264>(0x50AC2);
}

/** Batched pattern fills must consume the RNG in scalar draw order. */
TEST(CodecEquivalence, BatchedPatternsPreserveDrawOrder)
{
    for (unsigned weight = 1; weight <= 8; ++weight) {
        Rng scalarRng(0xBA7C4 + weight);
        Rng batchRng(0xBA7C4 + weight);
        std::array<Word72, 777> batch;

        randomPatternsInto(batchRng, weight, std::span<Word72>(batch));
        for (const Word72 &pattern : batch)
            ASSERT_EQ(pattern, randomPattern(scalarRng, weight));
        ASSERT_EQ(batchRng.next(), scalarRng.next());

        solidBurstPatternsInto(batchRng, weight,
                               std::span<Word72>(batch));
        for (const Word72 &pattern : batch)
            ASSERT_EQ(pattern, solidBurstPattern(scalarRng, weight));
        ASSERT_EQ(batchRng.next(), scalarRng.next());

        if (weight >= 2) {
            burstPatternsInto(batchRng, weight, std::span<Word72>(batch));
            for (const Word72 &pattern : batch)
                ASSERT_EQ(pattern, burstPattern(scalarRng, weight));
            ASSERT_EQ(batchRng.next(), scalarRng.next());
        }
    }
}

} // namespace
} // namespace xed::ecc
