#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "ecc/parity_raid3.hh"

namespace xed::ecc
{
namespace
{

TEST(ParityRaid3, Equation1Holds)
{
    // Parity XOR all data words == 0 (Equation 1 of the paper).
    Rng rng(1);
    std::array<std::uint64_t, 8> words{};
    for (auto &w : words)
        w = rng.next();
    const auto parity = computeParity(words);
    std::uint64_t acc = parity;
    for (const auto w : words)
        acc ^= w;
    EXPECT_EQ(acc, 0u);
    EXPECT_TRUE(paritySatisfied(words, parity));
}

TEST(ParityRaid3, MismatchDetected)
{
    Rng rng(2);
    std::array<std::uint64_t, 8> words{};
    for (auto &w : words)
        w = rng.next();
    const auto parity = computeParity(words);
    words[3] ^= 0x10; // single corrupted word
    EXPECT_FALSE(paritySatisfied(words, parity));
}

TEST(ParityRaid3, ReconstructsEveryChipPosition)
{
    // Equation 3: solve for D_i from parity and the other seven words.
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        std::array<std::uint64_t, 8> words{};
        for (auto &w : words)
            w = rng.next();
        const auto parity = computeParity(words);
        for (std::size_t erased = 0; erased < words.size(); ++erased) {
            auto garbled = words;
            garbled[erased] = rng.next(); // catch-word / garbage
            EXPECT_EQ(reconstructErased(garbled, parity, erased),
                      words[erased]);
        }
    }
}

TEST(ParityRaid3, ParityOfZeroWordsIsZero)
{
    std::array<std::uint64_t, 8> words{};
    EXPECT_EQ(computeParity(words), 0u);
    EXPECT_TRUE(paritySatisfied(words, 0));
}

TEST(ParityRaid3, CollisionReconstructionIsIdempotent)
{
    // Section V-D: if a data word happens to equal the catch-word, XED
    // "corrects" it anyway; reconstruction must reproduce that same
    // value, making the collision harmless.
    Rng rng(4);
    std::array<std::uint64_t, 8> words{};
    for (auto &w : words)
        w = rng.next();
    const std::uint64_t catchWord = words[5]; // stored value == catch-word
    const auto parity = computeParity(words);
    EXPECT_EQ(reconstructErased(words, parity, 5), catchWord);
}

} // namespace
} // namespace xed::ecc
