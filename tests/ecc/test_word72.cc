#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/word72.hh"

namespace xed::ecc
{
namespace
{

TEST(Word72, BitAccessAcrossTheLoHiBoundary)
{
    Word72 w;
    for (unsigned pos : {0u, 1u, 31u, 63u, 64u, 65u, 71u}) {
        EXPECT_EQ(w.bit(pos), 0);
        w.setBitTo(pos, 1);
        EXPECT_EQ(w.bit(pos), 1) << pos;
        w.setBitTo(pos, 0);
        EXPECT_EQ(w.bit(pos), 0) << pos;
    }
}

TEST(Word72, FlipTwiceIsIdentity)
{
    Rng rng(1);
    Word72 w{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
    const Word72 original = w;
    for (unsigned pos = 0; pos < codeLength; ++pos) {
        w.flip(pos);
        EXPECT_FALSE(w == original);
        w.flip(pos);
        EXPECT_TRUE(w == original);
    }
}

TEST(Word72, WeightCountsBothHalves)
{
    Word72 w;
    EXPECT_EQ(w.weight(), 0);
    EXPECT_TRUE(w.isZero());
    w.setBitTo(3, 1);
    w.setBitTo(70, 1);
    EXPECT_EQ(w.weight(), 2);
    EXPECT_FALSE(w.isZero());
    w.lo = ~std::uint64_t{0};
    w.hi = 0xFF;
    EXPECT_EQ(w.weight(), 72);
}

TEST(Word72, XorIsBitwiseAndSelfInverse)
{
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        Word72 a{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        Word72 b{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        const Word72 c = a ^ b;
        for (unsigned pos = 0; pos < codeLength; ++pos)
            EXPECT_EQ(c.bit(pos), a.bit(pos) ^ b.bit(pos));
        Word72 back = c;
        back ^= b;
        EXPECT_TRUE(back == a);
    }
}

TEST(Word72, Constants)
{
    EXPECT_EQ(codeLength, 72u);
    EXPECT_EQ(dataLength, 64u);
    EXPECT_EQ(checkLength, 8u);
}

} // namespace
} // namespace xed::ecc
