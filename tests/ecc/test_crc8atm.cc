#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/crc8atm.hh"

namespace xed::ecc
{
namespace
{

class Crc8AtmTest : public ::testing::Test
{
  protected:
    Crc8Atm code;
};

TEST_F(Crc8AtmTest, EncodeRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        const Word72 word = code.encode(data);
        EXPECT_TRUE(code.isValidCodeword(word));
        EXPECT_EQ(code.extractData(word), data);
        const auto result = code.decode(word);
        EXPECT_EQ(result.status, DecodeStatus::NoError);
        EXPECT_EQ(result.data, data);
    }
}

TEST_F(Crc8AtmTest, KnownCrcOfZeroIsZero)
{
    EXPECT_EQ(code.crc(0), 0);
    const Word72 zero = code.encode(0);
    EXPECT_EQ(zero.lo, 0u);
    EXPECT_EQ(zero.hi, 0u);
}

TEST_F(Crc8AtmTest, CorrectsEverySingleBitError)
{
    Rng rng(2);
    const std::uint64_t data = rng.next();
    const Word72 word = code.encode(data);
    for (unsigned pos = 0; pos < codeLength; ++pos) {
        Word72 corrupted = word;
        corrupted.flip(pos);
        const auto result = code.decode(corrupted);
        EXPECT_EQ(result.status, DecodeStatus::CorrectedSingle) << pos;
        EXPECT_EQ(result.data, data) << pos;
    }
}

TEST_F(Crc8AtmTest, DetectsEveryDoubleBitError)
{
    // (x+1) | g(x) plus distinct single-bit syndromes make the code a
    // true SECDED over 72 bits.
    Rng rng(3);
    const std::uint64_t data = rng.next();
    const Word72 word = code.encode(data);
    for (unsigned a = 0; a < codeLength; ++a) {
        for (unsigned b = a + 1; b < codeLength; ++b) {
            Word72 corrupted = word;
            corrupted.flip(a);
            corrupted.flip(b);
            const auto result = code.decode(corrupted);
            EXPECT_EQ(result.status, DecodeStatus::DetectedUncorrectable)
                << a << "," << b;
        }
    }
}

TEST_F(Crc8AtmTest, DetectsAllSolidBurstsUpTo8)
{
    // Table II: CRC8-ATM has a 100% detection rate for burst errors --
    // any error confined to <= 8 consecutive positions leaves a nonzero
    // remainder because deg g = 8.
    Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        const Word72 word = code.encode(rng.next());
        for (unsigned len = 1; len <= 8; ++len) {
            for (unsigned start = 0; start + len <= codeLength; ++start) {
                Word72 corrupted = word;
                for (unsigned i = 0; i < len; ++i)
                    corrupted.flip(start + i);
                EXPECT_FALSE(code.isValidCodeword(corrupted))
                    << "len=" << len << " start=" << start;
            }
        }
    }
}

TEST_F(Crc8AtmTest, DetectsAllPatternsWithinAnyWindowOf8)
{
    // Stronger burst property: *any* nonzero pattern within an 8-wide
    // window is detected, not just solid flips.
    Rng rng(5);
    const Word72 word = code.encode(rng.next());
    for (int trial = 0; trial < 5000; ++trial) {
        const unsigned start =
            static_cast<unsigned>(rng.below(codeLength - 8 + 1));
        const unsigned pattern = 1 + static_cast<unsigned>(rng.below(255));
        Word72 corrupted = word;
        for (unsigned i = 0; i < 8; ++i)
            if ((pattern >> i) & 1)
                corrupted.flip(start + i);
        EXPECT_FALSE(code.isValidCodeword(corrupted));
    }
}

TEST_F(Crc8AtmTest, DetectsAllOddWeightErrors)
{
    // (x+1) divides g(x) = x^8+x^2+x+1, so every odd-weight error is
    // detected (Table II rows 3, 5, 7 at 100%).
    Rng rng(6);
    const Word72 word = code.encode(rng.next());
    for (int trial = 0; trial < 5000; ++trial) {
        const unsigned weight = 2 * static_cast<unsigned>(rng.below(4)) + 1;
        Word72 corrupted = word;
        unsigned flipped = 0;
        while (flipped < weight) {
            const unsigned pos =
                static_cast<unsigned>(rng.below(codeLength));
            if (corrupted.bit(pos) == word.bit(pos)) {
                corrupted.flip(pos);
                ++flipped;
            }
        }
        EXPECT_FALSE(code.isValidCodeword(corrupted)) << weight;
    }
}

TEST_F(Crc8AtmTest, SyndromeMatchesBruteForcePolynomialDivision)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        Word72 w{rng.next(), static_cast<std::uint8_t>(rng.below(256))};
        // Brute-force remainder of the 72-bit polynomial mod g(x).
        std::uint8_t rem = 0;
        for (int pos = static_cast<int>(codeLength) - 1; pos >= 0; --pos) {
            const int carry = (rem & 0x80) ? 1 : 0;
            rem = static_cast<std::uint8_t>((rem << 1) |
                                            (w.bit(pos) ? 1 : 0));
            if (carry)
                rem ^= Crc8Atm::poly;
        }
        EXPECT_EQ(code.syndrome(w), rem);
    }
}

} // namespace
} // namespace xed::ecc
