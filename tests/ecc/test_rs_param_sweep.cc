/**
 * Parameterized Reed-Solomon sweep: correction capacity across code
 * shapes. For every (n, k) and every (errors, erasures) load, decoding
 * must succeed iff 2*errors + erasures <= n - k, and a claimed success
 * must restore the exact codeword.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace xed::ecc
{
namespace
{

using Shape = std::pair<unsigned, unsigned>;
using Param = std::tuple<Shape, unsigned /*errors*/, unsigned /*erasures*/>;

class RsSweep : public ::testing::TestWithParam<Param>
{
};

TEST_P(RsSweep, CapacityBoundaryHolds)
{
    const auto [shape, errors, erasures] = GetParam();
    const auto [n, k] = shape;
    if (errors + erasures > n - k + 2)
        GTEST_SKIP() << "load not meaningful for this shape";

    ReedSolomon rs(n, k);
    Rng rng(0x525 + n * 1000 + errors * 10 + erasures);
    const bool withinCapacity =
        2 * errors + erasures <= rs.numCheck();

    int failures = 0;
    int wrongCorrections = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
        std::vector<std::uint8_t> data(k);
        for (auto &d : data)
            d = static_cast<std::uint8_t>(rng.below(256));
        const auto clean = rs.encode(data);
        auto word = clean;

        // Choose distinct positions; the first `erasures` of them are
        // declared, the rest are silent errors.
        std::vector<unsigned> positions;
        while (positions.size() < errors + erasures) {
            const auto p = static_cast<unsigned>(rng.below(n));
            bool dup = false;
            for (const auto q : positions)
                dup |= (q == p);
            if (!dup)
                positions.push_back(p);
        }
        for (const auto p : positions)
            word[p] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        const std::vector<unsigned> declared(
            positions.begin(), positions.begin() + erasures);

        const auto result = rs.decode(word, declared);
        if (withinCapacity) {
            ASSERT_NE(result.status, RsStatus::Failure)
                << "n=" << n << " k=" << k << " e=" << errors
                << " s=" << erasures;
            EXPECT_EQ(word, clean);
        } else {
            if (result.status == RsStatus::Failure)
                ++failures;
            else if (word != clean)
                ++wrongCorrections;
        }
    }
    if (!withinCapacity) {
        if (erasures > rs.numCheck()) {
            // More declared erasures than check symbols: the decoder
            // must refuse outright.
            EXPECT_EQ(failures, trials);
        } else if (erasures == rs.numCheck()) {
            // Full erasure budget leaves no residual syndrome: silent
            // excess errors are *always* mapped onto some (wrong)
            // codeword -- the fundamental reason XED must bound the
            // number of catch-words it trusts (Section IX).
            EXPECT_EQ(wrongCorrections + failures, trials);
            EXPECT_GT(wrongCorrections, 0);
        } else {
            // With syndrome slack, the decoder must mostly *detect*
            // failure; mis-corrections are information-theoretically
            // unavoidable but must be a small minority.
            EXPECT_GT(failures, trials / 2)
                << "errors=" << errors << " erasures=" << erasures;
            EXPECT_LT(wrongCorrections, trials / 3);
        }
    }
}

std::string
sweepName(const ::testing::TestParamInfo<Param> &info)
{
    const auto shape = std::get<0>(info.param);
    return "n" + std::to_string(shape.first) + "k" +
           std::to_string(shape.second) + "e" +
           std::to_string(std::get<1>(info.param)) + "s" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsSweep,
    ::testing::Combine(
        ::testing::Values(Shape{18, 16}, Shape{36, 32}, Shape{15, 11},
                          Shape{255, 223}),
        ::testing::Values(0u, 1u, 2u, 3u),
        ::testing::Values(0u, 1u, 2u, 3u, 4u)),
    sweepName);

} // namespace
} // namespace xed::ecc
