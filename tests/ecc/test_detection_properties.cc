/**
 * Property-style sweep over error weights comparing the two SECDED
 * candidates, mirroring Table II of the paper in miniature. The full
 * harness lives in bench/table2_detection_rates.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"

namespace xed::ecc
{
namespace
{

enum class CodeKind { Hamming, Crc8Atm };
enum class PatternKind { Random, SolidBurst };

using Param = std::tuple<CodeKind, PatternKind, unsigned /*weight*/>;

class DetectionSweep : public ::testing::TestWithParam<Param>
{
  protected:
    static std::unique_ptr<Secded7264>
    makeCode(CodeKind kind)
    {
        if (kind == CodeKind::Hamming)
            return std::make_unique<Hamming7264>();
        return std::make_unique<Crc8Atm>();
    }

    /** Fraction of injected patterns flagged as invalid codewords. */
    static double
    detectionRate(const Secded7264 &code, PatternKind pattern,
                  unsigned weight, int trials)
    {
        Rng rng(0xC0FFEE + weight);
        const Word72 clean = code.encode(0x0123456789ABCDEFull);
        int detected = 0;
        for (int i = 0; i < trials; ++i) {
            const Word72 err = pattern == PatternKind::Random
                                   ? randomPattern(rng, weight)
                                   : solidBurstPattern(rng, weight);
            if (!code.isValidCodeword(clean ^ err))
                ++detected;
        }
        return static_cast<double>(detected) / trials;
    }
};

TEST_P(DetectionSweep, MatchesTable2Band)
{
    const auto [kind, pattern, weight] = GetParam();
    const auto code = makeCode(kind);
    const double rate = detectionRate(*code, pattern, weight, 20000);

    // Table II expectations:
    //  - weights 1..3 and odd weights: 100% for both codes.
    //  - CRC8-ATM bursts: 100% for any length <= 8.
    //  - CRC8-ATM even random weights: ~99.2%.
    //  - Hamming solid bursts of 4/8: ~50.7%.
    //  - Hamming even random weights: >= 98%.
    if (weight <= 3 || weight % 2 == 1) {
        EXPECT_DOUBLE_EQ(rate, 1.0);
        return;
    }
    if (kind == CodeKind::Crc8Atm) {
        if (pattern == PatternKind::SolidBurst) {
            EXPECT_DOUBLE_EQ(rate, 1.0);
        } else {
            EXPECT_NEAR(rate, 0.9922, 0.005);
        }
        return;
    }
    // Hamming, even weight >= 4.
    if (pattern == PatternKind::SolidBurst) {
        // Table II: bursts of 4 and 8 alias to codewords about half the
        // time with natural column ordering; bursts of 6 never do.
        if (weight == 6) {
            EXPECT_DOUBLE_EQ(rate, 1.0);
        } else {
            EXPECT_NEAR(rate, 0.507, 0.03);
        }
    } else {
        EXPECT_GT(rate, 0.97);
        EXPECT_LT(rate, 1.0);
    }
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name =
        std::get<0>(info.param) == CodeKind::Hamming ? "Hamming"
                                                     : "Crc8Atm";
    name += std::get<1>(info.param) == PatternKind::Random ? "Random"
                                                           : "Burst";
    name += std::to_string(std::get<2>(info.param));
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DetectionSweep,
    ::testing::Combine(
        ::testing::Values(CodeKind::Hamming, CodeKind::Crc8Atm),
        ::testing::Values(PatternKind::Random, PatternKind::SolidBurst),
        ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)),
    paramName);

} // namespace
} // namespace xed::ecc
