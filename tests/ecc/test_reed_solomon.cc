#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace xed::ecc
{
namespace
{

std::vector<std::uint8_t>
randomData(Rng &rng, unsigned k)
{
    std::vector<std::uint8_t> data(k);
    for (auto &d : data)
        d = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

/** Corrupt @p count distinct symbols with nonzero deltas. */
std::vector<unsigned>
corrupt(Rng &rng, std::vector<std::uint8_t> &word, unsigned count)
{
    std::vector<unsigned> positions;
    while (positions.size() < count) {
        const auto p = static_cast<unsigned>(rng.below(word.size()));
        bool dup = false;
        for (const auto q : positions)
            dup |= (q == p);
        if (dup)
            continue;
        word[p] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        positions.push_back(p);
    }
    return positions;
}

TEST(ReedSolomon, RejectsBadParameters)
{
    EXPECT_THROW(ReedSolomon(300, 10), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(10, 10), std::invalid_argument);
    EXPECT_THROW(ReedSolomon(10, 0), std::invalid_argument);
}

TEST(ReedSolomon, EncodeProducesCodeword)
{
    Rng rng(1);
    for (const auto &[n, k] :
         {std::pair{18u, 16u}, {36u, 32u}, {255u, 223u}, {9u, 5u}}) {
        ReedSolomon rs(n, k);
        for (int i = 0; i < 20; ++i) {
            const auto data = randomData(rng, k);
            const auto word = rs.encode(data);
            ASSERT_EQ(word.size(), n);
            EXPECT_TRUE(rs.isCodeword(word));
            // Systematic: data symbols come through unchanged.
            for (unsigned j = 0; j < k; ++j)
                EXPECT_EQ(word[j], data[j]);
        }
    }
}

TEST(ReedSolomon, NoErrorDecode)
{
    Rng rng(2);
    ReedSolomon rs(18, 16);
    auto word = rs.encode(randomData(rng, 16));
    const auto result = rs.decode(word);
    EXPECT_EQ(result.status, RsStatus::NoError);
}

TEST(ReedSolomon, Chipkill1816CorrectsAnySingleSymbol)
{
    // RS(18,16): the paper's commercial Chipkill arrangement -- 16 data
    // chips, 2 check chips, corrects one faulty chip.
    Rng rng(3);
    ReedSolomon rs(18, 16);
    for (int trial = 0; trial < 500; ++trial) {
        const auto data = randomData(rng, 16);
        const auto clean = rs.encode(data);
        auto word = clean;
        corrupt(rng, word, 1);
        const auto result = rs.decode(word);
        ASSERT_EQ(result.status, RsStatus::Corrected);
        EXPECT_EQ(result.numErrors, 1u);
        EXPECT_EQ(word, clean);
    }
}

TEST(ReedSolomon, Chipkill1816DoubleErrorMostlyDetected)
{
    // Two unknown-position symbol errors exceed t=1. With only two
    // check symbols (distance 3), the locator aliases to a valid
    // position for ~18/255 of random double errors, so a small
    // mis-correction rate is inherent -- exactly the weakness that
    // catch-word *erasure* location removes (Section IX).
    Rng rng(4);
    ReedSolomon rs(18, 16);
    int failures = 0;
    int miscorrected = 0;
    const int trials = 1000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto data = randomData(rng, 16);
        const auto clean = rs.encode(data);
        auto word = clean;
        corrupt(rng, word, 2);
        const auto result = rs.decode(word);
        if (result.status == RsStatus::Corrected)
            miscorrected += (word != clean) ? 1 : 0;
        else
            ++failures;
    }
    EXPECT_GT(failures, trials * 8 / 10);
    // ~7% alias rate; allow generous slack either side.
    EXPECT_GT(miscorrected, trials * 2 / 100);
    EXPECT_LT(miscorrected, trials * 15 / 100);
}

TEST(ReedSolomon, XedOnChipkillCorrectsTwoErasures)
{
    // Section IX: XED on top of Chipkill -- catch-words locate up to two
    // faulty chips, the two check symbols rebuild them (erasure mode).
    Rng rng(5);
    ReedSolomon rs(18, 16);
    for (int trial = 0; trial < 500; ++trial) {
        const auto data = randomData(rng, 16);
        const auto clean = rs.encode(data);
        auto word = clean;
        const auto positions = corrupt(rng, word, 2);
        const auto result = rs.decode(word, positions);
        ASSERT_EQ(result.status, RsStatus::Corrected) << trial;
        EXPECT_EQ(result.numErasures, 2u);
        EXPECT_EQ(word, clean);
    }
}

TEST(ReedSolomon, ErasedButCleanSymbolsStillDecode)
{
    // A chip that sends a catch-word due to an on-die *corrected* error
    // delivers no data error; erasure decode must still succeed.
    Rng rng(6);
    ReedSolomon rs(18, 16);
    const auto clean = rs.encode(randomData(rng, 16));
    auto word = clean;
    word[3] ^= 0x5A; // one real error...
    const auto result = rs.decode(word, {3u, 11u}); // ...one clean erasure
    ASSERT_EQ(result.status, RsStatus::Corrected);
    EXPECT_EQ(word, clean);
}

TEST(ReedSolomon, DoubleChipkill3632CorrectsTwoRandomErrors)
{
    // RS(36,32): Double-Chipkill corrects two faulty chips without
    // location hints.
    Rng rng(7);
    ReedSolomon rs(36, 32);
    for (int trial = 0; trial < 300; ++trial) {
        const auto data = randomData(rng, 32);
        const auto clean = rs.encode(data);
        auto word = clean;
        corrupt(rng, word, 2);
        const auto result = rs.decode(word);
        ASSERT_EQ(result.status, RsStatus::Corrected) << trial;
        EXPECT_EQ(result.numErrors, 2u);
        EXPECT_EQ(word, clean);
    }
}

TEST(ReedSolomon, DoubleChipkill3632TripleErrorFails)
{
    Rng rng(8);
    ReedSolomon rs(36, 32);
    int bad = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto clean = rs.encode(randomData(rng, 32));
        auto word = clean;
        corrupt(rng, word, 3);
        const auto result = rs.decode(word);
        if (result.status == RsStatus::Corrected && word != clean)
            ++bad;
    }
    // Silent mis-correction of 3 errors must be rare; claimed successes
    // must be genuine. (A t=2 code can mis-correct some 3-error
    // patterns; they must not dominate.)
    EXPECT_LT(bad, 30);
}

TEST(ReedSolomon, ErrorsAndErasuresCombined)
{
    // 2nu + e <= n-k: RS(36,32) can fix 1 error + 2 erasures.
    Rng rng(9);
    ReedSolomon rs(36, 32);
    for (int trial = 0; trial < 200; ++trial) {
        const auto clean = rs.encode(randomData(rng, 32));
        auto word = clean;
        const auto positions = corrupt(rng, word, 3);
        const std::vector<unsigned> erasures{positions[0], positions[1]};
        const auto result = rs.decode(word, erasures);
        ASSERT_EQ(result.status, RsStatus::Corrected) << trial;
        EXPECT_EQ(word, clean);
    }
}

TEST(ReedSolomon, FourErasuresWithFourCheckSymbols)
{
    Rng rng(10);
    ReedSolomon rs(36, 32);
    for (int trial = 0; trial < 200; ++trial) {
        const auto clean = rs.encode(randomData(rng, 32));
        auto word = clean;
        const auto positions = corrupt(rng, word, 4);
        const auto result = rs.decode(word, positions);
        ASSERT_EQ(result.status, RsStatus::Corrected) << trial;
        EXPECT_EQ(word, clean);
    }
}

TEST(ReedSolomon, TooManyErasuresFails)
{
    Rng rng(11);
    ReedSolomon rs(18, 16);
    auto word = rs.encode(randomData(rng, 16));
    corrupt(rng, word, 3);
    const auto result = rs.decode(word, {0u, 1u, 2u});
    EXPECT_EQ(result.status, RsStatus::Failure);
}

TEST(ReedSolomon, DecodeRejectsWrongLength)
{
    ReedSolomon rs(18, 16);
    std::vector<std::uint8_t> bad(17, 0);
    EXPECT_THROW(rs.decode(bad), std::invalid_argument);
}

} // namespace
} // namespace xed::ecc
