#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/chip.hh"
#include "ecc/crc8atm.hh"
#include "ecc/hamming7264.hh"

namespace xed::dram
{
namespace
{

class ChipTest : public ::testing::Test
{
  protected:
    ChipGeometry g;
    ecc::Crc8Atm code;
    Chip chip{g, code, 0xABCD};
};

TEST_F(ChipTest, WriteReadRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const WordAddr addr{
            static_cast<unsigned>(rng.below(g.banks())),
            static_cast<unsigned>(rng.below(g.rowsPerBank())),
            static_cast<unsigned>(rng.below(g.colsPerRow()))};
        const std::uint64_t data = rng.next();
        chip.write(addr, data);
        const auto r = chip.read(addr);
        EXPECT_EQ(r.value, data);
        EXPECT_FALSE(r.sentCatchWord);
        EXPECT_EQ(r.internalStatus, ecc::DecodeStatus::NoError);
    }
}

TEST_F(ChipTest, BackgroundPatternIsDeterministicAndValid)
{
    const WordAddr addr{1, 2, 3};
    const auto a = chip.read(addr);
    const auto b = chip.read(addr);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.internalStatus, ecc::DecodeStatus::NoError);
    EXPECT_EQ(a.value, chip.expectedData(addr));
    // Different addresses yield different background data.
    const auto c = chip.read({1, 2, 4});
    EXPECT_NE(a.value, c.value);
}

TEST_F(ChipTest, OnDieEccCorrectsSingleBitSilentlyWhenXedDisabled)
{
    const WordAddr addr{0, 10, 20};
    chip.write(addr, 0x1122334455667788ull);
    Fault f;
    f.granularity = FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr;
    f.bitPos = 30;
    chip.faults().add(f);

    chip.setXedEnable(false);
    const auto r = chip.read(addr);
    EXPECT_EQ(r.value, 0x1122334455667788ull);
    EXPECT_FALSE(r.sentCatchWord);
    EXPECT_EQ(r.internalStatus, ecc::DecodeStatus::CorrectedSingle);
}

TEST_F(ChipTest, DcMuxSendsCatchWordOnCorrection)
{
    // Figure 3: with XED-Enable set, even a *corrected* error replaces
    // data with the catch-word.
    const WordAddr addr{0, 10, 21};
    chip.write(addr, 0xAABBCCDDEEFF0011ull);
    Fault f;
    f.granularity = FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr;
    f.bitPos = 3;
    chip.faults().add(f);

    chip.setXedEnable(true);
    chip.setCatchWord(0xCA7C4BAD00000001ull);
    const auto r = chip.read(addr);
    EXPECT_TRUE(r.sentCatchWord);
    EXPECT_EQ(r.value, 0xCA7C4BAD00000001ull);
}

TEST_F(ChipTest, DcMuxSendsCatchWordOnDetection)
{
    const WordAddr addr{2, 5, 7};
    chip.write(addr, 42);
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 77;
    chip.faults().add(f);

    chip.setXedEnable(true);
    chip.setCatchWord(0x5EED);
    const auto r = chip.read(addr);
    // Multi-bit corruption: either detected (catch-word) or, for the
    // ~0.8% undetected patterns, garbage data. With this seed it is
    // detected.
    EXPECT_TRUE(r.sentCatchWord);
    EXPECT_EQ(r.value, 0x5EEDull);
}

TEST_F(ChipTest, XedDisabledPassesDataThrough)
{
    const WordAddr addr{2, 5, 8};
    chip.write(addr, 43);
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 78;
    chip.faults().add(f);

    chip.setXedEnable(false);
    const auto r = chip.read(addr);
    EXPECT_FALSE(r.sentCatchWord);
    // Data is garbage (uncorrectable), but the chip behaves like a
    // baseline ECC-DIMM device: it must supply *something*.
    EXPECT_NE(r.internalStatus, ecc::DecodeStatus::NoError);
}

TEST_F(ChipTest, TransientFaultClearedByRewrite)
{
    const WordAddr addr{4, 4, 4};
    chip.write(addr, 1);
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = false;
    f.addr = addr;
    f.seed = 3;
    f.epoch = chip.nextFaultEpoch();
    chip.faults().add(f);

    chip.setXedEnable(true);
    chip.setCatchWord(0xDEAD);
    EXPECT_TRUE(chip.read(addr).sentCatchWord);
    chip.write(addr, 2); // rewrite refreshes the cells
    const auto r = chip.read(addr);
    EXPECT_FALSE(r.sentCatchWord);
    EXPECT_EQ(r.value, 2u);
}

TEST_F(ChipTest, PermanentFaultSurvivesRewrite)
{
    const WordAddr addr{4, 4, 5};
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = addr;
    f.seed = 4;
    chip.faults().add(f);

    chip.setXedEnable(true);
    chip.setCatchWord(0xBEEF);
    chip.write(addr, 7);
    EXPECT_TRUE(chip.read(addr).sentCatchWord);
    chip.write(addr, 8);
    EXPECT_TRUE(chip.read(addr).sentCatchWord);
}

TEST_F(ChipTest, WorksWithHammingOnDieCodeToo)
{
    ecc::Hamming7264 hamming;
    Chip hchip(g, hamming, 0x1234);
    const WordAddr addr{0, 0, 0};
    hchip.write(addr, 0xF00DF00DF00DF00Dull);
    EXPECT_EQ(hchip.read(addr).value, 0xF00DF00DF00DF00Dull);

    Fault f;
    f.granularity = FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = addr;
    f.bitPos = 50;
    hchip.faults().add(f);
    hchip.setXedEnable(false);
    EXPECT_EQ(hchip.read(addr).value, 0xF00DF00DF00DF00Dull);
}

} // namespace
} // namespace xed::dram
