#include <gtest/gtest.h>

#include "common/units.hh"
#include "dram/geometry.hh"

namespace xed::dram
{
namespace
{

TEST(Geometry, DefaultsMatchTableV)
{
    const ChipGeometry g;
    EXPECT_EQ(g.banks(), 8u);
    EXPECT_EQ(g.rowsPerBank(), 32u * 1024u);
    EXPECT_EQ(g.colsPerRow(), 128u);
    EXPECT_EQ(g.bitsPerWord(), 64u);
    // A 2Gb x8 device.
    EXPECT_EQ(g.bits(), 2_Gi);
    EXPECT_EQ(g.words(), 2_Gi / 64);
    EXPECT_EQ(g.wordAddrBits(), 25u);
}

TEST(Geometry, PackUnpackRoundTrip)
{
    const ChipGeometry g;
    for (unsigned bank = 0; bank < g.banks(); ++bank) {
        const WordAddr a{bank, 12345u % static_cast<unsigned>(
                                    g.rowsPerBank()),
                         bank * 7 % g.colsPerRow()};
        const auto packed = packWordAddr(g, a);
        EXPECT_LT(packed, g.words());
        const auto back = unpackWordAddr(g, packed);
        EXPECT_EQ(back, a);
    }
}

TEST(Geometry, PackIsInjectiveOverFields)
{
    const ChipGeometry g;
    const WordAddr a{1, 2, 3};
    const WordAddr b{1, 2, 4};
    const WordAddr c{1, 3, 3};
    const WordAddr d{2, 2, 3};
    EXPECT_NE(packWordAddr(g, a), packWordAddr(g, b));
    EXPECT_NE(packWordAddr(g, a), packWordAddr(g, c));
    EXPECT_NE(packWordAddr(g, a), packWordAddr(g, d));
}

TEST(Geometry, RankConfig)
{
    const RankConfig r;
    EXPECT_EQ(r.chips(), 9u);
}

} // namespace
} // namespace xed::dram
