#include <gtest/gtest.h>

#include "dram/fault_injector.hh"

namespace xed::dram
{
namespace
{

class FaultInjectorTest : public ::testing::Test
{
  protected:
    ChipGeometry g;
    FaultInjector injector{g};
};

TEST_F(FaultInjectorTest, NoFaultsNoCorruption)
{
    EXPECT_TRUE(injector.corruption({0, 0, 0}, 0).isZero());
    EXPECT_FALSE(injector.touches({1, 2, 3}));
}

TEST_F(FaultInjectorTest, SingleBitFlipsExactlyOneBit)
{
    Fault f;
    f.granularity = FaultGranularity::SingleBit;
    f.permanent = true;
    f.addr = {2, 100, 5};
    f.bitPos = 17;
    injector.add(f);

    const auto mask = injector.corruption({2, 100, 5}, 0);
    EXPECT_EQ(mask.weight(), 1);
    EXPECT_EQ(mask.bit(17), 1);
    EXPECT_TRUE(injector.corruption({2, 100, 6}, 0).isZero());
    EXPECT_TRUE(injector.corruption({2, 101, 5}, 0).isZero());
}

TEST_F(FaultInjectorTest, WordFaultIsMultiBit)
{
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = {0, 1, 2};
    f.seed = 99;
    injector.add(f);

    const auto mask = injector.corruption({0, 1, 2}, 0);
    EXPECT_GE(mask.weight(), 2);
    EXPECT_TRUE(injector.corruption({0, 1, 3}, 0).isZero());
}

TEST_F(FaultInjectorTest, ColumnFaultHitsAllRowsOneBitEach)
{
    Fault f;
    f.granularity = FaultGranularity::SingleColumn;
    f.permanent = true;
    f.addr = {3, 0, 42};
    f.bitPos = 8;
    injector.add(f);

    for (unsigned row : {0u, 1u, 999u, 32767u}) {
        const auto mask = injector.corruption({3, row, 42}, 0);
        EXPECT_EQ(mask.weight(), 1) << row;
        EXPECT_EQ(mask.bit(8), 1) << row;
    }
    EXPECT_TRUE(injector.corruption({3, 5, 41}, 0).isZero());
    EXPECT_TRUE(injector.corruption({2, 5, 42}, 0).isZero());
}

TEST_F(FaultInjectorTest, RowFaultHitsWholeRow)
{
    Fault f;
    f.granularity = FaultGranularity::SingleRow;
    f.permanent = true;
    f.addr = {1, 77, 0};
    f.seed = 7;
    injector.add(f);

    for (unsigned col = 0; col < g.colsPerRow(); ++col)
        EXPECT_GE(injector.corruption({1, 77, col}, 0).weight(), 2);
    EXPECT_TRUE(injector.corruption({1, 78, 0}, 0).isZero());
    EXPECT_TRUE(injector.corruption({0, 77, 0}, 0).isZero());
}

TEST_F(FaultInjectorTest, BankFaultHitsWholeBankOnly)
{
    Fault f;
    f.granularity = FaultGranularity::SingleBank;
    f.permanent = true;
    f.addr = {6, 0, 0};
    f.seed = 13;
    injector.add(f);

    EXPECT_GE(injector.corruption({6, 0, 0}, 0).weight(), 2);
    EXPECT_GE(injector.corruption({6, 31000, 127}, 0).weight(), 2);
    EXPECT_TRUE(injector.corruption({5, 31000, 127}, 0).isZero());
}

TEST_F(FaultInjectorTest, ChipFaultHitsEverything)
{
    Fault f;
    f.granularity = FaultGranularity::Chip;
    f.permanent = true;
    f.seed = 21;
    injector.add(f);

    EXPECT_GE(injector.corruption({0, 0, 0}, 0).weight(), 2);
    EXPECT_GE(injector.corruption({7, 32767, 127}, 0).weight(), 2);
}

TEST_F(FaultInjectorTest, TransientClearedByRewrite)
{
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = false;
    f.addr = {0, 0, 0};
    f.seed = 5;
    f.epoch = 10;
    injector.add(f);

    // Written before the fault: corruption visible.
    EXPECT_FALSE(injector.corruption({0, 0, 0}, 9).isZero());
    // Rewritten after the fault: clean.
    EXPECT_TRUE(injector.corruption({0, 0, 0}, 11).isZero());
}

TEST_F(FaultInjectorTest, PermanentSurvivesRewrite)
{
    Fault f;
    f.granularity = FaultGranularity::SingleWord;
    f.permanent = true;
    f.addr = {0, 0, 0};
    f.seed = 5;
    f.epoch = 10;
    injector.add(f);

    EXPECT_FALSE(injector.corruption({0, 0, 0}, 99).isZero());
}

TEST_F(FaultInjectorTest, ClearTransientsKeepsPermanents)
{
    Fault t;
    t.permanent = false;
    t.addr = {0, 0, 0};
    Fault p;
    p.granularity = FaultGranularity::SingleBit;
    p.permanent = true;
    p.addr = {0, 0, 1};
    p.bitPos = 3;
    injector.add(t);
    injector.add(p);
    injector.clearTransients();
    ASSERT_EQ(injector.faults().size(), 1u);
    EXPECT_TRUE(injector.faults()[0].permanent);
}

TEST_F(FaultInjectorTest, DeterministicMasks)
{
    Fault f;
    f.granularity = FaultGranularity::SingleRow;
    f.permanent = true;
    f.addr = {1, 2, 0};
    f.seed = 1234;
    injector.add(f);
    const auto a = injector.corruption({1, 2, 9}, 0);
    const auto b = injector.corruption({1, 2, 9}, 0);
    EXPECT_EQ(a, b);
    // Different words of the row get (almost surely) different patterns.
    const auto c = injector.corruption({1, 2, 10}, 0);
    EXPECT_FALSE(a == c);
}

} // namespace
} // namespace xed::dram
