#!/bin/sh
# Fleet-lifetime check: build the fleet tree, run the `fleet` ctest
# label (engine semantics, spec parsing, campaign integration), then
# the CLI smoke (scripts/fleet_smoke.sh) -- thread-count, resume and
# 2-worker distributed runs of the fleet spec must all produce
# byte-identical stores.
#
# Usage: scripts/check_fleet.sh [build-dir]   (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
jobs=$(nproc 2>/dev/null || echo 2)

cmake -S "$repo" -B "$build"
cmake --build "$build" -j "$jobs" --target test_fleet xed_campaign_cli

(cd "$build" && ctest -L fleet --output-on-failure -j "$jobs")

"$repo/scripts/fleet_smoke.sh" "$build/src/campaign/xed_campaign" \
    "$repo/specs/fleet_smoke.json" "$build/fleet_smoke_check"

echo "fleet check passed"
