# ctest helper for the `campaign_smoke` job: run the tiny smoke spec
# from scratch, then resume the completed store (must be a no-op), and
# render the report. Invoked as
#   cmake -DCLI=... -DSPEC=... -DOUT=... -P campaign_smoke.cmake

file(REMOVE "${OUT}" "${OUT}.telemetry.jsonl")

execute_process(
    COMMAND "${CLI}" run "${SPEC}" --out "${OUT}" --quiet
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "campaign run failed (rc=${rc})")
endif()

execute_process(
    COMMAND "${CLI}" resume "${SPEC}" --out "${OUT}" --quiet
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "campaign resume of a complete store failed "
                        "(rc=${rc})")
endif()

execute_process(
    COMMAND "${CLI}" report "${OUT}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE report)
if(NOT rc EQUAL 0 OR NOT report MATCHES "xed")
    message(FATAL_ERROR "campaign report failed (rc=${rc}):\n${report}")
endif()
