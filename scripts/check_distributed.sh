#!/bin/sh
# Distributed-execution check: build the campaign tree, run the `dist`
# ctest label (queue protocol + worker/merge byte-identity suites),
# then the kill-and-reclaim fleet smoke (scripts/dist_smoke.sh) on the
# fig07 spec -- a 4-worker run where worker 0 is SIGKILLed mid-shard
# must still merge byte-identically to a single-process run -- and the
# observability smoke (scripts/status_smoke.sh): status/serve scraped
# over a live fleet's queue directory without perturbing a byte of it.
#
# Usage: scripts/check_distributed.sh [build-dir]   (default: build)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
jobs=$(nproc 2>/dev/null || echo 2)

cmake -S "$repo" -B "$build"
cmake --build "$build" -j "$jobs" --target test_dist xed_campaign_cli

(cd "$build" && ctest -L dist --output-on-failure -j "$jobs")

# fig07 shrunk to CI size; the override is part of the spec hash and
# must be identical for every process, so export it here, once.
XED_MC_SYSTEMS=${XED_MC_SYSTEMS:-30000}
export XED_MC_SYSTEMS
"$repo/scripts/dist_smoke.sh" "$build/src/campaign/xed_campaign" \
    "$repo/specs/fig07.json" "$build/dist_smoke"

"$repo/scripts/status_smoke.sh" "$build/src/campaign/xed_campaign" \
    "$repo/specs/status_smoke.json" "$build/status_smoke_check"

echo "distributed check passed"
