#!/bin/sh
# Trace-export smoke for the observability layer: run the tiny smoke
# spec with the span recorder forced on, then prove
#   - a Chrome-trace JSON file was exported and strict-parses
#     (validated with `xed_campaign checkjson`, i.e. common/json --
#     no external JSON tooling needed on the CI box),
#   - it contains complete-duration span events,
#   - the forensics sidecar was written in plan order, and
#   - the report still renders over the instrumented store.
#
# Usage: scripts/trace_smoke.sh <xed_campaign> <spec.json> <out.jsonl>
set -eu

cli=$1
spec=$2
out=$3

rm -f "$out" "$out.trace.json" "$out.forensics.jsonl" \
    "$out.telemetry.jsonl"

"$cli" trace "$spec" --out "$out" --quiet >/dev/null

for file in "$out" "$out.trace.json" "$out.forensics.jsonl" \
    "$out.telemetry.jsonl"; do
    [ -s "$file" ] || { echo "missing output $file" >&2; exit 1; }
done

"$cli" checkjson "$out.trace.json"

grep -q '"traceEvents"' "$out.trace.json" ||
    { echo "trace JSON has no traceEvents array" >&2; exit 1; }
grep -q '"ph":"X"' "$out.trace.json" ||
    { echo "trace JSON has no duration spans" >&2; exit 1; }
grep -q '"name":"reliability-shard"' "$out.trace.json" ||
    { echo "trace JSON has no shard spans" >&2; exit 1; }

head -n 1 "$out.forensics.jsonl" |
    grep -q '"type":"forensics","index":0' ||
    { echo "forensics sidecar does not start at shard 0" >&2; exit 1; }
grep -q '"type":"forensics-summary"' "$out.forensics.jsonl" ||
    { echo "forensics sidecar has no completion summary" >&2; exit 1; }

"$cli" report "$out" >/dev/null

echo "trace smoke passed"
