#!/usr/bin/env python3
"""Perf-regression gate for the committed BENCH_*.json baselines.

Compares fresh bench output against the baselines checked into the
repository root and fails when any throughput metric regresses beyond
the tolerance:

    scripts/bench_compare.py [--tolerance FRAC] [--baseline-dir DIR] \
        FRESH.json [FRESH.json ...]

Each FRESH.json is matched to <baseline-dir>/<basename>. A *metric* is
any numeric JSON leaf whose key ends in ``_per_sec`` (throughput,
higher is better); list entries are identified by their ``kernel`` /
``scheme`` / ``level`` / ``name`` field so the comparison survives
reordering. The gate prints a per-metric delta table and exits
nonzero if

  * a fresh rate falls below ``baseline * (1 - tolerance)``, or
  * a baseline metric is missing from the fresh run (a silently
    dropped bench stage -- the failure mode that lost BENCH_fleet.json).

Metrics that are new in the fresh run are reported but never fail the
gate (they become baselines once committed). The default tolerance of
0.35 absorbs ordinary machine noise while still catching a real kernel
regression; CI smoke runs pass ``--tolerance inf`` to validate only
that the schema and metric sets still line up. Stdlib only.
"""

import argparse
import json
import math
import os
import sys


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def entry_label(entry, index):
    """Stable label for a list entry: its identifying field, else index."""
    if isinstance(entry, dict):
        for key in ("kernel", "scheme", "level", "name", "label"):
            if key in entry and isinstance(entry[key], str):
                return entry[key]
    return str(index)


def collect_metrics(node, path, out):
    """Walk the JSON tree, recording numeric *_per_sec leaves by path."""
    if isinstance(node, dict):
        for key, value in node.items():
            if is_number(value) and key.endswith("_per_sec"):
                out[f"{path}.{key}" if path else key] = float(value)
            else:
                collect_metrics(value,
                                f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for index, entry in enumerate(node):
            label = entry_label(entry, index)
            collect_metrics(entry,
                            f"{path}[{label}]" if path else f"[{label}]",
                            out)


def load_metrics(path):
    with open(path, "rb") as handle:
        doc = json.load(handle)
    metrics = {}
    collect_metrics(doc, "", metrics)
    return metrics


def compare_file(fresh_path, baseline_path, tolerance):
    """Returns (ok, lines): the verdict and the report rows."""
    lines = []
    fresh = load_metrics(fresh_path)
    baseline = load_metrics(baseline_path)
    if not baseline:
        return False, [f"  no *_per_sec metrics in {baseline_path}"]
    ok = True
    floor = 1.0 - tolerance
    width = max(len(k) for k in set(baseline) | set(fresh))
    lines.append(f"  {'metric':<{width}}  {'baseline':>12}"
                 f"  {'fresh':>12}  {'delta':>9}")
    for key in sorted(baseline):
        base = baseline[key]
        if key not in fresh:
            lines.append(f"  {key:<{width}}  MISSING from fresh run")
            ok = False
            continue
        rate = fresh[key]
        ratio = rate / base if base > 0 else math.inf
        verdict = "ok"
        if math.isfinite(tolerance) and ratio < floor:
            verdict = "REGRESSION"
            ok = False
        lines.append(f"  {key:<{width}}  {base:12.4g}  {rate:12.4g}"
                     f"  {100.0 * (ratio - 1.0):+8.1f}%  {verdict}")
    for key in sorted(set(fresh) - set(baseline)):
        lines.append(f"  {key:<{width}}  {'':12}  {fresh[key]:12.4g}"
                     f"  {'':8}   new (no baseline)")
    return ok, lines


def main():
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json against the committed "
                    "baselines")
    parser.add_argument("fresh", nargs="+",
                        help="fresh bench JSON file(s)")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional slowdown before a "
                             "metric fails (default 0.35; 'inf' checks "
                             "schema/metric parity only)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory holding the committed baselines "
                             "(default: the repository root above this "
                             "script)")
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    baseline_dir = args.baseline_dir
    if baseline_dir is None:
        baseline_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))

    all_ok = True
    for fresh_path in args.fresh:
        baseline_path = os.path.join(baseline_dir,
                                     os.path.basename(fresh_path))
        print(f"{os.path.basename(fresh_path)}: fresh {fresh_path} vs "
              f"baseline {baseline_path}")
        if not os.path.exists(baseline_path):
            print("  baseline missing -- commit one with "
                  "scripts/bench_throughput.sh")
            all_ok = False
            continue
        try:
            ok, lines = compare_file(fresh_path, baseline_path,
                                     args.tolerance)
        except (OSError, ValueError) as error:
            print(f"  unreadable: {error}")
            all_ok = False
            continue
        for line in lines:
            print(line)
        all_ok = all_ok and ok

    if not all_ok:
        print("bench_compare: FAIL")
        return 1
    print(f"bench_compare: OK (tolerance {args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
