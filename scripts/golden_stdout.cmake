# ctest helper for the golden-stdout jobs: run a bench binary under a
# pinned environment and require its stdout to be byte-identical to a
# committed golden file. This is the repo's bit-identicality contract
# for the Monte-Carlo sampling kernel -- any change to the RNG draw
# sequence shows up as a diff here. Invoked as
#   cmake -DBENCH=<binary> -DGOLDEN=<file> -DENVVARS=<A=1;B=2> \
#         -P golden_stdout.cmake

separate_arguments(envList UNIX_COMMAND "${ENVVARS}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${envList} "${BENCH}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE got)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench failed (rc=${rc})")
endif()

file(READ "${GOLDEN}" want)
if(NOT got STREQUAL want)
    string(LENGTH "${got}" gotLen)
    string(LENGTH "${want}" wantLen)
    message(FATAL_ERROR
        "stdout differs from ${GOLDEN} "
        "(got ${gotLen} bytes, want ${wantLen}). The Monte-Carlo draw "
        "sequence is pinned: see DESIGN.md (sampling kernel) for which "
        "changes legitimately alter it and how to regenerate goldens.")
endif()
