#!/usr/bin/env sh
# Measure Monte-Carlo sampling-kernel throughput and record it as
# BENCH_mc_throughput.json in the repository root.
#
#   scripts/bench_throughput.sh [build-dir]
#
# Respects the usual knobs: XED_MC_SYSTEMS (default 1M), XED_MC_SEED,
# XED_MC_SAMPLER, XED_MC_THREADS, XED_BENCH_REPEATS, and XED_BENCH_OUT
# for the output path (default: <repo>/BENCH_mc_throughput.json).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
bench="$build/bench/mc_throughput"

if [ ! -x "$bench" ]; then
    echo "bench_throughput: $bench not built yet; run" >&2
    echo "  cmake -B \"$build\" -S \"$repo\" && cmake --build \"$build\" --target mc_throughput" >&2
    exit 1
fi

XED_BENCH_OUT=${XED_BENCH_OUT:-"$repo/BENCH_mc_throughput.json"} \
    exec "$bench"
