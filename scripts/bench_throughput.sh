#!/usr/bin/env sh
# Measure the hot-loop throughput benches and record them in the
# repository root:
#   - Monte-Carlo sampling kernel  -> BENCH_mc_throughput.json
#   - codec kernels (before/after) -> BENCH_codecs.json
#   - fleet-lifetime engine        -> BENCH_fleet.json
#
#   scripts/bench_throughput.sh [build-dir] [stage]
#
# stage: "mc", "codecs", "fleet", or "all" (default). Respects the
# usual knobs: XED_MC_SYSTEMS (default 1M; fleet default 200k DIMMs),
# XED_MC_SEED, XED_MC_SAMPLER, XED_MC_THREADS for the mc and fleet
# stages; XED_CODEC_OPS (default 150k) for the codec stage;
# XED_BENCH_REPEATS for all. XED_BENCH_OUT overrides the output path,
# but only when a single stage is selected.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
stage=${2:-all}

run_stage() {
    bench="$build/bench/$1"
    out=$2
    if [ ! -x "$bench" ]; then
        echo "bench_throughput: $bench not built yet; run" >&2
        echo "  cmake -B \"$build\" -S \"$repo\" && cmake --build \"$build\" --target $1" >&2
        exit 1
    fi
    rm -f "$out"
    XED_BENCH_OUT="$out" "$bench"
    # A stage that exits 0 but writes no JSON is a silent baseline
    # loss (how BENCH_fleet.json went missing); fail loudly instead.
    if [ ! -s "$out" ]; then
        echo "bench_throughput: stage $1 produced no JSON at $out" >&2
        exit 1
    fi
}

case "$stage" in
mc)
    run_stage mc_throughput "${XED_BENCH_OUT:-"$repo/BENCH_mc_throughput.json"}"
    ;;
codecs)
    run_stage codec_throughput "${XED_BENCH_OUT:-"$repo/BENCH_codecs.json"}"
    ;;
fleet)
    run_stage fleet_throughput "${XED_BENCH_OUT:-"$repo/BENCH_fleet.json"}"
    ;;
all)
    run_stage mc_throughput "$repo/BENCH_mc_throughput.json"
    run_stage codec_throughput "$repo/BENCH_codecs.json"
    run_stage fleet_throughput "$repo/BENCH_fleet.json"
    ;;
*)
    echo "bench_throughput: unknown stage \"$stage\" (mc|codecs|fleet|all)" >&2
    exit 2
    ;;
esac
