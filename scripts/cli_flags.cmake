# ctest helper for the `cli_flag_rejection` job: every numeric option
# of the xed_campaign CLI must strictly reject malformed values with a
# usage error (nonzero exit), never silently truncate them the way the
# old bare strtoul/strtod parsing did ("--threads 4x" used to run with
# 4 threads; "--threads x" with the hardware count). Invoked as
#   cmake -DCLI=... -DSPEC=... -P cli_flags.cmake

# flag|value pairs that must all be rejected. --dry-run would make the
# run a no-op, so a parse that wrongly succeeds cannot start a real
# campaign from the test.
set(rejected
    "--threads|4x"
    "--threads|x4"
    "--threads|-1"
    "--threads| 2"
    "--threads|1e3"
    "--threads|0x10"
    "--threads|4294967296"          # UINT_MAX + 1
    "--threads|99999999999999999999" # overflows uint64 too
    "--max-shards|abc"
    "--max-shards|1.5"
    "--max-shards|-3"
    "--progress-interval|nan"
    "--progress-interval|inf"
    "--progress-interval|1.5x"
    "--progress-interval|1,5"
    "--lease-seconds|soon"
    "--lease-seconds|0"              # positive lifetimes only
    "--lease-seconds|-5"
    "--poll-interval|fast"
    "--timeout|later"
    "--port|http"                    # status/serve flags parse strictly
    "--port|-1"
    "--port|65536"                   # one past the TCP range
    "--port|1e4"
    "--interval|never"
    "--interval|0"                   # positive refresh periods only
    "--interval|-2"
    "--format|yaml")

foreach(case IN LISTS rejected)
    string(REPLACE "|" ";" parts "${case}")
    list(GET parts 0 flag)
    list(GET parts 1 value)
    execute_process(
        COMMAND "${CLI}" worker "${SPEC}" --queue-dir /nonexistent
            --dry-run "${flag}" "${value}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET ERROR_VARIABLE stderr)
    if(rc EQUAL 0)
        message(FATAL_ERROR
            "${flag} ${value} was accepted; strict parsing is broken")
    endif()
    if(NOT stderr MATCHES "xed_campaign: ${flag}")
        message(FATAL_ERROR
            "${flag} ${value} died without naming the flag:\n${stderr}")
    endif()
endforeach()

# Well-formed values must still parse (dry-run: no simulation).
execute_process(
    COMMAND "${CLI}" run "${SPEC}" --dry-run
        --threads 4 --max-shards 10 --progress-interval 0.5
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "valid numeric flags were rejected (rc=${rc})")
endif()
