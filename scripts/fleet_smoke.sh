#!/bin/sh
# Fleet-lifetime CLI smoke: run the fleet spec four ways and require
# byte-identical result stores:
#
#   1. `xed_campaign fleet` on one thread (the reference),
#   2. the same spec on four threads,
#   3. an interrupted run (--max-shards 2) resumed to completion,
#   4. a 2-worker shard-queue run merged with `xed_campaign merge`.
#
# Also checks that `xed_campaign version` emits parseable provenance
# (the report verb strict-parses every JSON this repo writes, so a
# plain grep on the mandatory keys suffices here) and that the report
# verb renders the fleet tables.
#
# Usage: scripts/fleet_smoke.sh <xed_campaign-binary> [spec] [workdir]
set -eu

cli=$1
repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
spec=${2:-"$repo/specs/fleet_smoke.json"}
work=${3:-"$(pwd)/fleet_smoke"}

rm -rf "$work"
mkdir -p "$work"
queue="$work/queue"

echo "fleet_smoke: version provenance"
"$cli" version | grep -q '"compiler"'

echo "fleet_smoke: single-thread reference run"
"$cli" fleet "$spec" --out "$work/t1.jsonl" --threads 1 \
    --quiet >/dev/null

echo "fleet_smoke: 4-thread run"
"$cli" fleet "$spec" --out "$work/t4.jsonl" --threads 4 \
    --quiet >/dev/null
cmp "$work/t1.jsonl" "$work/t4.jsonl"

echo "fleet_smoke: interrupted run + resume"
"$cli" fleet "$spec" --out "$work/resume.jsonl" --max-shards 2 \
    --quiet >/dev/null
"$cli" resume "$spec" --out "$work/resume.jsonl" --quiet >/dev/null
cmp "$work/t1.jsonl" "$work/resume.jsonl"

echo "fleet_smoke: 2-worker distributed run"
"$cli" worker "$spec" --queue-dir "$queue" --worker-id w1 \
    --max-shards 2 --quiet >/dev/null
"$cli" worker "$spec" --queue-dir "$queue" --worker-id w2 \
    --quiet >/dev/null
"$cli" merge "$spec" --queue-dir "$queue" \
    --out "$work/merged.jsonl" --quiet >/dev/null
cmp "$work/t1.jsonl" "$work/merged.jsonl"

echo "fleet_smoke: report renders the fleet tables"
"$cli" report "$work/t1.jsonl" | grep -q "fleet time series"

echo "fleet_smoke: stores byte-identical across all paths, passed"
