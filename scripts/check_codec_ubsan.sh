#!/bin/sh
# Build the tree with UndefinedBehaviorSanitizer and run the codec and
# campaign suites. The ECC layer is now table-driven with fixed-capacity
# scratch indexing everywhere, so
#   ctest -L "ecc|campaign|simd"
# under UBSan covers every table lookup, shift and scratch-array access
# the codec kernels perform -- this is the net that catches the
# GF256::div(a, 0) class of bugs (reading an undefined log-table entry)
# at the point of use. The "simd" label adds the dispatch layer and the
# per-level equivalence fuzz, so the AVX2/AVX-512/NEON intrinsic
# wrappers (detect_simd, gf256 mulConst, the zero-fault filter) run
# their scalar-visible surroundings under the sanitizer at every level
# the host can execute.
#
# Usage: scripts/check_codec_ubsan.sh [build-dir]   (default: build-ubsan)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-ubsan"}
jobs=$(nproc 2>/dev/null || echo 2)

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXED_SANITIZE=undefined
cmake --build "$build" -j "$jobs" \
    --target test_ecc test_codec_equivalence test_codec_alloc \
    test_simd test_campaign xed_campaign_cli

(cd "$build" && ctest -L "ecc|campaign|simd" --output-on-failure \
    -j "$jobs")

echo "codec UBSan check passed"
