#!/bin/sh
# Distributed-execution smoke: run a reliability campaign three ways
# and require byte-identical result stores (and forensics sidecars):
#
#   1. one single-process run (the reference),
#   2. a 4-worker fleet sharing one queue directory, where worker 0 is
#      SIGKILLed mid-campaign so its leased shard has to be re-claimed
#      by the survivors,
#   3. the merge of the fleet's fragments.
#
# The spec defaults to specs/dist_smoke.json (20 shards, CI-sized);
# pass specs/fig07.json with XED_MC_SYSTEMS exported to shrink the
# paper-scale spec instead (the override is part of the spec hash, so
# every process of one smoke must see the same value -- export it
# before calling, as scripts/check_distributed.sh does).
#
# Usage: scripts/dist_smoke.sh <xed_campaign-binary> [spec] [workdir]
set -eu

cli=$1
repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
spec=${2:-"$repo/specs/dist_smoke.json"}
work=${3:-"$(pwd)/dist_smoke"}

rm -rf "$work"
mkdir -p "$work"
queue="$work/queue"

echo "dist_smoke: single-process reference run"
"$cli" run "$spec" --out "$work/single.jsonl" --quiet >/dev/null

echo "dist_smoke: starting 4 workers (worker 0 will be killed)"
# Short leases so the survivors re-claim the victim's shard quickly.
"$cli" worker "$spec" --queue-dir "$queue" --worker-id victim \
    --lease-seconds 1 --poll-interval 0.1 --quiet &
victim=$!
# Let the victim claim (and sit inside) a shard, then kill it dead:
# no cleanup, no lease release -- exactly a crashed fleet member.
sleep 1
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
echo "dist_smoke: worker 0 killed"

for w in 1 2 3; do
    "$cli" worker "$spec" --queue-dir "$queue" --worker-id "w$w" \
        --lease-seconds 1 --poll-interval 0.1 --quiet &
done
wait

echo "dist_smoke: merging fragments"
"$cli" merge "$spec" --queue-dir "$queue" \
    --out "$work/merged.jsonl" --quiet >/dev/null

cmp "$work/single.jsonl" "$work/merged.jsonl"
cmp "$work/single.jsonl.forensics.jsonl" \
    "$work/merged.jsonl.forensics.jsonl"

echo "dist_smoke: store and forensics sidecar byte-identical, passed"
