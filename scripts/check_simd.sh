#!/bin/sh
# Byte-identity of the SIMD batch kernels across dispatch levels
# (DESIGN.md section 4i): build with -DXED_NATIVE=ON so the compiler
# has every excuse to diverge, then prove that XED_SIMD=scalar and the
# native (detected) level produce byte-identical results:
#
#   1. the "simd" + "ecc" ctest suites (per-level fuzz, forced through
#      the real dispatch) and the "golden" suites (fig07/table2 stdout
#      vs the committed pre-SIMD fixtures) pass under BOTH levels;
#   2. the fig07 and table2 stdout captures from the two levels are
#      cmp-identical to each other and to the committed fixtures;
#   3. a full campaign run produces cmp-identical JSONL stores.
#
# Usage: scripts/check_simd.sh [build-dir]   (default: build-native)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-native"}
jobs=$(nproc 2>/dev/null || echo 2)
work="$build/check_simd"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release \
    -DXED_NATIVE=ON
cmake --build "$build" -j "$jobs" \
    --target test_simd test_codec_equivalence test_codec_alloc \
    test_ecc fig07_xed_reliability table2_detection_rates \
    xed_campaign_cli

mkdir -p "$work"

# Sanity: an unparseable override must fail loudly, not fall back.
if XED_SIMD=bogus "$build/tests/test_simd" >/dev/null 2>&1; then
    echo "check_simd: XED_SIMD=bogus was silently accepted" >&2
    exit 1
fi

for level in scalar native; do
    if [ "$level" = scalar ]; then
        export XED_SIMD=scalar
    else
        unset XED_SIMD || true
    fi
    echo "== ctest (simd|ecc|golden) at level: $level"
    (cd "$build" && ctest -L "simd|ecc|golden" --output-on-failure \
        -j "$jobs")

    XED_MC_SYSTEMS=20000 XED_MC_THREADS=4 \
        "$build/bench/fig07_xed_reliability" > "$work/fig07.$level.txt"
    XED_TRIALS=20000 \
        "$build/bench/table2_detection_rates" > "$work/table2.$level.txt"

    rm -f "$work/store.$level.jsonl" \
        "$work/store.$level.jsonl.telemetry.jsonl"
    "$build/src/campaign/xed_campaign" run "$repo/specs/smoke.json" \
        --out "$work/store.$level.jsonl" --quiet

    # Faulty-path batch knob (DESIGN.md section 4j): a table2 campaign
    # store must be byte-identical with XED_MC_EVAL_BATCH at 1, 8 and
    # its default -- the knob schedules work, it must never reach the
    # results or the spec hash.
    for batch in 1 8 default; do
        if [ "$batch" = default ]; then
            unset XED_MC_EVAL_BATCH || true
        else
            XED_MC_EVAL_BATCH=$batch
            export XED_MC_EVAL_BATCH
        fi
        rm -f "$work/table2store.$level.$batch.jsonl" \
            "$work/table2store.$level.$batch.jsonl.telemetry.jsonl"
        XED_TRIALS=20000 "$build/src/campaign/xed_campaign" run \
            "$repo/specs/table2.json" \
            --out "$work/table2store.$level.$batch.jsonl" --quiet
    done
    unset XED_MC_EVAL_BATCH || true
done

# Sanity: the batch knob is strict -- an explicit 0 (and garbage) must
# fail loudly, not resolve to some batch size.
for bogus in 0 abc; do
    if XED_MC_EVAL_BATCH=$bogus "$build/src/campaign/xed_campaign" run \
        "$repo/specs/smoke.json" \
        --out "$work/store.bogus.jsonl" --quiet >/dev/null 2>&1; then
        echo "check_simd: XED_MC_EVAL_BATCH=$bogus was silently accepted" >&2
        exit 1
    fi
done

# Byte-for-byte: scalar vs native, and both vs the committed fixtures.
cmp "$work/fig07.scalar.txt" "$work/fig07.native.txt"
cmp "$work/table2.scalar.txt" "$work/table2.native.txt"
cmp "$work/fig07.scalar.txt" "$repo/tests/golden/fig07_20000.txt"
cmp "$work/table2.scalar.txt" "$repo/tests/golden/table2_20000.txt"
cmp "$work/store.scalar.jsonl" "$work/store.native.jsonl"

# The table2 store: identical across levels and across the batch knob.
for level in scalar native; do
    for batch in 1 8 default; do
        cmp "$work/table2store.scalar.1.jsonl" \
            "$work/table2store.$level.$batch.jsonl"
    done
done

echo "SIMD byte-identity check passed (scalar == native == fixtures)"
