#!/bin/sh
# Tiny-run smoke of the perf-regression gate (ctest -L perf-smoke):
# regenerate a toy-scale BENCH_codecs.json and run bench_compare.py
# against the committed baseline with an infinite tolerance. Toy-scale
# rates are meaningless, so the smoke asserts only what CI can: the
# gate parses both sides and every baseline metric is still emitted.
#
#   scripts/bench_compare_smoke.sh <codec_throughput-binary> <workdir>
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
codec_bench=$1
work=$2

if ! command -v python3 >/dev/null 2>&1; then
    echo "bench_compare_smoke: python3 not found; skipping" >&2
    exit 0
fi

mkdir -p "$work"
rm -f "$work/BENCH_codecs.json"
XED_CODEC_OPS=2000 XED_BENCH_REPEATS=1 \
    XED_BENCH_OUT="$work/BENCH_codecs.json" \
    "$codec_bench" > /dev/null
python3 "$repo/scripts/bench_compare.py" --tolerance inf \
    --baseline-dir "$repo" "$work/BENCH_codecs.json"
