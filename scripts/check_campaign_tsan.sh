#!/bin/sh
# Build the tree with ThreadSanitizer and run the campaign and
# observability suites plus the CLI smoke specs. The runner's worker
# pool, progress thread, metrics registry (counters and histograms),
# the trace recorder, and the distributed worker loop (heartbeat
# thread + concurrent in-process workers in test_worker.cc) are the
# only cross-thread code in the repo, so
#   ctest -L 'campaign|obs|dist|fleet'
# under TSan covers every lock and atomic they added (the fleet suite
# drives the same worker pool and store through the fleet shard
# executor). A final
# tracing-enabled campaign run races the span recorder against the
# worker pool and the progress sampler on purpose.
#
# Usage: scripts/check_campaign_tsan.sh [build-dir]   (default: build-tsan)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}
jobs=$(nproc 2>/dev/null || echo 2)

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXED_SANITIZE=thread
cmake --build "$build" -j "$jobs" \
    --target test_campaign test_obs test_dist test_fleet \
    xed_campaign_cli

(cd "$build" && ctest -L 'campaign|obs|dist|fleet' \
    --output-on-failure -j "$jobs")

# Multi-threaded campaign with the recorder on: worker spans, store
# spans and the telemetry sampler all write while progress is live.
out="$build/tsan_trace_smoke.jsonl"
rm -f "$out" "$out.trace.json" "$out.forensics.jsonl" \
    "$out.telemetry.jsonl"
XED_TRACE=1 "$build/src/campaign/xed_campaign" run \
    "$repo/specs/smoke.json" --out "$out" --threads 4 \
    --progress-interval 0.05 --quiet >/dev/null

echo "campaign TSan check passed"
