#!/bin/sh
# Build the tree with ThreadSanitizer and run the campaign suite plus
# the CLI smoke spec. The runner's worker pool, progress thread and
# metrics registry are the only cross-thread code in the repo, so
#   ctest -L campaign
# under TSan covers every lock and atomic the campaign added.
#
# Usage: scripts/check_campaign_tsan.sh [build-dir]   (default: build-tsan)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}
jobs=$(nproc 2>/dev/null || echo 2)

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DXED_SANITIZE=thread
cmake --build "$build" -j "$jobs" \
    --target test_campaign xed_campaign_cli

(cd "$build" && ctest -L campaign --output-on-failure -j "$jobs")

echo "campaign TSan check passed"
