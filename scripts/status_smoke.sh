#!/bin/sh
# Observability smoke over the real CLI (DESIGN.md section 4k):
#
#   1. a 2-worker fleet drains a queue directory,
#   2. `status --json` on the queue must be valid JSON (checkjson) and
#      agree exactly -- shards, units, failures, specHash -- with
#      `report --format=json` on a single-process run of the same spec,
#   3. `serve --port 0` is scraped over a live socket: /status.json
#      must parse and match, /metrics must carry the Prometheus
#      HELP/TYPE preamble and the fleet counters,
#   4. the queue directory must be byte-identical before and after all
#      of the above: status is read-only by contract.
#
# Usage: scripts/status_smoke.sh <xed_campaign-binary> [spec] [workdir]
set -eu

cli=$1
repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
spec=${2:-"$repo/specs/status_smoke.json"}
work=${3:-"$(pwd)/status_smoke"}

rm -rf "$work"
mkdir -p "$work"
queue="$work/queue"

echo "status_smoke: draining the queue with 2 workers"
for w in 0 1; do
    "$cli" worker "$spec" --queue-dir "$queue" --worker-id "w$w" \
        --lease-seconds 5 --poll-interval 0.1 --quiet &
done
wait

echo "status_smoke: single-process reference run"
"$cli" run "$spec" --out "$work/single.jsonl" --quiet >/dev/null

# Everything below must never write into the queue.
cp -r "$queue" "$work/queue.before"

echo "status_smoke: status --json vs report --format=json"
"$cli" status --queue-dir "$queue" --json > "$work/status.json"
"$cli" checkjson "$work/status.json"
"$cli" report "$work/single.jsonl" --format=json > "$work/report.json"
"$cli" checkjson "$work/report.json"

python3 - "$work/status.json" "$work/report.json" <<'EOF'
import json, sys
queue = json.load(open(sys.argv[1]))
store = json.load(open(sys.argv[2]))
for key in ("name", "specHash", "complete", "shards", "failures"):
    assert queue[key] == store[key], (key, queue[key], store[key])
assert queue["units"]["done"] == store["units"]["done"]
assert queue["complete"] is True
assert queue["shards"]["pending"] == 0
assert queue["source"] == "queue" and store["source"] == "store"
print("status_smoke: queue and store snapshots agree exactly")
EOF

echo "status_smoke: scraping serve endpoints"
"$cli" serve --queue-dir "$queue" --port 0 > "$work/serve.port" \
    2> "$work/serve.log" &
server=$!
# `serve` prints "port N" on stdout once bound.
port=""
tries=0
while [ -z "$port" ] && [ "$tries" -lt 50 ]; do
    port=$(awk '$1 == "port" { print $2 }' "$work/serve.port" \
        2>/dev/null || true)
    [ -n "$port" ] || { tries=$((tries + 1)); sleep 0.1; }
done
[ -n "$port" ] || { echo "status_smoke: serve never bound" >&2; exit 1; }

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://127.0.0.1:$port$1"
    else
        python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1]).read().decode())' \
            "http://127.0.0.1:$port$1"
    fi
}

fetch /status.json > "$work/served.json"
"$cli" checkjson "$work/served.json"
fetch /metrics > "$work/metrics.txt"

kill -INT "$server" 2>/dev/null || true
wait "$server" 2>/dev/null || true

python3 - "$work/status.json" "$work/served.json" <<'EOF'
import json, sys
direct = json.load(open(sys.argv[1]))
served = json.load(open(sys.argv[2]))
for key in ("name", "specHash", "shards", "units", "failures"):
    assert direct[key] == served[key], key
print("status_smoke: /status.json matches status --json")
EOF

grep -q '^# TYPE xed_shards gauge$' "$work/metrics.txt"
grep -q '^xed_campaign_complete 1$' "$work/metrics.txt"
grep -q '^xed_units_done_total 16000$' "$work/metrics.txt"
grep -q '^# TYPE xed_shard_seconds summary$' "$work/metrics.txt"
echo "status_smoke: /metrics carries the fleet counters"

diff -r "$work/queue.before" "$queue"
echo "status_smoke: queue bytes untouched by status/serve, passed"
