#include "xed/fct.hh"

#include <algorithm>

namespace xed
{

std::optional<unsigned>
FaultyRowChipTracker::lookup(unsigned bank, unsigned row) const
{
    for (const auto &e : entries_)
        if (e.bank == bank && e.row == row)
            return e.chip;
    return std::nullopt;
}

bool
FaultyRowChipTracker::record(unsigned bank, unsigned row, unsigned chip)
{
    // Refresh an existing entry for this row if present.
    for (auto &e : entries_) {
        if (e.bank == bank && e.row == row) {
            e.chip = chip;
            return size() == capacity_ && unanimousChip().has_value();
        }
    }
    if (entries_.size() == capacity_)
        entries_.erase(entries_.begin()); // FIFO eviction
    entries_.push_back({bank, row, chip});
    return size() == capacity_ && unanimousChip().has_value();
}

std::optional<unsigned>
FaultyRowChipTracker::unanimousChip() const
{
    if (entries_.empty())
        return std::nullopt;
    const unsigned chip = entries_.front().chip;
    const bool same =
        std::all_of(entries_.begin(), entries_.end(),
                    [chip](const Entry &e) { return e.chip == chip; });
    return same ? std::optional<unsigned>{chip} : std::nullopt;
}

} // namespace xed
