/**
 * @file
 * Symbol-based DIMM controllers: commercial Chipkill, Double-Chipkill,
 * and XED-on-Chipkill (Section IX).
 *
 * A cache-line access reads one 64-bit word from each chip; byte b of
 * every chip's word forms beat b, and each beat is one Reed-Solomon
 * codeword across the chips:
 *
 *   - Chipkill          : RS(18,16), errors-only decoding (t = 1).
 *   - Double-Chipkill   : RS(36,32), errors-only decoding (t = 2).
 *   - XED-on-Chipkill   : RS(18,16) with catch-word chips treated as
 *                         erasures (corrects up to TWO located chips
 *                         with the same two check chips).
 */

#ifndef XED_XED_CHIPKILL_CONTROLLER_HH
#define XED_XED_CHIPKILL_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/inline_vec.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "dram/chip.hh"
#include "ecc/crc8atm.hh"
#include "ecc/reed_solomon.hh"

namespace xed
{

enum class ChipkillOutcome
{
    Clean,
    Corrected,
    Uncorrectable,
};

/** Widest supported module: Double-Chipkill's 32 data + 4 check chips. */
inline constexpr unsigned maxChipkillChips = ecc::RsScratch::maxN;

struct ChipkillReadResult
{
    /** One word per data chip; inline storage, no allocation. */
    InlineVec<std::uint64_t, maxChipkillChips> data;
    ChipkillOutcome outcome = ChipkillOutcome::Clean;
    InlineVec<unsigned, maxChipkillChips> catchWordChips;
    unsigned beatsCorrected = 0;
};

struct ChipkillConfig
{
    unsigned dataChips = 16;
    unsigned checkChips = 2;
    /** Expose on-die detections as erasures (XED-on-Chipkill). */
    bool useCatchWordErasures = false;
    dram::ChipGeometry geometry{};
    std::uint64_t seed = 0xC41C0DEull;
};

class ChipkillController
{
  public:
    explicit ChipkillController(const ChipkillConfig &config);

    unsigned numChips() const { return config_.dataChips +
                                       config_.checkChips; }

    void writeLine(const dram::WordAddr &addr,
                   const std::vector<std::uint64_t> &data);

    ChipkillReadResult readLine(const dram::WordAddr &addr);

    /**
     * Batched read (DESIGN.md section 4j): screens a block of lines
     * with one vector on-die syndrome pass per chip and one transposed
     * RS validity pass over all 8 beats of every screened line, then
     * serves the proven-clean lines directly; anything flagged (a
     * nonzero on-die syndrome, an invalid beat, or a catch-word value
     * match in erasure mode) falls back to scalar readLine(), in line
     * order. Counters and results are byte-identical to a readLine()
     * loop.
     */
    void readMany(std::span<const dram::WordAddr> addrs,
                  std::span<ChipkillReadResult> results);

    dram::Chip &chip(unsigned index) { return *chips_[index]; }
    const CounterSet &counters() const { return counters_; }

  private:
    /** Lines staged per batch chunk; x8 beats = 512 RS words, the
     *  campaign batch geometry the SoA kernels are tuned for. */
    static constexpr std::size_t batchLines = 64;

    ChipkillConfig config_;
    ecc::Crc8Atm onDieCode_;
    ecc::ReedSolomon rs_;
    Rng rng_;
    std::vector<std::unique_ptr<dram::Chip>> chips_;
    std::vector<std::uint64_t> catchWords_;
    /** Transposed beat staging for readMany (reset once, reused). */
    ecc::RsWordBlock beatBlock_;
    /** Per-beat validity flags for readMany (sized once, reused). */
    std::vector<std::uint8_t> beatValid_;
    CounterSet counters_;
};

} // namespace xed

#endif // XED_XED_CHIPKILL_CONTROLLER_HH
