#include "xed/chipkill_controller.hh"

#include <array>
#include <span>
#include <stdexcept>

namespace xed
{

ChipkillController::ChipkillController(const ChipkillConfig &config)
    : config_(config),
      rs_(config.dataChips + config.checkChips, config.dataChips),
      rng_(config.seed)
{
    if (!rs_.fitsScratch())
        throw std::invalid_argument(
            "ChipkillController: module shape exceeds the RS scratch "
            "kernel (n <= 36, n-k <= 4)");
    for (unsigned i = 0; i < numChips(); ++i) {
        chips_.push_back(std::make_unique<dram::Chip>(
            config_.geometry, onDieCode_, rng_.next()));
        // Catch-words are only consumed in erasure mode, but the
        // registers exist on every XED-capable chip.
        chips_.back()->setXedEnable(config_.useCatchWordErasures);
        catchWords_.push_back(rng_.next());
        chips_.back()->setCatchWord(catchWords_.back());
    }
    beatBlock_.reset(rs_.n(), 8 * batchLines);
    beatValid_.resize(8 * batchLines);
    // Boot-time initialization: check chips' background contents are
    // the RS check symbols of the data chips' backgrounds.
    for (unsigned j = 0; j < config_.checkChips; ++j) {
        chips_[config_.dataChips + j]->setBackgroundData(
            [this, j](std::uint64_t packed) {
                const auto addr =
                    dram::unpackWordAddr(config_.geometry, packed);
                const unsigned k = config_.dataChips;
                std::array<std::uint8_t, maxChipkillChips> symbols;
                std::array<std::uint8_t, maxChipkillChips> codeword;
                std::uint64_t word = 0;
                for (unsigned beat = 0; beat < 8; ++beat) {
                    for (unsigned i = 0; i < k; ++i)
                        symbols[i] = static_cast<std::uint8_t>(
                            chips_[i]->expectedData(addr) >> (8 * beat));
                    rs_.encode(
                        std::span<const std::uint8_t>(symbols.data(), k),
                        std::span<std::uint8_t>(codeword.data(),
                                                rs_.n()));
                    word |= static_cast<std::uint64_t>(codeword[k + j])
                            << (8 * beat);
                }
                return word;
            });
    }
}

void
ChipkillController::writeLine(const dram::WordAddr &addr,
                              const std::vector<std::uint64_t> &data)
{
    counters_.inc("writes");
    const unsigned k = config_.dataChips;
    // Encode beat-by-beat: byte b of each chip's word is one RS symbol.
    std::array<std::uint64_t, maxChipkillChips> checkWords{};
    std::array<std::uint8_t, maxChipkillChips> symbols;
    std::array<std::uint8_t, maxChipkillChips> codeword;
    for (unsigned beat = 0; beat < 8; ++beat) {
        for (unsigned i = 0; i < k; ++i)
            symbols[i] =
                static_cast<std::uint8_t>(data[i] >> (8 * beat));
        rs_.encode(std::span<const std::uint8_t>(symbols.data(), k),
                   std::span<std::uint8_t>(codeword.data(), rs_.n()));
        for (unsigned j = 0; j < config_.checkChips; ++j)
            checkWords[j] |= static_cast<std::uint64_t>(codeword[k + j])
                             << (8 * beat);
    }
    for (unsigned i = 0; i < k; ++i)
        chips_[i]->write(addr, data[i]);
    for (unsigned j = 0; j < config_.checkChips; ++j)
        chips_[k + j]->write(addr, checkWords[j]);
}

ChipkillReadResult
ChipkillController::readLine(const dram::WordAddr &addr)
{
    counters_.inc("reads");
    const unsigned k = config_.dataChips;
    const unsigned n = numChips();

    std::array<std::uint64_t, maxChipkillChips> values;
    InlineVec<unsigned, maxChipkillChips> erasures;
    for (unsigned i = 0; i < n; ++i) {
        values[i] = chips_[i]->read(addr).value;
        if (config_.useCatchWordErasures && values[i] == catchWords_[i])
            erasures.push_back(i);
    }

    ChipkillReadResult result;
    result.catchWordChips = erasures;
    if (erasures.size() > rs_.numCheck()) {
        // More located failures than check symbols: uncorrectable.
        counters_.inc("uncorrectable");
        result.outcome = ChipkillOutcome::Uncorrectable;
        for (unsigned i = 0; i < k; ++i)
            result.data.push_back(values[i]);
        return result;
    }

    std::array<std::uint8_t, maxChipkillChips> received;
    const std::span<const unsigned> erasureSpan(erasures.data(),
                                                erasures.size());
    ecc::RsScratch scratch;
    bool anyCorrected = false;
    for (unsigned beat = 0; beat < 8; ++beat) {
        for (unsigned i = 0; i < n; ++i)
            received[i] =
                static_cast<std::uint8_t>(values[i] >> (8 * beat));
        const auto rsResult =
            rs_.decode(std::span<std::uint8_t>(received.data(), n),
                       erasureSpan, scratch);
        if (rsResult.status == ecc::RsStatus::Failure) {
            counters_.inc("uncorrectable");
            result.outcome = ChipkillOutcome::Uncorrectable;
            result.data.clear();
            for (unsigned i = 0; i < k; ++i)
                result.data.push_back(values[i]);
            return result;
        }
        if (rsResult.status == ecc::RsStatus::Corrected ||
            !erasures.empty()) {
            ++result.beatsCorrected;
            anyCorrected = true;
        }
        for (unsigned i = 0; i < n; ++i) {
            values[i] &= ~(std::uint64_t{0xFF} << (8 * beat));
            values[i] |= static_cast<std::uint64_t>(received[i])
                         << (8 * beat);
        }
    }

    result.outcome = anyCorrected ? ChipkillOutcome::Corrected
                                  : ChipkillOutcome::Clean;
    if (anyCorrected)
        counters_.inc("corrected");
    for (unsigned i = 0; i < k; ++i)
        result.data.push_back(values[i]);
    return result;
}

void
ChipkillController::readMany(std::span<const dram::WordAddr> addrs,
                             std::span<ChipkillReadResult> results)
{
    if (results.size() != addrs.size())
        throw std::invalid_argument(
            "ChipkillController::readMany: result span size mismatch");
    const unsigned k = config_.dataChips;
    const unsigned n = numChips();
    const std::size_t count = addrs.size();
    // Fixed stack staging per chunk (36 chips x 64 lines worst case);
    // the RS block and flag vector were sized in the constructor, so
    // steady-state batches never allocate.
    constexpr std::size_t lines = batchLines;
    alignas(64) std::uint8_t planes[9 * lines];
    std::uint64_t values[maxChipkillChips][lines];
    std::uint8_t syn[lines];
    std::uint8_t lineBad[lines];

    for (std::size_t base = 0; base < count; base += lines) {
        const std::size_t m = std::min(lines, count - base);
        std::fill(lineBad, lineBad + m, 0);
        // Screen 1: per-chip on-die syndromes over transposed planes.
        // A chip with a nonzero syndrome transmits on-die-corrected
        // data (or a catch-word in erasure mode), not the raw word, so
        // its line takes the scalar pipeline.
        for (unsigned i = 0; i < n; ++i) {
            const dram::Chip &device = *chips_[i];
            for (std::size_t c = 0; c < m; ++c) {
                const ecc::Word72 raw =
                    device.rawCodeword(addrs[base + c]);
                std::uint64_t lo = raw.lo;
                for (unsigned lane = 0; lane < 8; ++lane) {
                    planes[lane * lines + c] =
                        static_cast<std::uint8_t>(lo & 0xFF);
                    lo >>= 8;
                }
                planes[8 * lines + c] = raw.hi;
                values[i][c] = onDieCode_.extractData(raw);
            }
            onDieCode_.syndromeManySoa(planes, lines, m, syn);
            for (std::size_t c = 0; c < m; ++c)
                lineBad[c] |= syn[c];
        }
        // Erasure mode: a clean value that equals a catch-word is an
        // erasure in the scalar path, so it is flagged here too.
        if (config_.useCatchWordErasures)
            for (std::size_t c = 0; c < m; ++c)
                for (unsigned i = 0; i < n; ++i)
                    if (values[i][c] == catchWords_[i])
                        lineBad[c] = 1;
        // Screen 2: one transposed RS validity pass over every beat of
        // the chunk (column c*8+b = beat b of line c). Flagged lines
        // stage garbage columns; their flags are never read.
        beatBlock_.clear();
        for (std::size_t c = 0; c < 8 * m; ++c)
            beatBlock_.openColumn();
        for (unsigned i = 0; i < n; ++i)
            for (std::size_t c = 0; c < m; ++c) {
                const std::uint64_t v = values[i][c];
                for (unsigned beat = 0; beat < 8; ++beat)
                    beatBlock_.setSymbol(
                        i, c * 8 + beat,
                        static_cast<std::uint8_t>(v >> (8 * beat)));
            }
        rs_.isValidCodewordMany(
            beatBlock_,
            std::span<std::uint8_t>(beatValid_.data(), 8 * m));
        for (std::size_t c = 0; c < m; ++c)
            for (unsigned beat = 0; beat < 8; ++beat)
                if (!beatValid_[c * 8 + beat])
                    lineBad[c] = 1;
        // Emit in line order; flagged lines take the scalar pipeline.
        for (std::size_t c = 0; c < m; ++c) {
            const std::size_t line = base + c;
            if (lineBad[c]) {
                results[line] = readLine(addrs[line]);
                continue;
            }
            counters_.inc("reads");
            ChipkillReadResult &result = results[line];
            result = ChipkillReadResult{};
            result.outcome = ChipkillOutcome::Clean;
            for (unsigned i = 0; i < k; ++i)
                result.data.push_back(values[i][c]);
        }
    }
}

} // namespace xed
