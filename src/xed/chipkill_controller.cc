#include "xed/chipkill_controller.hh"

#include <array>
#include <span>
#include <stdexcept>

namespace xed
{

ChipkillController::ChipkillController(const ChipkillConfig &config)
    : config_(config),
      rs_(config.dataChips + config.checkChips, config.dataChips),
      rng_(config.seed)
{
    if (!rs_.fitsScratch())
        throw std::invalid_argument(
            "ChipkillController: module shape exceeds the RS scratch "
            "kernel (n <= 36, n-k <= 4)");
    for (unsigned i = 0; i < numChips(); ++i) {
        chips_.push_back(std::make_unique<dram::Chip>(
            config_.geometry, onDieCode_, rng_.next()));
        // Catch-words are only consumed in erasure mode, but the
        // registers exist on every XED-capable chip.
        chips_.back()->setXedEnable(config_.useCatchWordErasures);
        catchWords_.push_back(rng_.next());
        chips_.back()->setCatchWord(catchWords_.back());
    }
    // Boot-time initialization: check chips' background contents are
    // the RS check symbols of the data chips' backgrounds.
    for (unsigned j = 0; j < config_.checkChips; ++j) {
        chips_[config_.dataChips + j]->setBackgroundData(
            [this, j](std::uint64_t packed) {
                const auto addr =
                    dram::unpackWordAddr(config_.geometry, packed);
                const unsigned k = config_.dataChips;
                std::array<std::uint8_t, maxChipkillChips> symbols;
                std::array<std::uint8_t, maxChipkillChips> codeword;
                std::uint64_t word = 0;
                for (unsigned beat = 0; beat < 8; ++beat) {
                    for (unsigned i = 0; i < k; ++i)
                        symbols[i] = static_cast<std::uint8_t>(
                            chips_[i]->expectedData(addr) >> (8 * beat));
                    rs_.encode(
                        std::span<const std::uint8_t>(symbols.data(), k),
                        std::span<std::uint8_t>(codeword.data(),
                                                rs_.n()));
                    word |= static_cast<std::uint64_t>(codeword[k + j])
                            << (8 * beat);
                }
                return word;
            });
    }
}

void
ChipkillController::writeLine(const dram::WordAddr &addr,
                              const std::vector<std::uint64_t> &data)
{
    counters_.inc("writes");
    const unsigned k = config_.dataChips;
    // Encode beat-by-beat: byte b of each chip's word is one RS symbol.
    std::array<std::uint64_t, maxChipkillChips> checkWords{};
    std::array<std::uint8_t, maxChipkillChips> symbols;
    std::array<std::uint8_t, maxChipkillChips> codeword;
    for (unsigned beat = 0; beat < 8; ++beat) {
        for (unsigned i = 0; i < k; ++i)
            symbols[i] =
                static_cast<std::uint8_t>(data[i] >> (8 * beat));
        rs_.encode(std::span<const std::uint8_t>(symbols.data(), k),
                   std::span<std::uint8_t>(codeword.data(), rs_.n()));
        for (unsigned j = 0; j < config_.checkChips; ++j)
            checkWords[j] |= static_cast<std::uint64_t>(codeword[k + j])
                             << (8 * beat);
    }
    for (unsigned i = 0; i < k; ++i)
        chips_[i]->write(addr, data[i]);
    for (unsigned j = 0; j < config_.checkChips; ++j)
        chips_[k + j]->write(addr, checkWords[j]);
}

ChipkillReadResult
ChipkillController::readLine(const dram::WordAddr &addr)
{
    counters_.inc("reads");
    const unsigned k = config_.dataChips;
    const unsigned n = numChips();

    std::array<std::uint64_t, maxChipkillChips> values;
    InlineVec<unsigned, maxChipkillChips> erasures;
    for (unsigned i = 0; i < n; ++i) {
        values[i] = chips_[i]->read(addr).value;
        if (config_.useCatchWordErasures && values[i] == catchWords_[i])
            erasures.push_back(i);
    }

    ChipkillReadResult result;
    result.catchWordChips = erasures;
    if (erasures.size() > rs_.numCheck()) {
        // More located failures than check symbols: uncorrectable.
        counters_.inc("uncorrectable");
        result.outcome = ChipkillOutcome::Uncorrectable;
        for (unsigned i = 0; i < k; ++i)
            result.data.push_back(values[i]);
        return result;
    }

    std::array<std::uint8_t, maxChipkillChips> received;
    const std::span<const unsigned> erasureSpan(erasures.data(),
                                                erasures.size());
    ecc::RsScratch scratch;
    bool anyCorrected = false;
    for (unsigned beat = 0; beat < 8; ++beat) {
        for (unsigned i = 0; i < n; ++i)
            received[i] =
                static_cast<std::uint8_t>(values[i] >> (8 * beat));
        const auto rsResult =
            rs_.decode(std::span<std::uint8_t>(received.data(), n),
                       erasureSpan, scratch);
        if (rsResult.status == ecc::RsStatus::Failure) {
            counters_.inc("uncorrectable");
            result.outcome = ChipkillOutcome::Uncorrectable;
            result.data.clear();
            for (unsigned i = 0; i < k; ++i)
                result.data.push_back(values[i]);
            return result;
        }
        if (rsResult.status == ecc::RsStatus::Corrected ||
            !erasures.empty()) {
            ++result.beatsCorrected;
            anyCorrected = true;
        }
        for (unsigned i = 0; i < n; ++i) {
            values[i] &= ~(std::uint64_t{0xFF} << (8 * beat));
            values[i] |= static_cast<std::uint64_t>(received[i])
                         << (8 * beat);
        }
    }

    result.outcome = anyCorrected ? ChipkillOutcome::Corrected
                                  : ChipkillOutcome::Clean;
    if (anyCorrected)
        counters_.inc("corrected");
    for (unsigned i = 0; i < k; ++i)
        result.data.push_back(values[i]);
    return result;
}

} // namespace xed
