#include "xed/xed_system.hh"

#include <stdexcept>

namespace xed
{

XedSystem::XedSystem(const XedSystemConfig &config) : config_(config)
{
    if (!isPow2(config_.channels) || !isPow2(config_.ranksPerChannel))
        throw std::invalid_argument(
            "XedSystem: channel/rank counts must be powers of two");
    Rng seeder(config_.seed);
    for (unsigned c = 0; c < config_.channels; ++c) {
        for (unsigned r = 0; r < config_.ranksPerChannel; ++r) {
            auto cfg = config_.controller;
            cfg.seed = seeder.next();
            controllers_.push_back(
                std::make_unique<XedController>(cfg));
        }
    }
}

std::uint64_t
XedSystem::capacityBytes() const
{
    const auto &g = config_.controller.geometry;
    // 8 data chips x 8 bytes per word per line.
    return static_cast<std::uint64_t>(config_.channels) *
           config_.ranksPerChannel * g.words() * 64;
}

SystemAddress
XedSystem::decode(std::uint64_t physAddr) const
{
    const auto &g = config_.controller.geometry;
    SystemAddress out;
    std::uint64_t a = physAddr >> 6; // drop the byte offset
    out.channel = static_cast<unsigned>(a & (config_.channels - 1));
    a /= config_.channels;
    out.line.bank = static_cast<unsigned>(a & lowMask(g.bankBits));
    a >>= g.bankBits;
    out.line.col = static_cast<unsigned>(a & lowMask(g.colBits));
    a >>= g.colBits;
    out.rank =
        static_cast<unsigned>(a & (config_.ranksPerChannel - 1));
    a /= config_.ranksPerChannel;
    out.line.row = static_cast<unsigned>(a & lowMask(g.rowBits));
    return out;
}

std::uint64_t
XedSystem::encode(const SystemAddress &addr) const
{
    const auto &g = config_.controller.geometry;
    std::uint64_t a = addr.line.row;
    a = a * config_.ranksPerChannel + addr.rank;
    a = (a << g.colBits) | addr.line.col;
    a = (a << g.bankBits) | addr.line.bank;
    a = a * config_.channels + addr.channel;
    return a << 6;
}

XedController &
XedSystem::controller(unsigned channel, unsigned rank)
{
    return *controllers_[channel * config_.ranksPerChannel + rank];
}

void
XedSystem::writeLine(std::uint64_t physAddr,
                     std::span<const std::uint64_t, 8> data)
{
    const auto addr = decode(physAddr);
    controller(addr.channel, addr.rank).writeLine(addr.line, data);
}

LineReadResult
XedSystem::readLine(std::uint64_t physAddr)
{
    const auto addr = decode(physAddr);
    return controller(addr.channel, addr.rank).readLine(addr.line);
}

std::uint64_t
XedSystem::totalCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &ctrl : controllers_)
        total += ctrl->counters().get(name);
    return total;
}

} // namespace xed
