/**
 * @file
 * The XED memory controller for one 9-chip ECC-DIMM rank (Section V).
 *
 * Write path: the 9th chip stores the RAID-3 XOR parity of the eight
 * data chips (Equation 1). Read path, per the paper:
 *
 *  0 catch-words + parity OK      -> clean data.
 *  0 catch-words + parity FAIL    -> an on-die detection escape:
 *        Inter-Line Fault Diagnosis (stream the 128-line row, count
 *        catch-words per chip, 10% threshold, record in the FCT), then
 *        Intra-Line Fault Diagnosis (buffer the line, probe with
 *        all-zeros / all-ones write-read, restore); a located chip is
 *        rebuilt from parity, otherwise DUE (Section VI).
 *  1 catch-word                   -> erasure: rebuild that chip from
 *        parity (Equation 3). If the rebuilt value equals the
 *        catch-word, a data/catch-word collision occurred; the
 *        controller re-randomizes every CWR (Section V-D).
 *  2+ catch-words                 -> serial mode (Section VII-B):
 *        clear XED-Enable, re-read (chips transmit on-die-corrected
 *        data), restore XED-Enable, verify parity; on mismatch run the
 *        diagnosis pipeline as above.
 *
 * Chips permanently marked faulty (via a unanimous full FCT) are
 * treated as erasures on every access without re-diagnosis.
 */

#ifndef XED_XED_CONTROLLER_HH
#define XED_XED_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/inline_vec.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "dram/chip.hh"
#include "ecc/crc8atm.hh"
#include "xed/fct.hh"

namespace xed
{

/** Outcome of one cache-line read through the XED controller. */
enum class ReadOutcome
{
    Clean,                  ///< no catch-words, parity satisfied
    CorrectedErasure,       ///< one catch-word, rebuilt from parity
    CorrectedParityChip,    ///< the parity chip itself sent a catch-word
    CollisionCorrected,     ///< rebuilt value equaled the catch-word
    MultiCatchWordOnDie,    ///< serial-mode re-read, on-die ECC fixed all
    InterLineCorrected,     ///< diagnosis located the chip; rebuilt
    IntraLineCorrected,     ///< write/read-back probe located the chip
    MarkedChipCorrected,    ///< chip pre-marked faulty, rebuilt directly
    DetectedUncorrectable,  ///< DUE: parity mismatch, diagnosis failed
};

/** One read transaction's result. */
struct LineReadResult
{
    std::array<std::uint64_t, 8> data{};
    ReadOutcome outcome = ReadOutcome::Clean;
    /** Chips whose transmitted value matched their catch-word. */
    InlineVec<unsigned, 9> catchWordChips;
    /** Chip rebuilt from parity, if any (8 = parity chip). */
    std::optional<unsigned> rebuiltChip;

    bool
    uncorrectable() const
    {
        return outcome == ReadOutcome::DetectedUncorrectable;
    }
};

/** Which (72,64) code the chips run on-die (Section V-E). */
enum class OnDieCodeKind
{
    Crc8Atm, ///< the paper's recommendation: 100% burst detection
    Hamming, ///< conventional SECDED; misses ~half of 4/8-bursts
};

/** Configuration knobs for the controller. */
struct XedControllerConfig
{
    dram::ChipGeometry geometry{};
    unsigned fctEntries = 8;
    /** Inter-line diagnosis threshold (fraction of faulty lines). */
    double interLineThreshold = 0.10;
    std::uint64_t seed = 0x9E0123;
    OnDieCodeKind onDieCode = OnDieCodeKind::Crc8Atm;
};

class XedController
{
  public:
    static constexpr unsigned numDataChips = 8;
    static constexpr unsigned parityChipIndex = 8;
    static constexpr unsigned numChips = 9;

    explicit XedController(const XedControllerConfig &config = {});

    /** Write a 64-byte line: 8 data words plus RAID-3 parity. */
    void writeLine(const dram::WordAddr &addr,
                   std::span<const std::uint64_t, numDataChips> data);

    /** Read a 64-byte line through the full XED pipeline. */
    LineReadResult readLine(const dram::WordAddr &addr);

    /**
     * Batched read of a block of lines (DESIGN.md section 4j): gathers
     * all 9 chips' raw codewords into transposed byte planes, runs one
     * vector on-die syndrome pass per chip, and serves the lines the
     * batch proves clean (zero syndromes, parity satisfied, no value
     * colliding with a live catch-word) directly; every flagged line
     * falls back to the scalar readLine() pipeline, in line order, so
     * counters, RNG draws (catch-word regenerations) and results are
     * byte-identical to calling readLine(addrs[c]) for each c.
     */
    void readMany(std::span<const dram::WordAddr> addrs,
                  std::span<LineReadResult> results);

    /** Direct access to a chip for fault injection (8 = parity chip). */
    dram::Chip &chip(unsigned index) { return *chips_[index]; }
    const dram::Chip &chip(unsigned index) const { return *chips_[index]; }

    /** Current catch-word of chip @p index (controller's copy). */
    std::uint64_t catchWordOf(unsigned index) const
    {
        return catchWords_[index];
    }

    /** Re-randomize every chip's catch-word (collision response). */
    void regenerateCatchWords();

    /** Chip permanently marked faulty via the FCT, if any. */
    std::optional<unsigned> markedFaultyChip() const { return markedChip_; }

    const FaultyRowChipTracker &fct() const { return fct_; }
    const CounterSet &counters() const { return counters_; }
    const ecc::Secded7264 &onDieCode() const { return *onDieCode_; }

  private:
    struct BusSnapshot
    {
        std::array<std::uint64_t, numChips> values{};
        std::array<bool, numChips> isCatchWord{};
        unsigned catchWordCount = 0;
    };

    /** Read all 9 chips once and classify catch-words. */
    BusSnapshot readBus(const dram::WordAddr &addr);

    /** Parity check over a bus snapshot (Equation 1). */
    static bool paritySatisfied(const BusSnapshot &bus);

    /** Rebuild chip @p erased from the other 8 values (Equation 3). */
    static std::uint64_t rebuild(const BusSnapshot &bus, unsigned erased);

    /** Inter-Line Fault Diagnosis over the row of @p addr. */
    std::optional<unsigned> interLineDiagnosis(const dram::WordAddr &addr);

    /** Intra-Line Fault Diagnosis on @p addr (destructive probe). */
    std::optional<unsigned> intraLineDiagnosis(const dram::WordAddr &addr);

    /** Shared tail handling for the diagnosis pipeline. */
    LineReadResult diagnoseAndCorrect(const dram::WordAddr &addr,
                                      const BusSnapshot &bus);

    LineReadResult finishRebuild(const BusSnapshot &bus, unsigned chip,
                                 ReadOutcome outcome);

    XedControllerConfig config_;
    std::unique_ptr<ecc::Secded7264> onDieCode_;
    Rng rng_;
    std::array<std::unique_ptr<dram::Chip>, numChips> chips_;
    std::array<std::uint64_t, numChips> catchWords_{};
    FaultyRowChipTracker fct_;
    std::optional<unsigned> markedChip_;
    CounterSet counters_;
};

} // namespace xed

#endif // XED_XED_CONTROLLER_HH
