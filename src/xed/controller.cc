#include "xed/controller.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ecc/hamming7264.hh"

namespace xed
{

XedController::XedController(const XedControllerConfig &config)
    : config_(config), rng_(config.seed), fct_(config.fctEntries)
{
    if (config_.onDieCode == OnDieCodeKind::Hamming)
        onDieCode_ = std::make_unique<ecc::Hamming7264>();
    else
        onDieCode_ = std::make_unique<ecc::Crc8Atm>();
    for (unsigned i = 0; i < numChips; ++i) {
        chips_[i] = std::make_unique<dram::Chip>(
            config_.geometry, *onDieCode_, rng_.next());
        chips_[i]->setXedEnable(true);
    }
    // Boot-time parity initialization: for never-written addresses the
    // parity chip reads as the XOR of the data chips' background
    // contents, exactly as if the whole module had been scrubbed once.
    chips_[parityChipIndex]->setBackgroundData(
        [this](std::uint64_t packed) {
            const auto addr = dram::unpackWordAddr(config_.geometry,
                                                   packed);
            std::uint64_t parity = 0;
            for (unsigned i = 0; i < numDataChips; ++i)
                parity ^= chips_[i]->expectedData(addr);
            return parity;
        });
    regenerateCatchWords();
}

void
XedController::regenerateCatchWords()
{
    for (unsigned i = 0; i < numChips; ++i) {
        catchWords_[i] = rng_.next();
        chips_[i]->setCatchWord(catchWords_[i]);
    }
    counters_.inc("catch_word_regenerations");
}

void
XedController::writeLine(const dram::WordAddr &addr,
                         std::span<const std::uint64_t, numDataChips> data)
{
    std::uint64_t parity = 0;
    for (unsigned i = 0; i < numDataChips; ++i) {
        chips_[i]->write(addr, data[i]);
        parity ^= data[i];
    }
    chips_[parityChipIndex]->write(addr, parity);
    counters_.inc("writes");
}

XedController::BusSnapshot
XedController::readBus(const dram::WordAddr &addr)
{
    BusSnapshot bus;
    for (unsigned i = 0; i < numChips; ++i) {
        const auto r = chips_[i]->read(addr);
        bus.values[i] = r.value;
        // The controller recognizes catch-words by value comparison
        // against its own CWR copies; it cannot see r.sentCatchWord.
        bus.isCatchWord[i] = (r.value == catchWords_[i]);
        if (bus.isCatchWord[i])
            ++bus.catchWordCount;
    }
    return bus;
}

bool
XedController::paritySatisfied(const BusSnapshot &bus)
{
    std::uint64_t acc = bus.values[parityChipIndex];
    for (unsigned i = 0; i < numDataChips; ++i)
        acc ^= bus.values[i];
    return acc == 0;
}

std::uint64_t
XedController::rebuild(const BusSnapshot &bus, unsigned erased)
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < numChips; ++i)
        if (i != erased)
            value ^= bus.values[i];
    return value;
}

LineReadResult
XedController::finishRebuild(const BusSnapshot &bus, unsigned chip,
                             ReadOutcome outcome)
{
    LineReadResult result;
    result.outcome = outcome;
    result.rebuiltChip = chip;
    for (unsigned i = 0; i < numDataChips; ++i)
        result.data[i] = bus.values[i];
    if (chip != parityChipIndex)
        result.data[chip] = rebuild(bus, chip);
    counters_.inc("rebuilds");
    return result;
}

std::optional<unsigned>
XedController::interLineDiagnosis(const dram::WordAddr &addr)
{
    counters_.inc("inter_line_runs");
    // Stream the whole row buffer (128 lines) and count, per chip, how
    // many lines transmit that chip's catch-word.
    std::array<unsigned, numChips> faultyLines{};
    const unsigned cols = config_.geometry.colsPerRow();
    for (unsigned col = 0; col < cols; ++col) {
        dram::WordAddr lineAddr{addr.bank, addr.row, col};
        const auto bus = readBus(lineAddr);
        for (unsigned i = 0; i < numChips; ++i)
            faultyLines[i] += bus.isCatchWord[i] ? 1 : 0;
    }
    const unsigned threshold = static_cast<unsigned>(
        std::ceil(config_.interLineThreshold * cols));
    unsigned best = 0;
    for (unsigned i = 1; i < numChips; ++i)
        if (faultyLines[i] > faultyLines[best])
            best = i;
    if (faultyLines[best] < threshold)
        return std::nullopt;
    if (fct_.record(addr.bank, addr.row, best)) {
        // Full and unanimous: a column/bank-class failure. Mark the
        // chip permanently faulty (Section VI-A).
        markedChip_ = best;
        counters_.inc("chips_marked_faulty");
    }
    return best;
}

std::optional<unsigned>
XedController::intraLineDiagnosis(const dram::WordAddr &addr)
{
    counters_.inc("intra_line_runs");
    // Buffer the line (with XED disabled so chips supply their best
    // on-die-corrected data rather than catch-words), probe with
    // all-zeros / all-ones, then restore. Permanent faults reappear
    // after the probe writes; transient faults are cleared by them and
    // stay invisible (hence the DUE path of Section VIII).
    for (auto &chip : chips_)
        chip->setXedEnable(false);
    const auto buffered = readBus(addr);
    for (auto &chip : chips_)
        chip->setXedEnable(true);
    std::array<bool, numChips> mismatch{};
    for (const std::uint64_t pattern :
         {std::uint64_t{0}, ~std::uint64_t{0}}) {
        for (unsigned i = 0; i < numChips; ++i)
            chips_[i]->write(addr, pattern);
        const auto probe = readBus(addr);
        for (unsigned i = 0; i < numChips; ++i)
            if (probe.values[i] != pattern || probe.isCatchWord[i])
                mismatch[i] = true;
    }
    for (unsigned i = 0; i < numChips; ++i)
        chips_[i]->write(addr, buffered.values[i]);

    std::optional<unsigned> faulty;
    for (unsigned i = 0; i < numChips; ++i) {
        if (mismatch[i]) {
            if (faulty.has_value())
                return std::nullopt; // more than one chip: give up
            faulty = i;
        }
    }
    return faulty;
}

LineReadResult
XedController::diagnoseAndCorrect(const dram::WordAddr &addr,
                                  const BusSnapshot &bus)
{
    if (const auto chip = interLineDiagnosis(addr))
        return finishRebuild(bus, *chip, ReadOutcome::InterLineCorrected);
    if (const auto chip = intraLineDiagnosis(addr))
        return finishRebuild(bus, *chip, ReadOutcome::IntraLineCorrected);

    counters_.inc("due");
    LineReadResult result;
    result.outcome = ReadOutcome::DetectedUncorrectable;
    for (unsigned i = 0; i < numDataChips; ++i)
        result.data[i] = bus.values[i];
    return result;
}

LineReadResult
XedController::readLine(const dram::WordAddr &addr)
{
    counters_.inc("reads");
    auto bus = readBus(addr);

    // A chip already marked faulty is an erasure on every access.
    if (markedChip_.has_value()) {
        const unsigned marked = *markedChip_;
        unsigned otherCatchWords = 0;
        for (unsigned i = 0; i < numChips; ++i)
            if (i != marked && bus.isCatchWord[i])
                ++otherCatchWords;
        if (otherCatchWords > 0) {
            // Scaling faults elsewhere: serial-mode re-read so the
            // on-die ECC supplies corrected data for the other chips.
            counters_.inc("serial_mode");
            for (auto &chip : chips_)
                chip->setXedEnable(false);
            bus = readBus(addr);
            for (auto &chip : chips_)
                chip->setXedEnable(true);
        }
        return finishRebuild(bus, marked, ReadOutcome::MarkedChipCorrected);
    }

    if (bus.catchWordCount == 0) {
        if (paritySatisfied(bus)) {
            LineReadResult result;
            result.outcome = ReadOutcome::Clean;
            for (unsigned i = 0; i < numDataChips; ++i)
                result.data[i] = bus.values[i];
            return result;
        }
        // Parity mismatch without any catch-word: the on-die code
        // missed a multi-bit error (0.8% of patterns). Section VI.
        counters_.inc("ondie_detection_escapes");
        return diagnoseAndCorrect(addr, bus);
    }

    if (bus.catchWordCount == 1) {
        unsigned chip = 0;
        for (unsigned i = 0; i < numChips; ++i)
            if (bus.isCatchWord[i])
                chip = i;
        counters_.inc("single_catch_word");
        if (chip == parityChipIndex) {
            LineReadResult result;
            result.outcome = ReadOutcome::CorrectedParityChip;
            result.rebuiltChip = chip;
            result.catchWordChips = {chip};
            for (unsigned i = 0; i < numDataChips; ++i)
                result.data[i] = bus.values[i];
            return result;
        }
        auto result =
            finishRebuild(bus, chip, ReadOutcome::CorrectedErasure);
        result.catchWordChips = {chip};
        if (result.data[chip] == catchWords_[chip]) {
            // The rebuilt value *is* the catch-word: a data collision
            // (Section V-D1). The value is correct; re-randomize the
            // catch-words to push out the next collision.
            result.outcome = ReadOutcome::CollisionCorrected;
            counters_.inc("collisions");
            regenerateCatchWords();
        }
        return result;
    }

    // Two or more catch-words: serial mode (Section VII-B).
    counters_.inc("serial_mode");
    InlineVec<unsigned, numChips> flagged;
    for (unsigned i = 0; i < numChips; ++i)
        if (bus.isCatchWord[i])
            flagged.push_back(i);
    for (auto &chip : chips_)
        chip->setXedEnable(false);
    const auto reread = readBus(addr);
    for (auto &chip : chips_)
        chip->setXedEnable(true);

    if (paritySatisfied(reread)) {
        // All flagged chips held on-die-correctable (scaling) faults.
        LineReadResult result;
        result.outcome = ReadOutcome::MultiCatchWordOnDie;
        result.catchWordChips = std::move(flagged);
        for (unsigned i = 0; i < numDataChips; ++i)
            result.data[i] = reread.values[i];
        return result;
    }
    // A runtime chip failure is hiding among the scaling faults
    // (Section VII-C): locate it and rebuild from parity.
    auto result = diagnoseAndCorrect(addr, reread);
    result.catchWordChips = std::move(flagged);
    return result;
}

void
XedController::readMany(std::span<const dram::WordAddr> addrs,
                        std::span<LineReadResult> results)
{
    if (results.size() != addrs.size())
        throw std::invalid_argument(
            "XedController::readMany: result span size mismatch");
    const std::size_t count = addrs.size();
    // Per-chunk staging: 9 byte planes per chip (the transposed layout
    // the vector syndrome kernels consume) plus the extracted data.
    // All fixed-size stack arrays -- the batch path never allocates.
    constexpr std::size_t chunk = 128;
    alignas(64) std::uint8_t planes[numChips][9 * chunk];
    std::uint64_t values[numChips][chunk];
    std::uint8_t syn[chunk];
    std::uint8_t flagged[chunk];

    for (std::size_t base = 0; base < count; base += chunk) {
        const std::size_t m = std::min(chunk, count - base);
        std::fill(flagged, flagged + m, 0);
        for (unsigned i = 0; i < numChips; ++i) {
            const dram::Chip &device = *chips_[i];
            for (std::size_t c = 0; c < m; ++c) {
                const ecc::Word72 raw =
                    device.rawCodeword(addrs[base + c]);
                std::uint64_t lo = raw.lo;
                for (unsigned lane = 0; lane < 8; ++lane) {
                    planes[i][lane * chunk + c] =
                        static_cast<std::uint8_t>(lo & 0xFF);
                    lo >>= 8;
                }
                planes[i][8 * chunk + c] = raw.hi;
                values[i][c] = onDieCode_->extractData(raw);
            }
            onDieCode_->syndromeManySoa(planes[i], chunk, m, syn);
            for (std::size_t c = 0; c < m; ++c)
                flagged[c] |= syn[c];
        }
        // Parity precheck over the extracted values. With every on-die
        // syndrome zero each chip would transmit exactly this value, so
        // a zero XOR here is precisely readLine()'s clean-parity test.
        for (std::size_t c = 0; c < m; ++c) {
            std::uint64_t acc = 0;
            for (unsigned i = 0; i < numChips; ++i)
                acc ^= values[i][c];
            if (acc != 0)
                flagged[c] = 1;
        }
        // Emit in line order. A fallback line may regenerate the
        // catch-words or mark a chip faulty, changing how every LATER
        // line classifies, so the collision compare runs against the
        // live registers -- never a snapshot taken before the loop.
        for (std::size_t c = 0; c < m; ++c) {
            const std::size_t line = base + c;
            if (markedChip_.has_value() || flagged[c]) {
                results[line] = readLine(addrs[line]);
                continue;
            }
            bool collides = false;
            for (unsigned i = 0; i < numChips; ++i)
                collides |= values[i][c] == catchWords_[i];
            if (collides) {
                // Clean data that happens to equal a catch-word takes
                // the scalar erasure/serial machinery (Section V-D).
                results[line] = readLine(addrs[line]);
                continue;
            }
            counters_.inc("reads");
            LineReadResult &result = results[line];
            result = LineReadResult{};
            result.outcome = ReadOutcome::Clean;
            for (unsigned i = 0; i < numDataChips; ++i)
                result.data[i] = values[i][c];
        }
    }
}

} // namespace xed
