/**
 * @file
 * Faulty-row Chip Tracker (FCT), Section VI-A.
 *
 * A small hardware structure (4-8 entries) caching the result of
 * Inter-Line Fault Diagnosis: which chip was found faulty for a given
 * (bank, row). A single row failure populates one entry; a column or
 * bank failure quickly fills every entry with the same chip, at which
 * point that chip is permanently marked faulty and all subsequent
 * accesses reconstruct its data from parity without re-running the
 * expensive 128-read diagnosis.
 */

#ifndef XED_XED_FCT_HH
#define XED_XED_FCT_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace xed
{

class FaultyRowChipTracker
{
  public:
    struct Entry
    {
        unsigned bank = 0;
        unsigned row = 0;
        unsigned chip = 0;
    };

    explicit FaultyRowChipTracker(unsigned capacity = 8)
        : capacity_(capacity)
    {
        // One up-front allocation; record()'s push_back / FIFO erase
        // never reallocate, keeping diagnosis allocation-free.
        entries_.reserve(capacity_);
    }

    unsigned capacity() const { return capacity_; }
    unsigned size() const { return static_cast<unsigned>(entries_.size()); }

    /** Chip recorded for (bank,row), if any. */
    std::optional<unsigned> lookup(unsigned bank, unsigned row) const;

    /**
     * Record a diagnosis result. FIFO replacement when full. Returns
     * true if, after insertion, the tracker is full and every entry
     * points at the same chip -- the condition under which the
     * controller permanently marks that chip as faulty.
     */
    bool record(unsigned bank, unsigned row, unsigned chip);

    /** Chip every entry agrees on (only meaningful when full). */
    std::optional<unsigned> unanimousChip() const;

    void clear() { entries_.clear(); }

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    unsigned capacity_;
    std::vector<Entry> entries_;
};

} // namespace xed

#endif // XED_XED_FCT_HH
