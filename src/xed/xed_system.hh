/**
 * @file
 * System-level facade: the Table V memory system (4 channels x 2 ranks
 * of 9-chip XED DIMMs) behind a single physical-address interface.
 *
 * A downstream user adopting the library talks to this class: it
 * decodes 64B-line physical addresses into (channel, rank, bank, row,
 * column), routes to the per-rank XedController, and aggregates the
 * correction/diagnosis counters across the whole system.
 *
 * Address mapping (line-interleaved, low bits spread across channels
 * for bandwidth, then banks for bank-level parallelism):
 *
 *   bits [5:0]   byte offset within the 64B line
 *   bits [7:6]   channel
 *   bits [10:8]  bank
 *   bits [17:11] column (line within the row)
 *   bit  [18]    rank
 *   bits [33:19] row
 */

#ifndef XED_XED_XED_SYSTEM_HH
#define XED_XED_XED_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "xed/controller.hh"

namespace xed
{

/** Fully decoded location of one cache line. */
struct SystemAddress
{
    unsigned channel = 0;
    unsigned rank = 0;
    dram::WordAddr line{};

    friend bool
    operator==(const SystemAddress &a, const SystemAddress &b)
    {
        return a.channel == b.channel && a.rank == b.rank &&
               a.line == b.line;
    }
};

struct XedSystemConfig
{
    unsigned channels = 4;       ///< Table V
    unsigned ranksPerChannel = 2;
    XedControllerConfig controller{};
    std::uint64_t seed = 0x5E57EE;
};

class XedSystem
{
  public:
    explicit XedSystem(const XedSystemConfig &config = {});

    unsigned channels() const { return config_.channels; }
    unsigned ranksPerChannel() const { return config_.ranksPerChannel; }

    /** Total addressable bytes (channels x ranks x rank capacity). */
    std::uint64_t capacityBytes() const;

    /** Decode a line-aligned physical address. */
    SystemAddress decode(std::uint64_t physAddr) const;
    /** Inverse of decode (byte offset zero). */
    std::uint64_t encode(const SystemAddress &addr) const;

    /** Write one 64B line (8 x 64-bit words) at a physical address. */
    void writeLine(std::uint64_t physAddr,
                   std::span<const std::uint64_t, 8> data);

    /** Read one 64B line through the full XED pipeline. */
    LineReadResult readLine(std::uint64_t physAddr);

    /** The rank controller backing a location (fault-injection access). */
    XedController &controller(unsigned channel, unsigned rank);

    /** Sum of a named counter across every rank controller. */
    std::uint64_t totalCounter(const std::string &name) const;

  private:
    XedSystemConfig config_;
    std::vector<std::unique_ptr<XedController>> controllers_;
};

} // namespace xed

#endif // XED_XED_XED_SYSTEM_HH
