/**
 * @file
 * Lightweight in-process tracing: per-thread fixed-capacity ring
 * buffers of duration spans, exported as Chrome-trace/Perfetto JSON.
 *
 * Design constraints (the observability contract, DESIGN.md Section
 * 4f):
 *  - Zero cost when compiled out: building with -DXED_TRACE=0 turns
 *    every XED_TRACE_SPAN* macro into nothing.
 *  - Near-zero cost when compiled in but disabled (the default): a
 *    span construction is one relaxed atomic load; no clock is read
 *    and no buffer is touched.
 *  - Allocation-free steady state when enabled: each thread's ring
 *    buffer is preallocated at registration (the first span that
 *    thread records); recording a span is two steady_clock reads and
 *    one struct store into the ring. A full ring wraps, overwriting
 *    the oldest events and counting the overwrites, so the hot path
 *    never blocks or grows.
 *  - Determinism: tracing never draws from any Rng and never reorders
 *    work, so enabling it cannot change simulation results (pinned by
 *    the tracing-enabled golden tests).
 *
 * Runtime knobs (strict parses via common/env.hh):
 *   XED_TRACE=1         enable recording (0 or unset: disabled)
 *   XED_TRACE_BUFFER=N  ring capacity in events per thread
 *                       (default 16384, minimum 64)
 */

#ifndef XED_OBS_TRACE_HH
#define XED_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

/** Compile-time gate: -DXED_TRACE=0 compiles all span macros away. */
#ifndef XED_TRACE
#define XED_TRACE 1
#endif

namespace xed::obs
{

/** One completed duration span ("ph":"X" in the Chrome trace format).
 *  Name/category/argName must be string literals (or otherwise outlive
 *  the recorder): the ring stores only the pointers. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    /** Optional numeric payload; argName == nullptr means none. */
    const char *argName = nullptr;
    std::uint64_t arg = 0;
};

/**
 * Single-producer ring buffer owned by one thread. The head counter
 * uses release stores / acquire loads so a snapshot taken after the
 * producer thread has been joined (the only supported export point)
 * sees fully written events.
 */
class TraceBuffer
{
  public:
    TraceBuffer(std::uint32_t tid, std::size_t capacity)
        : tid_(tid), ring_(capacity)
    {
    }

    void
    record(const TraceEvent &event)
    {
        const std::uint64_t i = head_.load(std::memory_order_relaxed);
        ring_[i % ring_.size()] = event;
        head_.store(i + 1, std::memory_order_release);
    }

    std::uint32_t tid() const { return tid_; }
    /** Total events ever recorded (recorded - capacity = overwritten). */
    std::uint64_t recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }
    std::size_t capacity() const { return ring_.size(); }

  private:
    friend class TraceRecorder;

    std::uint32_t tid_;
    std::vector<TraceEvent> ring_;
    std::atomic<std::uint64_t> head_{0};
};

/**
 * Process-wide trace sink. Threads register lazily (first recorded
 * span) and keep their buffer for the recorder's lifetime, so spans
 * survive thread joins and can be exported afterwards. All methods
 * are thread-safe; record paths are lock-free after registration.
 */
class TraceRecorder
{
  public:
    static TraceRecorder &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    /** Runtime switch (the `xed_campaign trace` verb forces it on). */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Label this process in exported traces (Chrome-trace
     * "process_name" metadata + otherData.process). Distributed
     * campaign workers set their queue worker id here so a merged
     * Perfetto view of N worker traces attributes every span to the
     * worker that recorded it. Empty (the default) emits no metadata.
     */
    void setProcessLabel(const std::string &label);
    std::string processLabel() const;

    /** Nanoseconds since the recorder was constructed. */
    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** The calling thread's buffer, registered on first use. */
    TraceBuffer &buffer();

    /** Events currently held across all thread buffers. */
    std::size_t eventCount() const;
    /** Events lost to ring wrap-around across all thread buffers. */
    std::uint64_t droppedCount() const;

    /**
     * Chrome-trace JSON document ({"traceEvents":[...]}), events in
     * global start-time order, timestamps in microseconds. Loads
     * directly in Perfetto / chrome://tracing. Call only when no
     * thread is concurrently recording (after workers joined).
     */
    json::Value toJson() const;
    /** dump(toJson()) to @p path; false + *error on I/O failure. */
    bool exportTo(const std::string &path, std::string *error) const;

    /** Reset all ring heads (buffers stay registered). Tests only. */
    void clear();

    std::size_t capacityPerThread() const { return capacity_; }

  private:
    TraceRecorder();

    std::atomic<bool> enabled_{false};
    std::size_t capacity_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_; ///< guards buffers_ registration/export
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    std::string processLabel_; ///< guarded by mutex_
};

/**
 * RAII span: captures the start time on construction, records one
 * TraceEvent on destruction. When the recorder is disabled the
 * constructor is a single relaxed load and the destructor a null
 * check.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *cat,
               const char *argName = nullptr, std::uint64_t arg = 0)
    {
        TraceRecorder &recorder = TraceRecorder::instance();
        if (!recorder.enabled())
            return;
        recorder_ = &recorder;
        event_.name = name;
        event_.cat = cat;
        event_.argName = argName;
        event_.arg = arg;
        event_.startNs = recorder.nowNs();
    }

    ~ScopedSpan()
    {
        if (!recorder_)
            return;
        event_.durNs = recorder_->nowNs() - event_.startNs;
        recorder_->buffer().record(event_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceRecorder *recorder_ = nullptr;
    TraceEvent event_;
};

} // namespace xed::obs

#if XED_TRACE
#define XED_OBS_CONCAT2(a, b) a##b
#define XED_OBS_CONCAT(a, b) XED_OBS_CONCAT2(a, b)
/** Trace the enclosing scope as one span. */
#define XED_TRACE_SPAN(name, cat)                                      \
    ::xed::obs::ScopedSpan XED_OBS_CONCAT(xedTraceSpan_,               \
                                          __COUNTER__)(name, cat)
/** Same, with one named numeric argument shown in the trace viewer. */
#define XED_TRACE_SPAN_ARG(name, cat, argName, argValue)               \
    ::xed::obs::ScopedSpan XED_OBS_CONCAT(xedTraceSpan_, __COUNTER__)( \
        name, cat, argName, static_cast<std::uint64_t>(argValue))
#else
#define XED_TRACE_SPAN(name, cat)                                      \
    do {                                                               \
    } while (0)
#define XED_TRACE_SPAN_ARG(name, cat, argName, argValue)               \
    do {                                                               \
    } while (0)
#endif

#endif // XED_OBS_TRACE_HH
