/**
 * @file
 * Tolerant telemetry-sidecar reading and the histogram wire codec.
 *
 * Telemetry sidecars (`<out>.telemetry.jsonl`, the per-worker
 * `worker-<id>.telemetry.jsonl` files of a distributed queue) are
 * append-only JSONL streams written by live processes that may be
 * SIGKILLed mid-append. A reader therefore has to tolerate exactly
 * the damage the store's resume path tolerates: a torn final line.
 * It also has to tolerate records it does not know -- the sidecar
 * schema grows (new record types, new keys) and an old dashboard
 * pointed at a new fleet must degrade gracefully, never error.
 *
 * readTelemetryRecords() implements that contract once, shared by the
 * fleet status scanner, the HTTP endpoints and the tests: every
 * well-formed JSON *object* line is returned in file order; a torn or
 * otherwise unparseable line and any non-object line are skipped and
 * counted, not fatal. Only a file that cannot be opened at all is an
 * error.
 *
 * The histogram codec serializes a common/metrics Histogram as its
 * sparse nonzero buckets -- `[[bucketIndex, count], ...]` in ascending
 * index order -- which round-trips exactly (integer counts, integer
 * indices). Because Histogram::merge is plain per-bucket addition,
 * decoding every worker's encoded histogram and merging gives the
 * *exact* histogram a single process observing all samples would
 * hold: fleet-wide p50/p90/p99 come from real merged buckets, not
 * from averaging per-worker quantiles (which is statistically
 * meaningless).
 */

#ifndef XED_OBS_TELEMETRY_HH
#define XED_OBS_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/metrics.hh"

namespace xed::obs
{

/** What readTelemetryRecords() recovered from a sidecar file. */
struct TelemetryRecords
{
    /** False only when the file could not be opened/read at all. */
    bool ok = false;
    std::string error;
    /** Every well-formed JSON object line, in file order. */
    std::vector<json::Value> records;
    /** Torn, unparseable or non-object lines skipped (a kill
     *  mid-append tears at most the final line; more than one skip
     *  means genuine corruption, which is still not fatal here --
     *  observability must not go down because one worker's sidecar
     *  is damaged). */
    std::uint64_t skippedLines = 0;
};

/** Read a telemetry sidecar under the tolerance contract above. */
TelemetryRecords readTelemetryRecords(const std::string &path);

/** The last record of @p type (e.g. the newest cumulative "progress"
 *  sample), or nullptr. Records with no string "type" never match. */
const json::Value *lastRecordOfType(const TelemetryRecords &telemetry,
                                    std::string_view type);

/** Whether @p record is of string type @p type. */
bool recordIsType(const json::Value &record, std::string_view type);

/** Sparse encoding of a histogram: [[bucketIndex, count], ...] for
 *  the nonzero buckets in ascending index order. Exact round-trip. */
json::Value histogramJson(const Histogram &histogram);

/** Decode histogramJson() output, ADDING counts into @p histogram
 *  (so decoding N worker payloads into one histogram is the exact
 *  N-way Histogram::merge). Returns false on a malformed payload
 *  (wrong shape, out-of-range bucket index); @p histogram then holds
 *  whatever prefix was applied. */
bool histogramFromJson(const json::Value &payload, Histogram &histogram);

} // namespace xed::obs

#endif // XED_OBS_TELEMETRY_HH
