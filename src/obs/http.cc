#include "obs/http.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace xed::obs
{

namespace
{

const char *
reasonPhrase(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
    }
}

/** Read until the blank line ending the request head, or give up at
 *  a hard cap (nobody legitimately sends us an 8 KiB GET head). */
bool
readRequestHead(int fd, std::string &head)
{
    constexpr std::size_t cap = 8192;
    char buf[512];
    while (head.size() < cap) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            return false;
        head.append(buf, static_cast<std::size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            return true;
    }
    return false;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

HttpResponse
httpNotFound(const std::string &path)
{
    HttpResponse response;
    response.status = 404;
    response.body = "not found: " + path + "\n";
    return response;
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(std::uint16_t port, Handler handler,
                  std::string *error)
{
    handler_ = std::move(handler);
    stopping_.store(false);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (error)
            *error = "bind port " + std::to_string(port) + ": " +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 16) != 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0) {
        if (error)
            *error = std::string("getsockname: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    port_ = ntohs(addr.sin_port);
    listenFd_.store(fd);
    return true;
}

bool
HttpServer::serveOne()
{
    const int listenFd = listenFd_.load();
    if (listenFd < 0 || stopping_.load())
        return false;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0)
        return false; // stopped (socket closed under us) or transient
    if (stopping_.load()) {
        ::close(fd);
        return false;
    }

    std::string head;
    HttpResponse response;
    bool headOnly = false;
    if (!readRequestHead(fd, head)) {
        response.status = 400;
        response.body = "malformed request\n";
    } else {
        // "GET /path HTTP/1.x" -- method and path only.
        const std::size_t methodEnd = head.find(' ');
        const std::size_t pathEnd =
            methodEnd == std::string::npos
                ? std::string::npos
                : head.find_first_of(" \r\n", methodEnd + 1);
        const std::string method =
            methodEnd == std::string::npos ? ""
                                           : head.substr(0, methodEnd);
        std::string path =
            pathEnd == std::string::npos
                ? ""
                : head.substr(methodEnd + 1, pathEnd - methodEnd - 1);
        // Query strings are not part of any endpoint's contract;
        // strip them so "/status.json?x=1" still resolves.
        const std::size_t query = path.find('?');
        if (query != std::string::npos)
            path.resize(query);
        headOnly = method == "HEAD";
        if (path.empty()) {
            response.status = 400;
            response.body = "malformed request line\n";
        } else if (method != "GET" && method != "HEAD") {
            response.status = 405;
            response.body = "only GET is supported\n";
        } else {
            try {
                response = handler_(path);
            } catch (const std::exception &e) {
                response = HttpResponse{};
                response.status = 500;
                response.body =
                    std::string("handler failed: ") + e.what() + "\n";
            }
        }
    }

    std::string reply = "HTTP/1.0 " + std::to_string(response.status) +
                        " " + reasonPhrase(response.status) +
                        "\r\nContent-Type: " + response.contentType +
                        "\r\nContent-Length: " +
                        std::to_string(response.body.size()) +
                        "\r\nConnection: close\r\n\r\n";
    if (!headOnly)
        reply += response.body;
    sendAll(fd, reply);
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
    return true;
}

std::uint64_t
HttpServer::run()
{
    std::uint64_t served = 0;
    while (serveOne())
        ++served;
    return served;
}

void
HttpServer::stop()
{
    stopping_.store(true);
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0) {
        // Both calls are async-signal-safe; shutdown unblocks a
        // concurrent accept(2) on platforms where close alone
        // would not.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace xed::obs
