/**
 * @file
 * A tiny dependency-free blocking HTTP server for observability
 * endpoints (`xed_campaign serve`: /status.json, /metrics, /).
 *
 * Scope is deliberately minimal -- this is an operator dashboard for
 * a handful of humans and one Prometheus scraper, not a web server:
 *
 *  - HTTP/1.0 semantics: one request per connection, `Connection:
 *    close`, no keep-alive, no chunked encoding.
 *  - GET (and HEAD, answered without a body) only; anything else is
 *    405. Request headers are read and discarded; bodies are not
 *    supported (a 501-free simplification: GET/HEAD have none).
 *  - Single-threaded accept loop: requests are served strictly one
 *    at a time. A handler is a pure function of the request path, so
 *    there is no shared mutable state to race on.
 *  - The handler never sees the connection: it maps a path string to
 *    (status, content type, body) and the server does the rest.
 *
 * stop() is async-signal-safe (shutdown + close on the listening
 * socket), so a SIGINT/SIGTERM handler can end run() cleanly -- the
 * blocked accept(2) fails, the loop notices the stop flag and
 * returns. Binding port 0 picks an ephemeral port; port() reports
 * the bound one so scripts can scrape a server they just spawned.
 */

#ifndef XED_OBS_HTTP_HH
#define XED_OBS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace xed::obs
{

struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/** 404 with a plain-text body naming the path. */
HttpResponse httpNotFound(const std::string &path);

class HttpServer
{
  public:
    /** Map a request path ("/status.json") to a response. Called on
     *  the accept thread, one request at a time. */
    using Handler = std::function<HttpResponse(const std::string &path)>;

    ~HttpServer();

    /**
     * Bind and listen on @p port (0 = ephemeral) on all interfaces.
     * Returns false with @p error on failure; on success port()
     * reports the actually bound port.
     */
    bool start(std::uint16_t port, Handler handler, std::string *error);

    /** Serve requests until stop(). Returns the number served. */
    std::uint64_t run();

    /**
     * Serve exactly one connection (used by tests and, in a loop, by
     * run()). Blocks in accept(2); returns false when the server was
     * stopped or accept failed.
     */
    bool serveOne();

    /** Unblock run()/serveOne() and release the socket. Safe to call
     *  from a signal handler or another thread. */
    void stop();

    std::uint16_t port() const { return port_; }
    bool running() const { return listenFd_.load() >= 0; }

  private:
    Handler handler_;
    std::atomic<int> listenFd_{-1};
    std::atomic<bool> stopping_{false};
    std::uint16_t port_ = 0;
};

} // namespace xed::obs

#endif // XED_OBS_HTTP_HH
