#include "obs/trace.hh"

#include <algorithm>
#include <fstream>

#include "common/env.hh"

namespace xed::obs
{

namespace
{

constexpr std::size_t defaultCapacity = 16384;
constexpr std::size_t minCapacity = 64;

std::size_t
capacityFromEnv()
{
    // Strict parse: a mistyped XED_TRACE_BUFFER aborts instead of
    // silently tracing with the default ring size.
    if (const auto value = envU64("XED_TRACE_BUFFER"))
        return static_cast<std::size_t>(
            std::max<std::uint64_t>(*value, minCapacity));
    return defaultCapacity;
}

} // namespace

TraceRecorder::TraceRecorder()
    : capacity_(capacityFromEnv()),
      epoch_(std::chrono::steady_clock::now())
{
    // XED_TRACE=1 arms recording for the whole process; the campaign
    // `trace` verb and tests can also flip it via setEnabled().
    if (const auto value = envU64("XED_TRACE"))
        enabled_.store(*value != 0, std::memory_order_relaxed);
}

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::setProcessLabel(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    processLabel_ = label;
}

std::string
TraceRecorder::processLabel() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return processLabel_;
}

TraceBuffer &
TraceRecorder::buffer()
{
    // One registration (and one allocation) per thread, ever; the raw
    // pointer stays valid because buffers are never destroyed before
    // process exit. Steady-state record() never takes the mutex.
    thread_local TraceBuffer *cached = nullptr;
    if (!cached) {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto tid = static_cast<std::uint32_t>(buffers_.size());
        buffers_.push_back(
            std::make_unique<TraceBuffer>(tid, capacity_));
        cached = buffers_.back().get();
    }
    return *cached;
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const auto &buffer : buffers_)
        count += static_cast<std::size_t>(std::min<std::uint64_t>(
            buffer->recorded(), buffer->capacity()));
    return count;
}

std::uint64_t
TraceRecorder::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &buffer : buffers_) {
        const std::uint64_t recorded = buffer->recorded();
        if (recorded > buffer->capacity())
            dropped += recorded - buffer->capacity();
    }
    return dropped;
}

json::Value
TraceRecorder::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Gather a snapshot of every ring, then sort by start time so the
    // exported file reads chronologically (Perfetto accepts any order;
    // sorted output is also deterministic for a deterministic run).
    std::vector<std::pair<const TraceEvent *, std::uint32_t>> events;
    std::uint64_t dropped = 0;
    for (const auto &buffer : buffers_) {
        const std::uint64_t recorded = buffer->recorded();
        const std::size_t held = static_cast<std::size_t>(
            std::min<std::uint64_t>(recorded, buffer->capacity()));
        if (recorded > buffer->capacity())
            dropped += recorded - buffer->capacity();
        for (std::uint64_t i = recorded - held; i < recorded; ++i)
            events.emplace_back(
                &buffer->ring_[i % buffer->ring_.size()],
                buffer->tid());
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const auto &a, const auto &b) {
                         return a.first->startNs < b.first->startNs;
                     });

    auto traceEvents = json::Value::array();
    if (!processLabel_.empty()) {
        // Chrome-trace metadata record: names this process in the
        // viewer so merged multi-worker traces stay attributable.
        auto meta = json::Value::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        auto args = json::Value::object();
        args.set("name", processLabel_);
        meta.set("args", std::move(args));
        traceEvents.push(std::move(meta));
    }
    for (const auto &[event, tid] : events) {
        auto entry = json::Value::object();
        entry.set("name", event->name);
        entry.set("cat", event->cat);
        entry.set("ph", "X");
        entry.set("ts", static_cast<double>(event->startNs) / 1000.0);
        entry.set("dur", static_cast<double>(event->durNs) / 1000.0);
        entry.set("pid", 1);
        entry.set("tid", tid);
        if (event->argName) {
            auto args = json::Value::object();
            args.set(event->argName, event->arg);
            entry.set("args", std::move(args));
        }
        traceEvents.push(std::move(entry));
    }

    auto doc = json::Value::object();
    doc.set("traceEvents", std::move(traceEvents));
    doc.set("displayTimeUnit", "ms");
    auto other = json::Value::object();
    other.set("droppedEvents", dropped);
    other.set("capacityPerThread", std::uint64_t{capacity_});
    if (!processLabel_.empty())
        other.set("process", processLabel_);
    doc.set("otherData", std::move(other));
    return doc;
}

bool
TraceRecorder::exportTo(const std::string &path,
                        std::string *error) const
{
    XED_TRACE_SPAN("trace.export", "obs");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open trace output " + path;
        return false;
    }
    out << json::dump(toJson()) << '\n';
    out.flush();
    if (!out) {
        if (error)
            *error = "write failed on " + path;
        return false;
    }
    return true;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buffer : buffers_)
        buffer->head_.store(0, std::memory_order_release);
}

} // namespace xed::obs
