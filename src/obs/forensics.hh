/**
 * @file
 * Failure-forensics attribution for the reliability Monte-Carlo.
 *
 * The paper's headline claims rest on WHICH fault kinds defeat which
 * scheme (large-granularity faults defeating bit-level SECDED, Fig. 1;
 * catch-word collisions bounding XED's SDC rate, Table II). A bare
 * failure count cannot answer that, so every scheme evaluator now
 * attributes each failure with:
 *
 *   - the failure class (SDC: consumed silently; DUE: detected but
 *     uncorrectable / data loss),
 *   - the set of fault kinds (granularities) of the contributing
 *     events, as a bitmask over faultsim::FaultKind, and
 *   - the detection outcome: what the last line of defense saw.
 *
 * FailureAttribution aggregates those per scheme cell as plain
 * fixed-size integer arrays: recording is two array increments (no
 * allocation, no RNG), merging is exact integer addition (associative
 * and commutative, same discipline as RunningStat::merge), so shard
 * merges reproduce a whole-run aggregate bit for bit.
 *
 * This header deliberately depends only on the standard library: the
 * fault-kind bitmask is an opaque unsigned here, and faultsim (which
 * owns FaultKind) depends on obs, not the reverse.
 */

#ifndef XED_OBS_FORENSICS_HH
#define XED_OBS_FORENSICS_HH

#include <array>
#include <cstdint>

namespace xed::obs
{

enum class FailureClass : std::uint8_t
{
    Sdc, ///< silent data corruption: wrong data consumed, no signal
    Due, ///< detected uncorrectable error / declared data loss
};
constexpr unsigned numFailureClasses = 2;
const char *failureClassName(FailureClass cls);

/** What the last code in the path observed when the system failed. */
enum class DetectionOutcome : std::uint8_t
{
    None,           ///< no code anywhere saw anything
    RawPassthrough, ///< on-die ECC flagged a DUE; a non-ECC DIMM
                    ///< forwarded the raw word to the consumer
    DimmDetect,     ///< DIMM-level code (SECDED/Chipkill) flagged an
                    ///< uncorrectable pattern
    CatchWord,      ///< XED catch-word recognized the faulty chip(s)
                    ///< but the erasure budget was exceeded
    Collision,      ///< the error pattern aliased a valid on-die
                    ///< codeword (catch-word collision / escape)
    Miscorrection,  ///< a code corrected the wrong symbol
    ParityReconstruction, ///< XED's RAID-3 parity rebuild was
                          ///< over-subscribed (>= 2 erasures on one
                          ///< parity)
};
constexpr unsigned numDetectionOutcomes = 7;
const char *detectionOutcomeName(DetectionOutcome outcome);

/**
 * Per-scheme-cell attribution counters. The kind mask indexes a dense
 * array (bit k = fault kind k), sized for up to 7 kinds -- faultsim
 * static_asserts its FaultKind count fits.
 */
struct FailureAttribution
{
    static constexpr unsigned maxKindMasks = 128; // 2^7 kind subsets

    /** byClassKinds[class][kindsMask] = failed systems attributed to
     *  exactly that contributing-kind combination. */
    std::array<std::array<std::uint64_t, maxKindMasks>,
               numFailureClasses>
        byClassKinds{};
    /** byOutcome[outcome] = failed systems with that detection
     *  outcome. */
    std::array<std::uint64_t, numDetectionOutcomes> byOutcome{};

    void
    record(FailureClass cls, unsigned kindsMask,
           DetectionOutcome outcome)
    {
        ++byClassKinds[static_cast<unsigned>(cls)]
                      [kindsMask % maxKindMasks];
        ++byOutcome[static_cast<unsigned>(outcome)];
    }

    /** Exact integer fold; order-insensitive. */
    void
    merge(const FailureAttribution &other)
    {
        for (unsigned c = 0; c < numFailureClasses; ++c)
            for (unsigned m = 0; m < maxKindMasks; ++m)
                byClassKinds[c][m] += other.byClassKinds[c][m];
        for (unsigned o = 0; o < numDetectionOutcomes; ++o)
            byOutcome[o] += other.byOutcome[o];
    }

    /** Total attributed failures (== the failure counters' sum when
     *  every failure was recorded exactly once). */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &perClass : byClassKinds)
            for (const std::uint64_t count : perClass)
                sum += count;
        return sum;
    }
};

} // namespace xed::obs

#endif // XED_OBS_FORENSICS_HH
