#include "obs/forensics.hh"

namespace xed::obs
{

const char *
failureClassName(FailureClass cls)
{
    switch (cls) {
      case FailureClass::Sdc: return "sdc";
      case FailureClass::Due: return "due";
    }
    return "?";
}

const char *
detectionOutcomeName(DetectionOutcome outcome)
{
    switch (outcome) {
      case DetectionOutcome::None: return "none";
      case DetectionOutcome::RawPassthrough: return "raw-passthrough";
      case DetectionOutcome::DimmDetect: return "dimm-detect";
      case DetectionOutcome::CatchWord: return "catch-word";
      case DetectionOutcome::Collision: return "collision";
      case DetectionOutcome::Miscorrection: return "miscorrection";
      case DetectionOutcome::ParityReconstruction:
        return "parity-reconstruction";
    }
    return "?";
}

} // namespace xed::obs
