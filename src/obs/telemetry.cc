#include "obs/telemetry.hh"

#include <fstream>
#include <sstream>

namespace xed::obs
{

TelemetryRecords
readTelemetryRecords(const std::string &path)
{
    TelemetryRecords out;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.error = "cannot open " + path;
        return out;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        out.error = "read failed on " + path;
        return out;
    }
    const std::string bytes = buffer.str();

    std::size_t start = 0;
    while (start < bytes.size()) {
        std::size_t newline = bytes.find('\n', start);
        // A file not ending in '\n' was torn mid-append: the final
        // partial line is damage by definition, but try to parse it
        // anyway -- only the trailing newline may be what is missing,
        // in which case the record itself is complete.
        const bool torn = newline == std::string::npos;
        if (torn)
            newline = bytes.size();
        const std::string_view line(bytes.data() + start,
                                    newline - start);
        start = newline + (torn ? 0 : 1);
        if (torn)
            start = bytes.size();
        if (line.empty())
            continue;
        auto record = json::parse(line, nullptr);
        if (!record || !record->isObject()) {
            ++out.skippedLines;
            continue;
        }
        out.records.push_back(std::move(*record));
    }
    out.ok = true;
    return out;
}

bool
recordIsType(const json::Value &record, std::string_view type)
{
    const json::Value *field = record.find("type");
    return field && field->isString() && field->asString() == type;
}

const json::Value *
lastRecordOfType(const TelemetryRecords &telemetry,
                 std::string_view type)
{
    for (auto it = telemetry.records.rbegin();
         it != telemetry.records.rend(); ++it) {
        if (recordIsType(*it, type))
            return &*it;
    }
    return nullptr;
}

json::Value
histogramJson(const Histogram &histogram)
{
    auto buckets = json::Value::array();
    for (unsigned i = 0; i < Histogram::bucketCount; ++i) {
        const std::uint64_t count = histogram.bucket(i);
        if (!count)
            continue;
        auto pair = json::Value::array();
        pair.push(i);
        pair.push(count);
        buckets.push(std::move(pair));
    }
    return buckets;
}

bool
histogramFromJson(const json::Value &payload, Histogram &histogram)
{
    if (!payload.isArray())
        return false;
    for (const json::Value &pair : payload.items()) {
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isIntegral() || !pair.at(1).isIntegral() ||
            pair.at(0).asDouble() < 0 || pair.at(1).asDouble() < 0)
            return false;
        const std::uint64_t index = pair.at(0).asUint();
        if (index >= Histogram::bucketCount)
            return false;
        // addCount: replay the bucket directly -- update() would
        // re-derive the index from a representative value and any
        // rounding there would break the exact-merge guarantee.
        histogram.addCount(static_cast<unsigned>(index),
                           pair.at(1).asUint());
    }
    return true;
}

} // namespace xed::obs
