/**
 * @file
 * Declarative experiment specs for the campaign runner.
 *
 * A CampaignSpec is the JSON description of one measurement campaign:
 * which correction schemes (or on-die codes) to evaluate, how many
 * Monte-Carlo systems (or detection trials), the seed, FIT-rate
 * overrides, and an optional sweep axis. The runner expands a spec
 * into a deterministic shard plan -- the fixed, totally ordered list
 * of work units whose results form the JSONL store -- so a spec plus a
 * seed fully determines the result file, byte for byte.
 *
 * Spec schema (strict: unknown keys are rejected):
 *
 *   {
 *     "name": "fig07",              // required, [A-Za-z0-9_.-]
 *     "kind": "reliability",        // or "detection"; default reliability
 *     "seed": 61799,                // required
 *     // reliability campaigns:
 *     "schemes": ["secded", "xed"], // required; schemeKindName() names
 *     "systems": 1000000,           // per scheme per sweep point
 *     "shardSystems": 10000,        // systems per shard (resume grain)
 *     "years": 7,                   // simulated lifetime
 *     "channels": 4,
 *     "scrubIntervalHours": 0,
 *     "sampler": "knuth",           // or "invcdf"; Poisson count draw

 *     "onDie": {"present": true, "scalingRate": 0,
 *               "detectionEscapeProb": 0.008},
 *     "fitOverrides": {"single-bit": {"transient": 14.2,
 *                                     "permanent": 18.6}, ...},
 *     "sweep": {"parameter": "scalingRate", "values": [1e-6, 1e-4]},
 *     // detection campaigns:
 *     "codes": ["hamming7264", "crc8atm"],
 *     "patterns": ["random", "burst"],
 *     "maxWeight": 8,               // error weights 1..maxWeight
 *     "trials": 200000,             // per (code, pattern, weight) cell
 *     "shardTrials": 50000,
 *     // fleet campaigns (kind "fleet" -- see fleet/fleet.hh):
 *     "years": 7,                   // horizon, as for reliability
 *     "epochHours": 730.5,          // epoch length (default monthly)
 *     "shardDimms": 50000,          // slots per shard (resume grain)
 *     "sampler" / "onDie":          // as for reliability
 *     "policies": {"replaceOnDue": true, "replacementLagEpochs": 1,
 *                  "retireAfterPermanentFaults": 0,
 *                  "canaryDueThreshold": 0},
 *     "cohorts": [{"name": "vendorA-secded", "scheme": "secded",
 *                  "dimms": 500000, "deployEpoch": 0, "canary": false,
 *                  "scrubIntervalHours": 0,
 *                  "fitOverrides": {...}}, ...],
 *     // either kind:
 *     "threads": 0,                 // 0 = auto (env, then hardware)
 *     "evalBatch": 0                // 0 = auto (env, then default)
 *   }
 */

#ifndef XED_CAMPAIGN_SPEC_HH
#define XED_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/units.hh"
#include "faultsim/engine.hh"
#include "faultsim/scheme.hh"
#include "fleet/fleet.hh"

namespace xed::campaign
{

enum class CampaignKind { Reliability, Detection, Fleet };

/** One swept parameter; values index the campaign's "points". */
struct SweepAxis
{
    /** "scalingRate", "detectionEscapeProb", "scrubIntervalHours" or
     *  "channels"; empty means no sweep (a single point 0). */
    std::string parameter;
    std::vector<double> values;

    bool active() const { return !parameter.empty(); }
    unsigned points() const { return active() ? values.size() : 1; }
};

/** One detection-campaign cell: a code x pattern x error weight. */
struct DetectionCell
{
    std::string code;  ///< "hamming7264" or "crc8atm"
    bool burst = false;
    unsigned weight = 1;
};

struct CampaignSpec
{
    std::string name;
    CampaignKind kind = CampaignKind::Reliability;
    std::uint64_t seed = 0;
    unsigned threads = 0;
    /**
     * Faulty-path evaluation batch forwarded to McConfig::evalBatch
     * (0 = auto). Like "threads", it only changes how the work is
     * scheduled -- never the result -- so it is deliberately left out
     * of specToJson and therefore out of the spec hash: stores written
     * with different batch sizes stay byte-identical and resumable
     * against each other.
     */
    unsigned evalBatch = 0;

    // Reliability campaigns.
    std::vector<faultsim::SchemeKind> schemes;
    std::uint64_t systems = 1000000;
    std::uint64_t shardSystems = 10000;
    double years = evaluationYears;
    unsigned channels = 4;
    double scrubIntervalHours = 0;
    /**
     * Poisson fault-count sampler (knuth or invcdf). Part of the
     * canonical spec form and therefore of the spec hash: a store
     * written under one sampler cannot be resumed under the other.
     */
    faultsim::PoissonSampler sampler = faultsim::PoissonSampler::Knuth;
    faultsim::OnDieOptions onDie{};
    faultsim::FitTable fit{};
    SweepAxis sweep;

    // Detection campaigns.
    std::vector<std::string> codes;
    std::vector<std::string> patterns;
    unsigned maxWeight = 8;
    std::uint64_t trials = 200000;
    std::uint64_t shardTrials = 50000;

    // Fleet campaigns: cohorts + policies + epoch length (years,
    // sampler and onDie above are shared with reliability). The fleet
    // is one cell sharded by slot-index ranges of shardDimms.
    fleet::FleetSetup fleet;
    std::uint64_t shardDimms = 50000;

    /** Cells per sweep point: schemes, code x pattern x weight, or
     *  the single fleet cell. */
    unsigned cellCount() const;
    /** Systems (reliability), trials (detection) or fleet slots per
     *  cell. */
    std::uint64_t unitsPerCell() const
    {
        if (kind == CampaignKind::Fleet)
            return fleet.totalDimms();
        return kind == CampaignKind::Reliability ? systems : trials;
    }
    std::uint64_t unitsPerShard() const
    {
        if (kind == CampaignKind::Fleet)
            return shardDimms;
        return kind == CampaignKind::Reliability ? shardSystems
                                                 : shardTrials;
    }
};

/**
 * Parse and validate a spec document. Strict: unknown keys, unknown
 * scheme/code/pattern/parameter names, zero shard sizes and other
 * nonsense are errors, so --dry-run catches typos before simulating.
 */
std::optional<CampaignSpec> parseSpec(const json::Value &doc,
                                      std::string *error);

/** parseSpec() over the contents of @p path. */
std::optional<CampaignSpec> loadSpecFile(const std::string &path,
                                         std::string *error);

/**
 * Apply the bench-compatible environment overrides -- XED_MC_SYSTEMS,
 * XED_MC_SEED, XED_TRIALS, XED_MC_SAMPLER -- to an already-parsed
 * spec. Called before hashing, so a resume under different overrides
 * (a different sampler included) is rejected by the spec-hash check
 * instead of silently mixing shard geometries. Malformed values throw
 * std::runtime_error rather than being silently ignored.
 */
void applyEnvOverrides(CampaignSpec &spec);

/**
 * Canonical JSON form of a resolved spec: fixed key order, every
 * default made explicit. Embedded in the result-store manifest and
 * hashed for resume validation.
 */
json::Value specToJson(const CampaignSpec &spec);

/** FNV-1a 64 hex digest of dump(specToJson(spec)). */
std::string specHash(const CampaignSpec &spec);

/**
 * One deterministic unit of work: simulate units [begin, end) of cell
 * @p cell at sweep point @p point. @p index is the global execution
 * and storage order.
 */
struct ShardTask
{
    std::uint64_t index = 0;
    unsigned point = 0;
    unsigned cell = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/** The fully expanded, totally ordered shard plan of a spec. */
struct Plan
{
    std::vector<ShardTask> tasks;
    unsigned points = 1;
    unsigned cells = 0;
    std::uint64_t shardsPerCell = 0;
};

Plan buildPlan(const CampaignSpec &spec);

/** Human/store label of a cell, e.g. "xed" or "crc8atm/burst/w4". */
std::string cellLabel(const CampaignSpec &spec, unsigned cell);

/** The detection cell decoded from its index. */
DetectionCell detectionCell(const CampaignSpec &spec, unsigned cell);

/**
 * The engine configuration for one sweep point (sweep value applied;
 * threads forced to 1 because the runner parallelizes over shards).
 */
faultsim::McConfig mcConfigFor(const CampaignSpec &spec, unsigned point);

/** On-die options for one sweep point (scaling-rate sweeps etc.). */
faultsim::OnDieOptions onDieFor(const CampaignSpec &spec, unsigned point);

/** The fleet engine configuration of a fleet spec (setup + seed +
 *  horizon + sampler + on-die options). */
fleet::FleetConfig fleetConfigFor(const CampaignSpec &spec);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_SPEC_HH
