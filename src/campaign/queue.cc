#include "campaign/queue.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "campaign/store.hh"
#include "obs/trace.hh"

namespace xed::campaign
{

namespace fs = std::filesystem;

namespace
{

std::string
sanitizeId(const std::string &id)
{
    std::string out = id;
    for (char &c : out) {
        const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                        c == '-';
        if (!ok)
            c = '-';
    }
    return out.empty() ? "worker" : out;
}

std::string
shardName(const char *prefix, std::uint64_t shard, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s%06llu%s", prefix,
                  static_cast<unsigned long long>(shard), suffix);
    return buf;
}

std::optional<std::string>
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Whole-file write + optional fsync; the building block for temp
 *  files that are later renamed into place. */
bool
writeFile(const std::string &path, const std::string &bytes,
          bool durable, std::string *error)
{
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
        out.flush();
        if (!out) {
            if (error)
                *error = "write failed on " + path;
            return false;
        }
    }
    if (durable && !fsyncPath(path, error))
        return false;
    return true;
}

/** Seconds since the file was last written; nullopt when it vanished
 *  (claimed/broken/committed by somebody else in the meantime). */
std::optional<double>
fileAgeSeconds(const std::string &path)
{
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return std::nullopt;
    const auto now = fs::file_time_type::clock::now();
    return std::chrono::duration<double>(now - mtime).count();
}

} // namespace

json::Value
queueManifest(const CampaignSpec &spec, const Plan &plan,
              const std::string &hash, bool forensics)
{
    auto record = json::Value::object();
    record.set("type", "queue");
    record.set("format", queueFormatVersion);
    record.set("name", spec.name);
    record.set("specHash", hash);
    record.set("shards", std::uint64_t{plan.tasks.size()});
    record.set("forensics",
               forensics && spec.kind == CampaignKind::Reliability);
    return record;
}

std::string
ShardQueue::defaultWorkerId()
{
    char host[256] = {};
    if (gethostname(host, sizeof host - 1) != 0 || !host[0])
        std::snprintf(host, sizeof host, "unknown");
    return sanitizeId(std::string(host) + "-" +
                      std::to_string(static_cast<long>(getpid())));
}

bool
ShardQueue::open(const CampaignSpec &spec, const Plan &plan,
                 const QueueOptions &options, std::string *error)
{
    dir_ = options.dir;
    workerId_ = sanitizeId(options.workerId.empty()
                               ? defaultWorkerId()
                               : options.workerId);
    leaseSeconds_ = options.leaseSeconds;
    durable_ = options.durable && durableWritesEnabled();
    shards_ = plan.tasks.size();

    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        if (error)
            *error = "cannot create queue dir " + dir_ + ": " +
                     ec.message();
        return false;
    }

    const std::string hash = specHash(spec);
    const std::string manifestPath =
        (fs::path(dir_) / "queue.json").string();
    if (!fs::exists(manifestPath)) {
        // First worker publishes the manifest; rename is atomic, so
        // concurrent first workers of the SAME spec write identical
        // bytes and either rename wins harmlessly. A different spec
        // loses the race and fails the validation below.
        const std::string tmp = manifestPath + ".tmp-" + workerId_;
        const std::string bytes =
            json::dump(queueManifest(spec, plan, hash,
                                     options.forensics)) +
            "\n";
        if (!writeFile(tmp, bytes, durable_, error))
            return false;
        fs::rename(tmp, manifestPath, ec);
        if (ec) {
            if (error)
                *error = "cannot publish " + manifestPath + ": " +
                         ec.message();
            return false;
        }
        if (durable_ && !fsyncParentDir(manifestPath, error))
            return false;
    }

    const auto bytes = slurpFile(manifestPath);
    if (!bytes) {
        if (error)
            *error = "cannot read " + manifestPath;
        return false;
    }
    std::string parseError;
    const auto doc = json::parse(*bytes, &parseError);
    if (!doc || !doc->isObject()) {
        if (error)
            *error = manifestPath + ": invalid queue manifest: " +
                     parseError;
        return false;
    }
    const json::Value *format = doc->find("format");
    if (!format || !format->isIntegral() ||
        format->asInt() != queueFormatVersion) {
        if (error)
            *error = manifestPath + ": unsupported queue format";
        return false;
    }
    const json::Value *manifestHash = doc->find("specHash");
    if (!manifestHash || !manifestHash->isString() ||
        manifestHash->asString() != hash) {
        if (error)
            *error = manifestPath + ": spec hash mismatch (queue " +
                     (manifestHash && manifestHash->isString()
                          ? manifestHash->asString()
                          : "?") +
                     ", spec " + hash +
                     "); refusing to join a different campaign's queue";
        return false;
    }
    const json::Value *shards = doc->find("shards");
    if (!shards || !shards->isIntegral() ||
        shards->asUint() != plan.tasks.size()) {
        if (error)
            *error = manifestPath +
                     ": shard count does not match the spec's plan";
        return false;
    }
    const json::Value *forensics = doc->find("forensics");
    forensics_ = forensics && forensics->isBool() && forensics->asBool();
    return true;
}

std::string
ShardQueue::fragmentPath(std::uint64_t shard) const
{
    return (fs::path(dir_) / shardName("shard-", shard, ".jsonl"))
        .string();
}

std::string
ShardQueue::leasePath(std::uint64_t shard) const
{
    return (fs::path(dir_) / shardName("lease-", shard, ".json"))
        .string();
}

bool
ShardQueue::fragmentExists(std::uint64_t shard) const
{
    return fs::exists(fragmentPath(shard));
}

std::uint64_t
ShardQueue::fragmentsPresent() const
{
    std::uint64_t present = 0;
    for (std::uint64_t i = 0; i < shards_; ++i)
        present += fragmentExists(i) ? 1 : 0;
    return present;
}

ShardQueue::Claim
ShardQueue::tryClaim(std::uint64_t shard, std::string *error)
{
    XED_TRACE_SPAN_ARG("queue.claim", "queue", "shard", shard);
    const std::string lease = leasePath(shard);
    // Bounded retries: each pass either creates the lease, observes a
    // fresh one, or breaks an expired one (which may hand the claim
    // to a faster rival -- then the next pass sees *their* fresh
    // lease and reports Busy).
    for (int attempt = 0; attempt < 4; ++attempt) {
        if (fragmentExists(shard))
            return Claim::Done;
        const int fd = ::open(lease.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                              0644);
        if (fd >= 0) {
            auto doc = json::Value::object();
            doc.set("worker", workerId_);
            doc.set("shard", shard);
            const std::string bytes = json::dump(doc) + "\n";
            const bool wrote =
                ::write(fd, bytes.data(), bytes.size()) ==
                static_cast<ssize_t>(bytes.size());
            const bool synced = !durable_ || ::fsync(fd) == 0;
            ::close(fd);
            if (!wrote || !synced) {
                if (error)
                    *error = "cannot write lease " + lease;
                ::unlink(lease.c_str());
                return Claim::Busy;
            }
            if (durable_ && !fsyncParentDir(lease, error))
                return Claim::Busy;
            return Claim::Acquired;
        }
        if (errno != EEXIST) {
            if (error)
                *error = "cannot create lease " + lease;
            return Claim::Busy;
        }
        const auto age = fileAgeSeconds(lease);
        if (!age)
            continue; // lease vanished under us: re-run the claim
        if (*age <= leaseSeconds_)
            return Claim::Busy; // live worker holds it
        // Expired: break it via a tombstone rename so exactly one
        // breaker proceeds and nobody can unlink a freshly re-created
        // lease (see the header's protocol notes).
        const std::string tomb = lease + ".broken-" + workerId_;
        std::error_code ec;
        fs::rename(lease, tomb, ec);
        if (!ec)
            ::unlink(tomb.c_str());
        // Either way, loop: O_EXCL arbitrates the re-claim.
    }
    return Claim::Busy;
}

bool
ShardQueue::renew(std::uint64_t shard, std::string *error)
{
    const std::string lease = leasePath(shard);
    const auto current = slurpFile(lease);
    if (!current)
        return false; // broken by another worker after expiry
    std::string parseError;
    const auto doc = json::parse(*current, &parseError);
    if (doc && doc->isObject()) {
        const json::Value *worker = doc->find("worker");
        if (worker && worker->isString() &&
            worker->asString() != workerId_)
            return false; // re-claimed: the lease is no longer ours
    }
    // O_TRUNC on the existing path refreshes mtime; if a breaker
    // renamed it away between the read above and here, open fails
    // with ENOENT and we correctly report the lease lost.
    const int fd =
        ::open(lease.c_str(), O_WRONLY | O_TRUNC | O_CLOEXEC);
    if (fd < 0)
        return false;
    auto doc2 = json::Value::object();
    doc2.set("worker", workerId_);
    doc2.set("shard", shard);
    const std::string bytes = json::dump(doc2) + "\n";
    const bool wrote = ::write(fd, bytes.data(), bytes.size()) ==
                       static_cast<ssize_t>(bytes.size());
    const bool synced = !durable_ || ::fsync(fd) == 0;
    ::close(fd);
    if (!wrote || !synced) {
        if (error)
            *error = "cannot renew lease " + lease;
        return false;
    }
    return true;
}

bool
ShardQueue::commit(std::uint64_t shard,
                   const std::string &fragmentBytes, std::string *error,
                   bool *wasDuplicate)
{
    XED_TRACE_SPAN_ARG("queue.commit", "queue", "shard", shard);
    if (wasDuplicate)
        *wasDuplicate = false;
    const std::string fragment = fragmentPath(shard);
    if (const auto existing = slurpFile(fragment)) {
        // A re-claimed shard was committed by someone else first.
        // Execution is deterministic, so the bytes MUST agree; a
        // mismatch means nondeterminism or corruption and must kill
        // the run rather than let the merge pick a copy at random.
        if (*existing != fragmentBytes) {
            if (error)
                *error = "duplicate fragment for shard " +
                         std::to_string(shard) +
                         " differs from the committed one -- "
                         "determinism violation or corrupt queue dir " +
                         dir_;
            return false;
        }
        if (wasDuplicate)
            *wasDuplicate = true;
        release(shard);
        return true;
    }
    const std::string tmp = fragment + ".tmp-" + workerId_;
    if (!writeFile(tmp, fragmentBytes, durable_, error))
        return false;
    std::error_code ec;
    fs::rename(tmp, fragment, ec);
    if (ec) {
        if (error)
            *error = "cannot commit fragment " + fragment + ": " +
                     ec.message();
        ::unlink(tmp.c_str());
        return false;
    }
    if (durable_ && !fsyncParentDir(fragment, error))
        return false;
    release(shard);
    return true;
}

void
ShardQueue::release(std::uint64_t shard)
{
    ::unlink(leasePath(shard).c_str());
}

std::uint64_t
pollJitterSeed(const std::string &workerId)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const unsigned char c : workerId) {
        hash ^= c;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

double
jitteredPollSeconds(double baseSeconds, std::uint64_t &state)
{
    // splitmix64: one step per call, full-period, no shared state.
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53; // uniform [0, 1)
    return std::max(baseSeconds * (0.75 + 0.5 * u), 0.01);
}

} // namespace xed::campaign
