/**
 * @file
 * Failure-forensics sidecar for campaign runs.
 *
 * Reliability campaigns attribute every failed system (failure class,
 * contributing fault kinds, detection outcome -- see obs/forensics.hh)
 * but the result store's bytes are a pure function of the spec and
 * must stay that way. Forensics therefore stream to their own JSONL
 * sidecar, `<out>.forensics.jsonl`:
 *
 *   {"type":"forensics","index":i,"point":p,"cell":c,
 *    "failures":{"sdc":{kinds:count,...},"due":{...}},
 *    "outcomes":{outcome:count,...},
 *    "autopsy":[{"system":...,"timeHours":...,"type":...,
 *                "kinds":...,"class":...,"outcome":...},...]}  per shard
 *   {"type":"forensics-summary","point":p,"cell":c,"label":...,
 *    "failures":...,"outcomes":...}                 per cell, when done
 *
 * Kind sets are '+'-joined fault-kind names in ascending granularity
 * order ("single-bit+single-row"); autopsy arrays are the engine's
 * capped exemplar records. Shard records are written in plan order
 * immediately BEFORE the corresponding store record, so after a kill
 * the sidecar covers at least the store's shard prefix; resume
 * truncates it back to exactly that prefix and appends. A sidecar
 * that cannot cover the prefix (deleted, damaged) disables forensics
 * for the resumed run -- replayed store records carry no attribution
 * to rebuild it from.
 */

#ifndef XED_CAMPAIGN_FORENSICS_HH
#define XED_CAMPAIGN_FORENSICS_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "common/json.hh"
#include "faultsim/engine.hh"
#include "obs/forensics.hh"

namespace xed::campaign
{

/** Sidecar path for a result store: `<storePath>.forensics.jsonl`. */
std::string forensicsPath(const std::string &storePath);

/** '+'-joined kind names, ascending bit order; "none" for mask 0. */
std::string kindsMaskName(unsigned mask);
/** Inverse of kindsMaskName; nullopt for an unknown kind name. */
std::optional<unsigned> kindsMaskFromName(const std::string &name);

/** The "failures"/"outcomes" payload of an attribution (nonzero
 *  entries only, deterministic order). */
json::Value attributionJson(const obs::FailureAttribution &attribution);

/** One per-shard sidecar record (attribution + autopsy exemplars). */
json::Value forensicsShardRecord(const ShardTask &task,
                                 const faultsim::McResult &mc);

/** One per-cell summary record appended when the campaign completes. */
json::Value forensicsSummaryRecord(unsigned point, unsigned cell,
                                   const std::string &label,
                                   const faultsim::McResult &mc);

/** Accumulate a record's "failures"/"outcomes" payload into
 *  @p attribution; false + *error on unknown names or shapes. */
bool parseAttribution(const json::Value &record,
                      obs::FailureAttribution &attribution,
                      std::string *error);

/**
 * Append a record's "autopsy" exemplars to @p autopsy. The decoded
 * AutopsyRecord::type pointers refer to copies pushed onto
 * @p strings, which must therefore outlive the autopsy vector.
 * Malformed entries are skipped (exemplars are best-effort evidence,
 * not accounting). The distributed merge path uses this to rebuild
 * each cell's exemplar set exactly as a single-process run would.
 */
void parseAutopsy(const json::Value &record,
                  std::vector<faultsim::AutopsyRecord> &autopsy,
                  std::vector<std::unique_ptr<std::string>> &strings);

/** What loadForensics() recovered from an existing sidecar. */
struct LoadedForensics
{
    bool ok = false;
    std::string error;
    /** Per-shard records forming the plan prefix [0, shardRecords). */
    std::uint64_t shardRecords = 0;
    /** Byte offset where the last valid per-shard record ends; resume
     *  truncates here (dropping summaries / a torn line) to append. */
    long long validBytes = 0;
    /** validBytes after exactly the first n shard records, n <=
     *  shardRecords -- the truncation point when the store replayed
     *  fewer shards than the sidecar holds. */
    std::vector<long long> bytesAfterShard;
    /** Decoded per-shard attributions, indexed like bytesAfterShard;
     *  resume merges the replayed prefix back into the cell results. */
    std::vector<obs::FailureAttribution> attributions;
};

/** Read and validate a sidecar: per-shard records must be in plan
 *  order from index 0. A torn final line is tolerated. */
LoadedForensics loadForensics(const std::string &path);

/**
 * Aggregate a sidecar's shard records per (point, cell) and render
 * attribution tables (class x kind set, detection outcomes, autopsy
 * exemplars). Returns false only when the sidecar exists but cannot
 * be parsed; a missing sidecar prints nothing and returns true.
 */
bool printForensics(const std::string &storePath,
                    const CampaignSpec &spec, const Plan &plan,
                    std::ostream &os, std::string *error);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_FORENSICS_HH
