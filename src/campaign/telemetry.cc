#include "campaign/telemetry.hh"

#include <cstdio>
#include <ctime>

#include <unistd.h>

#include "common/build_info.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace xed::campaign
{

namespace
{

std::string
hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof buf - 1) == 0 && buf[0])
        return buf;
    return "unknown";
}

std::string
gitDescribe()
{
    // Best effort: the binary may run outside the repository.
    FILE *pipe =
        popen("git describe --always --dirty 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128] = {};
    std::string out;
    if (std::fgets(buf, sizeof buf, pipe))
        out = buf;
    pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

std::string
utcNow()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

json::Value
runMetadata(const std::string &specName, const std::string &hash,
            unsigned threads, std::uint64_t resumedFromShard,
            const std::string &workerId)
{
    auto record = json::Value::object();
    record.set("type", "run");
    record.set("name", specName);
    record.set("specHash", hash);
    record.set("host", hostName());
    record.set("git", gitDescribe());
    record.set("startedAt", utcNow());
    record.set("threads", threads);
    record.set("resumedFromShard", resumedFromShard);
    if (!workerId.empty())
        record.set("worker", workerId);
    record.set("build", buildInfoJson());
    return record;
}

ProgressReporter::ProgressReporter(const Setup &setup,
                                   MetricsRegistry &registry,
                                   const faultsim::McProgress &progress)
    : setup_(setup), registry_(registry), progress_(progress),
      started_(std::chrono::steady_clock::now())
{
}

ProgressReporter::~ProgressReporter()
{
    // Unwinding without finish(): mark the stream aborted, not done.
    finishWith("aborted", false);
}

void
ProgressReporter::start(const json::Value &runRecord)
{
    if (!setup_.sidecarPath.empty()) {
        sidecar_.open(setup_.sidecarPath,
                      std::ios::binary | std::ios::app);
    }
    emit(runRecord);
    if (setup_.intervalSeconds > 0 &&
        (setup_.statusOut || sidecar_.is_open()))
        thread_ = std::thread([this] { loop(); });
}

void
ProgressReporter::finish(bool complete)
{
    finishWith("done", complete);
}

void
ProgressReporter::finishWith(const char *type, bool complete)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (finished_)
            return;
        finished_ = true;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    auto done = sample();
    done.set("type", type);
    done.set("complete", complete);
    done.set("wallSeconds", elapsed);
    done.set("finishedAt", utcNow());
    emit(done);
}

namespace
{

/** {"p50":...,"p90":...,"p99":...} (zeros while no samples exist). */
json::Value
quantilesJson(const Histogram *histogram)
{
    auto out = json::Value::object();
    const bool any = histogram && histogram->count() > 0;
    out.set("p50", any ? histogram->quantile(0.50) : 0.0);
    out.set("p90", any ? histogram->quantile(0.90) : 0.0);
    out.set("p99", any ? histogram->quantile(0.99) : 0.0);
    return out;
}

} // namespace

json::Value
ProgressReporter::sample() const
{
    XED_TRACE_SPAN("progress.sample", "telemetry");
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    const auto counters = registry_.counters();
    const auto get = [&counters](const char *name) -> std::uint64_t {
        const auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    };
    const std::uint64_t unitsDone = progress_.systemsDone.load();
    const std::uint64_t unitsTotal = get("units.total");
    // Rate over live-simulated units only: replayed shards were read
    // from disk, counting them would fake an absurd ETA after resume.
    const std::uint64_t unitsReplayed = get("units.replayed");
    const std::uint64_t unitsLive =
        unitsDone > unitsReplayed ? unitsDone - unitsReplayed : 0;
    const double rate = elapsed > 0 ? unitsLive / elapsed : 0;
    const std::uint64_t remaining =
        unitsTotal > unitsDone ? unitsTotal - unitsDone : 0;

    auto record = json::Value::object();
    record.set("type", "progress");
    record.set("elapsedSeconds", elapsed);
    record.set("shardsDone", get("shards.done"));
    record.set("shardsTotal", get("shards.total"));
    record.set("unitsDone", unitsDone);
    record.set("unitsTotal", unitsTotal);
    record.set("unitsPerSec", rate);
    // No live rate means no estimate: omit the key rather than emit
    // 0.0, which a dashboard cannot tell apart from "done now".
    if (rate > 0)
        record.set("etaSeconds", remaining / rate);
    record.set("failedSystems", progress_.failedSystems.load());
    const auto histograms = registry_.histograms();
    const auto histogram =
        [&histograms](const char *name) -> const Histogram * {
        const auto it = histograms.find(name);
        return it == histograms.end() ? nullptr : it->second;
    };
    record.set("shardSeconds", quantilesJson(histogram("shard.seconds")));
    record.set("shardUnitsPerSec",
               quantilesJson(histogram("shard.unitsPerSec")));
    // The exact sparse buckets ride along with the human-oriented
    // quantiles: a fleet scanner merges every worker's real buckets
    // (obs/telemetry.hh) and gets the same p50/p90/p99 one process
    // observing all samples would report -- averaging per-worker
    // quantiles could not.
    const auto buckets = [](const Histogram *h) {
        return h ? obs::histogramJson(*h) : json::Value::array();
    };
    auto hist = json::Value::object();
    hist.set("shardSeconds", buckets(histogram("shard.seconds")));
    hist.set("shardUnitsPerSec",
             buckets(histogram("shard.unitsPerSec")));
    record.set("hist", std::move(hist));
    auto failures = json::Value::object();
    for (const auto &[name, count] : counters) {
        constexpr const char prefix[] = "failed.";
        if (name.rfind(prefix, 0) == 0)
            failures.set(name.substr(sizeof prefix - 1), count);
    }
    record.set("failures", std::move(failures));
    return record;
}

void
ProgressReporter::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        const auto interval = std::chrono::duration<double>(
            setup_.intervalSeconds);
        if (cv_.wait_for(lock, interval, [this] { return stopping_; }))
            break;
        lock.unlock();
        emit(sample());
        lock.lock();
    }
}

void
ProgressReporter::emit(const json::Value &record)
{
    const std::string line = json::dump(record);
    std::lock_guard<std::mutex> lock(emitMutex_);
    if (setup_.statusOut) {
        *setup_.statusOut << line << '\n';
        setup_.statusOut->flush();
    }
    if (sidecar_.is_open()) {
        sidecar_ << line << '\n';
        sidecar_.flush();
    }
}

} // namespace xed::campaign
