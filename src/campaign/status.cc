#include "campaign/status.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/metrics.hh"
#include "common/table.hh"
#include "obs/telemetry.hh"

namespace xed::campaign
{

namespace fs = std::filesystem;

namespace
{

/** Seconds since @p path was last written; 0 when unreadable (a file
 *  racing deletion mid-scan must not be classified dead on that
 *  evidence alone -- the next scan settles it). */
double
fileAgeSeconds(const fs::path &path)
{
    std::error_code ec;
    const auto written = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    const double age = std::chrono::duration<double>(
                           fs::file_time_type::clock::now() - written)
                           .count();
    return age > 0 ? age : 0;
}

/** name == prefix + middle + suffix with nonempty middle. */
bool
splitName(const std::string &name, std::string_view prefix,
          std::string_view suffix, std::string &middle)
{
    if (name.size() <= prefix.size() + suffix.size())
        return false;
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    middle = name.substr(prefix.size(),
                         name.size() - prefix.size() - suffix.size());
    return true;
}

bool
parseShardIndex(const std::string &digits, std::uint64_t &index)
{
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    index = std::stoull(digits);
    return true;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
recordTypeIs(const json::Value &record, std::string_view type)
{
    const json::Value *t = record.find("type");
    return t && t->isString() && t->asString() == type;
}

void
tallyOutcomes(const json::Value &record, FleetStatus &status)
{
    const json::Value *outcomes = record.find("outcomes");
    if (!outcomes || !outcomes->isObject())
        return;
    for (const auto &[name, count] : outcomes->members())
        if (count.isIntegral())
            status.outcomes[name] += count.asUint();
}

/**
 * Fold one committed "shard" record into the fleet totals. Extraction
 * is shape-based -- no spec needed -- and mirrors the runner's
 * failedSystemsOf() exactly, so the totals match what `report` prints
 * for the merged store:
 *
 *   result.failureTypes {name: n}   reliability: failed = sum(n)
 *   result.cohorts [{due, sdc,...}] fleet: failed = sum(due) + sum(sdc)
 *   result.{detected, trials}       detection: failed = trials-detected
 *                                   (escapes)
 */
bool
tallyShardRecord(const json::Value &record, FleetStatus &status)
{
    if (!record.isObject() || !recordTypeIs(record, "shard"))
        return false;
    const json::Value *begin = record.find("begin");
    const json::Value *end = record.find("end");
    const json::Value *result = record.find("result");
    if (!begin || !begin->isIntegral() || !end || !end->isIntegral() ||
        !result || !result->isObject())
        return false;
    const std::uint64_t b = begin->asUint();
    const std::uint64_t e = end->asUint();
    if (e < b)
        return false;
    status.unitsDone += e - b;

    std::uint64_t failed = 0;
    if (const json::Value *types = result->find("failureTypes");
        types && types->isObject()) {
        for (const auto &[name, count] : types->members()) {
            if (!count.isIntegral())
                return false;
            failed += count.asUint();
            status.failuresByType[name] += count.asUint();
        }
    } else if (const json::Value *cohorts = result->find("cohorts");
               cohorts && cohorts->isArray()) {
        for (const json::Value &entry : cohorts->items()) {
            if (!entry.isObject())
                return false;
            for (const char *key : {"due", "sdc"}) {
                const json::Value *series = entry.find(key);
                if (!series || !series->isArray())
                    return false;
                std::uint64_t sum = 0;
                for (const json::Value &delta : series->items())
                    if (delta.isIntegral())
                        sum += delta.asUint();
                failed += sum;
                status.failuresByType[key] += sum;
            }
            tallyOutcomes(entry, status);
        }
    } else {
        const json::Value *detected = result->find("detected");
        const json::Value *trials = result->find("trials");
        if (!detected || !detected->isIntegral() || !trials ||
            !trials->isIntegral() ||
            trials->asUint() < detected->asUint())
            return false;
        failed = trials->asUint() - detected->asUint();
        status.failuresByType["escape"] += failed;
    }
    status.failedUnits += failed;

    // Every committed cell appears in byCell, zero failures included
    // -- same convention as the run summary's failure map.
    if (const json::Value *label = record.find("label");
        label && label->isString())
        status.failuresByCell[label->asString()] += failed;
    return true;
}

std::uint64_t
u64Field(const json::Value &record, const char *key)
{
    const json::Value *v = record.find(key);
    return v && v->isIntegral() ? v->asUint() : 0;
}

double
f64Field(const json::Value &record, const char *key)
{
    const json::Value *v = record.find(key);
    return v && v->isNumber() ? v->asDouble() : 0;
}

WorkerLiveness
classifyAge(double ageSeconds, double leaseSeconds)
{
    if (ageSeconds <= leaseSeconds * 0.5)
        return WorkerLiveness::Live;
    if (ageSeconds <= leaseSeconds)
        return WorkerLiveness::Stale;
    return WorkerLiveness::Dead;
}

/**
 * Digest one worker's telemetry sidecar: identity from the "run"
 * record, cumulative counters from the newest progress/terminal
 * record, exact histogram buckets merged into the fleet histograms.
 * Liveness is provisional (Dead) for a non-terminal worker until the
 * caller folds in lease ages and classifies.
 */
WorkerStatus
workerFromTelemetry(const std::string &id,
                    const obs::TelemetryRecords &telemetry,
                    double sidecarAgeSeconds, FleetStatus &status,
                    Histogram &shardSeconds, Histogram &shardUnitsPerSec)
{
    WorkerStatus worker;
    worker.id = id;
    if (const json::Value *run = obs::lastRecordOfType(telemetry, "run"))
        if (const json::Value *host = run->find("host");
            host && host->isString())
            worker.host = host->asString();

    // The newest cumulative sample, whatever kind of record carried it.
    const json::Value *latest = nullptr;
    for (const json::Value &record : telemetry.records)
        if (obs::recordIsType(record, "progress") ||
            obs::recordIsType(record, "done") ||
            obs::recordIsType(record, "aborted"))
            latest = &record;
    if (latest) {
        worker.shardsDone = u64Field(*latest, "shardsDone");
        worker.unitsDone = u64Field(*latest, "unitsDone");
        worker.failedUnits = u64Field(*latest, "failedSystems");
        worker.unitsPerSec = f64Field(*latest, "unitsPerSec");
        const std::uint64_t total = u64Field(*latest, "unitsTotal");
        if (total > 0 &&
            (!status.unitsTotal || total > *status.unitsTotal))
            status.unitsTotal = total;
        if (const json::Value *hist = latest->find("hist");
            hist && hist->isObject()) {
            if (const json::Value *payload = hist->find("shardSeconds"))
                obs::histogramFromJson(*payload, shardSeconds);
            if (const json::Value *payload =
                    hist->find("shardUnitsPerSec"))
                obs::histogramFromJson(*payload, shardUnitsPerSec);
        }
    }

    if (obs::lastRecordOfType(telemetry, "done"))
        worker.liveness = WorkerLiveness::Done;
    else if (obs::lastRecordOfType(telemetry, "aborted"))
        worker.liveness = WorkerLiveness::Aborted;
    else
        worker.heartbeatAgeSeconds = sidecarAgeSeconds;
    return worker;
}

HistogramSummary
summarize(const Histogram &histogram)
{
    HistogramSummary summary;
    summary.count = histogram.count();
    if (summary.count > 0) {
        summary.p50 = histogram.quantile(0.50);
        summary.p90 = histogram.quantile(0.90);
        summary.p99 = histogram.quantile(0.99);
    }
    for (unsigned i = 0; i < Histogram::bucketCount; ++i)
        if (const std::uint64_t c = histogram.bucket(i))
            summary.approxSum +=
                static_cast<double>(c) * Histogram::bucketValue(i);
    return summary;
}

/** Fleet rate, ETA and histogram summaries, shared by both scanners. */
void
finalizeThroughput(FleetStatus &status, const Histogram &shardSeconds,
                   const Histogram &shardUnitsPerSec)
{
    for (const WorkerStatus &worker : status.workers)
        if (worker.liveness == WorkerLiveness::Live ||
            worker.liveness == WorkerLiveness::Stale)
            status.unitsPerSec += worker.unitsPerSec;
    if (!status.complete && status.unitsPerSec > 0 &&
        status.unitsTotal && *status.unitsTotal > status.unitsDone)
        status.etaSeconds =
            static_cast<double>(*status.unitsTotal - status.unitsDone) /
            status.unitsPerSec;
    status.shardSeconds = summarize(shardSeconds);
    status.shardUnitsPerSec = summarize(shardUnitsPerSec);
}

} // namespace

const char *
workerLivenessName(WorkerLiveness liveness)
{
    switch (liveness) {
    case WorkerLiveness::Live: return "live";
    case WorkerLiveness::Stale: return "stale";
    case WorkerLiveness::Dead: return "dead";
    case WorkerLiveness::Done: return "done";
    case WorkerLiveness::Aborted: return "aborted";
    }
    return "unknown";
}

FleetStatus
scanQueueDir(const std::string &dir, const StatusOptions &options)
{
    FleetStatus status;
    status.source = "queue";
    status.path = dir;

    const auto manifest = json::parse(slurp(fs::path(dir) / "queue.json"));
    if (!manifest || !manifest->isObject() ||
        !recordTypeIs(*manifest, "queue")) {
        status.error =
            "not a queue directory (queue.json missing or invalid): " +
            dir;
        return status;
    }
    if (const json::Value *name = manifest->find("name");
        name && name->isString())
        status.name = name->asString();
    if (const json::Value *hash = manifest->find("specHash");
        hash && hash->isString())
        status.specHash = hash->asString();
    status.shardsTotal = u64Field(*manifest, "shards");

    Histogram shardSeconds;
    Histogram shardUnitsPerSec;
    std::map<std::string, WorkerStatus> workers;
    struct LeaseInfo
    {
        std::string worker;
        std::uint64_t shard;
        double ageSeconds;
    };
    std::vector<LeaseInfo> leases;
    std::set<std::uint64_t> doneShards;

    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        std::string middle;
        std::uint64_t index = 0;
        if (splitName(name, "shard-", ".jsonl", middle) &&
            parseShardIndex(middle, index)) {
            // A committed fragment: line 1 is the store's shard
            // record, line 2 (reliability campaigns) the forensics
            // record. The fragment counts as done even when damaged
            // -- the commit rename happened -- but its totals can
            // only come from a parseable record.
            doneShards.insert(index);
            const std::string bytes = slurp(entry.path());
            std::size_t pos = 0;
            bool first = true;
            bool tallied = false;
            while (pos < bytes.size()) {
                std::size_t eol = bytes.find('\n', pos);
                if (eol == std::string::npos)
                    eol = bytes.size();
                const std::string_view line(bytes.data() + pos,
                                            eol - pos);
                pos = eol + 1;
                if (line.empty())
                    continue;
                const auto record = json::parse(line);
                if (record && first)
                    tallied = tallyShardRecord(*record, status);
                else if (record &&
                         recordTypeIs(*record, "forensics"))
                    tallyOutcomes(*record, status);
                first = false;
            }
            if (!tallied)
                ++status.damagedFragments;
        } else if (splitName(name, "lease-", ".json", middle) &&
                   parseShardIndex(middle, index)) {
            // Tombstoned leases are `lease-N.json.broken-<breaker>`
            // and never match the suffix. A lease torn mid-write
            // (claim in progress) parses as garbage; skip it, the
            // next scan sees it whole.
            const auto lease = json::parse(slurp(entry.path()));
            if (!lease || !lease->isObject())
                continue;
            const json::Value *worker = lease->find("worker");
            if (!worker || !worker->isString())
                continue;
            leases.push_back({worker->asString(), index,
                              fileAgeSeconds(entry.path())});
        } else if (splitName(name, "worker-", ".telemetry.jsonl",
                             middle)) {
            const auto telemetry =
                obs::readTelemetryRecords(entry.path().string());
            if (!telemetry.ok)
                continue;
            ++status.telemetryFiles;
            status.skippedTelemetryLines += telemetry.skippedLines;
            workers.emplace(
                middle, workerFromTelemetry(
                            middle, telemetry,
                            fileAgeSeconds(entry.path()), status,
                            shardSeconds, shardUnitsPerSec));
        }
    }

    for (const LeaseInfo &lease : leases) {
        if (doneShards.count(lease.shard))
            continue; // committed while we scanned; the lease is moot
        ++status.shardsClaimed;
        // A worker with no sidecar (telemetry disabled) still shows
        // up through its leases.
        WorkerStatus &worker =
            workers.emplace(lease.worker, WorkerStatus{})
                .first->second;
        if (worker.id.empty())
            worker.id = lease.worker;
        worker.leasedShards.push_back(lease.shard);
        if (worker.liveness != WorkerLiveness::Done &&
            worker.liveness != WorkerLiveness::Aborted) {
            // Freshest evidence wins: a lease renewed after the last
            // telemetry flush proves the worker lives.
            if (!worker.heartbeatAgeSeconds ||
                lease.ageSeconds < *worker.heartbeatAgeSeconds)
                worker.heartbeatAgeSeconds = lease.ageSeconds;
        }
    }

    status.shardsDone = doneShards.size();
    const std::uint64_t accounted =
        status.shardsDone + status.shardsClaimed;
    status.shardsPending = status.shardsTotal > accounted
                               ? status.shardsTotal - accounted
                               : 0;
    status.complete = status.shardsTotal > 0 &&
                      status.shardsDone >= status.shardsTotal;

    for (auto &[id, worker] : workers) {
        std::sort(worker.leasedShards.begin(),
                  worker.leasedShards.end());
        if (worker.liveness != WorkerLiveness::Done &&
            worker.liveness != WorkerLiveness::Aborted)
            worker.liveness = classifyAge(
                worker.heartbeatAgeSeconds.value_or(0),
                options.leaseSeconds);
        status.workers.push_back(std::move(worker));
    }

    finalizeThroughput(status, shardSeconds, shardUnitsPerSec);
    status.ok = true;
    return status;
}

FleetStatus
scanStore(const std::string &storePath, const StatusOptions &options)
{
    FleetStatus status;
    status.source = "store";
    std::string path = storePath;
    constexpr std::string_view sidecarSuffix = ".telemetry.jsonl";
    if (path.size() > sidecarSuffix.size() &&
        path.compare(path.size() - sidecarSuffix.size(),
                     sidecarSuffix.size(), sidecarSuffix) == 0)
        path.resize(path.size() - sidecarSuffix.size());
    status.path = path;

    // The tolerant JSONL reader serves stores just as well as
    // telemetry: same append-only discipline, same torn-tail mode.
    const auto store = obs::readTelemetryRecords(path);
    if (!store.ok) {
        status.error = store.error;
        return status;
    }
    status.damagedFragments += store.skippedLines;

    bool sawManifest = false;
    for (const json::Value &record : store.records) {
        if (recordTypeIs(record, "manifest") && !sawManifest) {
            sawManifest = true;
            status.shardsTotal = u64Field(record, "shards");
            if (const json::Value *hash = record.find("specHash");
                hash && hash->isString())
                status.specHash = hash->asString();
            if (const json::Value *spec = record.find("spec"))
                if (const json::Value *name = spec->find("name");
                    name && name->isString())
                    status.name = name->asString();
        } else if (recordTypeIs(record, "shard")) {
            if (tallyShardRecord(record, status))
                ++status.shardsDone;
            else
                ++status.damagedFragments;
        } else if (recordTypeIs(record, "summary")) {
            status.complete = true;
        }
    }
    if (!sawManifest) {
        status.error = "not a result store (no manifest record): " + path;
        return status;
    }
    status.shardsPending = status.shardsTotal > status.shardsDone
                               ? status.shardsTotal - status.shardsDone
                               : 0;

    Histogram shardSeconds;
    Histogram shardUnitsPerSec;
    const std::string telemetryPath = path + ".telemetry.jsonl";
    if (fs::exists(telemetryPath)) {
        const auto telemetry = obs::readTelemetryRecords(telemetryPath);
        if (telemetry.ok) {
            ++status.telemetryFiles;
            status.skippedTelemetryLines += telemetry.skippedLines;
            std::string id = "local";
            if (const json::Value *run =
                    obs::lastRecordOfType(telemetry, "run"))
                if (const json::Value *worker = run->find("worker");
                    worker && worker->isString())
                    id = worker->asString();
            WorkerStatus worker = workerFromTelemetry(
                id, telemetry, fileAgeSeconds(telemetryPath), status,
                shardSeconds, shardUnitsPerSec);
            if (worker.liveness != WorkerLiveness::Done &&
                worker.liveness != WorkerLiveness::Aborted)
                worker.liveness =
                    classifyAge(worker.heartbeatAgeSeconds.value_or(0),
                                options.leaseSeconds);
            status.workers.push_back(std::move(worker));
        }
    }

    // Detection-outcome counters live in the forensics sidecar for a
    // single-process reliability run (per-shard records only -- the
    // per-cell summaries would double-count).
    const std::string forensics = path + ".forensics.jsonl";
    if (fs::exists(forensics)) {
        const auto records = obs::readTelemetryRecords(forensics);
        if (records.ok)
            for (const json::Value &record : records.records)
                if (recordTypeIs(record, "forensics"))
                    tallyOutcomes(record, status);
    }

    finalizeThroughput(status, shardSeconds, shardUnitsPerSec);
    status.ok = true;
    return status;
}

FleetStatus
scanStatusSource(const std::string &path, const StatusOptions &options)
{
    std::error_code ec;
    if (fs::is_directory(path, ec))
        return scanQueueDir(path, options);
    return scanStore(path, options);
}

namespace
{

json::Value
countsJson(const std::map<std::string, std::uint64_t> &counts)
{
    auto out = json::Value::object(); // std::map order: deterministic
    for (const auto &[name, count] : counts)
        out.set(name, count);
    return out;
}

json::Value
summaryJson(const HistogramSummary &summary)
{
    auto out = json::Value::object();
    out.set("count", summary.count);
    out.set("p50", summary.p50);
    out.set("p90", summary.p90);
    out.set("p99", summary.p99);
    return out;
}

} // namespace

json::Value
statusJson(const FleetStatus &status)
{
    auto out = json::Value::object();
    out.set("type", "status");
    if (!status.ok) {
        out.set("error", status.error);
        return out;
    }
    out.set("source", status.source);
    out.set("name", status.name);
    out.set("specHash", status.specHash);
    out.set("complete", status.complete);

    auto shards = json::Value::object();
    shards.set("total", status.shardsTotal);
    shards.set("done", status.shardsDone);
    shards.set("claimed", status.shardsClaimed);
    shards.set("pending", status.shardsPending);
    out.set("shards", std::move(shards));

    auto units = json::Value::object();
    units.set("done", status.unitsDone);
    if (status.unitsTotal)
        units.set("total", *status.unitsTotal);
    out.set("units", std::move(units));

    auto failures = json::Value::object();
    failures.set("total", status.failedUnits);
    failures.set("byCell", countsJson(status.failuresByCell));
    failures.set("byType", countsJson(status.failuresByType));
    failures.set("outcomes", countsJson(status.outcomes));
    out.set("failures", std::move(failures));

    auto throughput = json::Value::object();
    throughput.set("unitsPerSec", status.unitsPerSec);
    if (status.etaSeconds)
        throughput.set("etaSeconds", *status.etaSeconds);
    throughput.set("shardSeconds", summaryJson(status.shardSeconds));
    throughput.set("shardUnitsPerSec",
                   summaryJson(status.shardUnitsPerSec));
    out.set("throughput", std::move(throughput));

    auto workers = json::Value::array();
    for (const WorkerStatus &worker : status.workers) {
        auto entry = json::Value::object();
        entry.set("id", worker.id);
        entry.set("state", workerLivenessName(worker.liveness));
        if (!worker.host.empty())
            entry.set("host", worker.host);
        entry.set("shardsDone", worker.shardsDone);
        entry.set("unitsDone", worker.unitsDone);
        entry.set("failedUnits", worker.failedUnits);
        entry.set("unitsPerSec", worker.unitsPerSec);
        if (worker.heartbeatAgeSeconds)
            entry.set("heartbeatAgeSeconds",
                      *worker.heartbeatAgeSeconds);
        if (!worker.leasedShards.empty()) {
            auto shardList = json::Value::array();
            for (const std::uint64_t shard : worker.leasedShards)
                shardList.push(shard);
            entry.set("leases", std::move(shardList));
        }
        workers.push(std::move(entry));
    }
    out.set("workers", std::move(workers));

    auto telemetry = json::Value::object();
    telemetry.set("files", status.telemetryFiles);
    telemetry.set("skippedLines", status.skippedTelemetryLines);
    telemetry.set("damagedFragments", status.damagedFragments);
    out.set("telemetry", std::move(telemetry));
    return out;
}

void
printStatus(const FleetStatus &status, std::ostream &os)
{
    if (!status.ok) {
        os << "status: " << status.error << "\n";
        return;
    }
    os << "campaign " << status.name << " (" << status.specHash
       << ")  [" << status.source << " " << status.path << "]\n";
    os << "shards: " << status.shardsDone << "/" << status.shardsTotal
       << " done, " << status.shardsClaimed << " claimed, "
       << status.shardsPending << " pending"
       << (status.complete ? "  -- complete" : "") << "\n";
    os << "units:  " << status.unitsDone;
    if (status.unitsTotal) {
        os << "/" << *status.unitsTotal;
        if (*status.unitsTotal > 0)
            os << " ("
               << Table::pct(static_cast<double>(status.unitsDone) /
                                 static_cast<double>(*status.unitsTotal),
                             1)
               << ")";
    }
    os << ", " << status.failedUnits << " failed\n";
    os << "rate:   " << Table::fmt(status.unitsPerSec, 1)
       << " units/s";
    if (status.etaSeconds)
        os << ", eta " << Table::fmt(*status.etaSeconds, 1) << " s";
    os << "\n";
    if (status.shardSeconds.count > 0)
        os << "shard seconds: p50 "
           << Table::fmt(status.shardSeconds.p50, 3) << "  p90 "
           << Table::fmt(status.shardSeconds.p90, 3) << "  p99 "
           << Table::fmt(status.shardSeconds.p99, 3) << "  (n="
           << status.shardSeconds.count << ")\n";
    if (status.skippedTelemetryLines > 0 || status.damagedFragments > 0)
        os << "warnings: " << status.skippedTelemetryLines
           << " skipped telemetry lines, " << status.damagedFragments
           << " damaged fragments\n";

    if (!status.workers.empty()) {
        Table table({"worker", "state", "beat(s)", "shards", "units",
                     "failed", "units/s", "leases"});
        for (const WorkerStatus &worker : status.workers) {
            std::string leases;
            for (const std::uint64_t shard : worker.leasedShards)
                leases += (leases.empty() ? "" : ",") +
                          std::to_string(shard);
            table.addRow(
                {worker.id, workerLivenessName(worker.liveness),
                 worker.heartbeatAgeSeconds
                     ? Table::fmt(*worker.heartbeatAgeSeconds, 1)
                     : "-",
                 std::to_string(worker.shardsDone),
                 std::to_string(worker.unitsDone),
                 std::to_string(worker.failedUnits),
                 Table::fmt(worker.unitsPerSec, 1),
                 leases.empty() ? "-" : leases});
        }
        os << "\n";
        table.print(os, "workers");
    }

    if (!status.failuresByCell.empty()) {
        Table table({"cell", "failed"});
        for (const auto &[label, failed] : status.failuresByCell)
            table.addRow({label, std::to_string(failed)});
        os << "\n";
        table.print(os, "failures by cell");
    }
}

namespace
{

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
escapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
metricHeader(std::ostringstream &os, const char *name, const char *help,
             const char *type)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

void
summaryMetric(std::ostringstream &os, const char *name,
              const char *help, const HistogramSummary &summary)
{
    metricHeader(os, name, help, "summary");
    os << name << "{quantile=\"0.5\"} " << json::formatDouble(summary.p50)
       << "\n";
    os << name << "{quantile=\"0.9\"} " << json::formatDouble(summary.p90)
       << "\n";
    os << name << "{quantile=\"0.99\"} "
       << json::formatDouble(summary.p99) << "\n";
    os << name << "_sum " << json::formatDouble(summary.approxSum)
       << "\n";
    os << name << "_count " << summary.count << "\n";
}

void
labeledCounts(std::ostringstream &os, const char *name,
              const char *help, const char *label,
              const std::map<std::string, std::uint64_t> &counts)
{
    metricHeader(os, name, help, "counter");
    for (const auto &[key, count] : counts)
        os << name << "{" << label << "=\"" << escapeLabel(key)
           << "\"} " << count << "\n";
}

} // namespace

std::string
prometheusText(const FleetStatus &status)
{
    std::ostringstream os;
    metricHeader(os, "xed_campaign_info",
                 "Campaign identity; the value is always 1.", "gauge");
    os << "xed_campaign_info{name=\"" << escapeLabel(status.name)
       << "\",specHash=\"" << escapeLabel(status.specHash)
       << "\",source=\"" << escapeLabel(status.source) << "\"} 1\n";

    metricHeader(os, "xed_campaign_complete",
                 "1 when every planned shard is committed.", "gauge");
    os << "xed_campaign_complete " << (status.complete ? 1 : 0) << "\n";

    metricHeader(os, "xed_shards_planned",
                 "Shards in the campaign plan.", "gauge");
    os << "xed_shards_planned " << status.shardsTotal << "\n";

    metricHeader(os, "xed_shards",
                 "Shards by state (done / claimed / pending).", "gauge");
    os << "xed_shards{state=\"done\"} " << status.shardsDone << "\n";
    os << "xed_shards{state=\"claimed\"} " << status.shardsClaimed
       << "\n";
    os << "xed_shards{state=\"pending\"} " << status.shardsPending
       << "\n";

    metricHeader(os, "xed_units_done_total",
                 "Simulated units committed to the store.", "counter");
    os << "xed_units_done_total " << status.unitsDone << "\n";
    if (status.unitsTotal) {
        metricHeader(os, "xed_units_planned",
                     "Units in the campaign plan.", "gauge");
        os << "xed_units_planned " << *status.unitsTotal << "\n";
    }

    metricHeader(os, "xed_failed_units_total",
                 "Failed (or detection-escaped) units committed.",
                 "counter");
    os << "xed_failed_units_total " << status.failedUnits << "\n";
    labeledCounts(os, "xed_cell_failures_total",
                  "Failed units per campaign cell.", "cell",
                  status.failuresByCell);
    labeledCounts(os, "xed_failure_type_total",
                  "Failed units per failure type.", "type",
                  status.failuresByType);
    labeledCounts(os, "xed_detection_outcome_total",
                  "Forensics detection-outcome counts.", "outcome",
                  status.outcomes);

    metricHeader(os, "xed_units_per_second",
                 "Summed last-reported rate of live and stale workers.",
                 "gauge");
    os << "xed_units_per_second "
       << json::formatDouble(status.unitsPerSec) << "\n";
    if (status.etaSeconds) {
        metricHeader(os, "xed_eta_seconds",
                     "Estimated seconds until the plan completes.",
                     "gauge");
        os << "xed_eta_seconds " << json::formatDouble(*status.etaSeconds)
           << "\n";
    }

    metricHeader(os, "xed_workers", "Workers by liveness state.",
                 "gauge");
    std::map<std::string, std::uint64_t> byState = {
        {"live", 0}, {"stale", 0}, {"dead", 0},
        {"done", 0}, {"aborted", 0},
    };
    for (const WorkerStatus &worker : status.workers)
        ++byState[workerLivenessName(worker.liveness)];
    for (const auto &[state, count] : byState)
        os << "xed_workers{state=\"" << state << "\"} " << count << "\n";

    metricHeader(os, "xed_worker_up",
                 "1 while a worker's heartbeat is within the lease "
                 "lifetime.",
                 "gauge");
    for (const WorkerStatus &worker : status.workers)
        os << "xed_worker_up{worker=\"" << escapeLabel(worker.id)
           << "\"} "
           << (worker.liveness == WorkerLiveness::Live ||
                       worker.liveness == WorkerLiveness::Stale
                   ? 1
                   : 0)
           << "\n";
    metricHeader(os, "xed_worker_heartbeat_age_seconds",
                 "Seconds since a worker's freshest heartbeat.",
                 "gauge");
    for (const WorkerStatus &worker : status.workers)
        if (worker.heartbeatAgeSeconds)
            os << "xed_worker_heartbeat_age_seconds{worker=\""
               << escapeLabel(worker.id) << "\"} "
               << json::formatDouble(*worker.heartbeatAgeSeconds)
               << "\n";
    metricHeader(os, "xed_worker_shards_done_total",
                 "Shards committed per worker (self-reported).",
                 "counter");
    for (const WorkerStatus &worker : status.workers)
        os << "xed_worker_shards_done_total{worker=\""
           << escapeLabel(worker.id) << "\"} " << worker.shardsDone
           << "\n";
    metricHeader(os, "xed_worker_units_per_second",
                 "Last-reported per-worker simulation rate.", "gauge");
    for (const WorkerStatus &worker : status.workers)
        os << "xed_worker_units_per_second{worker=\""
           << escapeLabel(worker.id) << "\"} "
           << json::formatDouble(worker.unitsPerSec) << "\n";

    metricHeader(os, "xed_telemetry_skipped_lines_total",
                 "Torn or unknown telemetry lines skipped by the "
                 "tolerant reader.",
                 "counter");
    os << "xed_telemetry_skipped_lines_total "
       << status.skippedTelemetryLines << "\n";
    metricHeader(os, "xed_damaged_fragments_total",
                 "Committed fragments or store lines that failed to "
                 "parse.",
                 "counter");
    os << "xed_damaged_fragments_total " << status.damagedFragments
       << "\n";

    summaryMetric(os, "xed_shard_seconds",
                  "Exact cross-worker shard wall-time distribution "
                  "(merged histogram buckets).",
                  status.shardSeconds);
    summaryMetric(os, "xed_shard_units_per_second",
                  "Exact cross-worker per-shard simulation rate "
                  "distribution.",
                  status.shardUnitsPerSec);
    return os.str();
}

std::string
dashboardHtml()
{
    // Static page; all live data arrives via fetch("status.json"), so
    // the server never renders HTML from campaign state.
    return R"HTML(<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>xed fleet status</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2em; background: #111; color: #ddd; }
h1 { font-size: 1.2em; } h1 small { color: #888; font-weight: normal; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { padding: 0.25em 0.9em; text-align: left; border-bottom: 1px solid #333; }
th { color: #888; font-weight: normal; }
.bar { width: 28em; height: 1em; background: #333; margin: 0.6em 0; }
.bar div { height: 100%; background: #4a8; }
.live { color: #6c6; } .stale { color: #cc6; } .dead { color: #c66; }
.done { color: #69c; } .aborted { color: #c69; }
#error { color: #c66; }
</style>
</head>
<body>
<h1>xed fleet <small id="ident"></small></h1>
<div id="error"></div>
<div id="summary"></div>
<div class="bar"><div id="fill" style="width:0"></div></div>
<div id="rate"></div>
<table id="workers"></table>
<script>
function cell(tag, text, cls) {
  const el = document.createElement(tag);
  el.textContent = text;
  if (cls) el.className = cls;
  return el;
}
async function refresh() {
  try {
    const response = await fetch("status.json");
    const s = await response.json();
    document.getElementById("error").textContent = s.error || "";
    if (!s.error) {
      document.getElementById("ident").textContent =
        s.name + " (" + s.specHash + ")";
      document.getElementById("summary").textContent =
        "shards " + s.shards.done + "/" + s.shards.total +
        " done, " + s.shards.claimed + " claimed, " +
        s.shards.pending + " pending" +
        (s.complete ? " — complete" : "") +
        " · units " + s.units.done +
        (s.units.total ? "/" + s.units.total : "") +
        " · failures " + s.failures.total;
      const frac = s.shards.total ? s.shards.done / s.shards.total : 0;
      document.getElementById("fill").style.width =
        (100 * frac).toFixed(1) + "%";
      document.getElementById("rate").textContent =
        s.throughput.unitsPerSec.toFixed(1) + " units/s" +
        (s.throughput.etaSeconds !== undefined
          ? " · eta " + s.throughput.etaSeconds.toFixed(0) + " s" : "") +
        " · shard p50/p90/p99 " +
        s.throughput.shardSeconds.p50.toFixed(2) + "/" +
        s.throughput.shardSeconds.p90.toFixed(2) + "/" +
        s.throughput.shardSeconds.p99.toFixed(2) + " s";
      const table = document.getElementById("workers");
      table.replaceChildren();
      if (s.workers.length) {
        const head = document.createElement("tr");
        for (const h of ["worker", "state", "beat", "shards",
                         "units", "failed", "units/s"])
          head.appendChild(cell("th", h));
        table.appendChild(head);
        for (const w of s.workers) {
          const row = document.createElement("tr");
          row.appendChild(cell("td", w.id));
          row.appendChild(cell("td", w.state, w.state));
          row.appendChild(cell("td",
            w.heartbeatAgeSeconds !== undefined
              ? w.heartbeatAgeSeconds.toFixed(1) + "s" : "—"));
          row.appendChild(cell("td", w.shardsDone));
          row.appendChild(cell("td", w.unitsDone));
          row.appendChild(cell("td", w.failedUnits));
          row.appendChild(cell("td", w.unitsPerSec.toFixed(1)));
          table.appendChild(row);
        }
      }
    }
  } catch (e) {
    document.getElementById("error").textContent = String(e);
  }
  setTimeout(refresh, 2000);
}
refresh();
</script>
</body>
</html>
)HTML";
}

bool
statusEndpoint(const std::string &httpPath,
               const std::string &sourcePath,
               const StatusOptions &options, int *statusCode,
               std::string *contentType, std::string *body)
{
    if (httpPath == "/" || httpPath == "/index.html") {
        *statusCode = 200;
        *contentType = "text/html; charset=utf-8";
        *body = dashboardHtml();
        return true;
    }
    if (httpPath == "/status.json") {
        const FleetStatus status =
            scanStatusSource(sourcePath, options);
        *statusCode = status.ok ? 200 : 503;
        *contentType = "application/json";
        *body = json::dump(statusJson(status)) + "\n";
        return true;
    }
    if (httpPath == "/metrics") {
        const FleetStatus status =
            scanStatusSource(sourcePath, options);
        if (!status.ok) {
            *statusCode = 503;
            *contentType = "text/plain; charset=utf-8";
            *body = status.error + "\n";
            return true;
        }
        *statusCode = 200;
        // The Prometheus text exposition format's registered type.
        *contentType = "text/plain; version=0.0.4; charset=utf-8";
        *body = prometheusText(status);
        return true;
    }
    return false;
}

} // namespace xed::campaign
