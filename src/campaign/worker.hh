/**
 * @file
 * Distributed campaign execution: the worker loop and the merge.
 *
 * `runWorker` is one fleet member: it joins a ShardQueue, repeatedly
 * claims pending shards from the spec's deterministic plan, executes
 * them with the same per-shard engine entry points the single-process
 * runner uses (runner.hh runShard), and commits one fragment per
 * shard — the exact store record bytes, plus the forensics sidecar
 * record for reliability campaigns. A heartbeat thread renews the
 * lease on the shard being executed, so only dead (or pathologically
 * stalled) workers lose their claim. Workers are fully symmetric:
 * there is no coordinator process, and any number of them can join or
 * crash at any time.
 *
 * `mergeFragments` assembles a completed queue into the canonical
 * result store (and forensics sidecar): manifest record, every
 * fragment's lines appended verbatim in plan order, then the summary
 * records recomputed from the decoded shard results — the same code
 * path resume uses, so the merged file is byte-identical to what one
 * uninterrupted single-process run would have written (cmp-verified
 * by tests/campaign/test_worker.cc and scripts/dist_smoke.sh).
 *
 * Determinism rules the merge relies on:
 *  - shard execution is a pure function of (spec, shard index);
 *  - fragments carry pre-serialized record lines, appended verbatim;
 *  - summary records are derived from decoded shard payloads, which
 *    round-trip exactly (integer counters; shortest-round-trip
 *    doubles).
 */

#ifndef XED_CAMPAIGN_WORKER_HH
#define XED_CAMPAIGN_WORKER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "campaign/queue.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"

namespace xed::campaign
{

struct WorkerOptions
{
    /** Shared queue directory (see queue.hh). */
    std::string queueDir;
    /** Worker identity; empty = ShardQueue::defaultWorkerId(). */
    std::string workerId;
    /** Lease lifetime before other workers may re-claim our shard. */
    double leaseSeconds = 60.0;
    /** Sleep between scans while every pending shard is leased out. */
    double pollSeconds = 0.2;
    /** Stop after committing this many shards; 0 = run until the
     *  queue is drained. Tests use this to simulate partial workers. */
    std::uint64_t maxShards = 0;
    /** Progress sampling period; <= 0 disables the progress thread. */
    double progressIntervalSeconds = 0;
    /** Stream for live status lines (the CLI passes stderr). */
    std::ostream *progressOut = nullptr;
    /** Write `<queueDir>/worker-<id>.telemetry.jsonl`. */
    bool telemetrySidecar = true;
    /** Include forensics lines in reliability fragments. All workers
     *  of one queue must agree (validated against the manifest). */
    bool forensics = true;
    /** fsync fragments and leases; see store.hh. */
    bool durable = true;
    /** Force the trace recorder on (the CLI's XED_TRACE also works);
     *  the export lands in `<queueDir>/worker-<id>.trace.json`. */
    bool trace = false;
};

struct WorkerOutcome
{
    bool ok = false;
    std::string error;
    /** Shards this worker executed and committed (duplicates incl.). */
    std::uint64_t shardsRun = 0;
    /** Commits that found a byte-identical fragment already present
     *  (this worker was a re-claimed straggler). */
    std::uint64_t duplicates = 0;
    /** Every fragment existed when the worker exited. */
    bool queueDrained = false;
    /** Where the trace was exported ("" when tracing was off). */
    std::string tracePath;
};

WorkerOutcome runWorker(const CampaignSpec &spec,
                        const WorkerOptions &options);

struct MergeOptions
{
    std::string queueDir;
    /** Result store path; the forensics sidecar derives from it. */
    std::string outPath;
    /** Poll until every fragment exists instead of failing fast. */
    bool waitForFragments = false;
    double pollSeconds = 0.5;
    /** Give up waiting after this long; 0 = wait forever. */
    double timeoutSeconds = 0;
    /** fsync the assembled store and sidecar. */
    bool durable = true;
};

struct MergeOutcome
{
    bool ok = false;
    std::string error;
    std::uint64_t shardsMerged = 0;
    /** Sidecar written (reliability campaigns with forensics). */
    bool forensicsWritten = false;
    /** points x cells summaries, as RunOutcome::cells. */
    std::vector<CellSummary> cells;
};

/** Assemble a queue's fragments into the canonical store bytes. */
MergeOutcome mergeFragments(const CampaignSpec &spec,
                            const MergeOptions &options);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_WORKER_HH
