#include "campaign/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "campaign/forensics.hh"
#include "campaign/store.hh"
#include "campaign/telemetry.hh"
#include "obs/trace.hh"

namespace xed::campaign
{

namespace fs = std::filesystem;

namespace
{

std::optional<std::string>
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Lease heartbeat: renews the shard currently being executed so a
 * slow-but-alive worker keeps its claim; only a dead worker's lease
 * ages past the lifetime and gets broken. Renewal runs at a quarter
 * of the lease lifetime, leaving three missed beats of slack before
 * anyone may break us.
 */
class Heartbeat
{
  public:
    Heartbeat(ShardQueue &queue, double leaseSeconds) : queue_(queue)
    {
        const double interval =
            std::max(leaseSeconds / 4.0, 0.01);
        thread_ = std::thread([this, interval] {
            std::unique_lock<std::mutex> lock(mutex_);
            while (!stop_) {
                cv_.wait_for(lock,
                             std::chrono::duration<double>(interval),
                             [this] { return stop_; });
                if (stop_)
                    break;
                const std::int64_t shard =
                    current_.load(std::memory_order_relaxed);
                if (shard >= 0) {
                    lock.unlock();
                    queue_.renew(static_cast<std::uint64_t>(shard),
                                 nullptr);
                    lock.lock();
                }
            }
        });
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void beating(std::uint64_t shard)
    {
        current_.store(static_cast<std::int64_t>(shard),
                       std::memory_order_relaxed);
    }
    void idle() { current_.store(-1, std::memory_order_relaxed); }

  private:
    ShardQueue &queue_;
    std::atomic<std::int64_t> current_{-1};
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

std::string
fragmentBytesFor(const CampaignSpec &spec, const ShardTask &task,
                 const ShardResult &result, bool forensics)
{
    std::string bytes = json::dump(shardRecord(spec, task, result));
    bytes += '\n';
    if (forensics) {
        bytes += json::dump(forensicsShardRecord(task, result.mc));
        bytes += '\n';
    }
    return bytes;
}

} // namespace

WorkerOutcome
runWorker(const CampaignSpec &spec, const WorkerOptions &options)
{
    WorkerOutcome outcome;
    const Plan plan = buildPlan(spec);
    const std::string hash = specHash(spec);

    auto &recorder = obs::TraceRecorder::instance();
    if (options.trace)
        recorder.setEnabled(true);

    ShardQueue queue;
    QueueOptions queueOptions;
    queueOptions.dir = options.queueDir;
    queueOptions.workerId = options.workerId;
    queueOptions.leaseSeconds = options.leaseSeconds;
    queueOptions.durable = options.durable;
    queueOptions.forensics = options.forensics;
    if (!queue.open(spec, plan, queueOptions, &outcome.error))
        return outcome;
    const bool wantForensics =
        options.forensics && spec.kind == CampaignKind::Reliability;
    if (queue.forensics() != wantForensics) {
        outcome.error =
            "queue " + queue.dir() +
            (queue.forensics()
                 ? " expects forensics fragments; this worker was "
                   "started with forensics disabled"
                 : " was created without forensics; this worker would "
                   "write forensics fragments") +
            " -- all workers of one queue must agree";
        return outcome;
    }

    if (recorder.enabled())
        recorder.setProcessLabel("worker:" + queue.workerId());
    XED_TRACE_SPAN("campaign.worker", "campaign");

    // -- Per-worker telemetry: same schema as the single-process
    // runner, provenance-tagged with the worker id, streamed to
    // `<queueDir>/worker-<id>.telemetry.jsonl`. Totals describe the
    // whole campaign; done/units counters cover this worker's share.
    MetricsRegistry registry;
    faultsim::McProgress progress;
    registry.counter("shards.total").add(plan.tasks.size());
    registry.counter("units.total")
        .add(static_cast<std::uint64_t>(plan.points) * plan.cells *
             spec.unitsPerCell());
    for (unsigned cell = 0; cell < plan.cells; ++cell)
        registry.counter("failed." + cellLabel(spec, cell)).add(0);
    ProgressReporter::Setup telemetry;
    telemetry.intervalSeconds = options.progressIntervalSeconds;
    telemetry.statusOut = options.progressOut;
    if (options.telemetrySidecar)
        telemetry.sidecarPath =
            (fs::path(queue.dir()) /
             ("worker-" + queue.workerId() + ".telemetry.jsonl"))
                .string();
    ProgressReporter reporter(telemetry, registry, progress);
    reporter.start(
        runMetadata(spec.name, hash, 1, 0, queue.workerId()));

    const auto exportTrace = [&] {
        if (!recorder.enabled())
            return;
        const std::string path =
            (fs::path(queue.dir()) /
             ("worker-" + queue.workerId() + ".trace.json"))
                .string();
        std::string traceError;
        if (recorder.exportTo(path, &traceError))
            outcome.tracePath = path;
        else if (options.progressOut)
            *options.progressOut
                << "trace export failed: " << traceError << "\n";
    };

    Heartbeat heartbeat(queue, options.leaseSeconds);

    // Same shard-time distributions the single-process runner feeds:
    // the per-worker telemetry carries their exact buckets, and the
    // fleet status scanner merges every worker's into the fleet-wide
    // p50/p90/p99.
    Histogram &shardSeconds = registry.histogram("shard.seconds");
    Histogram &shardRate = registry.histogram("shard.unitsPerSec");

    // -- Claim loop. Scans the plan repeatedly: committed shards are
    // skipped, leased shards are left to their holder, and the first
    // claimable shard is executed. When a full scan finds only
    // committed shards the queue is drained; when it finds live
    // leases but nothing claimable, sleep and rescan (an expired
    // lease becomes claimable on a later pass).
    std::uint64_t doneBelow = 0; // shards [0, doneBelow) committed
    std::uint64_t jitterState = pollJitterSeed(queue.workerId());
    bool reachedLimit = false;
    while (!reachedLimit) {
        bool claimedAny = false;
        bool sawBusy = false;
        for (std::uint64_t i = doneBelow;
             i < plan.tasks.size() && !reachedLimit; ++i) {
            const auto claim = queue.tryClaim(i, &outcome.error);
            if (claim == ShardQueue::Claim::Done) {
                if (i == doneBelow)
                    ++doneBelow;
                continue;
            }
            if (claim == ShardQueue::Claim::Busy) {
                sawBusy = true;
                continue;
            }
            const ShardTask &task = plan.tasks[i];
            heartbeat.beating(i);
            ShardResult result;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                XED_TRACE_SPAN_ARG(
                    spec.kind == CampaignKind::Reliability
                        ? "reliability-shard"
                        : spec.kind == CampaignKind::Fleet
                              ? "fleet-shard"
                              : "detection-shard",
                    "campaign", "index", i);
                result = runShard(spec, task, &progress);
            } catch (const std::exception &e) {
                heartbeat.idle();
                queue.release(i);
                outcome.error =
                    "shard execution failed: " + std::string(e.what());
                exportTrace();
                return outcome;
            }
            heartbeat.idle();
            const double dt =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            shardSeconds.update(dt);
            if (dt > 0)
                shardRate.update(
                    static_cast<double>(task.end - task.begin) / dt);
            bool duplicate = false;
            if (!queue.commit(i,
                              fragmentBytesFor(spec, task, result,
                                               wantForensics),
                              &outcome.error, &duplicate)) {
                queue.release(i);
                exportTrace();
                return outcome;
            }
            ++outcome.shardsRun;
            if (duplicate)
                ++outcome.duplicates;
            claimedAny = true;
            registry.counter("shards.done").add(1);
            registry.counter("failed." + cellLabel(spec, task.cell))
                .add(failedSystemsOf(spec, result));
            if (options.maxShards &&
                outcome.shardsRun >= options.maxShards)
                reachedLimit = true;
        }
        if (reachedLimit)
            break;
        if (!sawBusy) {
            outcome.queueDrained = true;
            break;
        }
        if (!claimedAny)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                jitteredPollSeconds(options.pollSeconds, jitterState)));
    }
    if (reachedLimit)
        outcome.queueDrained =
            queue.fragmentsPresent() == plan.tasks.size();

    reporter.finish(outcome.queueDrained);
    exportTrace();
    outcome.ok = true;
    return outcome;
}

MergeOutcome
mergeFragments(const CampaignSpec &spec, const MergeOptions &options)
{
    MergeOutcome outcome;
    const Plan plan = buildPlan(spec);
    const std::string hash = specHash(spec);
    XED_TRACE_SPAN("campaign.merge", "campaign");

    ShardQueue queue;
    QueueOptions queueOptions;
    queueOptions.dir = options.queueDir;
    queueOptions.workerId = "merge";
    queueOptions.durable = options.durable;
    if (!queue.open(spec, plan, queueOptions, &outcome.error))
        return outcome;

    // -- Readiness: every shard must have a committed fragment.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options.timeoutSeconds));
    for (;;) {
        std::uint64_t missing = plan.tasks.size();
        for (std::uint64_t i = 0; i < plan.tasks.size(); ++i) {
            if (!queue.fragmentExists(i)) {
                missing = i;
                break;
            }
        }
        if (missing == plan.tasks.size())
            break;
        if (!options.waitForFragments) {
            outcome.error = "queue " + queue.dir() + ": shard " +
                            std::to_string(missing) +
                            " has no committed fragment yet (workers "
                            "still running? use --wait to poll)";
            return outcome;
        }
        if (options.timeoutSeconds > 0 &&
            std::chrono::steady_clock::now() >= deadline) {
            outcome.error = "queue " + queue.dir() +
                            ": timed out waiting for shard " +
                            std::to_string(missing) + "'s fragment";
            return outcome;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(options.pollSeconds, 0.01)));
    }

    if (fs::exists(options.outPath)) {
        outcome.error = options.outPath +
                        " already exists; remove it (the merge always "
                        "assembles the full store from fragments)";
        return outcome;
    }

    StoreWriter writer;
    if (!writer.open(options.outPath, -1, &outcome.error,
                     options.durable))
        return outcome;
    if (!writer.write(manifestRecord(spec, plan, hash), &outcome.error))
        return outcome;

    const bool useForensics =
        queue.forensics() && spec.kind == CampaignKind::Reliability;
    StoreWriter forensicsWriter;
    if (useForensics &&
        !forensicsWriter.open(forensicsPath(options.outPath), -1,
                              &outcome.error, options.durable))
        return outcome;

    outcome.cells.resize(
        static_cast<std::size_t>(plan.points) * plan.cells);
    for (unsigned point = 0; point < plan.points; ++point) {
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            auto &summary = outcome.cells[point * plan.cells + cell];
            summary.point = point;
            summary.cell = cell;
            summary.label = cellLabel(spec, cell);
        }
    }

    // Autopsy type strings decoded from fragments live here; the
    // merged exemplars are serialized into the summary records before
    // this function returns, and the returned cells drop their
    // autopsy vectors (the pointers would dangle otherwise).
    std::vector<std::unique_ptr<std::string>> strings;

    // -- Assemble: fragment record lines are appended VERBATIM, in
    // plan order, so the store/sidecar bytes cannot be perturbed by a
    // parse/re-serialize round trip; parsing below is validation and
    // summary bookkeeping only.
    for (std::uint64_t i = 0; i < plan.tasks.size(); ++i) {
        const ShardTask &task = plan.tasks[i];
        const std::string path = queue.fragmentPath(i);
        const auto bytes = slurpFile(path);
        if (!bytes) {
            outcome.error = "cannot read fragment " + path;
            return outcome;
        }
        if (bytes->empty() || bytes->back() != '\n') {
            outcome.error = path + ": truncated fragment";
            return outcome;
        }
        std::vector<std::string> lines;
        std::size_t start = 0;
        while (start < bytes->size()) {
            const std::size_t newline = bytes->find('\n', start);
            lines.push_back(bytes->substr(start, newline - start));
            start = newline + 1;
        }
        const std::size_t expectLines = useForensics ? 2 : 1;
        if (lines.size() != expectLines) {
            outcome.error = path + ": expected " +
                            std::to_string(expectLines) +
                            " record line(s), found " +
                            std::to_string(lines.size());
            return outcome;
        }

        std::string parseError;
        const auto record = json::parse(lines[0], &parseError);
        if (!record || !record->isObject()) {
            outcome.error = path + ": invalid shard record: " +
                            parseError;
            return outcome;
        }
        const json::Value *type = record->find("type");
        const json::Value *index = record->find("index");
        const json::Value *point = record->find("point");
        const json::Value *cell = record->find("cell");
        const json::Value *begin = record->find("begin");
        const json::Value *end = record->find("end");
        const bool matches =
            type && type->isString() && type->asString() == "shard" &&
            index && index->isIntegral() && index->asUint() == i &&
            point && point->isIntegral() &&
            point->asUint() == task.point && cell &&
            cell->isIntegral() && cell->asUint() == task.cell &&
            begin && begin->isIntegral() &&
            begin->asUint() == task.begin && end &&
            end->isIntegral() && end->asUint() == task.end;
        if (!matches) {
            outcome.error = path +
                            ": shard record does not match the spec's "
                            "plan (foreign or corrupt fragment)";
            return outcome;
        }
        ShardResult result = shardResultFromJson(spec, *record);

        if (useForensics) {
            const auto forensics = json::parse(lines[1], &parseError);
            if (!forensics || !forensics->isObject()) {
                outcome.error = path + ": invalid forensics record: " +
                                parseError;
                return outcome;
            }
            const json::Value *ftype = forensics->find("type");
            const json::Value *findex = forensics->find("index");
            if (!ftype || !ftype->isString() ||
                ftype->asString() != "forensics" || !findex ||
                !findex->isIntegral() || findex->asUint() != i) {
                outcome.error = path +
                                ": forensics record does not match "
                                "its shard";
                return outcome;
            }
            if (!parseAttribution(*forensics, result.mc.attribution,
                                  &parseError)) {
                outcome.error = path + ": " + parseError;
                return outcome;
            }
            parseAutopsy(*forensics, result.mc.autopsy, strings);
            // Sidecar record strictly before the store record,
            // mirroring the single-process runner's write order.
            if (!forensicsWriter.writeLine(lines[1], &outcome.error))
                return outcome;
        }
        if (!writer.writeLine(lines[0], &outcome.error))
            return outcome;
        outcome.cells[task.point * plan.cells + task.cell].result.merge(
            result);
        ++outcome.shardsMerged;
    }

    // -- Summaries: recomputed from the decoded shard payloads, the
    // same path a resumed single-process run takes -- so these bytes
    // match an uninterrupted run's exactly.
    if (useForensics) {
        for (const auto &cell : outcome.cells) {
            if (!forensicsWriter.write(
                    forensicsSummaryRecord(cell.point, cell.cell,
                                           cell.label, cell.result.mc),
                    &outcome.error))
                return outcome;
        }
    }
    if (!writer.write(summaryRecord(spec, outcome.cells),
                      &outcome.error))
        return outcome;

    // The autopsy exemplars' type strings are owned by this frame;
    // drop them from the returned cells rather than dangle.
    for (auto &cell : outcome.cells)
        cell.result.mc.autopsy.clear();

    outcome.forensicsWritten = useForensics;
    outcome.ok = true;
    return outcome;
}

} // namespace xed::campaign
