#include "campaign/runner.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "campaign/forensics.hh"
#include "campaign/telemetry.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "ecc/crc8atm.hh"
#include "ecc/error_patterns.hh"
#include "ecc/hamming7264.hh"
#include "obs/trace.hh"

namespace xed::campaign
{

namespace
{

unsigned
resolveThreads(const CampaignSpec &spec, const RunOptions &options,
               std::uint64_t pendingTasks)
{
    std::uint64_t threads = options.threads ? options.threads
                                            : spec.threads;
    if (threads == 0) {
        // envU64 throws on malformed values, same strictness as the
        // engine's own XED_MC_THREADS resolution.
        if (const auto env = envU64("XED_MC_THREADS")) {
            if (*env > std::numeric_limits<unsigned>::max())
                throw std::runtime_error(
                    "XED_MC_THREADS: " + std::to_string(*env) +
                    " is not a sane worker-thread count");
            threads = *env;
        }
        if (threads == 0)
            threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    return static_cast<unsigned>(std::min<std::uint64_t>(
        threads, std::max<std::uint64_t>(pendingTasks, 1)));
}

std::unique_ptr<ecc::Secded7264>
makeCode(const std::string &name)
{
    if (name == "crc8atm")
        return std::make_unique<ecc::Crc8Atm>();
    return std::make_unique<ecc::Hamming7264>();
}

json::Value
sweepValueJson(const CampaignSpec &spec, unsigned point)
{
    return spec.sweep.active() ? json::Value(spec.sweep.values[point])
                               : json::Value(nullptr);
}

/**
 * Fleet-wide series derived from the merged per-cohort deltas at
 * summary time (DESIGN.md Section 4h): in-service counts, deployed
 * capacity, cumulative failure counts and scrub traffic. Partial
 * stores may have short (or missing) cohort series; everything is
 * padded to the full epoch count so report rendering never branches.
 */
struct FleetDerived
{
    unsigned epochs = 0;
    std::vector<fleet::CohortSeries> cohorts; ///< padded, per cohort
    std::vector<std::uint64_t> inService;     ///< fleet-wide, per epoch
    std::vector<std::uint64_t> deployed;      ///< capacity, per epoch
    std::vector<std::uint64_t> cumulativeDue;
    std::vector<std::uint64_t> cumulativeSdc;
    std::vector<std::uint64_t> cumulativeReplacements;
    /** Patrol-scrub passes issued during each epoch: in-service DIMMs
     *  x epochHours / scrubIntervalHours, summed over cohorts. */
    std::vector<double> scrubPasses;

    double
    availability(unsigned epoch) const
    {
        // Before anything is deployed there is nothing to be
        // unavailable; report the fleet as trivially whole.
        return deployed[epoch]
                   ? static_cast<double>(inService[epoch]) /
                         static_cast<double>(deployed[epoch])
                   : 1.0;
    }
};

FleetDerived
deriveFleet(const CampaignSpec &spec, const fleet::FleetResult &result)
{
    FleetDerived out;
    out.epochs = fleetConfigFor(spec).epochs();
    const auto &cohorts = spec.fleet.cohorts;
    out.cohorts.resize(cohorts.size());
    out.inService.assign(out.epochs, 0);
    out.deployed.assign(out.epochs, 0);
    out.cumulativeDue.assign(out.epochs, 0);
    out.cumulativeSdc.assign(out.epochs, 0);
    out.cumulativeReplacements.assign(out.epochs, 0);
    out.scrubPasses.assign(out.epochs, 0.0);
    for (std::size_t c = 0; c < cohorts.size(); ++c) {
        fleet::CohortSeries &series = out.cohorts[c];
        series.resize(out.epochs);
        if (c < result.cohorts.size())
            series.merge(result.cohorts[c]);
        const std::vector<std::uint64_t> inSvc =
            fleet::inServiceSeries(series);
        for (unsigned e = 0; e < out.epochs; ++e) {
            out.inService[e] += inSvc[e];
            if (e >= cohorts[c].deployEpoch)
                out.deployed[e] += cohorts[c].dimms;
            if (cohorts[c].scrubIntervalHours > 0)
                out.scrubPasses[e] +=
                    static_cast<double>(inSvc[e]) *
                    (spec.fleet.epochHours /
                     cohorts[c].scrubIntervalHours);
        }
    }
    std::uint64_t due = 0, sdc = 0, replacements = 0;
    for (unsigned e = 0; e < out.epochs; ++e) {
        for (const auto &series : out.cohorts) {
            due += series.due[e];
            sdc += series.sdc[e];
            replacements += series.replacements[e];
        }
        out.cumulativeDue[e] = due;
        out.cumulativeSdc[e] = sdc;
        out.cumulativeReplacements[e] = replacements;
    }
    return out;
}

json::Value
fleetSummaryJson(const CampaignSpec &spec,
                 const fleet::FleetResult &result)
{
    const FleetDerived derived = deriveFleet(spec, result);
    auto payload = json::Value::object();
    payload.set("epochs", derived.epochs);
    payload.set("epochHours", spec.fleet.epochHours);
    const auto u64Array = [](const std::vector<std::uint64_t> &values) {
        auto array = json::Value::array();
        for (const std::uint64_t v : values)
            array.push(v);
        return array;
    };
    payload.set("inService", u64Array(derived.inService));
    auto availability = json::Value::array();
    for (unsigned e = 0; e < derived.epochs; ++e)
        availability.push(json::Value(derived.availability(e)));
    payload.set("availability", std::move(availability));
    payload.set("cumulativeDue", u64Array(derived.cumulativeDue));
    payload.set("cumulativeSdc", u64Array(derived.cumulativeSdc));
    payload.set("cumulativeReplacements",
                u64Array(derived.cumulativeReplacements));
    auto scrub = json::Value::array();
    for (const double v : derived.scrubPasses)
        scrub.push(json::Value(v));
    payload.set("scrubPasses", std::move(scrub));
    auto cohortArray = json::Value::array();
    for (std::size_t c = 0; c < spec.fleet.cohorts.size(); ++c) {
        const fleet::FleetCohort &cohort = spec.fleet.cohorts[c];
        const fleet::CohortSeries &series = derived.cohorts[c];
        auto entry = json::Value::object();
        entry.set("name", cohort.name);
        entry.set("scheme", faultsim::schemeKindName(cohort.scheme));
        entry.set("dimms", cohort.dimms);
        entry.set("canary", cohort.canary);
        entry.set("installs", series.totalInstalls());
        entry.set("replacements", series.totalReplacements());
        entry.set("retirements", series.totalRetirements());
        entry.set("due", series.totalDue());
        entry.set("sdc", series.totalSdc());
        entry.set("finalInService",
                  derived.epochs
                      ? fleet::inServiceSeries(series).back()
                      : std::uint64_t{0});
        const auto alert =
            cohort.canary
                ? fleet::canaryAlertEpoch(
                      series, cohort.dimms,
                      spec.fleet.policies.canaryDueThreshold)
                : std::nullopt;
        entry.set("canaryAlertEpoch", alert
                                          ? json::Value(std::uint64_t{
                                                *alert})
                                          : json::Value(nullptr));
        cohortArray.push(std::move(entry));
    }
    payload.set("cohorts", std::move(cohortArray));
    return payload;
}

const char *
campaignKindName(CampaignKind kind)
{
    if (kind == CampaignKind::Reliability)
        return "reliability";
    return kind == CampaignKind::Fleet ? "fleet" : "detection";
}

} // namespace

std::uint64_t
failedSystemsOf(const CampaignSpec &spec, const ShardResult &result)
{
    if (spec.kind == CampaignKind::Detection)
        return result.trials - result.detected; // escapes, not failures
    if (spec.kind == CampaignKind::Fleet) {
        std::uint64_t failed = 0;
        for (const auto &series : result.fleet.cohorts)
            failed += series.totalDue() + series.totalSdc();
        return failed;
    }
    std::uint64_t failed = 0;
    for (const auto &[name, count] : result.mc.failureTypes.all())
        failed += count;
    return failed;
}

ShardResult
runReliabilityShard(const CampaignSpec &spec, const ShardTask &task,
                    faultsim::McProgress *progress)
{
    faultsim::McConfig cfg = mcConfigFor(spec, task.point);
    cfg.progress = progress;
    const auto scheme =
        makeScheme(spec.schemes[task.cell], onDieFor(spec, task.point));
    ShardResult out;
    out.mc = runMonteCarloShard(*scheme, cfg, task.begin, task.end);
    return out;
}

ShardResult
runFleetShard(const CampaignSpec &spec, const ShardTask &task,
              faultsim::McProgress *progress)
{
    ShardResult out;
    out.fleet = fleet::runFleetShard(fleetConfigFor(spec), task.begin,
                                     task.end, progress);
    return out;
}

ShardResult
runShard(const CampaignSpec &spec, const ShardTask &task,
         faultsim::McProgress *progress)
{
    if (spec.kind == CampaignKind::Reliability)
        return runReliabilityShard(spec, task, progress);
    if (spec.kind == CampaignKind::Fleet)
        return runFleetShard(spec, task, progress);
    return runDetectionShard(spec, task, progress);
}

ShardResult
runDetectionShard(const CampaignSpec &spec, const ShardTask &task,
                  faultsim::McProgress *progress)
{
    const DetectionCell cell = detectionCell(spec, task.cell);
    const auto code = makeCode(cell.code);
    const ecc::Word72 clean = code->encode(0x0123456789ABCDEFull);
    const std::uint64_t shardOrdinal = task.begin / spec.shardTrials;
    Rng rng = Rng::stream(spec.seed,
                          (static_cast<std::uint64_t>(task.cell) << 40) +
                              shardOrdinal);
    ShardResult out;
    out.trials = task.end - task.begin;
    // Stream the shard through the batched kernel: fill a stack batch
    // of error patterns (consuming the RNG in exactly the scalar
    // per-trial order), turn them into received words, count
    // non-codewords in one detectMany pass.
    constexpr std::size_t batchSize = 512;
    std::array<ecc::Word72, batchSize> batch;
    std::uint64_t remaining = out.trials;
    while (remaining > 0) {
        XED_TRACE_SPAN_ARG("detect.batch", "ecc", "remaining",
                           remaining);
        const std::size_t count = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, batchSize));
        const std::span<ecc::Word72> span(batch.data(), count);
        if (cell.burst)
            ecc::solidBurstPatternsInto(rng, cell.weight, span);
        else
            ecc::randomPatternsInto(rng, cell.weight, span);
        for (ecc::Word72 &word : span)
            word = clean ^ word;
        out.detected += code->detectMany(span);
        remaining -= count;
    }
    if (progress) {
        progress->systemsDone.fetch_add(out.trials,
                                        std::memory_order_relaxed);
        progress->failedSystems.fetch_add(out.trials - out.detected,
                                          std::memory_order_relaxed);
    }
    return out;
}

json::Value
summaryRecord(const CampaignSpec &spec,
              const std::vector<CellSummary> &cells)
{
    auto record = json::Value::object();
    record.set("type", "summary");
    auto results = json::Value::array();
    std::uint64_t units = 0;
    auto failures = json::Value::object();
    for (const auto &cell : cells) {
        auto entry = json::Value::object();
        entry.set("point", cell.point);
        if (spec.sweep.active()) {
            entry.set("parameter", spec.sweep.parameter);
            entry.set("value", sweepValueJson(spec, cell.point));
        }
        entry.set("cell", cell.cell);
        entry.set("label", cell.label);
        if (spec.kind == CampaignKind::Reliability) {
            const auto &mc = cell.result.mc;
            auto years = json::Value::array();
            for (unsigned y = 1; y <= 7; ++y) {
                auto pair = json::Value::array();
                pair.push(mc.failByYear[y].successes());
                pair.push(mc.failByYear[y].trials());
                years.push(std::move(pair));
            }
            entry.set("failByYear", std::move(years));
            entry.set("probFailure", mc.probFailure());
            entry.set("halfWidth95", mc.failByYear[7].halfWidth95());
            auto types = json::Value::object();
            for (const auto &[name, count] : mc.failureTypes.all())
                types.set(name, count);
            entry.set("failureTypes", std::move(types));
            units += mc.failByYear[7].trials();
        } else if (spec.kind == CampaignKind::Fleet) {
            entry.set("fleet",
                      fleetSummaryJson(spec, cell.result.fleet));
            units += spec.fleet.totalDimms();
        } else {
            entry.set("detected", cell.result.detected);
            entry.set("trials", cell.result.trials);
            entry.set("detectionRate",
                      cell.result.trials
                          ? static_cast<double>(cell.result.detected) /
                                static_cast<double>(cell.result.trials)
                          : 0.0);
            units += cell.result.trials;
        }
        const std::uint64_t failed = failedSystemsOf(spec, cell.result);
        if (const json::Value *existing = failures.find(cell.label))
            failures.set(cell.label, existing->asUint() + failed);
        else
            failures.set(cell.label, failed);
        results.push(std::move(entry));
    }
    record.set("results", std::move(results));
    auto metrics = json::Value::object();
    metrics.set("unitsSimulated", units);
    metrics.set("failures", std::move(failures));
    record.set("metrics", std::move(metrics));
    return record;
}

RunOutcome
runCampaign(const CampaignSpec &spec, const RunOptions &options)
{
    RunOutcome outcome;
    if (options.trace)
        obs::TraceRecorder::instance().setEnabled(true);
    XED_TRACE_SPAN("campaign.run", "campaign");
    const Plan plan = buildPlan(spec);
    const std::string hash = specHash(spec);

    outcome.cells.resize(
        static_cast<std::size_t>(plan.points) * plan.cells);
    for (unsigned point = 0; point < plan.points; ++point) {
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            auto &summary = outcome.cells[point * plan.cells + cell];
            summary.point = point;
            summary.cell = cell;
            summary.label = cellLabel(spec, cell);
        }
    }

    // -- Store setup: replay a resumable prefix, or start fresh. -----
    const bool useStore = !options.outPath.empty();
    StoreWriter writer;
    std::uint64_t firstPending = 0;
    std::uint64_t replayedUnits = 0;
    if (useStore) {
        const bool exists = std::filesystem::exists(options.outPath);
        if (exists && !options.resume) {
            outcome.error = options.outPath +
                            " already exists; use resume (or remove it) "
                            "so completed shards are not re-simulated";
            return outcome;
        }
        if (exists) {
            const LoadedStore loaded =
                loadStore(options.outPath, hash, spec, plan);
            if (!loaded.ok) {
                outcome.error = loaded.error;
                return outcome;
            }
            firstPending = loaded.completedShards;
            for (std::uint64_t i = 0; i < firstPending; ++i) {
                const ShardTask &task = plan.tasks[i];
                outcome.cells[task.point * plan.cells + task.cell]
                    .result.merge(loaded.shardResults[i]);
                replayedUnits += task.end - task.begin;
            }
            outcome.shardsReplayed = firstPending;
            if (loaded.hasSummary) {
                // Nothing to do: resuming a finished run is a no-op.
                outcome.ok = true;
                outcome.complete = true;
                return outcome;
            }
            if (!writer.open(options.outPath, loaded.validBytes,
                             &outcome.error, options.durableStore))
                return outcome;
        } else {
            if (!writer.open(options.outPath, -1, &outcome.error,
                             options.durableStore))
                return outcome;
            if (!writer.write(manifestRecord(spec, plan, hash),
                              &outcome.error))
                return outcome;
        }
    }

    // -- Forensics sidecar: written alongside the store, shard record
    // i flushed strictly BEFORE store record i, so after a kill the
    // sidecar always covers the store's shard prefix. On resume it is
    // truncated back to exactly that prefix; a sidecar that cannot
    // cover the prefix (deleted, foreign, torn early) is discarded and
    // forensics disabled for the run, because replayed store records
    // carry no attribution to rebuild it from.
    StoreWriter forensicsWriter;
    bool useForensics = useStore && options.forensicsSidecar &&
                        spec.kind == CampaignKind::Reliability;
    if (useForensics) {
        const std::string sidecar = forensicsPath(options.outPath);
        if (firstPending == 0) {
            if (!forensicsWriter.open(sidecar, -1, &outcome.error,
                                      options.durableStore))
                return outcome;
        } else {
            const LoadedForensics loaded = loadForensics(sidecar);
            if (!loaded.ok || loaded.shardRecords < firstPending) {
                std::error_code ec;
                std::filesystem::remove(sidecar, ec);
                useForensics = false;
            } else {
                for (std::uint64_t i = 0; i < firstPending; ++i) {
                    const ShardTask &task = plan.tasks[i];
                    outcome.cells[task.point * plan.cells + task.cell]
                        .result.mc.attribution.merge(
                            loaded.attributions[i]);
                }
                if (!forensicsWriter.open(
                        sidecar,
                        loaded.bytesAfterShard[firstPending - 1],
                        &outcome.error, options.durableStore))
                    return outcome;
            }
        }
    }
    outcome.forensicsWritten = useForensics;

    // maxShards counts shard *records* (replayed included), so "run 2,
    // kill, resume to 5" composes the way an interrupt does.
    const std::uint64_t limit =
        options.maxShards == 0
            ? plan.tasks.size()
            : std::min<std::uint64_t>(
                  plan.tasks.size(),
                  std::max(options.maxShards, firstPending));

    // -- Telemetry. ---------------------------------------------------
    MetricsRegistry registry;
    faultsim::McProgress progress;
    const std::uint64_t totalUnits =
        static_cast<std::uint64_t>(plan.points) * plan.cells *
        spec.unitsPerCell();
    registry.counter("shards.total").add(plan.tasks.size());
    registry.counter("shards.done").add(firstPending);
    registry.counter("units.total").add(totalUnits);
    registry.counter("units.replayed").add(replayedUnits);
    progress.systemsDone.fetch_add(replayedUnits);
    for (unsigned cell = 0; cell < plan.cells; ++cell)
        registry.counter("failed." + cellLabel(spec, cell)).add(0);
    for (const auto &cell : outcome.cells) {
        registry.counter("failed." + cell.label)
            .add(failedSystemsOf(spec, cell.result));
        progress.failedSystems.fetch_add(
            failedSystemsOf(spec, cell.result));
    }

    unsigned threads = 1;
    try {
        threads = resolveThreads(spec, options, limit - firstPending);
    } catch (const std::exception &e) {
        outcome.error = e.what();
        return outcome;
    }
    ProgressReporter::Setup telemetry;
    telemetry.intervalSeconds = options.progressIntervalSeconds;
    telemetry.statusOut = options.progressOut;
    if (useStore && options.telemetrySidecar)
        telemetry.sidecarPath = options.outPath + ".telemetry.jsonl";
    ProgressReporter reporter(telemetry, registry, progress);
    reporter.start(runMetadata(spec.name, hash, threads, firstPending));

    // -- Execute pending shards; write strictly in plan order. --------
    std::atomic<std::uint64_t> next{firstPending};
    std::atomic<bool> abort{false};
    std::mutex mutex;
    std::condition_variable readyCv;
    std::map<std::uint64_t, ShardResult> ready;
    std::string workerError; ///< first failure; guarded by mutex

    // Shard-time distributions feed the telemetry quantiles. The
    // references are resolved once here so workers never touch the
    // registry mutex on the hot path.
    Histogram &shardSeconds = registry.histogram("shard.seconds");
    Histogram &shardRate = registry.histogram("shard.unitsPerSec");

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            while (!abort.load(std::memory_order_relaxed)) {
                const std::uint64_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= limit)
                    break;
                // A throwing shard (bad spec interaction, OOM) must
                // not terminate the process: surface the first error,
                // wake the drain loop, and unwind cleanly so the
                // reporter can emit its "aborted" record.
                try {
                    const ShardTask &task = plan.tasks[i];
                    ShardResult result;
                    const auto t0 = std::chrono::steady_clock::now();
                    {
                        XED_TRACE_SPAN_ARG(
                            spec.kind == CampaignKind::Reliability
                                ? "reliability-shard"
                                : spec.kind == CampaignKind::Fleet
                                      ? "fleet-shard"
                                      : "detection-shard",
                            "campaign", "index", i);
                        result = runShard(spec, task, &progress);
                    }
                    const double dt =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    shardSeconds.update(dt);
                    if (dt > 0)
                        shardRate.update(
                            static_cast<double>(task.end - task.begin) /
                            dt);
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        ready.emplace(i, std::move(result));
                    }
                    readyCv.notify_one();
                } catch (const std::exception &e) {
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        if (workerError.empty())
                            workerError = e.what();
                    }
                    abort.store(true);
                    readyCv.notify_all();
                    break;
                }
            }
        });
    }

    bool writeFailed = false;
    for (std::uint64_t i = firstPending; i < limit && !writeFailed;
         ++i) {
        ShardResult result;
        {
            std::unique_lock<std::mutex> lock(mutex);
            readyCv.wait(lock, [&] {
                return ready.count(i) != 0 ||
                       abort.load(std::memory_order_relaxed);
            });
            if (ready.count(i) == 0)
                break; // worker aborted before producing shard i
            result = std::move(ready.at(i));
            ready.erase(i);
        }
        const ShardTask &task = plan.tasks[i];
        // Forensics flush strictly before the store record: a kill
        // between the two leaves the sidecar one record ahead, never
        // behind, which resume truncates back.
        if ((useForensics &&
             !forensicsWriter.write(forensicsShardRecord(task,
                                                         result.mc),
                                    &outcome.error)) ||
            (useStore &&
             !writer.write(shardRecord(spec, task, result),
                           &outcome.error))) {
            writeFailed = true;
            abort.store(true);
            // Unblock any worker parked on a full queue (none today,
            // but keep the invariant that abort implies wake-up).
            readyCv.notify_all();
            break;
        }
        outcome.cells[task.point * plan.cells + task.cell].result.merge(
            result);
        registry.counter("shards.done").add(1);
        registry
            .counter("failed." + cellLabel(spec, task.cell))
            .add(failedSystemsOf(spec, result));
        ++outcome.shardsRun;
    }
    for (auto &worker : workers)
        worker.join();

    const auto exportTrace = [&] {
        const auto &recorder = obs::TraceRecorder::instance();
        if (!recorder.enabled())
            return;
        std::string path = options.traceOut;
        if (path.empty() && useStore)
            path = options.outPath + ".trace.json";
        if (path.empty())
            return;
        std::string traceError;
        if (recorder.exportTo(path, &traceError))
            outcome.tracePath = path;
        else if (options.progressOut)
            *options.progressOut
                << "trace export failed: " << traceError << "\n";
    };

    if (!workerError.empty()) {
        outcome.error = "shard execution failed: " + workerError;
        exportTrace();
        // No reporter.finish(): its destructor emits the "aborted"
        // record, distinguishing a crash from a clean partial run.
        return outcome;
    }
    if (writeFailed) {
        reporter.finish(false);
        exportTrace();
        return outcome;
    }

    outcome.complete = limit == plan.tasks.size();
    if (outcome.complete && useForensics) {
        for (const auto &cell : outcome.cells) {
            if (!forensicsWriter.write(
                    forensicsSummaryRecord(cell.point, cell.cell,
                                           cell.label, cell.result.mc),
                    &outcome.error)) {
                reporter.finish(false);
                exportTrace();
                return outcome;
            }
        }
    }
    if (outcome.complete && useStore &&
        !writer.write(summaryRecord(spec, outcome.cells),
                      &outcome.error)) {
        reporter.finish(false);
        exportTrace();
        return outcome;
    }
    reporter.finish(outcome.complete);
    exportTrace();
    outcome.ok = true;
    return outcome;
}

void
printPlan(const CampaignSpec &spec, std::ostream &os)
{
    const Plan plan = buildPlan(spec);
    os << "spec:     " << spec.name << " (" << campaignKindName(spec.kind)
       << ")\nspecHash: " << specHash(spec) << "\nresolved: "
       << json::dump(specToJson(spec)) << "\n\n";

    Table table({"Point", spec.sweep.active() ? spec.sweep.parameter
                                              : "-",
                 "Cell", "Label", "Units", "Shards", "Shard size"});
    for (unsigned point = 0; point < plan.points; ++point) {
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            table.addRow(
                {std::to_string(point),
                 spec.sweep.active()
                     ? json::formatDouble(spec.sweep.values[point])
                     : "-",
                 std::to_string(cell), cellLabel(spec, cell),
                 std::to_string(spec.unitsPerCell()),
                 std::to_string(plan.shardsPerCell),
                 std::to_string(spec.unitsPerShard())});
        }
    }
    table.print(os, "Shard plan (dry run): " +
                        std::to_string(plan.tasks.size()) +
                        " shards total");
    os << "\ntotal shards: " << plan.tasks.size()
       << "\ntotal units:  "
       << static_cast<std::uint64_t>(plan.points) * plan.cells *
              spec.unitsPerCell()
       << "\n";
}

bool
printReport(const std::string &storePath, std::ostream &os,
            std::string *error)
{
    std::ifstream in(storePath, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + storePath;
        return false;
    }
    std::string firstLine;
    std::getline(in, firstLine);
    in.close();
    std::string parseError;
    const auto manifest = json::parse(firstLine, &parseError);
    if (!manifest || !manifest->isObject() || !manifest->find("spec")) {
        if (error)
            *error = storePath + ": missing manifest record";
        return false;
    }
    auto spec = parseSpec(*manifest->find("spec"), &parseError);
    if (!spec) {
        if (error)
            *error = storePath + ": manifest spec invalid: " + parseError;
        return false;
    }
    const Plan plan = buildPlan(*spec);
    const LoadedStore loaded =
        loadStore(storePath, specHash(*spec), *spec, plan);
    if (!loaded.ok) {
        if (error)
            *error = loaded.error;
        return false;
    }

    std::vector<CellSummary> cells(
        static_cast<std::size_t>(plan.points) * plan.cells);
    for (std::uint64_t i = 0; i < loaded.completedShards; ++i) {
        const ShardTask &task = plan.tasks[i];
        cells[task.point * plan.cells + task.cell].result.merge(
            loaded.shardResults[i]);
    }

    os << "campaign: " << spec->name << "   shards: "
       << loaded.completedShards << "/" << plan.tasks.size()
       << (loaded.hasSummary ? " (complete)" : " (partial)") << "\n\n";

    for (unsigned point = 0; point < plan.points; ++point) {
        std::string title = spec->name;
        if (spec->sweep.active())
            title += ": " + spec->sweep.parameter + " = " +
                     json::formatDouble(spec->sweep.values[point]);
        if (spec->kind == CampaignKind::Reliability) {
            Table table({"Scheme", "Y1", "Y2", "Y3", "Y4", "Y5", "Y6",
                         "Y7 P(fail)", "95% CI half-width"});
            for (unsigned cell = 0; cell < plan.cells; ++cell) {
                const auto &mc =
                    cells[point * plan.cells + cell].result.mc;
                std::vector<std::string> row{cellLabel(*spec, cell)};
                for (unsigned y = 1; y <= 7; ++y)
                    row.push_back(
                        Table::sci(mc.failByYear[y].value(), 2));
                row.push_back(
                    Table::sci(mc.failByYear[7].halfWidth95(), 1));
                table.addRow(row);
            }
            table.print(os, title);
        } else if (spec->kind == CampaignKind::Fleet) {
            const FleetDerived derived =
                deriveFleet(*spec, cells[point].result.fleet);
            Table cohortTable({"Cohort", "Scheme", "DIMMs", "Installs",
                               "Repl", "Retired", "DUE", "SDC",
                               "Canary alert"});
            for (std::size_t c = 0; c < spec->fleet.cohorts.size();
                 ++c) {
                const auto &cohort = spec->fleet.cohorts[c];
                const auto &series = derived.cohorts[c];
                const auto alert =
                    cohort.canary
                        ? fleet::canaryAlertEpoch(
                              series, cohort.dimms,
                              spec->fleet.policies.canaryDueThreshold)
                        : std::nullopt;
                cohortTable.addRow(
                    {cohort.name,
                     faultsim::schemeKindName(cohort.scheme),
                     std::to_string(cohort.dimms),
                     std::to_string(series.totalInstalls()),
                     std::to_string(series.totalReplacements()),
                     std::to_string(series.totalRetirements()),
                     std::to_string(series.totalDue()),
                     std::to_string(series.totalSdc()),
                     alert ? "epoch " + std::to_string(*alert)
                           : (cohort.canary ? "none" : "-")});
            }
            cohortTable.print(os, title + ": cohorts");
            os << "\n";

            // Fleet-wide time series, one row per simulated year
            // (plus the final partial epoch when the horizon is not a
            // whole number of years).
            const unsigned stride = std::max<unsigned>(
                1, static_cast<unsigned>(
                       hoursPerYear / spec->fleet.epochHours + 0.5));
            Table seriesTable({"Epoch", "Years", "In service",
                               "Availability", "DUE (cum)", "SDC (cum)",
                               "Repl (cum)"});
            for (unsigned e = stride - 1; e < derived.epochs;
                 e += stride) {
                const bool last = e + stride >= derived.epochs;
                const unsigned row =
                    last ? derived.epochs - 1 : e;
                const double years =
                    static_cast<double>(row + 1) *
                    spec->fleet.epochHours / hoursPerYear;
                seriesTable.addRow(
                    {std::to_string(row),
                     json::formatDouble(years),
                     std::to_string(derived.inService[row]),
                     Table::pct(derived.availability(row)),
                     std::to_string(derived.cumulativeDue[row]),
                     std::to_string(derived.cumulativeSdc[row]),
                     std::to_string(
                         derived.cumulativeReplacements[row])});
                if (last)
                    break;
            }
            seriesTable.print(os, title + ": fleet time series");
        } else {
            std::vector<std::string> headers{"Errors"};
            const unsigned pairs = static_cast<unsigned>(
                spec->codes.size() * spec->patterns.size());
            for (unsigned pair = 0; pair < pairs; ++pair) {
                const unsigned cell = pair * spec->maxWeight;
                const DetectionCell d = detectionCell(*spec, cell);
                headers.push_back(d.code +
                                  (d.burst ? " burst" : " random"));
            }
            Table table(headers);
            for (unsigned weight = 1; weight <= spec->maxWeight;
                 ++weight) {
                std::vector<std::string> row{std::to_string(weight)};
                for (unsigned pair = 0; pair < pairs; ++pair) {
                    const unsigned cell =
                        pair * spec->maxWeight + (weight - 1);
                    const auto &r =
                        cells[point * plan.cells + cell].result;
                    row.push_back(
                        r.trials
                            ? Table::pct(static_cast<double>(
                                             r.detected) /
                                         static_cast<double>(r.trials))
                            : "-");
                }
                table.addRow(row);
            }
            table.print(os, title);
        }
        os << "\n";
    }
    return printForensics(storePath, *spec, plan, os, error);
}

} // namespace xed::campaign
