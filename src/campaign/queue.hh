/**
 * @file
 * Filesystem work queue for distributed campaign execution.
 *
 * A campaign's shard plan is a pure function of its spec (spec.hh),
 * so N machines sharing one directory need no coordinator process:
 * every worker derives the same totally ordered shard list and the
 * queue only has to arbitrate *who runs what*. All state lives in
 * one `--queue-dir` (any shared filesystem with atomic rename and
 * O_EXCL create — local disk for tests, NFS/EFS for a fleet):
 *
 *   queue.json            queue manifest: format, spec name + hash,
 *                         shard count, whether fragments carry
 *                         forensics lines. Written atomically by the
 *                         first worker; every later worker (and the
 *                         merge) validates its own spec against it,
 *                         so two different campaigns can never mix
 *                         fragments in one directory.
 *   lease-NNNNNN.json     exclusive claim on shard N. Created with
 *                         O_CREAT|O_EXCL (the only arbiter); content
 *                         names the holder for forensics. A lease
 *                         whose mtime is older than the configured
 *                         lease lifetime is dead or straggling and
 *                         may be broken; live workers renew (rewrite)
 *                         their lease from a heartbeat thread.
 *   shard-NNNNNN.jsonl    committed result fragment for shard N: the
 *                         shard's store record line, then (for
 *                         reliability campaigns with forensics) its
 *                         forensics sidecar line — the exact bytes a
 *                         single-process run would write. Committed
 *                         via write-to-temp + fsync + rename, so a
 *                         fragment either exists completely or not at
 *                         all; there are no torn fragments.
 *
 * Lease-break protocol (safe against the classic double-unlink race):
 * a breaker first renames the expired lease to a tombstone name
 * unique to itself. rename() succeeds for exactly one breaker; the
 * loser's rename fails with ENOENT and it simply re-runs the claim.
 * Only after owning the tombstone does the winner unlink it and
 * retry the O_EXCL create — so no worker ever unlinks a lease that
 * was re-created fresh by somebody else.
 *
 * Duplicate commits are expected: a straggler whose lease was broken
 * finishes anyway and commits a second fragment for the same shard.
 * Shard execution is deterministic, so the duplicate must be
 * byte-identical to what is already there — commit() asserts that
 * and fails the worker loudly on a mismatch instead of guessing
 * which copy to trust (a mismatch means nondeterminism or
 * corruption, and silently picking one would poison the merged
 * store).
 */

#ifndef XED_CAMPAIGN_QUEUE_HH
#define XED_CAMPAIGN_QUEUE_HH

#include <cstdint>
#include <string>

#include "campaign/spec.hh"

namespace xed::campaign
{

constexpr int queueFormatVersion = 1;

struct QueueOptions
{
    /** Shared queue directory (created if missing). */
    std::string dir;
    /** Unique worker identity; empty resolves to "<host>-<pid>".
     *  Sanitized to [A-Za-z0-9_.-] for use in file names. */
    std::string workerId;
    /** Lease lifetime: a lease not renewed for this long counts as
     *  dead and may be re-claimed by another worker. */
    double leaseSeconds = 60.0;
    /** fsync lease and fragment writes (AND-ed with the global
     *  durableWritesEnabled() knob) so queue state survives a
     *  worker-host crash. */
    bool durable = true;
    /** Whether fragments carry a forensics line (reliability
     *  campaigns). Recorded in the queue manifest so every worker and
     *  the merge agree on the fragment format. */
    bool forensics = true;
};

class ShardQueue
{
  public:
    enum class Claim
    {
        Acquired, ///< lease created; caller must commit() or release()
        Done,     ///< fragment already committed
        Busy      ///< fresh lease held by another worker
    };

    /**
     * Bind to @p options.dir: create it if missing, publish the queue
     * manifest if absent (atomic, first writer wins) and validate it
     * against @p spec / @p plan. Fails on a spec-hash, shard-count or
     * forensics-mode mismatch rather than mixing campaigns.
     */
    bool open(const CampaignSpec &spec, const Plan &plan,
              const QueueOptions &options, std::string *error);

    /** Try to claim shard @p shard, breaking an expired lease if one
     *  is in the way. Only I/O errors set @p error. */
    Claim tryClaim(std::uint64_t shard, std::string *error);

    /** Heartbeat: rewrite our lease on @p shard, refreshing its
     *  mtime. Returns false (not an error) when the lease is no
     *  longer ours — broken by another worker after expiry. */
    bool renew(std::uint64_t shard, std::string *error);

    /**
     * Commit @p fragmentBytes for shard @p shard (temp + fsync +
     * rename) and release our lease. If a fragment already exists it
     * must be byte-identical; @p wasDuplicate (optional) reports that
     * case. A differing duplicate is a hard error.
     */
    bool commit(std::uint64_t shard, const std::string &fragmentBytes,
                std::string *error, bool *wasDuplicate = nullptr);

    /** Drop our lease on @p shard without committing (error paths). */
    void release(std::uint64_t shard);

    bool fragmentExists(std::uint64_t shard) const;
    /** Committed fragments so far (the merge's readiness check). */
    std::uint64_t fragmentsPresent() const;

    std::string fragmentPath(std::uint64_t shard) const;
    std::string leasePath(std::uint64_t shard) const;

    std::uint64_t shards() const { return shards_; }
    const std::string &workerId() const { return workerId_; }
    const std::string &dir() const { return dir_; }
    bool forensics() const { return forensics_; }

    /** "<host>-<pid>", the per-process default identity. */
    static std::string defaultWorkerId();

  private:
    std::string dir_;
    std::string workerId_;
    double leaseSeconds_ = 60.0;
    bool durable_ = true;
    bool forensics_ = true;
    std::uint64_t shards_ = 0;
};

/** The queue manifest document (exposed for tests). */
json::Value queueManifest(const CampaignSpec &spec, const Plan &plan,
                          const std::string &hash, bool forensics);

/** Initial poll-jitter state for @p workerId (FNV-1a of the id), so
 *  each worker walks its own deterministic jitter sequence. */
std::uint64_t pollJitterSeed(const std::string &workerId);

/**
 * Next jittered poll interval: a value uniform in
 * [0.75, 1.25) x @p baseSeconds, floored at 0.01 s, stepping @p state
 * (splitmix64) on each call. Workers sleep this instead of the raw
 * poll interval so a queue full of workers started by one parallel
 * launcher doesn't stampede the shared filesystem in lockstep on
 * every scan (anti-thundering-herd).
 */
double jitteredPollSeconds(double baseSeconds, std::uint64_t &state);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_QUEUE_HH
