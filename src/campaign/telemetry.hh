/**
 * @file
 * Live run telemetry for campaign runs.
 *
 * A ProgressReporter thread samples the runner's metrics registry and
 * the engine's McProgress counters on a fixed interval and emits one
 * machine-readable JSON status line per tick:
 *
 *   {"type":"progress","elapsedSeconds":...,"shardsDone":...,
 *    "shardsTotal":...,"unitsDone":...,"unitsTotal":...,
 *    "unitsPerSec":...,"etaSeconds":...,"failures":{label:count,...}}
 *
 * "etaSeconds" is present only while a live rate exists; a tick with
 * no simulated units yet (or replay only) omits the key entirely,
 * because 0.0 would be indistinguishable from "done now".
 *
 * Status lines go to a stream (stderr for the CLI) and, when a
 * sidecar path is configured, are appended to `<out>.telemetry.jsonl`
 * together with the volatile run manifest (spec hash, git describe,
 * host, start time, thread count) and a final "done" record with wall
 * time. Everything volatile lives here so the result store itself
 * stays byte-deterministic (see store.hh).
 */

#ifndef XED_CAMPAIGN_TELEMETRY_HH
#define XED_CAMPAIGN_TELEMETRY_HH

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "common/json.hh"
#include "common/metrics.hh"
#include "faultsim/engine.hh"

namespace xed::campaign
{

/** Volatile run manifest: spec hash + host + git + start time. A
 *  non-empty @p workerId (distributed workers pass their queue
 *  identity) is recorded as "worker" so a fleet's telemetry sidecars
 *  attribute every sample to the process that produced it. */
json::Value runMetadata(const std::string &specName,
                        const std::string &hash, unsigned threads,
                        std::uint64_t resumedFromShard,
                        const std::string &workerId = "");

class ProgressReporter
{
  public:
    struct Setup
    {
        /** Sampling period; <= 0 disables the thread entirely. */
        double intervalSeconds = 1.0;
        /** Stream for live status lines; nullptr = none. */
        std::ostream *statusOut = nullptr;
        /** Append-mode telemetry sidecar; empty = none. */
        std::string sidecarPath;
    };

    ProgressReporter(const Setup &setup, MetricsRegistry &registry,
                     const faultsim::McProgress &progress);
    ~ProgressReporter();

    /** Write the run record and start the sampling thread. */
    void start(const json::Value &runRecord);

    /** Emit one final progress sample plus a "done" record, then join
     *  the sampling thread. Safe to call more than once. If finish()
     *  is never called -- the runner unwound through an exception or
     *  a worker failure -- the destructor emits the final sample with
     *  an "aborted" record instead, so a telemetry stream always ends
     *  with exactly one terminal record. */
    void finish(bool complete);

    /** Build one progress record from the current counters. */
    json::Value sample() const;

  private:
    void loop();
    void emit(const json::Value &record);
    /** Shared tail of finish()/~ProgressReporter: join the sampler and
     *  emit the @p type terminal record. */
    void finishWith(const char *type, bool complete);

    Setup setup_;
    MetricsRegistry &registry_;
    const faultsim::McProgress &progress_;
    std::chrono::steady_clock::time_point started_;
    std::ofstream sidecar_;
    std::thread thread_;
    mutable std::mutex mutex_;
    std::mutex emitMutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool finished_ = false;
};

} // namespace xed::campaign

#endif // XED_CAMPAIGN_TELEMETRY_HH
