/**
 * @file
 * Read-only fleet observability over the distributed-queue protocol.
 *
 * A FleetStatus is one merged snapshot of a running (or finished)
 * campaign, assembled purely by READING what the queue protocol
 * already writes -- the scanner never creates, renames, touches or
 * deletes anything, so pointing `status`/`serve` at a live queue can
 * never perturb the run (DESIGN.md section 4k pins this contract,
 * and the smoke test cmp-verifies the queue bytes around a scan):
 *
 *   queue.json                    campaign identity + shard count
 *   shard-NNNNNN.jsonl            committed fragments: exact per-shard
 *                                 results -> done counts, simulated
 *                                 units and failure totals (these are
 *                                 the same bytes the merged store gets,
 *                                 so totals match a single-process run
 *                                 exactly), plus the forensics line's
 *                                 detection-outcome counters
 *   lease-NNNNNN.json             live claims: mtime age vs the lease
 *                                 lifetime -> per-worker liveness
 *   worker-<id>.telemetry.jsonl   volatile per-worker progress: rates,
 *                                 counters and the exact histogram
 *                                 buckets (obs/telemetry.hh codec) that
 *                                 merge into fleet-wide p50/p90/p99
 *
 * The same snapshot type is built from a single-process run's result
 * store + `<out>.telemetry.jsonl` sidecar (scanStore), so a post-run
 * `report --format=json` and a live `/status.json` render one schema
 * and are diffable with one tool.
 *
 * Everything here tolerates a fleet mid-crash: torn telemetry tails
 * and unknown record types are skipped (obs::readTelemetryRecords),
 * damaged fragments are counted but never fatal, and a worker whose
 * lease mtime has aged past the lifetime is reported dead instead of
 * hiding the outage.
 */

#ifndef XED_CAMPAIGN_STATUS_HH
#define XED_CAMPAIGN_STATUS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"

namespace xed::campaign
{

/**
 * Liveness classes, derived from the newest heartbeat evidence a
 * worker left behind (lease mtime or telemetry sidecar mtime,
 * whichever is fresher) against the lease lifetime L:
 *
 *   live     age <= L/2   (workers renew at L/4: at most one missed
 *                          beat -- healthy)
 *   stale    age <= L     (several missed beats; the lease still
 *                          protects its shard, but something is wrong)
 *   dead     age >  L     (the lease is breakable; the worker is gone
 *                          or pathologically stalled)
 *   done     telemetry ended with a terminal "done" record
 *   aborted  telemetry ended with a terminal "aborted" record
 */
enum class WorkerLiveness { Live, Stale, Dead, Done, Aborted };

const char *workerLivenessName(WorkerLiveness liveness);

/** Merged exact histogram summary (common/metrics Histogram). */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    /** Bucket-midpoint approximation of the sample sum (feeds the
     *  Prometheus summary's `_sum` series). */
    double approxSum = 0;
};

struct WorkerStatus
{
    std::string id;
    WorkerLiveness liveness = WorkerLiveness::Dead;
    std::string host;           ///< from the run record; may be empty
    std::uint64_t shardsDone = 0;
    std::uint64_t unitsDone = 0;
    std::uint64_t failedUnits = 0;
    double unitsPerSec = 0;
    /** Seconds since the freshest heartbeat evidence; absent for a
     *  finished worker. */
    std::optional<double> heartbeatAgeSeconds;
    /** Shards this worker currently holds a lease on. */
    std::vector<std::uint64_t> leasedShards;
};

struct FleetStatus
{
    bool ok = false;
    std::string error;
    std::string source; ///< "queue" or "store"
    std::string path;   ///< the scanned queue dir / store file

    std::string name;
    std::string specHash;
    bool complete = false;

    std::uint64_t shardsTotal = 0;
    std::uint64_t shardsDone = 0;
    std::uint64_t shardsClaimed = 0; ///< leased, not yet committed
    std::uint64_t shardsPending = 0;

    /** Exact, from committed shard records: sum of [begin, end). */
    std::uint64_t unitsDone = 0;
    /** Campaign-wide planned units, from telemetry (absent when no
     *  sidecar has reported yet). */
    std::optional<std::uint64_t> unitsTotal;

    /** Exact failure totals from committed shard records (identical
     *  to the merged store's, byte-provenance and all). */
    std::uint64_t failedUnits = 0;
    std::map<std::string, std::uint64_t> failuresByCell;
    std::map<std::string, std::uint64_t> failuresByType;
    /** Detection-outcome counters aggregated from the forensics
     *  records (fragment second lines / the forensics sidecar). */
    std::map<std::string, std::uint64_t> outcomes;

    /** Sum of live/stale workers' last reported rates. */
    double unitsPerSec = 0;
    std::optional<double> etaSeconds;

    /** Exact cross-worker merges of the telemetry histograms. */
    HistogramSummary shardSeconds;
    HistogramSummary shardUnitsPerSec;

    std::vector<WorkerStatus> workers; ///< sorted by id

    std::uint64_t telemetryFiles = 0;
    /** Torn/unknown telemetry lines skipped across all sidecars. */
    std::uint64_t skippedTelemetryLines = 0;
    /** Fragments whose record lines could not be parsed (counted,
     *  never fatal: observability outlives corruption). */
    std::uint64_t damagedFragments = 0;
};

struct StatusOptions
{
    /** Lease lifetime used to classify worker liveness; must match
     *  the fleet's --lease-seconds for accurate live/stale/dead
     *  boundaries (the protocol does not record it in the queue). */
    double leaseSeconds = 60.0;
};

/** Snapshot a distributed queue directory. */
FleetStatus scanQueueDir(const std::string &dir,
                         const StatusOptions &options);

/** Snapshot a single-process run: the result store plus its
 *  `<out>.telemetry.jsonl` / `<out>.forensics.jsonl` sidecars. */
FleetStatus scanStore(const std::string &storePath,
                      const StatusOptions &options);

/** Dispatch on @p path: a directory scans as a queue, a file as a
 *  store (a `<out>.telemetry.jsonl` path is mapped to its store). */
FleetStatus scanStatusSource(const std::string &path,
                             const StatusOptions &options);

/** The canonical machine form (`status --json`, `/status.json`,
 *  `report --format=json`): one deterministic key order, exact
 *  integers, so two snapshots diff cleanly. */
json::Value statusJson(const FleetStatus &status);

/** Human rendering (`status` without --json). */
void printStatus(const FleetStatus &status, std::ostream &os);

/** Prometheus text exposition format (`/metrics`). Metric names and
 *  label scheme are pinned in DESIGN.md section 4k. */
std::string prometheusText(const FleetStatus &status);

/** The static self-refreshing dashboard served at `/`. */
std::string dashboardHtml();

/** Map an HTTP path to the response body for `serve`: `/status.json`,
 *  `/metrics`, `/` (anything else 404s). Re-scans @p sourcePath per
 *  call, so every response is a fresh snapshot. Returns true when the
 *  path was recognized. */
bool statusEndpoint(const std::string &httpPath,
                    const std::string &sourcePath,
                    const StatusOptions &options, int *status,
                    std::string *contentType, std::string *body);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_STATUS_HH
