#include "campaign/spec.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/env.hh"

namespace xed::campaign
{

namespace
{

using faultsim::FaultKind;
using faultsim::SchemeKind;

constexpr SchemeKind allSchemeKinds[] = {
    SchemeKind::NonEcc,
    SchemeKind::Secded,
    SchemeKind::Xed,
    SchemeKind::Chipkill,
    SchemeKind::ChipkillX8Lockstep,
    SchemeKind::DoubleChipkill,
    SchemeKind::XedChipkill,
    SchemeKind::DoubleChipkillLockstep,
    SchemeKind::XedChipkillLockstep,
};

constexpr FaultKind allFaultKinds[] = {
    FaultKind::Bit,    FaultKind::Word,      FaultKind::Column,
    FaultKind::Row,    FaultKind::Bank,      FaultKind::MultiBank,
    FaultKind::MultiRank,
};

constexpr const char *sweepParameters[] = {
    "scalingRate",
    "detectionEscapeProb",
    "scrubIntervalHours",
    "channels",
};

/** Accumulates the first validation error; all getters no-op after. */
class SpecReader
{
  public:
    explicit SpecReader(const json::Value &doc) : doc_(doc) {}

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    void
    fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message;
    }

    /** Reject any member not consumed by a getter (typo defense). */
    void
    finish()
    {
        if (!ok())
            return;
        for (const auto &[key, value] : doc_.members()) {
            bool known = false;
            for (const auto &seen : consumed_)
                known |= seen == key;
            if (!known) {
                fail("unknown spec key \"" + key + "\"");
                return;
            }
        }
    }

    const json::Value *
    get(const std::string &key)
    {
        consumed_.push_back(key);
        return doc_.find(key);
    }

    std::string
    getString(const std::string &key, const std::string &fallback,
              bool required = false)
    {
        const json::Value *v = get(key);
        if (!v) {
            if (required)
                fail("missing required key \"" + key + "\"");
            return fallback;
        }
        if (!v->isString()) {
            fail("\"" + key + "\" must be a string");
            return fallback;
        }
        return v->asString();
    }

    std::uint64_t
    getUint(const std::string &key, std::uint64_t fallback,
            bool required = false)
    {
        const json::Value *v = get(key);
        if (!v) {
            if (required)
                fail("missing required key \"" + key + "\"");
            return fallback;
        }
        if (!v->isIntegral() || v->asDouble() < 0) {
            fail("\"" + key + "\" must be a non-negative integer");
            return fallback;
        }
        return v->asUint();
    }

    double
    getDouble(const std::string &key, double fallback)
    {
        const json::Value *v = get(key);
        if (!v)
            return fallback;
        if (!v->isNumber()) {
            fail("\"" + key + "\" must be a number");
            return fallback;
        }
        return v->asDouble();
    }

    bool
    getBool(const std::string &key, bool fallback)
    {
        const json::Value *v = get(key);
        if (!v)
            return fallback;
        if (!v->isBool()) {
            fail("\"" + key + "\" must be a boolean");
            return fallback;
        }
        return v->asBool();
    }

  private:
    const json::Value &doc_;
    std::vector<std::string> consumed_;
    std::string error_;
};

std::optional<SchemeKind>
parseSchemeKind(const std::string &name)
{
    for (const SchemeKind kind : allSchemeKinds)
        if (name == faultsim::schemeKindName(kind))
            return kind;
    return std::nullopt;
}

std::optional<FaultKind>
parseFaultKind(const std::string &name)
{
    for (const FaultKind kind : allFaultKinds)
        if (name == faultsim::faultKindName(kind))
            return kind;
    return std::nullopt;
}

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** "sampler" key shared by reliability and fleet specs. */
void
parseSamplerKey(SpecReader &reader, CampaignSpec &spec)
{
    const std::string samplerName = reader.getString(
        "sampler", faultsim::poissonSamplerName(spec.sampler));
    if (const auto sampler = faultsim::parsePoissonSampler(samplerName))
        spec.sampler = *sampler;
    else
        reader.fail("unknown sampler \"" + samplerName +
                    "\" (expected knuth or invcdf)");
}

/** "onDie" object shared by reliability and fleet specs. */
void
parseOnDieKey(SpecReader &reader, faultsim::OnDieOptions &onDie)
{
    const json::Value *doc = reader.get("onDie");
    if (!doc)
        return;
    if (!doc->isObject()) {
        reader.fail("\"onDie\" must be an object");
        return;
    }
    SpecReader sub(*doc);
    onDie.present = sub.getBool("present", onDie.present);
    onDie.scalingRate = sub.getDouble("scalingRate", onDie.scalingRate);
    onDie.detectionEscapeProb =
        sub.getDouble("detectionEscapeProb", onDie.detectionEscapeProb);
    sub.finish();
    if (!sub.ok())
        reader.fail("onDie: " + sub.error());
}

/** "fitOverrides" object: per-kind FIT-rate overrides applied onto
 *  @p fit (Table I defaults, or a cohort's vendor profile). */
void
parseFitOverridesKey(SpecReader &reader, faultsim::FitTable &fit)
{
    const json::Value *overrides = reader.get("fitOverrides");
    if (!overrides)
        return;
    if (!overrides->isObject()) {
        reader.fail("\"fitOverrides\" must be an object");
        return;
    }
    for (const auto &[name, entry] : overrides->members()) {
        const auto kind = parseFaultKind(name);
        if (!kind) {
            reader.fail("unknown fault kind \"" + name +
                        "\" in fitOverrides");
            return;
        }
        if (!entry.isObject()) {
            reader.fail("fitOverrides entries must be objects");
            return;
        }
        SpecReader sub(entry);
        auto &slot = fit.entry(*kind);
        slot.transient = sub.getDouble("transient", slot.transient);
        slot.permanent = sub.getDouble("permanent", slot.permanent);
        sub.finish();
        if (!sub.ok()) {
            reader.fail("fitOverrides." + name + ": " + sub.error());
            return;
        }
        if (slot.transient < 0 || slot.permanent < 0) {
            reader.fail("fitOverrides." + name +
                        ": FIT rates must be >= 0");
            return;
        }
    }
}

void
parseReliabilityKeys(SpecReader &reader, CampaignSpec &spec)
{
    const json::Value *schemes = reader.get("schemes");
    if (!schemes || !schemes->isArray() || schemes->size() == 0) {
        reader.fail("reliability spec requires a non-empty \"schemes\" "
                    "array");
        return;
    }
    for (const auto &item : schemes->items()) {
        if (!item.isString()) {
            reader.fail("\"schemes\" entries must be strings");
            return;
        }
        const auto kind = parseSchemeKind(item.asString());
        if (!kind) {
            reader.fail("unknown scheme \"" + item.asString() + "\"");
            return;
        }
        spec.schemes.push_back(*kind);
    }

    spec.systems = reader.getUint("systems", spec.systems);
    spec.shardSystems = reader.getUint("shardSystems", spec.shardSystems);
    spec.years = reader.getDouble("years", spec.years);
    spec.channels = static_cast<unsigned>(
        reader.getUint("channels", spec.channels));
    spec.scrubIntervalHours =
        reader.getDouble("scrubIntervalHours", spec.scrubIntervalHours);

    parseSamplerKey(reader, spec);
    parseOnDieKey(reader, spec.onDie);
    parseFitOverridesKey(reader, spec.fit);
    if (!reader.ok())
        return;

    if (const json::Value *sweep = reader.get("sweep")) {
        if (!sweep->isObject()) {
            reader.fail("\"sweep\" must be an object");
            return;
        }
        SpecReader sub(*sweep);
        spec.sweep.parameter = sub.getString("parameter", "", true);
        const json::Value *values = sub.get("values");
        sub.finish();
        if (!sub.ok()) {
            reader.fail("sweep: " + sub.error());
            return;
        }
        bool knownParameter = false;
        for (const char *parameter : sweepParameters)
            knownParameter |= spec.sweep.parameter == parameter;
        if (!knownParameter) {
            reader.fail("unknown sweep parameter \"" +
                        spec.sweep.parameter + "\"");
            return;
        }
        if (!values || !values->isArray() || values->size() == 0) {
            reader.fail("sweep requires a non-empty \"values\" array");
            return;
        }
        for (const auto &value : values->items()) {
            if (!value.isNumber()) {
                reader.fail("sweep values must be numbers");
                return;
            }
            spec.sweep.values.push_back(value.asDouble());
        }
        if (spec.sweep.parameter == "channels") {
            for (const double v : spec.sweep.values) {
                if (v < 1 || v != static_cast<unsigned>(v)) {
                    reader.fail("channels sweep values must be positive "
                                "integers");
                    return;
                }
            }
        }
    }

    if (reader.ok()) {
        if (spec.shardSystems == 0)
            reader.fail("\"shardSystems\" must be > 0");
        else if (spec.channels == 0)
            reader.fail("\"channels\" must be > 0");
        else if (spec.years <= 0)
            reader.fail("\"years\" must be > 0");
    }
}

void
parseDetectionKeys(SpecReader &reader, CampaignSpec &spec)
{
    const json::Value *codes = reader.get("codes");
    if (!codes || !codes->isArray() || codes->size() == 0) {
        reader.fail("detection spec requires a non-empty \"codes\" array");
        return;
    }
    for (const auto &item : codes->items()) {
        const std::string name = item.isString() ? item.asString() : "";
        if (name != "hamming7264" && name != "crc8atm") {
            reader.fail("unknown code \"" + name +
                        "\" (expected hamming7264 or crc8atm)");
            return;
        }
        spec.codes.push_back(name);
    }

    if (const json::Value *patterns = reader.get("patterns")) {
        if (!patterns->isArray() || patterns->size() == 0) {
            reader.fail("\"patterns\" must be a non-empty array");
            return;
        }
        for (const auto &item : patterns->items()) {
            const std::string name =
                item.isString() ? item.asString() : "";
            if (name != "random" && name != "burst") {
                reader.fail("unknown pattern \"" + name +
                            "\" (expected random or burst)");
                return;
            }
            spec.patterns.push_back(name);
        }
    } else {
        spec.patterns = {"random", "burst"};
    }

    spec.maxWeight = static_cast<unsigned>(
        reader.getUint("maxWeight", spec.maxWeight));
    spec.trials = reader.getUint("trials", spec.trials);
    spec.shardTrials = reader.getUint("shardTrials", spec.shardTrials);

    if (reader.ok()) {
        if (spec.maxWeight < 1 || spec.maxWeight > 72)
            reader.fail("\"maxWeight\" must be in [1, 72]");
        else if (spec.shardTrials == 0)
            reader.fail("\"shardTrials\" must be > 0");
    }
}

void
parseFleetKeys(SpecReader &reader, CampaignSpec &spec)
{
    spec.years = reader.getDouble("years", spec.years);
    spec.fleet.epochHours =
        reader.getDouble("epochHours", spec.fleet.epochHours);
    spec.shardDimms = reader.getUint("shardDimms", spec.shardDimms);
    parseSamplerKey(reader, spec);
    parseOnDieKey(reader, spec.onDie);
    if (!reader.ok())
        return;

    if (const json::Value *policies = reader.get("policies")) {
        if (!policies->isObject()) {
            reader.fail("\"policies\" must be an object");
            return;
        }
        SpecReader sub(*policies);
        auto &p = spec.fleet.policies;
        p.replaceOnDue = sub.getBool("replaceOnDue", p.replaceOnDue);
        p.replacementLagEpochs = static_cast<unsigned>(sub.getUint(
            "replacementLagEpochs", p.replacementLagEpochs));
        p.retireAfterPermanentFaults = static_cast<unsigned>(
            sub.getUint("retireAfterPermanentFaults",
                        p.retireAfterPermanentFaults));
        p.canaryDueThreshold =
            sub.getDouble("canaryDueThreshold", p.canaryDueThreshold);
        sub.finish();
        if (!sub.ok()) {
            reader.fail("policies: " + sub.error());
            return;
        }
        if (p.canaryDueThreshold < 0 || p.canaryDueThreshold > 1) {
            reader.fail("policies.canaryDueThreshold must be in [0, 1]");
            return;
        }
    }

    const json::Value *cohorts = reader.get("cohorts");
    if (!cohorts || !cohorts->isArray() || cohorts->size() == 0) {
        reader.fail("fleet spec requires a non-empty \"cohorts\" array");
        return;
    }
    for (const auto &item : cohorts->items()) {
        if (!item.isObject()) {
            reader.fail("\"cohorts\" entries must be objects");
            return;
        }
        SpecReader sub(item);
        fleet::FleetCohort cohort;
        cohort.name = sub.getString("name", "", true);
        if (sub.ok() && !validName(cohort.name))
            sub.fail("cohort \"name\" must be non-empty [A-Za-z0-9_.-]");
        const std::string schemeName =
            sub.getString("scheme", "", true);
        if (sub.ok()) {
            if (const auto kind = parseSchemeKind(schemeName))
                cohort.scheme = *kind;
            else
                sub.fail("unknown scheme \"" + schemeName + "\"");
        }
        cohort.dimms = sub.getUint("dimms", 0, true);
        if (sub.ok() && cohort.dimms == 0)
            sub.fail("cohort \"dimms\" must be > 0");
        cohort.deployEpoch = static_cast<unsigned>(
            sub.getUint("deployEpoch", cohort.deployEpoch));
        cohort.canary = sub.getBool("canary", cohort.canary);
        cohort.scrubIntervalHours = sub.getDouble(
            "scrubIntervalHours", cohort.scrubIntervalHours);
        parseFitOverridesKey(sub, cohort.fit);
        sub.finish();
        if (!sub.ok()) {
            reader.fail("cohorts[" +
                        std::to_string(spec.fleet.cohorts.size()) +
                        "]: " + sub.error());
            return;
        }
        for (const auto &existing : spec.fleet.cohorts) {
            if (existing.name == cohort.name) {
                reader.fail("duplicate cohort name \"" + cohort.name +
                            "\"");
                return;
            }
        }
        spec.fleet.cohorts.push_back(std::move(cohort));
    }

    if (!reader.ok())
        return;
    if (spec.years <= 0) {
        reader.fail("\"years\" must be > 0");
        return;
    }
    if (!(spec.fleet.epochHours > 0)) {
        reader.fail("\"epochHours\" must be > 0");
        return;
    }
    if (spec.shardDimms == 0) {
        reader.fail("\"shardDimms\" must be > 0");
        return;
    }
    const unsigned epochs = fleetConfigFor(spec).epochs();
    for (const auto &cohort : spec.fleet.cohorts) {
        if (cohort.deployEpoch >= epochs) {
            reader.fail("cohort \"" + cohort.name + "\": deployEpoch " +
                        std::to_string(cohort.deployEpoch) +
                        " is outside the " + std::to_string(epochs) +
                        "-epoch horizon");
            return;
        }
    }
}

/** FNV-1a 64-bit. */
std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

} // namespace

unsigned
CampaignSpec::cellCount() const
{
    if (kind == CampaignKind::Reliability)
        return static_cast<unsigned>(schemes.size());
    if (kind == CampaignKind::Fleet)
        return 1; // one fleet, sharded by slot-index ranges
    return static_cast<unsigned>(codes.size() * patterns.size()) *
           maxWeight;
}

std::optional<CampaignSpec>
parseSpec(const json::Value &doc, std::string *error)
{
    if (!doc.isObject()) {
        if (error)
            *error = "spec must be a JSON object";
        return std::nullopt;
    }
    SpecReader reader(doc);
    CampaignSpec spec;

    spec.name = reader.getString("name", "", true);
    if (reader.ok() && !validName(spec.name))
        reader.fail("\"name\" must be non-empty [A-Za-z0-9_.-]");

    const std::string kind = reader.getString("kind", "reliability");
    if (kind == "reliability")
        spec.kind = CampaignKind::Reliability;
    else if (kind == "detection")
        spec.kind = CampaignKind::Detection;
    else if (kind == "fleet")
        spec.kind = CampaignKind::Fleet;
    else
        reader.fail("unknown campaign kind \"" + kind + "\"");

    spec.seed = reader.getUint("seed", 0, true);
    spec.threads = static_cast<unsigned>(reader.getUint("threads", 0));
    spec.evalBatch =
        static_cast<unsigned>(reader.getUint("evalBatch", 0));

    if (reader.ok()) {
        if (spec.kind == CampaignKind::Reliability)
            parseReliabilityKeys(reader, spec);
        else if (spec.kind == CampaignKind::Fleet)
            parseFleetKeys(reader, spec);
        else
            parseDetectionKeys(reader, spec);
    }
    reader.finish();

    if (!reader.ok()) {
        if (error)
            *error = reader.error();
        return std::nullopt;
    }
    return spec;
}

std::optional<CampaignSpec>
loadSpecFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open spec file " + path;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parseError;
    const auto doc = json::parse(text.str(), &parseError);
    if (!doc) {
        if (error)
            *error = path + ": " + parseError;
        return std::nullopt;
    }
    auto spec = parseSpec(*doc, &parseError);
    if (!spec && error)
        *error = path + ": " + parseError;
    return spec;
}

void
applyEnvOverrides(CampaignSpec &spec)
{
    const auto readEnv = [](const char *name, std::uint64_t &target) {
        // envU64 throws on garbage (strict base-10), so a typo'd
        // override aborts the campaign instead of silently running
        // with the spec's value.
        if (const auto parsed = envU64(name); parsed && *parsed > 0)
            target = *parsed;
    };
    if (spec.kind == CampaignKind::Reliability) {
        readEnv("XED_MC_SYSTEMS", spec.systems);
    } else if (spec.kind == CampaignKind::Detection) {
        readEnv("XED_TRIALS", spec.trials);
    }
    if (spec.kind != CampaignKind::Detection) {
        if (const char *value = std::getenv("XED_MC_SAMPLER")) {
            const auto sampler = faultsim::parsePoissonSampler(value);
            if (!sampler)
                throw std::runtime_error(
                    std::string("XED_MC_SAMPLER: expected \"knuth\" or "
                                "\"invcdf\", got \"") +
                    value + "\"");
            spec.sampler = *sampler;
        }
    }
    readEnv("XED_MC_SEED", spec.seed);
}

json::Value
specToJson(const CampaignSpec &spec)
{
    auto doc = json::Value::object();
    doc.set("name", spec.name);
    doc.set("kind", spec.kind == CampaignKind::Reliability
                        ? "reliability"
                        : spec.kind == CampaignKind::Fleet ? "fleet"
                                                           : "detection");
    doc.set("seed", spec.seed);
    if (spec.kind == CampaignKind::Fleet) {
        doc.set("years", spec.years);
        doc.set("epochHours", spec.fleet.epochHours);
        doc.set("shardDimms", spec.shardDimms);
        doc.set("sampler", faultsim::poissonSamplerName(spec.sampler));
        auto onDie = json::Value::object();
        onDie.set("present", spec.onDie.present);
        onDie.set("scalingRate", spec.onDie.scalingRate);
        onDie.set("detectionEscapeProb", spec.onDie.detectionEscapeProb);
        doc.set("onDie", std::move(onDie));
        auto policies = json::Value::object();
        policies.set("replaceOnDue", spec.fleet.policies.replaceOnDue);
        policies.set("replacementLagEpochs",
                     spec.fleet.policies.replacementLagEpochs);
        policies.set("retireAfterPermanentFaults",
                     spec.fleet.policies.retireAfterPermanentFaults);
        policies.set("canaryDueThreshold",
                     spec.fleet.policies.canaryDueThreshold);
        doc.set("policies", std::move(policies));
        auto cohorts = json::Value::array();
        for (const auto &cohort : spec.fleet.cohorts) {
            auto entry = json::Value::object();
            entry.set("name", cohort.name);
            entry.set("scheme", faultsim::schemeKindName(cohort.scheme));
            entry.set("dimms", cohort.dimms);
            entry.set("deployEpoch", cohort.deployEpoch);
            entry.set("canary", cohort.canary);
            entry.set("scrubIntervalHours", cohort.scrubIntervalHours);
            auto fit = json::Value::object();
            for (const auto kind : allFaultKinds) {
                auto rates = json::Value::object();
                rates.set("transient", cohort.fit.entry(kind).transient);
                rates.set("permanent", cohort.fit.entry(kind).permanent);
                fit.set(faultsim::faultKindName(kind), std::move(rates));
            }
            entry.set("fitOverrides", std::move(fit));
            cohorts.push(std::move(entry));
        }
        doc.set("cohorts", std::move(cohorts));
        return doc;
    }
    if (spec.kind == CampaignKind::Reliability) {
        auto schemes = json::Value::array();
        for (const auto kind : spec.schemes)
            schemes.push(faultsim::schemeKindName(kind));
        doc.set("schemes", std::move(schemes));
        doc.set("systems", spec.systems);
        doc.set("shardSystems", spec.shardSystems);
        doc.set("years", spec.years);
        doc.set("channels", spec.channels);
        doc.set("scrubIntervalHours", spec.scrubIntervalHours);
        doc.set("sampler", faultsim::poissonSamplerName(spec.sampler));
        auto onDie = json::Value::object();
        onDie.set("present", spec.onDie.present);
        onDie.set("scalingRate", spec.onDie.scalingRate);
        onDie.set("detectionEscapeProb", spec.onDie.detectionEscapeProb);
        doc.set("onDie", std::move(onDie));
        auto fit = json::Value::object();
        for (const auto kind : allFaultKinds) {
            auto entry = json::Value::object();
            entry.set("transient", spec.fit.entry(kind).transient);
            entry.set("permanent", spec.fit.entry(kind).permanent);
            fit.set(faultsim::faultKindName(kind), std::move(entry));
        }
        // Emitted under the parseable key, so the canonical form in a
        // store manifest re-parses to the identical spec (report,
        // resume-validation and hashing all rely on this round-trip).
        doc.set("fitOverrides", std::move(fit));
        if (spec.sweep.active()) {
            auto sweep = json::Value::object();
            sweep.set("parameter", spec.sweep.parameter);
            auto values = json::Value::array();
            for (const double v : spec.sweep.values)
                values.push(json::Value(v));
            sweep.set("values", std::move(values));
            doc.set("sweep", std::move(sweep));
        }
    } else {
        auto codes = json::Value::array();
        for (const auto &code : spec.codes)
            codes.push(code);
        doc.set("codes", std::move(codes));
        auto patterns = json::Value::array();
        for (const auto &pattern : spec.patterns)
            patterns.push(pattern);
        doc.set("patterns", std::move(patterns));
        doc.set("maxWeight", spec.maxWeight);
        doc.set("trials", spec.trials);
        doc.set("shardTrials", spec.shardTrials);
    }
    return doc;
}

std::string
specHash(const CampaignSpec &spec)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(json::dump(specToJson(spec)))));
    return buf;
}

Plan
buildPlan(const CampaignSpec &spec)
{
    Plan plan;
    plan.points = spec.sweep.points();
    plan.cells = spec.cellCount();
    const std::uint64_t units = spec.unitsPerCell();
    const std::uint64_t perShard = spec.unitsPerShard();
    plan.shardsPerCell = (units + perShard - 1) / perShard;
    for (unsigned point = 0; point < plan.points; ++point) {
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            for (std::uint64_t s = 0; s < plan.shardsPerCell; ++s) {
                ShardTask task;
                task.index = plan.tasks.size();
                task.point = point;
                task.cell = cell;
                task.begin = s * perShard;
                task.end = std::min(units, task.begin + perShard);
                plan.tasks.push_back(task);
            }
        }
    }
    return plan;
}

std::string
cellLabel(const CampaignSpec &spec, unsigned cell)
{
    if (spec.kind == CampaignKind::Reliability)
        return faultsim::schemeKindName(spec.schemes[cell]);
    if (spec.kind == CampaignKind::Fleet)
        return "fleet";
    const DetectionCell d = detectionCell(spec, cell);
    return d.code + (d.burst ? "/burst/w" : "/random/w") +
           std::to_string(d.weight);
}

DetectionCell
detectionCell(const CampaignSpec &spec, unsigned cell)
{
    DetectionCell out;
    out.weight = cell % spec.maxWeight + 1;
    const unsigned pair = cell / spec.maxWeight;
    const unsigned pattern = pair % spec.patterns.size();
    out.code = spec.codes[pair / spec.patterns.size()];
    out.burst = spec.patterns[pattern] == "burst";
    return out;
}

faultsim::McConfig
mcConfigFor(const CampaignSpec &spec, unsigned point)
{
    faultsim::McConfig cfg;
    cfg.systems = spec.systems;
    cfg.years = spec.years;
    cfg.channels = spec.channels;
    cfg.seed = spec.seed;
    cfg.scrubIntervalHours = spec.scrubIntervalHours;
    cfg.sampler = spec.sampler;
    cfg.fit = spec.fit;
    cfg.threads = 1; // the campaign runner parallelizes over shards
    cfg.evalBatch = spec.evalBatch;
    if (spec.sweep.active()) {
        const double value = spec.sweep.values[point];
        if (spec.sweep.parameter == "scrubIntervalHours")
            cfg.scrubIntervalHours = value;
        else if (spec.sweep.parameter == "channels")
            cfg.channels = static_cast<unsigned>(value);
    }
    return cfg;
}

fleet::FleetConfig
fleetConfigFor(const CampaignSpec &spec)
{
    fleet::FleetConfig config;
    config.setup = spec.fleet;
    config.seed = spec.seed;
    config.years = spec.years;
    config.sampler = spec.sampler;
    config.onDie = spec.onDie;
    return config;
}

faultsim::OnDieOptions
onDieFor(const CampaignSpec &spec, unsigned point)
{
    faultsim::OnDieOptions onDie = spec.onDie;
    if (spec.sweep.active()) {
        const double value = spec.sweep.values[point];
        if (spec.sweep.parameter == "scalingRate")
            onDie.scalingRate = value;
        else if (spec.sweep.parameter == "detectionEscapeProb")
            onDie.detectionEscapeProb = value;
    }
    return onDie;
}

} // namespace xed::campaign
