/**
 * @file
 * JSONL result store for campaign runs.
 *
 * One campaign writes one append-only JSONL file:
 *
 *   {"type":"manifest", "format":1, "specHash":..., "spec":{...},
 *    "points":P, "cells":C, "shards":N}
 *   {"type":"shard", "index":0, "point":0, "cell":0, "label":...,
 *    "begin":0, "end":10000, "result":{...}}            x N, in order
 *   {"type":"summary", "results":[...], "metrics":{...}}
 *
 * Every record is dumped with the deterministic JSON writer and shard
 * records are flushed strictly in plan order, so the file's bytes are
 * a pure function of the spec: an interrupted file is a prefix of the
 * uninterrupted one (modulo at most one torn last line, which resume
 * truncates), and a resumed run completes it to the identical bytes.
 *
 * Volatile run metadata (host, git revision, wall-clock timings,
 * progress samples) deliberately lives in a telemetry sidecar file --
 * see telemetry.hh -- precisely so this file can stay deterministic.
 */

#ifndef XED_CAMPAIGN_STORE_HH
#define XED_CAMPAIGN_STORE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "common/json.hh"
#include "faultsim/engine.hh"

namespace xed::campaign
{

constexpr int storeFormatVersion = 1;

/** Result payload of one shard, any campaign kind. */
struct ShardResult
{
    faultsim::McResult mc;          ///< reliability campaigns
    std::uint64_t detected = 0;     ///< detection campaigns
    std::uint64_t trials = 0;       ///< detection campaigns
    fleet::FleetResult fleet;       ///< fleet campaigns

    void
    merge(const ShardResult &other)
    {
        mc.merge(other.mc);
        detected += other.detected;
        trials += other.trials;
        fleet.merge(other.fleet);
    }
};

json::Value manifestRecord(const CampaignSpec &spec, const Plan &plan,
                           const std::string &hash);
json::Value shardRecord(const CampaignSpec &spec, const ShardTask &task,
                        const ShardResult &result);
/** Decode the "result" payload of a shard record. */
ShardResult shardResultFromJson(const CampaignSpec &spec,
                                const json::Value &record);

/**
 * True unless XED_NO_FSYNC=1: whether campaign stores, forensics
 * sidecars and queue lease/fragment files fsync their writes. The
 * kill-safe "plan prefix + at most one torn line" contract only
 * survives power loss or a worker-host crash when every record
 * reaches the platter before the next one starts; benches that only
 * care about throughput can opt out with the environment knob.
 */
bool durableWritesEnabled();

/** fsync(2) the file at @p path (data + metadata). */
bool fsyncPath(const std::string &path, std::string *error);

/** fsync the directory containing @p path, making a just-renamed or
 *  just-created directory entry durable. */
bool fsyncParentDir(const std::string &path, std::string *error);

/** Line-oriented appender; flushes after every record so a kill tears
 *  at most the final line, and (when durable) fsyncs so a power loss
 *  does too. */
class StoreWriter
{
  public:
    ~StoreWriter();

    /** Truncate-and-create (@p appendAt < 0) or reopen for append
     *  after truncating the file to @p appendAt bytes (resume).
     *  @p durable: fsync after every record (AND-ed with the global
     *  durableWritesEnabled() knob). */
    bool open(const std::string &path, long long appendAt,
              std::string *error, bool durable = true);
    bool write(const json::Value &record, std::string *error);
    /** Append one pre-serialized record line verbatim (newline added).
     *  The distributed merge streams fragment bytes through this so
     *  no re-serialization can perturb the store's canonical bytes. */
    bool writeLine(const std::string &line, std::string *error);

  private:
    std::ofstream out_;
    std::string path_;
    int fd_ = -1; ///< fsync descriptor; -1 when durability is off
};

/** What loadStore() recovered from an existing result file. */
struct LoadedStore
{
    bool ok = false;
    std::string error;
    /** Shard records form the plan prefix [0, completedShards). */
    std::uint64_t completedShards = 0;
    bool hasSummary = false;
    /** Decoded shard payloads, indexed by shard index. */
    std::vector<ShardResult> shardResults;
    /** Byte offset where valid content ends; resume truncates here to
     *  drop a torn final line before appending. */
    long long validBytes = 0;
};

/**
 * Read and validate an existing store against the plan of the spec
 * being (re)run. Requires the manifest's specHash to equal
 * @p expectedHash and shard records to be exactly the plan prefix in
 * order; a torn final line is tolerated and reported via validBytes.
 */
LoadedStore loadStore(const std::string &path,
                      const std::string &expectedHash,
                      const CampaignSpec &spec, const Plan &plan);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_STORE_HH
