/**
 * @file
 * The campaign runner: executes a CampaignSpec's shard plan through
 * the Monte-Carlo engine (or the on-die code detection kernel) on a
 * worker pool, streams completed shards to the JSONL store strictly
 * in plan order, and exposes live telemetry.
 *
 * Determinism contract: shard s of cell c simulates a fixed range of
 * RNG streams derived only from (spec.seed, range), so the merged
 * result -- and, with a store, the result file's bytes -- depend on
 * nothing but the spec. Thread count, interrupts and resumes are
 * invisible: a run killed after k shards and resumed produces a file
 * byte-identical to an uninterrupted run.
 */

#ifndef XED_CAMPAIGN_RUNNER_HH
#define XED_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "campaign/store.hh"

namespace xed::campaign
{

struct RunOptions
{
    /** JSONL result file; empty runs in memory with no store. */
    std::string outPath;
    /** Replay completed shards from an existing store and continue;
     *  without a pre-existing file this behaves like a fresh run. */
    bool resume = false;
    /** Worker threads: 0 = spec.threads, then XED_MC_THREADS, then
     *  hardware concurrency. */
    unsigned threads = 0;
    /** Stop (cleanly, without a summary) once this many shard records
     *  exist; 0 = run to completion. Used by tests and the CLI to
     *  simulate interrupts at shard granularity. */
    std::uint64_t maxShards = 0;
    /** Progress sampling period; <= 0 disables the progress thread. */
    double progressIntervalSeconds = 0;
    /** Stream for live status lines (the CLI passes stderr). */
    std::ostream *progressOut = nullptr;
    /** Write `<outPath>.telemetry.jsonl` run/progress/done records. */
    bool telemetrySidecar = true;
    /** Write `<outPath>.forensics.jsonl` failure-attribution records
     *  (reliability campaigns with a store only). */
    bool forensicsSidecar = true;
    /** Force the trace recorder on for this run (the `trace` verb);
     *  otherwise recording follows the XED_TRACE environment knob. */
    bool trace = false;
    /** Chrome-trace JSON export path when recording is enabled; empty
     *  defaults to `<outPath>.trace.json` (no export without a store
     *  unless set explicitly). */
    std::string traceOut;
    /** fsync the result store and forensics sidecar after every
     *  record (see store.hh durableWritesEnabled()); benches that only
     *  measure throughput turn this off. */
    bool durableStore = true;
};

/** Merged result of one (sweep point, cell) after all its shards. */
struct CellSummary
{
    unsigned point = 0;
    unsigned cell = 0;
    std::string label;
    ShardResult result;
};

struct RunOutcome
{
    bool ok = false;
    std::string error;
    /** All shards done and (when a store is used) summary written. */
    bool complete = false;
    std::uint64_t shardsRun = 0;
    std::uint64_t shardsReplayed = 0;
    /** Where the trace was exported ("" when tracing was off). */
    std::string tracePath;
    /** Whether the forensics sidecar was written this run (resume
     *  disables it when the sidecar can't cover the replayed prefix). */
    bool forensicsWritten = false;
    /** points x cells summaries in point-major order. */
    std::vector<CellSummary> cells;

    /** The merged Monte-Carlo result for (point, cell). */
    const faultsim::McResult &
    mc(unsigned point, unsigned cell, unsigned cellsPerPoint) const
    {
        return cells[point * cellsPerPoint + cell].result.mc;
    }
};

RunOutcome runCampaign(const CampaignSpec &spec,
                       const RunOptions &options);

/**
 * Detection shard: trials [task.begin, task.end) of one
 * (code, pattern, weight) cell, streamed through the batched
 * Code::detectMany kernel on stack scratch (no steady-state
 * allocation after the code object is built). Each shard draws from
 * its own counter-based stream keyed by (cell, shard ordinal), so
 * results are independent of thread count and batching, and resumable
 * at shard granularity. Exposed for the allocation and throughput
 * tests; campaign workers call it through runCampaign().
 */
ShardResult runDetectionShard(const CampaignSpec &spec,
                              const ShardTask &task,
                              faultsim::McProgress *progress);

/**
 * Reliability shard: systems [task.begin, task.end) of one scheme
 * cell through runMonteCarloShard. System s draws Rng::stream(seed, s)
 * regardless of sharding, so any partition of the plan -- one
 * process, N threads, or N machines -- merges to identical results.
 */
ShardResult runReliabilityShard(const CampaignSpec &spec,
                                const ShardTask &task,
                                faultsim::McProgress *progress);

/**
 * Fleet shard: slots [task.begin, task.end) of the fleet through
 * fleet::runFleetShard. Slot s draws Rng::stream(seed, s) and its
 * whole multi-year history (replacements included) runs in the shard
 * covering it, so any partition merges to identical results.
 */
ShardResult runFleetShard(const CampaignSpec &spec,
                          const ShardTask &task,
                          faultsim::McProgress *progress);

/** Kind dispatch over the shard executors above. This is the whole
 *  per-shard engine surface a distributed worker needs. */
ShardResult runShard(const CampaignSpec &spec, const ShardTask &task,
                     faultsim::McProgress *progress);

/** Failed systems (reliability) or detection escapes of one result;
 *  feeds the per-cell "failed.<label>" telemetry counters. */
std::uint64_t failedSystemsOf(const CampaignSpec &spec,
                              const ShardResult &result);

/** The deterministic summary record appended after the last shard. */
json::Value summaryRecord(const CampaignSpec &spec,
                          const std::vector<CellSummary> &cells);

/** --dry-run: print the resolved spec, hash and shard plan. */
void printPlan(const CampaignSpec &spec, std::ostream &os);

/** Render a result store (complete or partial) as text tables. */
bool printReport(const std::string &storePath, std::ostream &os,
                 std::string *error);

} // namespace xed::campaign

#endif // XED_CAMPAIGN_RUNNER_HH
