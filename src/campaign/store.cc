#include "campaign/store.hh"

#include <cstring>
#include <filesystem>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "campaign/forensics.hh"
#include "obs/trace.hh"

namespace xed::campaign
{

namespace
{

/** Per-cohort series fields, in the fleet payload's canonical order. */
constexpr const char *cohortSeriesKeys[] = {
    "installs", "removals", "due", "sdc", "replacements", "retirements",
};

const std::vector<std::uint64_t> *
cohortSeriesField(const fleet::CohortSeries &series, std::size_t field)
{
    const std::vector<std::uint64_t> *fields[] = {
        &series.installs,     &series.removals,     &series.due,
        &series.sdc,          &series.replacements, &series.retirements,
    };
    return fields[field];
}

std::vector<std::uint64_t> *
cohortSeriesField(fleet::CohortSeries &series, std::size_t field)
{
    return const_cast<std::vector<std::uint64_t> *>(cohortSeriesField(
        static_cast<const fleet::CohortSeries &>(series), field));
}

json::Value
fleetResultToJson(const fleet::FleetResult &fleet)
{
    auto result = json::Value::object();
    auto cohorts = json::Value::array();
    for (const auto &series : fleet.cohorts) {
        auto entry = json::Value::object();
        for (std::size_t f = 0; f < std::size(cohortSeriesKeys); ++f) {
            auto deltas = json::Value::array();
            for (const std::uint64_t v : *cohortSeriesField(series, f))
                deltas.push(v);
            entry.set(cohortSeriesKeys[f], std::move(deltas));
        }
        const auto attribution = attributionJson(series.attribution);
        entry.set("failures", *attribution.find("failures"));
        entry.set("outcomes", *attribution.find("outcomes"));
        cohorts.push(std::move(entry));
    }
    result.set("cohorts", std::move(cohorts));
    return result;
}

bool
fleetResultFromJson(const json::Value &result, const CampaignSpec &spec,
                    fleet::FleetResult &fleet)
{
    const unsigned epochs = fleetConfigFor(spec).epochs();
    const json::Value *cohorts = result.find("cohorts");
    if (!cohorts || !cohorts->isArray() ||
        cohorts->size() != spec.fleet.cohorts.size())
        return false;
    fleet.cohorts.resize(cohorts->size());
    for (std::size_t c = 0; c < cohorts->size(); ++c) {
        const json::Value &entry = cohorts->at(c);
        if (!entry.isObject())
            return false;
        fleet::CohortSeries &series = fleet.cohorts[c];
        series.resize(epochs);
        for (std::size_t f = 0; f < std::size(cohortSeriesKeys); ++f) {
            const json::Value *deltas = entry.find(cohortSeriesKeys[f]);
            if (!deltas || !deltas->isArray() ||
                deltas->size() != epochs)
                return false;
            std::vector<std::uint64_t> &field =
                *cohortSeriesField(series, f);
            for (unsigned e = 0; e < epochs; ++e) {
                if (!deltas->at(e).isIntegral())
                    return false;
                field[e] = deltas->at(e).asUint();
            }
        }
        if (!parseAttribution(entry, series.attribution, nullptr))
            return false;
    }
    return true;
}

json::Value
mcResultToJson(const faultsim::McResult &mc)
{
    auto result = json::Value::object();
    auto years = json::Value::array();
    for (unsigned y = 1; y <= 7; ++y) {
        auto pair = json::Value::array();
        pair.push(mc.failByYear[y].successes());
        pair.push(mc.failByYear[y].trials());
        years.push(std::move(pair));
    }
    result.set("failByYear", std::move(years));
    auto types = json::Value::object();
    for (const auto &[name, count] : mc.failureTypes.all())
        types.set(name, count);
    result.set("failureTypes", std::move(types));
    return result;
}

bool
mcResultFromJson(const json::Value &result, faultsim::McResult &mc)
{
    const json::Value *years = result.find("failByYear");
    if (!years || !years->isArray() || years->size() != 7)
        return false;
    for (unsigned y = 1; y <= 7; ++y) {
        const json::Value &pair = years->at(y - 1);
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isIntegral() || !pair.at(1).isIntegral())
            return false;
        mc.failByYear[y].addMany(pair.at(0).asUint(),
                                 pair.at(1).asUint());
    }
    const json::Value *types = result.find("failureTypes");
    if (!types || !types->isObject())
        return false;
    for (const auto &[name, count] : types->members()) {
        if (!count.isIntegral())
            return false;
        mc.failureTypes.inc(name, count.asUint());
    }
    return true;
}

} // namespace

json::Value
manifestRecord(const CampaignSpec &spec, const Plan &plan,
               const std::string &hash)
{
    auto record = json::Value::object();
    record.set("type", "manifest");
    record.set("format", storeFormatVersion);
    record.set("specHash", hash);
    record.set("spec", specToJson(spec));
    record.set("points", plan.points);
    record.set("cells", plan.cells);
    record.set("shards", std::uint64_t{plan.tasks.size()});
    return record;
}

json::Value
shardRecord(const CampaignSpec &spec, const ShardTask &task,
            const ShardResult &result)
{
    auto record = json::Value::object();
    record.set("type", "shard");
    record.set("index", task.index);
    record.set("point", task.point);
    record.set("cell", task.cell);
    record.set("label", cellLabel(spec, task.cell));
    record.set("begin", task.begin);
    record.set("end", task.end);
    if (spec.kind == CampaignKind::Reliability) {
        record.set("result", mcResultToJson(result.mc));
    } else if (spec.kind == CampaignKind::Fleet) {
        record.set("result", fleetResultToJson(result.fleet));
    } else {
        auto payload = json::Value::object();
        payload.set("detected", result.detected);
        payload.set("trials", result.trials);
        record.set("result", std::move(payload));
    }
    return record;
}

ShardResult
shardResultFromJson(const CampaignSpec &spec, const json::Value &record)
{
    ShardResult out;
    const json::Value *result = record.find("result");
    if (!result || !result->isObject())
        return out;
    if (spec.kind == CampaignKind::Reliability) {
        faultsim::McResult mc;
        if (mcResultFromJson(*result, mc))
            out.mc = mc;
    } else if (spec.kind == CampaignKind::Fleet) {
        fleet::FleetResult fleet;
        if (fleetResultFromJson(*result, spec, fleet))
            out.fleet = std::move(fleet);
    } else {
        const json::Value *detected = result->find("detected");
        const json::Value *trials = result->find("trials");
        if (detected && detected->isIntegral() && trials &&
            trials->isIntegral()) {
            out.detected = detected->asUint();
            out.trials = trials->asUint();
        }
    }
    return out;
}

bool
durableWritesEnabled()
{
    const char *knob = std::getenv("XED_NO_FSYNC");
    return !(knob && std::strcmp(knob, "1") == 0);
}

bool
fsyncPath(const std::string &path, std::string *error)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
        if (fd >= 0)
            ::close(fd);
        if (error)
            *error = "fsync failed on " + path;
        return false;
    }
    ::close(fd);
    return true;
}

bool
fsyncParentDir(const std::string &path, std::string *error)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    return fsyncPath(parent.string(), error);
}

StoreWriter::~StoreWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
StoreWriter::open(const std::string &path, long long appendAt,
                  std::string *error, bool durable)
{
    path_ = path;
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (appendAt >= 0) {
        std::error_code ec;
        std::filesystem::resize_file(path, appendAt, ec);
        if (ec) {
            if (error)
                *error = "cannot truncate " + path + ": " + ec.message();
            return false;
        }
        out_.open(path, std::ios::binary | std::ios::app);
    } else {
        out_.open(path, std::ios::binary | std::ios::trunc);
    }
    if (!out_) {
        if (error)
            *error = "cannot open result file " + path;
        return false;
    }
    if (durable && durableWritesEnabled()) {
        fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
        if (fd_ < 0) {
            if (error)
                *error = "cannot open fsync descriptor for " + path;
            return false;
        }
    }
    return true;
}

bool
StoreWriter::write(const json::Value &record, std::string *error)
{
    return writeLine(json::dump(record), error);
}

bool
StoreWriter::writeLine(const std::string &line, std::string *error)
{
    XED_TRACE_SPAN("store.write", "io");
    out_ << line << '\n';
    out_.flush();
    if (!out_) {
        if (error)
            *error = "write failed on " + path_;
        return false;
    }
    // The ofstream flush only moves the record into the page cache; a
    // host crash there would break the documented kill-safe contract
    // (store.hh), so push it to stable storage before reporting the
    // record as written.
    if (fd_ >= 0 && ::fsync(fd_) != 0) {
        if (error)
            *error = "fsync failed on " + path_;
        return false;
    }
    return true;
}

LoadedStore
loadStore(const std::string &path, const std::string &expectedHash,
          const CampaignSpec &spec, const Plan &plan)
{
    LoadedStore loaded;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        loaded.error = "cannot open " + path;
        return loaded;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    loaded.shardResults.resize(plan.tasks.size());
    bool sawManifest = false;
    std::size_t lineStart = 0;
    while (lineStart < text.size()) {
        const std::size_t newline = text.find('\n', lineStart);
        if (newline == std::string::npos) {
            // Torn final line (killed mid-write): resume from here.
            break;
        }
        const std::string_view line(text.data() + lineStart,
                                    newline - lineStart);
        std::string parseError;
        const auto record = json::parse(line, &parseError);
        if (!record || !record->isObject()) {
            if (!sawManifest) {
                loaded.error = path + ": first line is not a valid "
                               "manifest record";
                return loaded;
            }
            // A malformed *interior* line means the file was edited or
            // corrupted, not torn by a kill; refuse to guess.
            loaded.error = path + ": corrupt record at byte " +
                           std::to_string(lineStart) + ": " + parseError;
            return loaded;
        }
        const json::Value *type = record->find("type");
        const std::string typeName =
            type && type->isString() ? type->asString() : "";
        if (!sawManifest) {
            if (typeName != "manifest") {
                loaded.error = path + ": first record must be a manifest";
                return loaded;
            }
            const json::Value *format = record->find("format");
            if (!format || !format->isIntegral() ||
                format->asInt() != storeFormatVersion) {
                loaded.error = path + ": unsupported store format";
                return loaded;
            }
            const json::Value *hash = record->find("specHash");
            if (!hash || !hash->isString() ||
                hash->asString() != expectedHash) {
                loaded.error =
                    path + ": spec hash mismatch (file " +
                    (hash && hash->isString() ? hash->asString() : "?") +
                    ", spec " + expectedHash +
                    "); refusing to resume a different campaign";
                return loaded;
            }
            const json::Value *shards = record->find("shards");
            if (!shards || !shards->isIntegral() ||
                shards->asUint() != plan.tasks.size()) {
                loaded.error = path + ": manifest shard count does not "
                               "match the spec's plan";
                return loaded;
            }
            sawManifest = true;
        } else if (typeName == "shard") {
            const json::Value *index = record->find("index");
            if (!index || !index->isIntegral() ||
                index->asUint() != loaded.completedShards) {
                loaded.error = path + ": shard records out of order at "
                               "byte " + std::to_string(lineStart);
                return loaded;
            }
            if (loaded.completedShards >= plan.tasks.size()) {
                loaded.error = path + ": more shard records than the "
                               "plan has shards";
                return loaded;
            }
            const ShardTask &task = plan.tasks[loaded.completedShards];
            const json::Value *point = record->find("point");
            const json::Value *cell = record->find("cell");
            const json::Value *begin = record->find("begin");
            const json::Value *end = record->find("end");
            const bool matches =
                point && point->isIntegral() &&
                point->asUint() == task.point && cell &&
                cell->isIntegral() && cell->asUint() == task.cell &&
                begin && begin->isIntegral() &&
                begin->asUint() == task.begin && end &&
                end->isIntegral() && end->asUint() == task.end;
            if (!matches) {
                loaded.error = path + ": shard record " +
                               std::to_string(task.index) +
                               " does not match the spec's plan";
                return loaded;
            }
            loaded.shardResults[loaded.completedShards] =
                shardResultFromJson(spec, *record);
            ++loaded.completedShards;
        } else if (typeName == "summary") {
            loaded.hasSummary = true;
        } else {
            loaded.error = path + ": unknown record type \"" + typeName +
                           "\" at byte " + std::to_string(lineStart);
            return loaded;
        }
        lineStart = newline + 1;
        loaded.validBytes = static_cast<long long>(lineStart);
        if (loaded.hasSummary)
            break;
    }
    if (!sawManifest) {
        loaded.error = path + ": no complete manifest record";
        return loaded;
    }
    if (loaded.hasSummary && loaded.completedShards != plan.tasks.size()) {
        loaded.error = path + ": summary present but shards missing";
        return loaded;
    }
    loaded.ok = true;
    return loaded;
}

} // namespace xed::campaign
