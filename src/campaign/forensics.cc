#include "campaign/forensics.hh"

#include <algorithm>
#include <fstream>
#include <memory>
#include <ostream>

#include "common/table.hh"
#include "common/units.hh"

namespace xed::campaign
{

namespace
{

std::optional<obs::FailureClass>
failureClassFromName(const std::string &name)
{
    for (unsigned c = 0; c < obs::numFailureClasses; ++c) {
        const auto cls = static_cast<obs::FailureClass>(c);
        if (name == obs::failureClassName(cls))
            return cls;
    }
    return std::nullopt;
}

std::optional<obs::DetectionOutcome>
detectionOutcomeFromName(const std::string &name)
{
    for (unsigned o = 0; o < obs::numDetectionOutcomes; ++o) {
        const auto outcome = static_cast<obs::DetectionOutcome>(o);
        if (name == obs::detectionOutcomeName(outcome))
            return outcome;
    }
    return std::nullopt;
}

/** Set "failures" and "outcomes" members on @p record. */
void
setAttribution(json::Value &record,
               const obs::FailureAttribution &attribution)
{
    auto failures = json::Value::object();
    for (unsigned c = 0; c < obs::numFailureClasses; ++c) {
        auto perClass = json::Value::object();
        for (unsigned m = 0; m < obs::FailureAttribution::maxKindMasks;
             ++m) {
            const std::uint64_t count = attribution.byClassKinds[c][m];
            if (count)
                perClass.set(kindsMaskName(m), count);
        }
        if (perClass.size())
            failures.set(obs::failureClassName(
                             static_cast<obs::FailureClass>(c)),
                         std::move(perClass));
    }
    record.set("failures", std::move(failures));
    auto outcomes = json::Value::object();
    for (unsigned o = 0; o < obs::numDetectionOutcomes; ++o) {
        const std::uint64_t count = attribution.byOutcome[o];
        if (count)
            outcomes.set(obs::detectionOutcomeName(
                             static_cast<obs::DetectionOutcome>(o)),
                         count);
    }
    record.set("outcomes", std::move(outcomes));
}

} // namespace

bool
parseAttribution(const json::Value &record,
                 obs::FailureAttribution &attribution,
                 std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    const json::Value *failures = record.find("failures");
    if (!failures || !failures->isObject())
        return fail("forensics record missing failures object");
    for (const auto &[clsName, perClass] : failures->members()) {
        const auto cls = failureClassFromName(clsName);
        if (!cls || !perClass.isObject())
            return fail("unknown failure class \"" + clsName + "\"");
        for (const auto &[kinds, count] : perClass.members()) {
            const auto mask = kindsMaskFromName(kinds);
            if (!mask || !count.isIntegral())
                return fail("bad kind set \"" + kinds + "\"");
            attribution.byClassKinds[static_cast<unsigned>(*cls)]
                                    [*mask %
                                     obs::FailureAttribution::
                                         maxKindMasks] += count.asUint();
        }
    }
    const json::Value *outcomes = record.find("outcomes");
    if (!outcomes || !outcomes->isObject())
        return fail("forensics record missing outcomes object");
    for (const auto &[name, count] : outcomes->members()) {
        const auto outcome = detectionOutcomeFromName(name);
        if (!outcome || !count.isIntegral())
            return fail("unknown detection outcome \"" + name + "\"");
        attribution.byOutcome[static_cast<unsigned>(*outcome)] +=
            count.asUint();
    }
    return true;
}

void
parseAutopsy(const json::Value &record,
             std::vector<faultsim::AutopsyRecord> &autopsy,
             std::vector<std::unique_ptr<std::string>> &strings)
{
    const json::Value *entries = record.find("autopsy");
    if (!entries || !entries->isArray())
        return;
    for (const auto &entry : entries->items()) {
        if (!entry.isObject())
            continue;
        faultsim::AutopsyRecord rec;
        const json::Value *system = entry.find("system");
        const json::Value *time = entry.find("timeHours");
        const json::Value *failType = entry.find("type");
        const json::Value *kinds = entry.find("kinds");
        if (!system || !system->isIntegral() || !time ||
            !time->isNumber() || !failType || !failType->isString() ||
            !kinds || !kinds->isString())
            continue;
        rec.system = system->asUint();
        rec.timeHours = time->asDouble();
        strings.push_back(
            std::make_unique<std::string>(failType->asString()));
        rec.type = strings.back()->c_str();
        if (const auto mask = kindsMaskFromName(kinds->asString()))
            rec.kindsMask = static_cast<std::uint8_t>(*mask);
        if (const json::Value *cls = entry.find("class");
            cls && cls->isString())
            if (const auto parsed = failureClassFromName(cls->asString()))
                rec.cls = *parsed;
        if (const json::Value *outcome = entry.find("outcome");
            outcome && outcome->isString())
            if (const auto parsed =
                    detectionOutcomeFromName(outcome->asString()))
                rec.outcome = *parsed;
        autopsy.push_back(rec);
    }
}

namespace
{

json::Value
autopsyJson(const std::vector<faultsim::AutopsyRecord> &autopsy)
{
    auto out = json::Value::array();
    for (const auto &record : autopsy) {
        auto entry = json::Value::object();
        entry.set("system", record.system);
        entry.set("timeHours", record.timeHours);
        entry.set("type", record.type);
        entry.set("kinds", kindsMaskName(record.kindsMask));
        entry.set("class", obs::failureClassName(record.cls));
        entry.set("outcome", obs::detectionOutcomeName(record.outcome));
        out.push(std::move(entry));
    }
    return out;
}

} // namespace

std::string
forensicsPath(const std::string &storePath)
{
    return storePath + ".forensics.jsonl";
}

std::string
kindsMaskName(unsigned mask)
{
    if (mask == 0)
        return "none";
    std::string out;
    for (unsigned k = 0; k < faultsim::numFaultKinds; ++k) {
        if (!(mask & (1u << k)))
            continue;
        if (!out.empty())
            out += '+';
        out += faultsim::faultKindName(
            static_cast<faultsim::FaultKind>(k));
    }
    return out;
}

std::optional<unsigned>
kindsMaskFromName(const std::string &name)
{
    if (name == "none")
        return 0u;
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= name.size()) {
        const std::size_t sep = name.find('+', pos);
        const std::string part = name.substr(
            pos, sep == std::string::npos ? std::string::npos
                                          : sep - pos);
        bool known = false;
        for (unsigned k = 0; k < faultsim::numFaultKinds; ++k) {
            if (part == faultsim::faultKindName(
                            static_cast<faultsim::FaultKind>(k))) {
                mask |= 1u << k;
                known = true;
                break;
            }
        }
        if (!known)
            return std::nullopt;
        if (sep == std::string::npos)
            break;
        pos = sep + 1;
    }
    return mask;
}

json::Value
attributionJson(const obs::FailureAttribution &attribution)
{
    auto out = json::Value::object();
    setAttribution(out, attribution);
    return out;
}

json::Value
forensicsShardRecord(const ShardTask &task, const faultsim::McResult &mc)
{
    auto record = json::Value::object();
    record.set("type", "forensics");
    record.set("index", task.index);
    record.set("point", task.point);
    record.set("cell", task.cell);
    setAttribution(record, mc.attribution);
    record.set("autopsy", autopsyJson(mc.autopsy));
    return record;
}

json::Value
forensicsSummaryRecord(unsigned point, unsigned cell,
                       const std::string &label,
                       const faultsim::McResult &mc)
{
    auto record = json::Value::object();
    record.set("type", "forensics-summary");
    record.set("point", point);
    record.set("cell", cell);
    record.set("label", label);
    setAttribution(record, mc.attribution);
    record.set("autopsy", autopsyJson(mc.autopsy));
    return record;
}

LoadedForensics
loadForensics(const std::string &path)
{
    LoadedForensics loaded;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        loaded.error = "cannot open " + path;
        return loaded;
    }
    std::string line;
    long long offset = 0;
    while (std::getline(in, line)) {
        if (in.eof() && !in.good())
            break; // no trailing newline: torn final line
        const long long lineBytes =
            static_cast<long long>(line.size()) + 1;
        std::string parseError;
        const auto record = json::parse(line, &parseError);
        if (!record || !record->isObject()) {
            // A torn or foreign line ends the valid prefix quietly,
            // mirroring the store loader's kill tolerance.
            break;
        }
        const json::Value *type = record->find("type");
        if (!type || !type->isString())
            break;
        if (type->asString() == "forensics-summary") {
            // Summaries follow the shard records; resume rewrites
            // them, so they don't extend validBytes.
            offset += lineBytes;
            continue;
        }
        if (type->asString() != "forensics")
            break;
        const json::Value *index = record->find("index");
        if (!index || !index->isIntegral() ||
            index->asUint() != loaded.shardRecords) {
            loaded.error = path + ": shard records out of order at #" +
                           std::to_string(loaded.shardRecords);
            return loaded;
        }
        obs::FailureAttribution attribution;
        std::string attrError;
        if (!parseAttribution(*record, attribution, &attrError)) {
            loaded.error = path + ": " + attrError;
            return loaded;
        }
        offset += lineBytes;
        ++loaded.shardRecords;
        loaded.validBytes = offset;
        loaded.bytesAfterShard.push_back(offset);
        loaded.attributions.push_back(attribution);
    }
    loaded.ok = true;
    return loaded;
}

bool
printForensics(const std::string &storePath, const CampaignSpec &spec,
               const Plan &plan, std::ostream &os, std::string *error)
{
    if (spec.kind != CampaignKind::Reliability)
        return true;
    const std::string path = forensicsPath(storePath);
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
        return true; // no sidecar: forensics were disabled
    probe.close();

    struct CellForensics
    {
        obs::FailureAttribution attribution;
        std::vector<faultsim::AutopsyRecord> autopsy;
    };
    std::vector<CellForensics> cells(
        static_cast<std::size_t>(plan.points) * plan.cells);
    // Autopsy kind strings live in the parsed JSON; keep stable copies.
    std::vector<std::unique_ptr<std::string>> strings;

    std::ifstream in(path, std::ios::binary);
    std::string line;
    std::uint64_t expected = 0;
    while (std::getline(in, line)) {
        std::string parseError;
        const auto record = json::parse(line, &parseError);
        if (!record || !record->isObject())
            break; // torn final line
        const json::Value *type = record->find("type");
        if (!type || !type->isString() ||
            type->asString() == "forensics-summary")
            continue;
        const json::Value *index = record->find("index");
        const json::Value *point = record->find("point");
        const json::Value *cell = record->find("cell");
        if (!index || !index->isIntegral() ||
            index->asUint() != expected || !point ||
            !point->isIntegral() || !cell || !cell->isIntegral()) {
            if (error)
                *error = path + ": shard records out of order";
            return false;
        }
        ++expected;
        const std::size_t slot =
            point->asUint() * plan.cells + cell->asUint();
        if (slot >= cells.size()) {
            if (error)
                *error = path + ": record outside the shard plan";
            return false;
        }
        if (!parseAttribution(*record, cells[slot].attribution, error)) {
            if (error)
                *error = path + ": " + *error;
            return false;
        }
        auto &exemplars = cells[slot].autopsy;
        parseAutopsy(*record, exemplars, strings);
        // Shards arrive in plan order and system indices rise with
        // the shard, so truncation keeps the lowest-index exemplars,
        // matching McResult::merge's cap.
        if (exemplars.size() > faultsim::McResult::maxAutopsyRecords)
            exemplars.resize(faultsim::McResult::maxAutopsyRecords);
    }

    for (unsigned point = 0; point < plan.points; ++point) {
        bool any = false;
        for (unsigned cell = 0; cell < plan.cells; ++cell)
            any |= cells[point * plan.cells + cell].attribution.total() >
                   0;
        if (!any)
            continue;
        std::string title = "Failure forensics: " + spec.name;
        if (spec.sweep.active())
            title += ": " + spec.sweep.parameter + " = " +
                     json::formatDouble(spec.sweep.values[point]);

        Table kindsTable(
            {"Scheme", "Class", "Fault kinds", "Failed systems"});
        Table outcomeTable(
            {"Scheme", "Detection outcome", "Failed systems"});
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            const auto &attribution =
                cells[point * plan.cells + cell].attribution;
            const std::string label = cellLabel(spec, cell);
            for (unsigned c = 0; c < obs::numFailureClasses; ++c)
                for (unsigned m = 0;
                     m < obs::FailureAttribution::maxKindMasks; ++m)
                    if (const auto count =
                            attribution.byClassKinds[c][m])
                        kindsTable.addRow(
                            {label,
                             obs::failureClassName(
                                 static_cast<obs::FailureClass>(c)),
                             kindsMaskName(m), std::to_string(count)});
            for (unsigned o = 0; o < obs::numDetectionOutcomes; ++o)
                if (const auto count = attribution.byOutcome[o])
                    outcomeTable.addRow(
                        {label,
                         obs::detectionOutcomeName(
                             static_cast<obs::DetectionOutcome>(o)),
                         std::to_string(count)});
        }
        kindsTable.print(os, title);
        os << "\n";
        outcomeTable.print(os, title + " (detection outcomes)");
        os << "\n";

        Table autopsyTable({"Scheme", "System", "Time (years)", "Type",
                            "Fault kinds", "Class", "Outcome"});
        constexpr std::size_t exemplarsPerCell = 4;
        bool haveAutopsy = false;
        for (unsigned cell = 0; cell < plan.cells; ++cell) {
            const auto &exemplars =
                cells[point * plan.cells + cell].autopsy;
            const std::string label = cellLabel(spec, cell);
            for (std::size_t i = 0;
                 i < std::min(exemplars.size(), exemplarsPerCell); ++i) {
                const auto &rec = exemplars[i];
                autopsyTable.addRow(
                    {label, std::to_string(rec.system),
                     Table::fmt(rec.timeHours / hoursPerYear, 2),
                     rec.type, kindsMaskName(rec.kindsMask),
                     obs::failureClassName(rec.cls),
                     obs::detectionOutcomeName(rec.outcome)});
                haveAutopsy = true;
            }
        }
        if (haveAutopsy) {
            autopsyTable.print(os,
                               title + " (autopsy exemplars, first " +
                                   std::to_string(exemplarsPerCell) +
                                   " per scheme)");
            os << "\n";
        }
    }
    return true;
}

} // namespace xed::campaign
