/**
 * @file
 * The xed_campaign CLI: run declarative experiment specs through the
 * campaign runner.
 *
 *   xed_campaign run    <spec.json> [options]   execute a campaign
 *   xed_campaign resume <spec.json> [options]   continue a killed run
 *   xed_campaign report <result.jsonl>          render result tables
 *
 * Options for run/resume:
 *   --out <file>            result JSONL (default: <name>.jsonl)
 *   --dry-run               validate + print the shard plan, no sim
 *   --threads <n>           worker threads (default: spec/env/hw)
 *   --max-shards <n>        stop after n shard records (interrupt sim)
 *   --progress-interval <s> status-line period in seconds (default 1)
 *   --quiet                 no live status lines (sidecar still kept)
 *
 * Environment: XED_MC_SYSTEMS / XED_TRIALS / XED_MC_SEED /
 * XED_MC_SAMPLER override the spec (reflected in the spec hash),
 * XED_MC_THREADS the worker count. Malformed values are errors.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "campaign/runner.hh"
#include "campaign/spec.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

int
usage(std::ostream &os)
{
    os << "usage: xed_campaign run    <spec.json> [--out <file>] "
          "[--dry-run]\n"
          "                           [--threads <n>] [--max-shards <n>]\n"
          "                           [--progress-interval <seconds>] "
          "[--quiet]\n"
          "       xed_campaign resume <spec.json> [same options]\n"
          "       xed_campaign report <result.jsonl>\n";
    return 2;
}

struct CliArgs
{
    std::string command;
    std::string path;
    RunOptions options;
    bool dryRun = false;
    bool quiet = false;
    bool explicitOut = false;
};

bool
parseArgs(int argc, char **argv, CliArgs &args, std::string &error)
{
    if (argc < 3) {
        error = "missing arguments";
        return false;
    }
    args.command = argv[1];
    args.path = argv[2];
    args.options.progressIntervalSeconds = 1.0;
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                error = flag + " requires a value";
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--dry-run") {
            args.dryRun = true;
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return false;
            args.options.outPath = v;
            args.explicitOut = true;
        } else if (flag == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            args.options.threads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--max-shards") {
            const char *v = value();
            if (!v)
                return false;
            args.options.maxShards = std::strtoull(v, nullptr, 10);
        } else if (flag == "--progress-interval") {
            const char *v = value();
            if (!v)
                return false;
            args.options.progressIntervalSeconds =
                std::strtod(v, nullptr);
        } else {
            error = "unknown option " + flag;
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    std::string error;
    if (!parseArgs(argc, argv, args, error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return usage(std::cerr);
    }

    if (args.command == "report") {
        if (!printReport(args.path, std::cout, &error)) {
            std::cerr << "xed_campaign: " << error << "\n";
            return 1;
        }
        return 0;
    }
    if (args.command != "run" && args.command != "resume") {
        std::cerr << "xed_campaign: unknown command \"" << args.command
                  << "\"\n";
        return usage(std::cerr);
    }

    auto spec = loadSpecFile(args.path, &error);
    if (!spec) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    try {
        applyEnvOverrides(*spec);
    } catch (const std::exception &e) {
        std::cerr << "xed_campaign: " << e.what() << "\n";
        return 1;
    }

    if (args.dryRun) {
        printPlan(*spec, std::cout);
        return 0;
    }

    args.options.resume = args.command == "resume";
    if (!args.explicitOut)
        args.options.outPath = spec->name + ".jsonl";
    if (!args.quiet)
        args.options.progressOut = &std::cerr;

    const RunOutcome outcome = runCampaign(*spec, args.options);
    if (!outcome.ok) {
        std::cerr << "xed_campaign: " << outcome.error << "\n";
        return 1;
    }
    if (!args.quiet) {
        std::cerr << "xed_campaign: " << outcome.shardsRun
                  << " shards run, " << outcome.shardsReplayed
                  << " replayed -> " << args.options.outPath
                  << (outcome.complete ? " (complete)" : " (partial)")
                  << "\n";
    }
    if (outcome.complete &&
        !printReport(args.options.outPath, std::cout, &error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    return 0;
}
