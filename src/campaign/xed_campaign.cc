/**
 * @file
 * The xed_campaign CLI: run declarative experiment specs through the
 * campaign runner.
 *
 *   xed_campaign run    <spec.json> [options]   execute a campaign
 *   xed_campaign resume <spec.json> [options]   continue a killed run
 *   xed_campaign trace  <spec.json> [options]   run with the trace
 *                                               recorder forced on
 *   xed_campaign report <result.jsonl>          render result tables
 *   xed_campaign checkjson <file.json>          strict-parse a JSON
 *                                               document (trace smoke)
 *
 * Options for run/resume/trace:
 *   --out <file>            result JSONL (default: <name>.jsonl)
 *   --dry-run               validate + print the shard plan, no sim
 *   --threads <n>           worker threads (default: spec/env/hw)
 *   --max-shards <n>        stop after n shard records (interrupt sim)
 *   --progress-interval <s> status-line period in seconds (default 1)
 *   --quiet                 no live status lines (sidecar still kept)
 *   --trace-out <file>      Chrome-trace export path (default:
 *                           <out>.trace.json when recording)
 *   --no-forensics          skip the <out>.forensics.jsonl sidecar
 *
 * Environment: XED_MC_SYSTEMS / XED_TRIALS / XED_MC_SEED /
 * XED_MC_SAMPLER override the spec (reflected in the spec hash),
 * XED_MC_THREADS the worker count, XED_TRACE / XED_TRACE_BUFFER the
 * span recorder (run/resume export a trace when XED_TRACE=1).
 * Malformed values are errors.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "common/json.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

int
usage(std::ostream &os)
{
    os << "usage: xed_campaign run    <spec.json> [--out <file>] "
          "[--dry-run]\n"
          "                           [--threads <n>] [--max-shards <n>]\n"
          "                           [--progress-interval <seconds>] "
          "[--quiet]\n"
          "                           [--trace-out <file>] "
          "[--no-forensics]\n"
          "       xed_campaign resume <spec.json> [same options]\n"
          "       xed_campaign trace  <spec.json> [same options]\n"
          "       xed_campaign report <result.jsonl>\n"
          "       xed_campaign checkjson <file.json>\n";
    return 2;
}

/** Strict-parse one JSON document; used by scripts/trace_smoke.sh to
 *  prove an exported trace is well-formed without external tools. */
int
checkJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "xed_campaign: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = json::parse(buffer.str(), &error);
    if (!doc) {
        std::cerr << "xed_campaign: " << path << ": " << error << "\n";
        return 1;
    }
    std::cout << path << ": valid JSON ("
              << (doc->isObject()
                      ? std::to_string(doc->size()) + " members"
                      : doc->isArray()
                            ? std::to_string(doc->size()) + " items"
                            : "scalar")
              << ")\n";
    return 0;
}

struct CliArgs
{
    std::string command;
    std::string path;
    RunOptions options;
    bool dryRun = false;
    bool quiet = false;
    bool explicitOut = false;
};

bool
parseArgs(int argc, char **argv, CliArgs &args, std::string &error)
{
    if (argc < 3) {
        error = "missing arguments";
        return false;
    }
    args.command = argv[1];
    args.path = argv[2];
    args.options.progressIntervalSeconds = 1.0;
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                error = flag + " requires a value";
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--dry-run") {
            args.dryRun = true;
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return false;
            args.options.outPath = v;
            args.explicitOut = true;
        } else if (flag == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            args.options.threads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--max-shards") {
            const char *v = value();
            if (!v)
                return false;
            args.options.maxShards = std::strtoull(v, nullptr, 10);
        } else if (flag == "--progress-interval") {
            const char *v = value();
            if (!v)
                return false;
            args.options.progressIntervalSeconds =
                std::strtod(v, nullptr);
        } else if (flag == "--trace-out") {
            const char *v = value();
            if (!v)
                return false;
            args.options.traceOut = v;
        } else if (flag == "--no-forensics") {
            args.options.forensicsSidecar = false;
        } else {
            error = "unknown option " + flag;
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    std::string error;
    if (!parseArgs(argc, argv, args, error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return usage(std::cerr);
    }

    if (args.command == "report") {
        if (!printReport(args.path, std::cout, &error)) {
            std::cerr << "xed_campaign: " << error << "\n";
            return 1;
        }
        return 0;
    }
    if (args.command == "checkjson")
        return checkJson(args.path);
    if (args.command != "run" && args.command != "resume" &&
        args.command != "trace") {
        std::cerr << "xed_campaign: unknown command \"" << args.command
                  << "\"\n";
        return usage(std::cerr);
    }

    auto spec = loadSpecFile(args.path, &error);
    if (!spec) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    try {
        applyEnvOverrides(*spec);
    } catch (const std::exception &e) {
        std::cerr << "xed_campaign: " << e.what() << "\n";
        return 1;
    }

    if (args.dryRun) {
        printPlan(*spec, std::cout);
        return 0;
    }

    args.options.resume = args.command == "resume";
    args.options.trace = args.command == "trace";
    if (!args.explicitOut)
        args.options.outPath = spec->name + ".jsonl";
    if (!args.quiet)
        args.options.progressOut = &std::cerr;

    const RunOutcome outcome = runCampaign(*spec, args.options);
    if (!outcome.ok) {
        std::cerr << "xed_campaign: " << outcome.error << "\n";
        return 1;
    }
    if (!args.quiet) {
        std::cerr << "xed_campaign: " << outcome.shardsRun
                  << " shards run, " << outcome.shardsReplayed
                  << " replayed -> " << args.options.outPath
                  << (outcome.complete ? " (complete)" : " (partial)")
                  << "\n";
        if (!outcome.tracePath.empty())
            std::cerr << "xed_campaign: trace -> " << outcome.tracePath
                      << "\n";
    }
    if (outcome.complete &&
        !printReport(args.options.outPath, std::cout, &error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    return 0;
}
