/**
 * @file
 * The xed_campaign CLI: run declarative experiment specs through the
 * campaign runner.
 *
 *   xed_campaign run    <spec.json> [options]   execute a campaign
 *   xed_campaign fleet  <spec.json> [options]   execute a fleet spec
 *                                               (kind "fleet" only)
 *   xed_campaign resume <spec.json> [options]   continue a killed run
 *   xed_campaign trace  <spec.json> [options]   run with the trace
 *                                               recorder forced on
 *   xed_campaign worker <spec.json> [options]   join a distributed
 *                                               queue and run shards
 *   xed_campaign merge  <spec.json> [options]   assemble a queue's
 *                                               fragments into the
 *                                               canonical store
 *   xed_campaign report <result.jsonl>          render result tables
 *                                               (--format=json: the
 *                                               canonical status JSON)
 *   xed_campaign status [<path>] [options]      one read-only fleet /
 *                                               store snapshot (human
 *                                               table or --json)
 *   xed_campaign serve  [<path>] [options]      HTTP observer: /,
 *                                               /status.json, /metrics
 *   xed_campaign checkjson <file.json>          strict-parse a JSON
 *                                               document (trace smoke)
 *   xed_campaign version                        print build provenance
 *                                               (git, compiler, flags)
 *
 * Options for run/resume/trace:
 *   --out <file>            result JSONL (default: <name>.jsonl)
 *   --dry-run               validate + print the shard plan, no sim
 *   --threads <n>           worker threads (default: spec/env/hw)
 *   --max-shards <n>        stop after n shard records (interrupt sim)
 *   --progress-interval <s> status-line period in seconds (default 1)
 *   --quiet                 no live status lines (sidecar still kept)
 *   --trace-out <file>      Chrome-trace export path (default:
 *                           <out>.trace.json when recording)
 *   --no-forensics          skip the <out>.forensics.jsonl sidecar
 *   --no-fsync              skip per-record fsync (benches; a crash
 *                           may then lose the documented durability)
 *
 * Options for worker:
 *   --queue-dir <dir>       shared queue directory (required)
 *   --worker-id <id>        identity in leases/telemetry (default:
 *                           <host>-<pid>)
 *   --lease-seconds <s>     lease lifetime before other workers may
 *                           re-claim a shard (default 60)
 *   --poll-interval <s>     sleep between scans while all pending
 *                           shards are leased out (default 0.2)
 *   --max-shards / --progress-interval / --quiet / --no-forensics /
 *   --no-fsync              as above
 *
 * Options for merge:
 *   --queue-dir <dir>       shared queue directory (required)
 *   --out <file>            result JSONL (default: <name>.jsonl)
 *   --wait                  poll until every fragment exists instead
 *                           of failing fast
 *   --timeout <s>           give up --wait after s seconds (default:
 *                           wait forever)
 *   --poll-interval <s>     fragment poll period (default 0.5)
 *   --no-fsync              as above
 *
 * Options for status/serve (the source is a queue directory or a
 * result store, given positionally or via --queue-dir; both commands
 * are strictly read-only -- they never claim leases or write into the
 * queue):
 *   --queue-dir <dir>       queue directory to observe
 *   --lease-seconds <s>     liveness thresholds: a worker is live
 *                           within s/2 of its last heartbeat, stale
 *                           within s, dead beyond (default 60 --
 *                           match the fleet's --lease-seconds)
 *   --json                  status: canonical JSON instead of tables
 *   --watch                 status: refresh until interrupted
 *   --interval <s>          status --watch refresh period (default 2)
 *   --port <n>              serve: TCP port (0 picks one; the bound
 *                           port is printed to stdout either way)
 *
 * All numeric option values parse strictly (common/env.hh): base-10,
 * no leading/trailing junk, no overflow, finite doubles only.
 * Malformed values are usage errors, never silently truncated.
 *
 * Environment: XED_MC_SYSTEMS / XED_TRIALS / XED_MC_SEED /
 * XED_MC_SAMPLER override the spec (reflected in the spec hash),
 * XED_MC_THREADS the worker count, XED_TRACE / XED_TRACE_BUFFER the
 * span recorder (run/resume export a trace when XED_TRACE=1; a worker
 * exports to <queue-dir>/worker-<id>.trace.json), XED_NO_FSYNC=1
 * disables all per-record fsyncs globally. Malformed values are
 * errors.
 */

#include <chrono>
#include <climits>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "campaign/status.hh"
#include "campaign/worker.hh"
#include "common/build_info.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "obs/http.hh"

using namespace xed;
using namespace xed::campaign;

namespace
{

int
usage(std::ostream &os)
{
    os << "usage: xed_campaign run    <spec.json> [--out <file>] "
          "[--dry-run]\n"
          "                           [--threads <n>] [--max-shards <n>]\n"
          "                           [--progress-interval <seconds>] "
          "[--quiet]\n"
          "                           [--trace-out <file>] "
          "[--no-forensics] [--no-fsync]\n"
          "       xed_campaign resume <spec.json> [same options]\n"
          "       xed_campaign trace  <spec.json> [same options]\n"
          "       xed_campaign worker <spec.json> --queue-dir <dir>\n"
          "                           [--worker-id <id>] "
          "[--lease-seconds <s>]\n"
          "                           [--poll-interval <s>] "
          "[--max-shards <n>]\n"
          "                           [--progress-interval <seconds>] "
          "[--quiet]\n"
          "                           [--no-forensics] [--no-fsync]\n"
          "       xed_campaign merge  <spec.json> --queue-dir <dir>\n"
          "                           [--out <file>] [--wait] "
          "[--timeout <s>]\n"
          "                           [--poll-interval <s>] "
          "[--no-fsync]\n"
          "       xed_campaign fleet  <spec.json> [run options; spec "
          "kind must be \"fleet\"]\n"
          "       xed_campaign report <result.jsonl> "
          "[--format=<text|json>]\n"
          "       xed_campaign status [<path>] [--queue-dir <dir>] "
          "[--json]\n"
          "                           [--watch] [--interval <s>] "
          "[--lease-seconds <s>]\n"
          "       xed_campaign serve  [<path>] [--queue-dir <dir>] "
          "[--port <n>]\n"
          "                           [--lease-seconds <s>]\n"
          "       xed_campaign checkjson <file.json>\n"
          "       xed_campaign version\n";
    return 2;
}

/** Strict-parse one JSON document; used by scripts/trace_smoke.sh to
 *  prove an exported trace is well-formed without external tools. */
int
checkJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "xed_campaign: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = json::parse(buffer.str(), &error);
    if (!doc) {
        std::cerr << "xed_campaign: " << path << ": " << error << "\n";
        return 1;
    }
    std::cout << path << ": valid JSON ("
              << (doc->isObject()
                      ? std::to_string(doc->size()) + " members"
                      : doc->isArray()
                            ? std::to_string(doc->size()) + " items"
                            : "scalar")
              << ")\n";
    return 0;
}

struct CliArgs
{
    std::string command;
    std::string path;
    RunOptions options;
    WorkerOptions worker;
    MergeOptions merge;
    bool dryRun = false;
    bool quiet = false;
    bool explicitOut = false;
    // status / serve / report
    std::uint64_t port = 0;
    double watchIntervalSeconds = 2.0;
    bool watch = false;
    bool jsonOut = false;
    std::string format = "text";
};

bool
parseArgs(int argc, char **argv, CliArgs &args, std::string &error)
{
    if (argc < 3) {
        error = "missing arguments";
        return false;
    }
    args.command = argv[1];
    // status/serve take their source from --queue-dir alone; every
    // other command requires the positional path (enforced after the
    // parse, where the command is known).
    int first = 2;
    if (argv[2][0] != '-') {
        args.path = argv[2];
        first = 3;
    }
    args.options.progressIntervalSeconds = 1.0;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                error = flag + " requires a value";
                return nullptr;
            }
            return argv[++i];
        };
        // Strict numeric parses: a flag whose value fails to parse is
        // a usage error, never a silent zero (the old strtoul paths
        // turned "--threads 4x" into 4 and "--threads x" into 0,
        // which resolveThreads then silently replaced with the
        // hardware count).
        const auto u64Value = [&](std::uint64_t &out) {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = parseU64(v);
            if (!parsed) {
                error = flag + ": expected an unsigned base-10 " +
                        "integer, got \"" + v + "\"";
                return false;
            }
            out = *parsed;
            return true;
        };
        const auto f64Value = [&](double &out) {
            const char *v = value();
            if (!v)
                return false;
            const auto parsed = parseF64(v);
            if (!parsed) {
                error = flag + ": expected a finite base-10 number, " +
                        "got \"" + v + "\"";
                return false;
            }
            out = *parsed;
            return true;
        };
        if (flag == "--dry-run") {
            args.dryRun = true;
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--out") {
            const char *v = value();
            if (!v)
                return false;
            args.options.outPath = v;
            args.merge.outPath = v;
            args.explicitOut = true;
        } else if (flag == "--threads") {
            std::uint64_t threads = 0;
            if (!u64Value(threads))
                return false;
            if (threads > UINT_MAX) {
                error = flag + ": " + std::to_string(threads) +
                        " is not a sane worker-thread count";
                return false;
            }
            args.options.threads = static_cast<unsigned>(threads);
        } else if (flag == "--max-shards") {
            std::uint64_t shards = 0;
            if (!u64Value(shards))
                return false;
            args.options.maxShards = shards;
            args.worker.maxShards = shards;
        } else if (flag == "--progress-interval") {
            double seconds = 0;
            if (!f64Value(seconds))
                return false;
            args.options.progressIntervalSeconds = seconds;
            args.worker.progressIntervalSeconds = seconds;
        } else if (flag == "--trace-out") {
            const char *v = value();
            if (!v)
                return false;
            args.options.traceOut = v;
        } else if (flag == "--no-forensics") {
            args.options.forensicsSidecar = false;
            args.worker.forensics = false;
        } else if (flag == "--no-fsync") {
            args.options.durableStore = false;
            args.worker.durable = false;
            args.merge.durable = false;
        } else if (flag == "--queue-dir") {
            const char *v = value();
            if (!v)
                return false;
            args.worker.queueDir = v;
            args.merge.queueDir = v;
        } else if (flag == "--worker-id") {
            const char *v = value();
            if (!v)
                return false;
            args.worker.workerId = v;
        } else if (flag == "--lease-seconds") {
            double seconds = 0;
            if (!f64Value(seconds))
                return false;
            if (seconds <= 0) {
                error = flag + ": lease lifetime must be positive";
                return false;
            }
            args.worker.leaseSeconds = seconds;
        } else if (flag == "--poll-interval") {
            double seconds = 0;
            if (!f64Value(seconds))
                return false;
            args.worker.pollSeconds = seconds;
            args.merge.pollSeconds = seconds;
        } else if (flag == "--wait") {
            args.merge.waitForFragments = true;
        } else if (flag == "--timeout") {
            double seconds = 0;
            if (!f64Value(seconds))
                return false;
            args.merge.timeoutSeconds = seconds;
        } else if (flag == "--json") {
            args.jsonOut = true;
        } else if (flag == "--watch") {
            args.watch = true;
        } else if (flag == "--interval") {
            double seconds = 0;
            if (!f64Value(seconds))
                return false;
            if (seconds <= 0) {
                error = flag + ": refresh interval must be positive";
                return false;
            }
            args.watchIntervalSeconds = seconds;
        } else if (flag == "--port") {
            std::uint64_t port = 0;
            if (!u64Value(port))
                return false;
            if (port > 65535) {
                error = flag + ": " + std::to_string(port) +
                        " is not a TCP port (0..65535)";
                return false;
            }
            args.port = port;
        } else if (flag == "--format" ||
                   flag.rfind("--format=", 0) == 0) {
            std::string v;
            if (flag == "--format") {
                const char *raw = value();
                if (!raw)
                    return false;
                v = raw;
            } else {
                v = flag.substr(std::string("--format=").size());
            }
            if (v != "text" && v != "json") {
                error = "--format: unknown format \"" + v +
                        "\" (expected text or json)";
                return false;
            }
            args.format = v;
        } else {
            error = "unknown option " + flag;
            return false;
        }
    }
    return true;
}

int
workerMain(const CampaignSpec &spec, CliArgs &args)
{
    if (args.worker.queueDir.empty()) {
        std::cerr << "xed_campaign: worker requires --queue-dir\n";
        return usage(std::cerr);
    }
    if (!args.quiet)
        args.worker.progressOut = &std::cerr;
    const WorkerOutcome outcome = runWorker(spec, args.worker);
    if (!outcome.ok) {
        std::cerr << "xed_campaign: " << outcome.error << "\n";
        return 1;
    }
    if (!args.quiet) {
        std::cerr << "xed_campaign: worker ran " << outcome.shardsRun
                  << " shards";
        if (outcome.duplicates)
            std::cerr << " (" << outcome.duplicates
                      << " already committed byte-identically)";
        std::cerr << (outcome.queueDrained ? "; queue drained"
                                           : "; queue not drained")
                  << "\n";
        if (!outcome.tracePath.empty())
            std::cerr << "xed_campaign: trace -> " << outcome.tracePath
                      << "\n";
    }
    return 0;
}

int
mergeMain(const CampaignSpec &spec, CliArgs &args, std::string &error)
{
    if (args.merge.queueDir.empty()) {
        std::cerr << "xed_campaign: merge requires --queue-dir\n";
        return usage(std::cerr);
    }
    if (!args.explicitOut)
        args.merge.outPath = spec.name + ".jsonl";
    const MergeOutcome outcome = mergeFragments(spec, args.merge);
    if (!outcome.ok) {
        std::cerr << "xed_campaign: " << outcome.error << "\n";
        return 1;
    }
    if (!args.quiet)
        std::cerr << "xed_campaign: merged " << outcome.shardsMerged
                  << " shards -> " << args.merge.outPath
                  << (outcome.forensicsWritten ? " (+ forensics sidecar)"
                                               : "")
                  << "\n";
    if (!printReport(args.merge.outPath, std::cout, &error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    return 0;
}

/** The queue dir or store the observability commands read. */
std::string
statusSource(const CliArgs &args)
{
    if (!args.path.empty())
        return args.path;
    return args.worker.queueDir;
}

StatusOptions
statusOptionsOf(const CliArgs &args)
{
    StatusOptions options;
    options.leaseSeconds = args.worker.leaseSeconds;
    return options;
}

int
statusMain(const CliArgs &args)
{
    const std::string source = statusSource(args);
    if (source.empty()) {
        std::cerr << "xed_campaign: status requires a queue directory "
                     "or result store (positional or --queue-dir)\n";
        return usage(std::cerr);
    }
    const StatusOptions options = statusOptionsOf(args);
    for (;;) {
        const FleetStatus status = scanStatusSource(source, options);
        if (args.jsonOut) {
            std::cout << json::dump(statusJson(status)) << "\n";
        } else {
            if (args.watch && isatty(STDOUT_FILENO))
                std::cout << "\x1b[H\x1b[2J"; // clear for the refresh
            printStatus(status, std::cout);
        }
        std::cout.flush();
        if (!args.watch)
            return status.ok ? 0 : 1;
        if (!args.jsonOut)
            std::cout << "\n";
        std::this_thread::sleep_for(std::chrono::duration<double>(
            args.watchIntervalSeconds));
    }
}

// serve's signal handling needs a global: a signal handler can only
// touch the async-signal-safe HttpServer::stop().
obs::HttpServer *gServer = nullptr;

extern "C" void
serveStopHandler(int)
{
    if (gServer)
        gServer->stop();
}

int
serveMain(const CliArgs &args)
{
    const std::string source = statusSource(args);
    if (source.empty()) {
        std::cerr << "xed_campaign: serve requires a queue directory "
                     "or result store (positional or --queue-dir)\n";
        return usage(std::cerr);
    }
    const StatusOptions options = statusOptionsOf(args);
    static obs::HttpServer server;
    std::string error;
    const auto handler = [source,
                          options](const std::string &path) {
        obs::HttpResponse response;
        if (!statusEndpoint(path, source, options, &response.status,
                            &response.contentType, &response.body))
            response = obs::httpNotFound(path);
        return response;
    };
    if (!server.start(static_cast<std::uint16_t>(args.port), handler,
                      &error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    gServer = &server;
    std::signal(SIGINT, serveStopHandler);
    std::signal(SIGTERM, serveStopHandler);
    // The bound port goes to stdout (and is flushed) so a script that
    // asked for --port 0 can scrape the server it just spawned.
    std::cout << "port " << server.port() << "\n" << std::flush;
    std::cerr << "xed_campaign: serving " << source
              << " on http://localhost:" << server.port()
              << "/ (endpoints: /, /status.json, /metrics)\n";
    const std::uint64_t served = server.run();
    std::cerr << "xed_campaign: served " << served << " requests\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // `version` takes no spec argument, so it is resolved before the
    // generic <command> <path> parse.
    if (argc == 2 && std::string(argv[1]) == "version") {
        std::cout << json::dump(buildInfoJson()) << "\n";
        return 0;
    }

    CliArgs args;
    std::string error;
    if (!parseArgs(argc, argv, args, error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return usage(std::cerr);
    }

    // The observability commands are the only ones whose source may
    // come from --queue-dir instead of the positional path.
    if (args.command == "status")
        return statusMain(args);
    if (args.command == "serve")
        return serveMain(args);
    if (args.path.empty()) {
        // Flags-only invocation of a command that needs its
        // positional path (e.g. `run --dry-run`).
        std::cerr << "xed_campaign: missing path argument\n";
        return usage(std::cerr);
    }

    if (args.command == "report") {
        if (args.format == "json") {
            // The same canonical schema `status --json` and the
            // server's /status.json emit, so post-run reports diff
            // cleanly against live snapshots.
            const FleetStatus status =
                scanStore(args.path, statusOptionsOf(args));
            std::cout << json::dump(statusJson(status)) << "\n";
            if (!status.ok)
                std::cerr << "xed_campaign: " << status.error << "\n";
            return status.ok ? 0 : 1;
        }
        if (!printReport(args.path, std::cout, &error)) {
            std::cerr << "xed_campaign: " << error << "\n";
            return 1;
        }
        return 0;
    }
    if (args.command == "checkjson")
        return checkJson(args.path);
    if (args.command != "run" && args.command != "fleet" &&
        args.command != "resume" && args.command != "trace" &&
        args.command != "worker" && args.command != "merge") {
        std::cerr << "xed_campaign: unknown command \"" << args.command
                  << "\"\n";
        return usage(std::cerr);
    }

    auto spec = loadSpecFile(args.path, &error);
    if (!spec) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    if (args.command == "fleet" &&
        spec->kind != CampaignKind::Fleet) {
        std::cerr << "xed_campaign: " << args.path
                  << " is not a fleet spec (kind must be \"fleet\")\n";
        return 1;
    }
    try {
        applyEnvOverrides(*spec);
    } catch (const std::exception &e) {
        std::cerr << "xed_campaign: " << e.what() << "\n";
        return 1;
    }

    if (args.dryRun) {
        printPlan(*spec, std::cout);
        return 0;
    }

    if (args.command == "worker")
        return workerMain(*spec, args);
    if (args.command == "merge")
        return mergeMain(*spec, args, error);

    args.options.resume = args.command == "resume";
    args.options.trace = args.command == "trace";
    if (!args.explicitOut)
        args.options.outPath = spec->name + ".jsonl";
    if (!args.quiet)
        args.options.progressOut = &std::cerr;

    const RunOutcome outcome = runCampaign(*spec, args.options);
    if (!outcome.ok) {
        std::cerr << "xed_campaign: " << outcome.error << "\n";
        return 1;
    }
    if (!args.quiet) {
        std::cerr << "xed_campaign: " << outcome.shardsRun
                  << " shards run, " << outcome.shardsReplayed
                  << " replayed -> " << args.options.outPath
                  << (outcome.complete ? " (complete)" : " (partial)")
                  << "\n";
        if (!outcome.tracePath.empty())
            std::cerr << "xed_campaign: trace -> " << outcome.tracePath
                      << "\n";
    }
    if (outcome.complete &&
        !printReport(args.options.outPath, std::cout, &error)) {
        std::cerr << "xed_campaign: " << error << "\n";
        return 1;
    }
    return 0;
}
