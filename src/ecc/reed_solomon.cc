#include "ecc/reed_solomon.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xed::ecc
{

namespace
{

/** Polynomial helpers; coefficients ascending (p[0] = x^0 term). */
using Poly = std::vector<std::uint8_t>;

unsigned
degree(const Poly &p)
{
    for (std::size_t i = p.size(); i-- > 0;)
        if (p[i] != 0)
            return static_cast<unsigned>(i);
    return 0;
}

Poly
polyMul(const GF256 &gf, const Poly &a, const Poly &b)
{
    Poly out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= gf.mul(a[i], b[j]);
    }
    return out;
}

std::uint8_t
polyEval(const GF256 &gf, const Poly &p, std::uint8_t x)
{
    std::uint8_t acc = 0;
    for (std::size_t i = p.size(); i-- > 0;)
        acc = static_cast<std::uint8_t>(gf.mul(acc, x) ^ p[i]);
    return acc;
}

/** Formal derivative in characteristic 2: odd-degree terms survive. */
Poly
polyDeriv(const Poly &p)
{
    Poly out(p.size() > 1 ? p.size() - 1 : 1, 0);
    for (std::size_t i = 1; i < p.size(); i += 2)
        out[i - 1] = p[i];
    return out;
}

} // namespace

ReedSolomon::ReedSolomon(unsigned n, unsigned k)
    : gf_(GF256::instance()), n_(n), k_(k)
{
    if (n > GF256::groupOrder || k >= n || k == 0)
        throw std::invalid_argument("invalid RS parameters");
    // g(x) = prod_{i=0}^{n-k-1} (x + alpha^i); roots alpha^0..alpha^{n-k-1}.
    gen_ = {1};
    for (unsigned i = 0; i < n - k; ++i) {
        const Poly factor = {gf_.expAlpha(i), 1};
        gen_ = polyMul(gf_, gen_, factor);
    }
}

std::vector<std::uint8_t>
ReedSolomon::encode(const std::vector<std::uint8_t> &data) const
{
    if (data.size() != k_)
        throw std::invalid_argument("RS encode: wrong data length");
    const unsigned r = numCheck();
    // Long-division of data(x) * x^r by g(x); remainder = check symbols.
    // Work MSB-first over the data-first symbol order.
    std::vector<std::uint8_t> rem(r, 0);
    for (unsigned i = 0; i < k_; ++i) {
        const std::uint8_t feedback =
            static_cast<std::uint8_t>(data[i] ^ rem[r - 1]);
        for (unsigned j = r; j-- > 1;)
            rem[j] = static_cast<std::uint8_t>(
                rem[j - 1] ^ gf_.mul(feedback, gen_[j]));
        rem[0] = gf_.mul(feedback, gen_[0]);
    }
    std::vector<std::uint8_t> out(data);
    out.resize(n_);
    // Check symbols: remainder coefficients, highest degree first so that
    // codeword index i corresponds to degree n-1-i throughout.
    for (unsigned j = 0; j < r; ++j)
        out[k_ + j] = rem[r - 1 - j];
    return out;
}

std::vector<std::uint8_t>
ReedSolomon::syndromes(const std::vector<std::uint8_t> &received) const
{
    const unsigned r = numCheck();
    std::vector<std::uint8_t> syn(r, 0);
    for (unsigned j = 0; j < r; ++j) {
        // S_j = r(alpha^j), Horner over degrees n-1..0 (index 0 first).
        std::uint8_t acc = 0;
        const std::uint8_t x = gf_.expAlpha(j);
        for (unsigned i = 0; i < n_; ++i)
            acc = static_cast<std::uint8_t>(gf_.mul(acc, x) ^ received[i]);
        syn[j] = acc;
    }
    return syn;
}

bool
ReedSolomon::isCodeword(const std::vector<std::uint8_t> &received) const
{
    const auto syn = syndromes(received);
    return std::all_of(syn.begin(), syn.end(),
                       [](std::uint8_t s) { return s == 0; });
}

RsResult
ReedSolomon::decode(std::vector<std::uint8_t> &received,
                    const std::vector<unsigned> &erasures) const
{
    if (received.size() != n_)
        throw std::invalid_argument("RS decode: wrong codeword length");
    RsResult result;
    const unsigned r = numCheck();

    const auto syn = syndromes(received);
    const bool clean = std::all_of(syn.begin(), syn.end(),
                                   [](std::uint8_t s) { return s == 0; });
    if (clean) {
        result.status = RsStatus::NoError;
        return result;
    }

    const unsigned e = static_cast<unsigned>(erasures.size());
    if (e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 + X_i x), X_i = alpha^{degree}.
    Poly gamma = {1};
    for (const unsigned idx : erasures) {
        if (idx >= n_) {
            result.status = RsStatus::Failure;
            return result;
        }
        const Poly factor = {1, gf_.expAlpha(degreeOf(idx))};
        gamma = polyMul(gf_, gamma, factor);
    }

    // Forney syndromes: T(x) = S(x) * Gamma(x) mod x^r; the subsequence
    // T_e..T_{r-1} obeys the errors-only locator recursion.
    Poly sPoly(syn.begin(), syn.end());
    Poly t = polyMul(gf_, sPoly, gamma);
    t.resize(r, 0);

    // Berlekamp-Massey on u_m = T_{e+m}, m = 0..r-e-1.
    const unsigned nSeq = r - e;
    Poly lambda = {1};
    Poly b = {1};
    unsigned lLen = 0;
    unsigned m = 1;
    std::uint8_t bCoef = 1;
    for (unsigned step = 0; step < nSeq; ++step) {
        std::uint8_t delta = 0;
        for (unsigned i = 0; i <= lLen && i < lambda.size(); ++i)
            if (step >= i)
                delta ^= gf_.mul(lambda[i], t[e + step - i]);
        if (delta == 0) {
            ++m;
        } else if (2 * lLen <= step) {
            const Poly oldLambda = lambda;
            const std::uint8_t factor = gf_.div(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gf_.mul(factor, shifted[i]);
            b = oldLambda;
            lLen = step + 1 - lLen;
            bCoef = delta;
            m = 1;
        } else {
            const std::uint8_t factor = gf_.div(delta, bCoef);
            Poly shifted(m, 0);
            shifted.insert(shifted.end(), b.begin(), b.end());
            if (shifted.size() > lambda.size())
                lambda.resize(shifted.size(), 0);
            for (std::size_t i = 0; i < shifted.size(); ++i)
                lambda[i] ^= gf_.mul(factor, shifted[i]);
            ++m;
        }
    }
    if (degree(lambda) != lLen || 2 * lLen + e > r) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Combined locator and Chien search over the n valid positions.
    Poly psi = polyMul(gf_, lambda, gamma);
    std::vector<unsigned> positions; // degree positions of all errors
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t xInv =
            gf_.expAlpha(GF256::groupOrder - (deg % GF256::groupOrder));
        if (polyEval(gf_, psi, xInv) == 0)
            positions.push_back(p);
    }
    if (positions.size() != degree(psi)) {
        result.status = RsStatus::Failure;
        return result;
    }

    // Error evaluator Omega(x) = S(x) * Psi(x) mod x^r and Forney values.
    Poly omega = polyMul(gf_, sPoly, psi);
    omega.resize(r, 0);
    const Poly psiDeriv = polyDeriv(psi);
    for (const unsigned p : positions) {
        const unsigned deg = degreeOf(p);
        const std::uint8_t x = gf_.expAlpha(deg);
        const std::uint8_t xInv =
            gf_.expAlpha(GF256::groupOrder - (deg % GF256::groupOrder));
        const std::uint8_t num = polyEval(gf_, omega, xInv);
        const std::uint8_t den = polyEval(gf_, psiDeriv, xInv);
        if (den == 0) {
            result.status = RsStatus::Failure;
            return result;
        }
        const std::uint8_t magnitude = gf_.mul(x, gf_.div(num, den));
        received[p] ^= magnitude;
    }

    // Re-verify: a decoding that does not land on a codeword is a failure.
    if (!isCodeword(received)) {
        result.status = RsStatus::Failure;
        return result;
    }
    result.status = RsStatus::Corrected;
    result.numErasures = e;
    result.numErrors = lLen;
    return result;
}

} // namespace xed::ecc
